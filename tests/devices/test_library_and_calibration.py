"""Tests for the device library and synthetic calibration."""

import numpy as np
import pytest

from repro.devices.calibration import CalibrationTargets, generate_calibration
from repro.devices.library import DEVICE_SPECS, available_devices, get_device
from repro.devices.topology import line_topology


def test_all_devices_constructible():
    for name in available_devices():
        device = get_device(name)
        assert device.n_qubits == DEVICE_SPECS[name].n_qubits
        assert device.topology.is_connected()
        model = device.noise_model()
        assert model.n_qubits() == device.n_qubits


def test_device_count_matches_paper_scale():
    assert len(available_devices()) == 14


def test_get_device_accepts_ibmq_prefix_and_rejects_unknown():
    assert get_device("IBMQ-Yorktown").name == "yorktown"
    with pytest.raises(KeyError):
        get_device("not-a-machine")


def test_calibration_is_deterministic():
    a = get_device("santiago").calibration
    b = get_device("santiago").calibration
    assert a.average_two_qubit_error() == pytest.approx(b.average_two_qubit_error())
    for qubit in a.qubits:
        assert a.qubits[qubit].t1 == pytest.approx(b.qubits[qubit].t1)


def test_error_rate_ordering_matches_fig21():
    """Santiago (low error) should be cleaner than Yorktown (high error)."""
    santiago = get_device("santiago").error_summary()
    yorktown = get_device("yorktown").error_summary()
    assert santiago["two_qubit_error"] < yorktown["two_qubit_error"]
    assert santiago["readout_error"] < yorktown["readout_error"]


def test_calibration_targets_are_respected_on_average():
    targets = CalibrationTargets(
        single_qubit_error=1e-3, two_qubit_error=2e-2, readout_error=3e-2
    )
    calibration = generate_calibration(line_topology(20), targets, seed=5)
    assert calibration.average_two_qubit_error() == pytest.approx(2e-2, rel=0.5)
    assert calibration.average_readout_error() == pytest.approx(3e-2, rel=0.5)
    for params in calibration.qubits.values():
        assert params.t2 <= 2.0 * params.t1 + 1e-9


def test_recalibration_drift_changes_values_but_not_topology():
    device = get_device("belem")
    drifted = device.recalibrated(weeks_later=3)
    assert drifted.topology is device.topology
    original = device.calibration.qubits[0].single_qubit_error
    moved = drifted.calibration.qubits[0].single_qubit_error
    assert moved != pytest.approx(original)
    # averages stay in the same ballpark
    assert drifted.calibration.average_two_qubit_error() == pytest.approx(
        device.calibration.average_two_qubit_error(), rel=1.0
    )


def test_quantum_volume_metadata():
    assert get_device("montreal").quantum_volume == 128
    assert get_device("melbourne").quantum_volume == 8


def test_device_repr_contains_name():
    assert "yorktown" in repr(get_device("yorktown"))


def test_device_pickle_drops_memoized_noise_model_but_not_its_values():
    """Sharded workers reconstruct the noise model from the calibration
    snapshot; the pickled Device must not carry the derived memo, and the
    reconstruction must be value-identical."""
    import pickle

    device = get_device("yorktown")
    original_model = device.noise_model()   # populate the memo
    restored = pickle.loads(pickle.dumps(device))
    assert restored._noise_model is None    # memo dropped in transit
    restored_model = restored.noise_model()
    assert restored_model.qubits == original_model.qubits
    assert restored_model.two_qubit_errors == original_model.two_qubit_errors
    assert restored.name == device.name
    assert restored.topology.edges == device.topology.edges
