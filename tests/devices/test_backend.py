"""Tests for the shot-based quantum backend."""

import numpy as np
import pytest

from repro.devices.backend import QuantumBackend
from repro.devices.calibration import CalibrationTargets, generate_calibration
from repro.devices.library import Device, get_device
from repro.devices.topology import line_topology
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.statevector import expectation_z_all, probabilities, run_circuit


def _ideal_device(n_qubits=4) -> Device:
    """A line device with (almost) zero noise for semantics checks."""
    topology = line_topology(n_qubits, name="ideal-line")
    targets = CalibrationTargets(
        single_qubit_error=0.0, two_qubit_error=0.0, readout_error=0.0,
        t1=1e9, t2=1e9, spread=0.0,
    )
    calibration = generate_calibration(topology, targets, seed=0)
    return Device("ideal", topology, calibration, quantum_volume=32)


def _test_circuit(n_qubits=4):
    circuit = QuantumCircuit(n_qubits)
    circuit.add("ry", (0,), (0.8,))
    circuit.add("cx", (0, 1))
    circuit.add("u3", (2,), (1.1, 0.3, -0.2))
    circuit.add("cx", (2, 3))
    circuit.add("rzz", (1, 2), (0.5,))
    return circuit


def test_ideal_backend_matches_statevector():
    device = _ideal_device()
    backend = QuantumBackend(device, shots=0, seed=0)
    circuit = _test_circuit()
    result = backend.run(circuit, initial_layout="trivial")
    expected = expectation_z_all(run_circuit(circuit))[0]
    assert np.allclose(result.expectation_z_all(), expected, atol=1e-8)
    assert np.allclose(
        result.probabilities, probabilities(run_circuit(circuit))[0], atol=1e-8
    )


def test_ideal_backend_with_nontrivial_layout_matches_statevector():
    device = _ideal_device()
    backend = QuantumBackend(device, shots=0, seed=0)
    circuit = _test_circuit()
    result = backend.run(circuit, initial_layout=[3, 1, 0, 2])
    expected = expectation_z_all(run_circuit(circuit))[0]
    assert np.allclose(result.expectation_z_all(), expected, atol=1e-8)


def test_shot_noise_converges_with_more_shots():
    device = _ideal_device()
    circuit = _test_circuit()
    exact = expectation_z_all(run_circuit(circuit))[0]
    few = QuantumBackend(device, shots=64, seed=1).run(circuit)
    many = QuantumBackend(device, shots=16384, seed=1).run(circuit)
    error_few = np.abs(few.expectation_z_all() - exact).max()
    error_many = np.abs(many.expectation_z_all() - exact).max()
    assert error_many <= error_few + 1e-9
    assert error_many < 0.05


def test_noisy_backend_degrades_expectations():
    """Gate noise pulls Z expectations toward zero relative to the ideal run."""
    circuit = QuantumCircuit(2)
    circuit.add("cx", (0, 1))
    circuit.add("cx", (0, 1))
    circuit.add("cx", (0, 1))
    circuit.add("cx", (0, 1))
    ideal = QuantumBackend(_ideal_device(2), shots=0).run(circuit)
    noisy = QuantumBackend(get_device("yorktown"), shots=0).run(circuit)
    assert ideal.expectation_z(0) == pytest.approx(1.0, abs=1e-6)
    assert noisy.expectation_z(0) < ideal.expectation_z(0) - 1e-3


def test_backend_counts_executions():
    backend = QuantumBackend(get_device("belem"), shots=128, seed=0)
    circuit = QuantumCircuit(2)
    circuit.add("h", (0,))
    backend.run(circuit)
    backend.run(circuit)
    assert backend.executions == 2


def test_large_circuit_falls_back_to_success_rate_approximation():
    device = get_device("guadalupe")
    backend = QuantumBackend(device, shots=0, seed=0, max_density_qubits=4)
    circuit = QuantumCircuit(6)
    for qubit in range(6):
        circuit.add("ry", (qubit,), (0.3,))
    for qubit in range(5):
        circuit.add("cx", (qubit, qubit + 1))
    result = backend.run(circuit, initial_layout="trivial")
    probs = result.probabilities
    assert probs.shape == (2**6,)
    assert np.isclose(probs.sum(), 1.0)
    # the approximation mixes in the uniform distribution, so no outcome is 0
    assert probs.min() > 0


def test_backend_probabilities_sum_to_one_with_shots():
    backend = QuantumBackend(get_device("quito"), shots=512, seed=3)
    result = backend.run(_test_circuit(4), initial_layout="noise_adaptive")
    assert np.isclose(result.probabilities.sum(), 1.0)
    assert result.shots == 512
