"""Tests for device topologies."""

import pytest

from repro.devices.topology import (
    Topology,
    bowtie_topology,
    grid_topology,
    h_topology,
    heavy_hex_like_topology,
    ladder_topology,
    line_topology,
    plus_topology,
    t_topology,
)


def test_line_topology_structure():
    topo = line_topology(5)
    assert topo.n_qubits == 5
    assert len(topo.edges) == 4
    assert topo.are_adjacent(0, 1)
    assert not topo.are_adjacent(0, 2)
    assert topo.distance(0, 4) == 4


def test_t_topology_center_degree():
    topo = t_topology()
    assert topo.degree(1) == 3
    assert topo.is_connected()


def test_plus_topology_center():
    topo = plus_topology()
    assert topo.degree(2) == 4


def test_bowtie_topology_matches_yorktown():
    topo = bowtie_topology()
    assert topo.n_qubits == 5
    assert len(topo.edges) == 6
    assert topo.degree(2) == 4


def test_h_topology_bridge():
    topo = h_topology()
    assert topo.n_qubits == 7
    assert topo.is_connected()
    assert topo.degree(5) == 3


@pytest.mark.parametrize("n", [14, 15, 16])
def test_ladder_topology_connected(n):
    topo = ladder_topology(n)
    assert topo.n_qubits == n
    assert topo.is_connected()


@pytest.mark.parametrize("n", [16, 27, 65])
def test_heavy_hex_like_connected_and_sparse(n):
    topo = heavy_hex_like_topology(n)
    assert topo.n_qubits == n
    assert topo.is_connected()
    max_degree = max(topo.degree(q) for q in range(n))
    assert max_degree <= 4


def test_grid_topology_edges():
    topo = grid_topology(2, 3)
    assert topo.n_qubits == 6
    assert len(topo.edges) == 7


def test_invalid_edges_rejected():
    with pytest.raises(ValueError):
        Topology("bad", 2, ((0, 0),))
    with pytest.raises(ValueError):
        Topology("bad", 2, ((0, 5),))


def test_shortest_path_endpoints():
    topo = t_topology()
    path = topo.shortest_path(0, 4)
    assert path[0] == 0 and path[-1] == 4
    for a, b in zip(path, path[1:]):
        assert topo.are_adjacent(a, b)


def test_connected_subsets_are_connected():
    topo = t_topology()
    subsets = list(topo.connected_subsets(3))
    assert subsets
    graph = topo.graph()
    import networkx as nx

    for subset in subsets:
        assert nx.is_connected(graph.subgraph(subset))


def test_neighbors_sorted():
    topo = bowtie_topology()
    assert topo.neighbors(2) == [0, 1, 3, 4]
