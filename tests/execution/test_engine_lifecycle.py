"""Engine lifecycle: idempotent close, context managers, no leaked pools."""

from __future__ import annotations

import pytest

from repro.core.estimator import EstimatorConfig, PerformanceEstimator
from repro.execution import ExecutionEngine, ShardedExecutionEngine


def engine_for(yorktown, supercircuit, workers=1):
    estimator = PerformanceEstimator(
        yorktown,
        EstimatorConfig(mode="success_rate", n_valid_samples=4, workers=workers,
                        shard_min_group_size=1),
    )
    if workers > 1:
        return ShardedExecutionEngine(estimator, supercircuit)
    return ExecutionEngine(estimator, supercircuit)


def test_close_is_idempotent_in_process(yorktown, u3cu3_supercircuit):
    engine = engine_for(yorktown, u3cu3_supercircuit)
    engine.close()
    engine.close()


def test_sharded_close_is_idempotent_and_releases_pools(yorktown,
                                                        u3cu3_supercircuit):
    engine = engine_for(yorktown, u3cu3_supercircuit, workers=2)
    engine.warm_up()
    assert any(executor is not None for executor in engine._executors)
    engine.close()
    assert all(executor is None for executor in engine._executors)
    engine.close()  # second close: no error, still released


def test_context_manager_shuts_the_pool_down(yorktown, u3cu3_supercircuit,
                                             tiny_dataset):
    with engine_for(yorktown, u3cu3_supercircuit, workers=2) as engine:
        engine.warm_up()
        assert any(executor is not None for executor in engine._executors)
    assert all(executor is None for executor in engine._executors)


def test_context_manager_closes_on_error(yorktown, u3cu3_supercircuit):
    with pytest.raises(RuntimeError, match="boom"):
        with engine_for(yorktown, u3cu3_supercircuit, workers=2) as engine:
            engine.warm_up()
            raise RuntimeError("boom")
    assert all(executor is None for executor in engine._executors)


def test_close_survives_partially_constructed_engines(yorktown,
                                                      u3cu3_supercircuit):
    """__del__ calls close(); a constructor that raised before the executor
    slots existed must not turn that into a second error."""
    engine = ShardedExecutionEngine.__new__(ShardedExecutionEngine)
    engine.close()  # no _executors attribute yet — must be a clean no-op


def test_unknown_backend_fails_fast_without_leaking(yorktown,
                                                    u3cu3_supercircuit):
    estimator = PerformanceEstimator(
        yorktown, EstimatorConfig(workers=2, backend=None)
    )
    estimator.config.backend = "definitely-not-registered"
    with pytest.raises(ValueError, match="unknown simulation backend"):
        ShardedExecutionEngine(estimator, u3cu3_supercircuit)
