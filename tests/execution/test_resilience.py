"""Unit tests for the resilience substrate and the fault-injection harness.

These cover the pieces below the engines: failure classification, the
``REPRO_FAULTS`` grammar, spec matching semantics, the retry policy, and the
dispatcher's watchdog/retry/rebalance behavior against a real process pool
— no estimator or circuit machinery involved.
"""

from __future__ import annotations

import time

import pytest

from repro.execution.faults import (
    DEFAULT_SLOW_SECONDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
)
from repro.execution.resilience import (
    INFRASTRUCTURE,
    TASK_ERROR,
    ResilientDispatcher,
    RetriesExhausted,
    RetryPolicy,
    ShardDeadlineExceeded,
    WorkerPoolGroup,
    classify_failure,
)


# ---------------------------------------------------------------------------
# Failure classification
# ---------------------------------------------------------------------------


class TestClassifyFailure:
    def test_broken_pool_is_infrastructure(self):
        from concurrent.futures.process import BrokenProcessPool

        assert classify_failure(BrokenProcessPool("dead")) == INFRASTRUCTURE

    def test_broken_executor_is_infrastructure(self):
        from concurrent.futures import BrokenExecutor

        assert classify_failure(BrokenExecutor("dead")) == INFRASTRUCTURE

    def test_deadline_is_infrastructure(self):
        assert classify_failure(ShardDeadlineExceeded("hung")) == INFRASTRUCTURE

    def test_oserror_is_infrastructure(self):
        assert classify_failure(OSError("pipe")) == INFRASTRUCTURE

    def test_task_exceptions_are_task_errors(self):
        assert classify_failure(ValueError("bad maths")) == TASK_ERROR
        assert classify_failure(InjectedFault("flaky")) == TASK_ERROR
        assert classify_failure(RuntimeError("boom")) == TASK_ERROR


# ---------------------------------------------------------------------------
# REPRO_FAULTS grammar
# ---------------------------------------------------------------------------


class TestFaultPlanParsing:
    def test_empty_and_none_parse_to_empty_plan(self):
        assert not FaultPlan.parse(None)
        assert not FaultPlan.parse("")
        assert not FaultPlan.parse("  ;  ")

    def test_bare_spec(self):
        plan = FaultPlan.parse("crash@task_receive")
        assert len(plan.specs) == 1
        spec = plan.specs[0]
        assert spec.kind == "crash"
        assert spec.point == "task_receive"
        assert spec.shard is None and spec.generation is None
        assert spec.engine == "*" and spec.times == 1

    def test_full_qualifiers(self):
        plan = FaultPlan.parse(
            "slow@mid_evaluation[shard=2,gen=3,engine=gradient,times=4,seconds=0.5]"
        )
        spec = plan.specs[0]
        assert spec == FaultSpec(
            kind="slow", point="mid_evaluation", shard=2, generation=3,
            engine="gradient", times=4, seconds=0.5,
        )

    def test_wildcard_qualifiers(self):
        spec = FaultPlan.parse("hang@result_send[shard=*,gen=*]").specs[0]
        assert spec.shard is None and spec.generation is None

    def test_multiple_specs_keep_order(self):
        plan = FaultPlan.parse(
            "crash@task_receive[shard=0];flaky@result_send[shard=1]"
        )
        assert [s.kind for s in plan.specs] == ["crash", "flaky"]

    def test_round_trips_through_describe(self):
        text = "crash@task_receive[shard=0,gen=1];slow@mid_evaluation[seconds=0.1]"
        plan = FaultPlan.parse(text)
        assert FaultPlan.parse(plan.describe()) == plan

    def test_from_env_reads_repro_faults(self):
        plan = FaultPlan.from_env({"REPRO_FAULTS": "flaky@task_receive"})
        assert plan.specs[0].kind == "flaky"
        assert not FaultPlan.from_env({})

    @pytest.mark.parametrize("bad", [
        "explode@task_receive",              # unknown kind
        "crash@lunch_break",                 # unknown point
        "crash@task_receive[engine=carrier]",  # unknown engine
        "crash@task_receive[shard=first]",   # non-int shard
        "crash@task_receive[color=red]",     # unknown qualifier
        "crash@task_receive[shard=0",        # unterminated bracket
        "crash",                             # missing @point
        "crash@task_receive[times=0]",       # times must be >= 1
    ])
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)


class TestFaultMatching:
    def test_scoped_filters_by_engine(self):
        plan = FaultPlan.parse(
            "crash@task_receive[engine=execution];flaky@task_receive[engine=gradient];"
            "slow@task_receive"
        )
        assert [s.kind for s in plan.scoped("execution").specs] == ["crash", "slow"]
        assert [s.kind for s in plan.scoped("gradient").specs] == ["flaky", "slow"]
        assert plan.injector("execution") is not None
        assert FaultPlan.parse("crash@task_receive[engine=gradient]").injector(
            "execution"
        ) is None

    def test_times_gates_on_attempt(self):
        spec = FaultPlan.parse("crash@task_receive[times=2]").specs[0]
        assert spec.matches("execution", "task_receive", 0, 0, attempt=0)
        assert spec.matches("execution", "task_receive", 0, 0, attempt=1)
        assert not spec.matches("execution", "task_receive", 0, 0, attempt=2)

    def test_shard_and_generation_scope(self):
        spec = FaultPlan.parse("flaky@result_send[shard=1,gen=2]").specs[0]
        assert spec.matches("gradient", "result_send", 1, 2, 0)
        assert not spec.matches("gradient", "result_send", 0, 2, 0)
        assert not spec.matches("gradient", "result_send", 1, 1, 0)
        assert not spec.matches("gradient", "task_receive", 1, 2, 0)

    def test_injector_fire_flaky_raises_and_slow_sleeps(self):
        injector = FaultPlan.parse(
            "slow@task_receive[seconds=0.01];flaky@result_send"
        ).injector("execution")
        start = time.perf_counter()
        injector.fire("task_receive", 0, 0, 0)  # sleeps 0.01s, returns
        assert time.perf_counter() - start >= 0.01
        with pytest.raises(InjectedFault):
            injector.fire("result_send", 0, 0, 0)
        injector.fire("mid_evaluation", 0, 0, 0)  # nothing matches: no-op

    def test_injector_is_picklable(self):
        import pickle

        injector = FaultPlan.parse("flaky@task_receive").injector("execution")
        clone = pickle.loads(pickle.dumps(injector))
        with pytest.raises(InjectedFault):
            clone.fire("task_receive", 0, 0, 0)


# ---------------------------------------------------------------------------
# Retry policy
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_backoff_is_capped_exponential(self):
        policy = RetryPolicy(
            backoff_seconds=0.1, backoff_max_seconds=0.5, max_retries=10
        )
        assert policy.backoff(0) == pytest.approx(0.1)
        assert policy.backoff(1) == pytest.approx(0.2)
        assert policy.backoff(2) == pytest.approx(0.4)
        assert policy.backoff(3) == pytest.approx(0.5)   # capped
        assert policy.backoff(9) == pytest.approx(0.5)

    def test_zero_backoff_disables_sleeping(self):
        assert RetryPolicy(backoff_seconds=0.0).backoff(5) == 0.0

    def test_from_config_reads_shard_fields(self):
        class Config:
            shard_deadline_seconds = 3.5
            shard_retries = 7
            shard_backoff_seconds = 0.25
            shard_backoff_max_seconds = 1.5

        policy = RetryPolicy.from_config(Config())
        assert policy == RetryPolicy(
            deadline_seconds=3.5, max_retries=7,
            backoff_seconds=0.25, backoff_max_seconds=1.5,
        )

    def test_from_config_defaults_when_fields_missing(self):
        policy = RetryPolicy.from_config(object())
        assert policy == RetryPolicy()


# ---------------------------------------------------------------------------
# Dispatcher against a real pool (plain picklable tasks, no circuits)
# ---------------------------------------------------------------------------


class _Stats:
    """Bare counter bag carrying the ResilienceCounters fields."""

    def __init__(self):
        self.worker_failures = 0
        self.retried_shards = 0
        self.rebalanced_shards = 0
        self.respawned_pools = 0
        self.deadline_timeouts = 0
        self.watchdog_wait_seconds = 0.0


class _Task:
    def __init__(self, shard_index, injector=None):
        self.shard_index = shard_index
        self.attempt = 0
        self.injector = injector


def _noop_init():
    pass


def _run_task(task):
    if task.injector is not None:
        task.injector.fire("task_receive", task.shard_index, 0, task.attempt)
    return ("done", task.shard_index, task.attempt)


def _run_task_mid(task):
    if task.injector is not None:
        task.injector.fire("mid_evaluation", task.shard_index, 0, task.attempt)
    return ("done", task.shard_index, task.attempt)


def _ping(value):
    return value


def make_dispatcher(workers, stats, **policy_kwargs):
    policy_kwargs.setdefault("backoff_seconds", 0.0)
    pools = WorkerPoolGroup(workers, _noop_init, lambda i, a: ())
    return ResilientDispatcher(
        pools, RetryPolicy(**policy_kwargs), _run_task, _ping, stats
    ), pools


class TestResilientDispatcher:
    def test_clean_round_returns_everything(self):
        stats = _Stats()
        dispatcher, pools = make_dispatcher(2, stats)
        try:
            results, task_errors = dispatcher.run(
                {0: _Task(0), 1: _Task(1)}
            )
            assert results == {0: ("done", 0, 0), 1: ("done", 1, 0)}
            assert task_errors == {}
            assert stats.worker_failures == 0
            assert stats.retried_shards == 0
        finally:
            pools.close()

    def test_task_error_is_returned_not_retried(self):
        stats = _Stats()
        dispatcher, pools = make_dispatcher(2, stats)
        injector = FaultPlan.parse("flaky@task_receive[shard=0]").injector(
            "execution"
        )
        try:
            results, task_errors = dispatcher.run(
                {0: _Task(0, injector), 1: _Task(1, injector)}
            )
            assert results == {1: ("done", 1, 0)}
            assert isinstance(task_errors[0], InjectedFault)
            assert stats.worker_failures == 1
            assert stats.retried_shards == 0
        finally:
            pools.close()

    def test_crash_retries_and_rebalances_onto_survivor(self):
        stats = _Stats()
        dispatcher, pools = make_dispatcher(2, stats, max_retries=2)
        injector = FaultPlan.parse("crash@task_receive[shard=0]").injector(
            "execution"
        )
        try:
            results, task_errors = dispatcher.run(
                {0: _Task(0, injector), 1: _Task(1, injector)}
            )
            # shard 0 crashed once (attempt 0), then succeeded on retry
            assert results[0] == ("done", 0, 1)
            assert results[1] == ("done", 1, 0)
            assert task_errors == {}
            assert stats.worker_failures >= 1
            assert stats.retried_shards == 1
            assert stats.rebalanced_shards == 1   # pool 0 was dead
            assert stats.respawned_pools == 1     # and came back afterwards
        finally:
            pools.close()

    def test_exhaustion_raises_with_healthy_results(self):
        stats = _Stats()
        dispatcher, pools = make_dispatcher(2, stats, max_retries=1)
        injector = FaultPlan.parse("crash@task_receive[shard=0,times=99]").injector(
            "execution"
        )
        try:
            with pytest.raises(RetriesExhausted) as info:
                dispatcher.run({0: _Task(0, injector), 1: _Task(1, injector)})
            # shard 1's completed result travels with the exception so the
            # engine can adopt its cache entries before degrading
            assert 1 in info.value.results
            assert stats.retried_shards >= 1
        finally:
            pools.close()

    def test_hang_detected_within_deadline_budget(self):
        stats = _Stats()
        dispatcher, pools = make_dispatcher(
            2, stats, deadline_seconds=0.5, max_retries=1
        )
        injector = FaultPlan.parse(
            "hang@task_receive[shard=0,seconds=30]"
        ).injector("execution")
        try:
            start = time.perf_counter()
            results, task_errors = dispatcher.run(
                {0: _Task(0, injector), 1: _Task(1, injector)}
            )
            elapsed = time.perf_counter() - start
            # the hung shard was killed by the watchdog and retried (attempt
            # 1 no longer matches times=1), far faster than the 30s sleep
            assert results[0] == ("done", 0, 1)
            assert elapsed < 10.0
            assert stats.deadline_timeouts == 1
            assert stats.watchdog_wait_seconds > 0.0
            assert task_errors == {}
        finally:
            pools.close()

    def test_all_pools_dead_respawns_in_place(self):
        stats = _Stats()
        dispatcher, pools = make_dispatcher(1, stats, max_retries=2)
        injector = FaultPlan.parse("crash@task_receive").injector("execution")
        try:
            results, task_errors = dispatcher.run({0: _Task(0, injector)})
            # the only pool crashed; a fresh one was spawned in place
            assert results[0] == ("done", 0, 1)
            assert task_errors == {}
        finally:
            pools.close()


class TestWorkerPoolGroup:
    def test_spawn_counts_and_kill(self):
        pools = WorkerPoolGroup(2, _noop_init, lambda i, a: ())
        try:
            assert pools.alive_indices() == []
            pools.ensure(0)
            assert pools.alive_indices() == [0]
            assert pools.spawn_counts == [1, 0]
            pools.kill(0)
            assert pools.alive_indices() == []
            pools.ensure(0)
            assert pools.spawn_counts == [2, 0]
        finally:
            pools.close()

    def test_respawn_in_background_is_nonblocking_and_idempotent(self):
        pools = WorkerPoolGroup(1, _noop_init, lambda i, a: ())
        try:
            assert pools.respawn_in_background(0, _ping)
            # already alive: no double spawn
            assert not pools.respawn_in_background(0, _ping)
            assert pools.ensure(0).submit(_ping, 7).result() == 7
        finally:
            pools.close()

    def test_close_with_hung_worker_is_bounded(self):
        """Regression: close() must not join a worker stuck in a hung task.

        The old ``shutdown(wait=True)`` path blocked until the 30s injected
        hang finished; routing close through ``kill_executor`` terminates
        the stuck worker first, so close returns promptly.
        """
        pools = WorkerPoolGroup(1, _noop_init, lambda i, a: ())
        injector = FaultPlan.parse(
            "hang@mid_evaluation[seconds=30]"
        ).injector("execution")
        executor = pools.ensure(0)
        # prove the worker is up before handing it the hanging task
        assert executor.submit(_ping, 0).result(timeout=30) == 0
        executor.submit(_run_task_mid, _Task(0, injector))
        time.sleep(0.5)  # let the worker enter the hang
        start = time.perf_counter()
        pools.close()
        assert time.perf_counter() - start < 10.0
        assert pools.alive_indices() == []

    def test_respawn_failure_kills_leaked_executor(self, monkeypatch):
        """Regression: a pool constructed by ensure() whose ping submission
        fails must be killed, not abandoned with a live worker process."""
        from concurrent.futures import ProcessPoolExecutor

        from repro.execution import resilience

        pools = WorkerPoolGroup(1, _noop_init, lambda i, a: ())
        killed = []
        real_kill = resilience.kill_executor
        monkeypatch.setattr(
            resilience,
            "kill_executor",
            lambda executor: (killed.append(executor), real_kill(executor))[1],
        )

        def broken_submit(self, *args, **kwargs):
            raise RuntimeError("submit exploded")

        monkeypatch.setattr(ProcessPoolExecutor, "submit", broken_submit)
        try:
            assert not pools.respawn_in_background(0, _ping)
            assert pools.slots[0] is None
            assert pools.dead[0]
            # the half-built pool was torn down instead of leaking
            assert len(killed) == 1
        finally:
            monkeypatch.undo()
            pools.close()
