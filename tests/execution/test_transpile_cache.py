"""The LRU transpilation cache: identity on hits, no shared-state mutation."""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.core import EvolutionConfig, EvolutionEngine, get_design_space
from repro.core.estimator import EstimatorConfig, PerformanceEstimator
from repro.core.evolution import Candidate
from repro.execution import ExecutionEngine, TranspileCache
from repro.transpile.compiler import transpile


def build_bound_circuit(supercircuit, config, weights_seed=0):
    circuit, _ = supercircuit.build_standalone_circuit(config)
    weights = supercircuit.inherited_weights(config)
    features = np.linspace(-1.0, 1.0, 16)
    return circuit.bind(weights, features)


def snapshot_compiled(compiled):
    """A deep, independent snapshot of a compiled circuit's object graph."""
    return {
        "instructions": [
            (inst.gate, inst.qubits, inst.params)
            for inst in compiled.circuit.instructions
        ],
        "n_qubits": compiled.circuit.n_qubits,
        "initial_layout": copy.deepcopy(compiled.initial_layout),
        "final_layout": copy.deepcopy(compiled.final_layout),
        "used_qubits": tuple(compiled.used_qubits),
        "num_swaps": compiled.num_swaps,
    }


def test_cache_hit_returns_identical_object_graph(u3cu3_supercircuit, yorktown):
    space = get_design_space("u3cu3")
    evolution = EvolutionEngine(space, 4, yorktown, EvolutionConfig(seed=3))
    bound = build_bound_circuit(u3cu3_supercircuit, evolution.random_config())
    mapping = evolution.random_mapping()

    cache = TranspileCache(maxsize=8)
    first = cache.get(bound, yorktown, initial_layout=mapping, optimization_level=2)
    second = cache.get(bound, yorktown, initial_layout=mapping, optimization_level=2)
    assert second is first
    assert cache.stats.misses == 1 and cache.stats.hits == 1

    # identical circuit content through a *different* object also hits
    clone = bound.copy()
    third = cache.get(clone, yorktown, initial_layout=mapping, optimization_level=2)
    assert third is first
    assert cache.stats.hits == 2

    # a cached compilation matches an uncached transpile of the same inputs
    fresh = transpile(bound, yorktown, initial_layout=mapping, optimization_level=2)
    assert snapshot_compiled(fresh) == snapshot_compiled(first)


def test_cache_distinguishes_layout_level_and_params(u3cu3_supercircuit, yorktown):
    space = get_design_space("u3cu3")
    evolution = EvolutionEngine(space, 4, yorktown, EvolutionConfig(seed=4))
    config = evolution.random_config()
    bound = build_bound_circuit(u3cu3_supercircuit, config)
    mapping_a = evolution.random_mapping()
    mapping_b = evolution.random_mapping()
    assert mapping_a != mapping_b

    cache = TranspileCache(maxsize=16)
    a = cache.get(bound, yorktown, initial_layout=mapping_a)
    b = cache.get(bound, yorktown, initial_layout=mapping_b)
    c = cache.get(bound, yorktown, initial_layout=mapping_a, optimization_level=1)
    assert a is not b and a is not c
    assert cache.stats.misses == 3 and cache.stats.hits == 0


def test_cache_evicts_least_recently_used(u3cu3_supercircuit, yorktown):
    space = get_design_space("u3cu3")
    evolution = EvolutionEngine(space, 4, yorktown, EvolutionConfig(seed=5))
    bound = build_bound_circuit(u3cu3_supercircuit, evolution.random_config())
    mappings = [evolution.random_mapping() for _ in range(3)]

    cache = TranspileCache(maxsize=2)
    first = cache.get(bound, yorktown, initial_layout=mappings[0])
    cache.get(bound, yorktown, initial_layout=mappings[1])
    cache.get(bound, yorktown, initial_layout=mappings[2])  # evicts mappings[0]
    assert cache.stats.evictions == 1
    replacement = cache.get(bound, yorktown, initial_layout=mappings[0])
    assert replacement is not first
    assert cache.stats.misses == 4


def test_population_evaluation_never_mutates_cached_compilations(
    u3cu3_supercircuit, yorktown, tiny_dataset
):
    """Candidates sharing a (genome, mapping) pair share one compiled circuit;
    evaluating a population must leave every cached compilation untouched.

    Pinned to the bound-key cache path (``parametric_transpile=False``); the
    parametric structure cache has its own immutability test in
    ``test_parametric_cache.py``.
    """
    space = get_design_space("u3cu3")
    evolution = EvolutionEngine(space, 4, yorktown, EvolutionConfig(seed=6))
    config_a, config_b = evolution.random_config(), evolution.random_config()
    mapping = evolution.random_mapping()
    candidates = [
        Candidate(config_a, mapping),
        Candidate(config_b, mapping),
        Candidate(config_a, mapping),  # duplicate: must reuse the compilation
    ]

    estimator = PerformanceEstimator(
        yorktown,
        EstimatorConfig(
            mode="noise_sim", n_valid_samples=2, parametric_transpile=False
        ),
    )
    engine = ExecutionEngine(estimator, u3cu3_supercircuit)
    first_scores = engine.evaluate_qml_population(candidates, tiny_dataset, 4)
    assert first_scores[0] == first_scores[2]

    entries = list(engine.transpile_cache._entries.values())
    assert entries, "population evaluation should have populated the cache"
    snapshots = [snapshot_compiled(compiled) for compiled in entries]
    misses_before = engine.transpile_cache.stats.misses

    second_scores = engine.evaluate_qml_population(candidates, tiny_dataset, 4)
    assert second_scores == first_scores
    # the second pass is served from cache without recompiling...
    assert engine.transpile_cache.stats.misses == misses_before
    # ...returns the identical objects, and nothing mutated them
    assert {id(c) for c in engine.transpile_cache._entries.values()} == {
        id(c) for c in entries
    }
    for compiled, snapshot in zip(entries, snapshots):
        assert snapshot_compiled(compiled) == snapshot


def test_cache_rejects_invalid_maxsize():
    with pytest.raises(ValueError):
        TranspileCache(maxsize=0)
