"""The structure-keyed parametric transpile cache and its engine wiring.

Covers the accounting contract (structure vs bind hits, variant compiles,
fallbacks), object identity for repeated bindings, immutability of cached
compilations across population evaluations, and the warm-start sharing of one
cache instance between engines, pipeline stages and the deploy backend.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EvolutionConfig, EvolutionEngine, get_design_space
from repro.core.estimator import EstimatorConfig, PerformanceEstimator
from repro.core.evolution import Candidate
from repro.devices import QuantumBackend
from repro.execution import ExecutionEngine, ParametricTranspileCache, TranspileCache
from repro.transpile.compiler import transpile

ATOL = 1e-9


def structure_inputs(u3cu3_supercircuit, yorktown, seed=3):
    space = get_design_space("u3cu3")
    evolution = EvolutionEngine(space, 4, yorktown, EvolutionConfig(seed=seed))
    candidate = Candidate(evolution.random_config(), evolution.random_mapping())
    circuit, _ = u3cu3_supercircuit.build_standalone_circuit(candidate.config)
    weights = u3cu3_supercircuit.inherited_weights(candidate.config)
    return candidate, circuit, weights


def test_structure_and_bind_hit_accounting(u3cu3_supercircuit, yorktown):
    candidate, circuit, weights = structure_inputs(u3cu3_supercircuit, yorktown)
    features = np.linspace(-1.0, 1.0, 16)
    cache = ParametricTranspileCache()

    first = cache.get_bound(circuit, weights, features, yorktown, candidate.mapping)
    assert cache.stats.structure_misses == 1
    assert cache.stats.bind_misses == 1
    assert cache.stats.variants_compiled == 1

    # identical binding: served from the bound LRU, identical object
    second = cache.get_bound(circuit, weights, features, yorktown, candidate.mapping)
    assert second is first
    assert cache.stats.bind_hits == 1
    assert cache.stats.structure_misses == 1

    # new binding, same structure: no recompilation of the structure
    third = cache.get_bound(
        circuit, weights, features + 0.25, yorktown, candidate.mapping
    )
    assert third is not first
    assert cache.stats.structure_misses == 1
    assert cache.stats.structure_hits >= 1
    assert cache.stats.bind_misses == 2

    # different mapping: a different structure entry
    other_mapping = tuple(reversed(candidate.mapping))
    cache.get_bound(circuit, weights, features, yorktown, other_mapping)
    assert cache.stats.structure_misses == 2
    assert len(cache) == 2


def test_bound_results_match_seed_pinned_transpile(u3cu3_supercircuit, yorktown):
    candidate, circuit, weights = structure_inputs(u3cu3_supercircuit, yorktown)
    cache = ParametricTranspileCache()
    rng = np.random.default_rng(2)
    for _ in range(4):
        features = rng.uniform(-1.5, 1.5, 16)
        compiled = cache.get_bound(
            circuit, weights, features, yorktown, candidate.mapping
        )
        seed = cache.key_for(circuit, yorktown, candidate.mapping, 2)[-1]
        fresh = transpile(
            circuit.bind(weights, features),
            yorktown,
            initial_layout=candidate.mapping,
            optimization_level=2,
            seed=seed,
        )
        assert [(i.gate, i.qubits) for i in compiled.circuit.instructions] == [
            (i.gate, i.qubits) for i in fresh.circuit.instructions
        ]
        assert compiled.success_rate() == pytest.approx(
            fresh.success_rate(), abs=ATOL
        )


def test_branch_crossing_falls_back_then_adapts(u3cu3_supercircuit, yorktown):
    """A one-off branch crossing is served by the exact fallback; a recurring
    crossing pattern earns its own template variant."""
    candidate, circuit, weights = structure_inputs(u3cu3_supercircuit, yorktown)
    fallback = TranspileCache(maxsize=32)
    cache = ParametricTranspileCache(
        max_variants=4, variant_threshold=2, fallback=fallback
    )

    features = np.linspace(0.3, 1.8, 16)
    cache.get_bound(circuit, weights, features, yorktown, candidate.mapping)
    assert cache.stats.variants_compiled == 1

    # zeroed features cross the generic witness's non-zero encoder branches;
    # the first crossing is served exactly by the bound-key fallback
    zeroed = np.zeros(16)
    compiled = cache.get_bound(circuit, weights, zeroed, yorktown, candidate.mapping)
    assert cache.stats.fallbacks == 1
    assert fallback.stats.misses == 1
    assert cache.stats.variants_compiled == 1
    fresh = transpile(
        circuit.bind(weights, zeroed),
        yorktown,
        initial_layout=candidate.mapping,
        optimization_level=2,
        seed=cache.key_for(circuit, yorktown, candidate.mapping, 2)[-1],
    )
    assert [(i.gate, i.qubits, i.params) for i in compiled.circuit.instructions] == [
        (i.gate, i.qubits, i.params) for i in fresh.circuit.instructions
    ]

    # a second crossing binding reaches the variant threshold and compiles an
    # adaptive template traced against itself — exactly, no fallback
    zeroed_2 = np.zeros(16)
    zeroed_2[0] = 0.7
    adapted = cache.get_bound(circuit, weights, zeroed_2, yorktown, candidate.mapping)
    assert cache.stats.variants_compiled == 2
    assert cache.stats.fallbacks == 1
    fresh_2 = transpile(
        circuit.bind(weights, zeroed_2),
        yorktown,
        initial_layout=candidate.mapping,
        optimization_level=2,
        seed=cache.key_for(circuit, yorktown, candidate.mapping, 2)[-1],
    )
    assert [(i.gate, i.qubits) for i in adapted.circuit.instructions] == [
        (i.gate, i.qubits) for i in fresh_2.circuit.instructions
    ]

    # with max_variants=1 the recurring pattern keeps using the fallback
    capped = ParametricTranspileCache(max_variants=1, variant_threshold=1)
    capped.get_bound(circuit, weights, features, yorktown, candidate.mapping)
    capped.get_bound(circuit, weights, zeroed, yorktown, candidate.mapping)
    capped.get_bound(circuit, weights, zeroed_2, yorktown, candidate.mapping)
    assert capped.stats.variants_compiled == 1
    assert capped.stats.fallbacks == 2


def test_fallback_shares_the_structure_seed_at_level_3(
    u3cu3_supercircuit, yorktown
):
    """Template binds and exact fallbacks must share one pinned SABRE seed:
    a guard-crossing binding served by the fallback has to equal a fresh
    transpile with the *structure* key's seed, not the bound key's."""
    candidate, circuit, weights = structure_inputs(u3cu3_supercircuit, yorktown)
    cache = ParametricTranspileCache(max_variants=1, variant_threshold=99)
    generic = np.linspace(0.3, 1.8, 16)
    cache.get_bound(circuit, weights, generic, yorktown, "sabre", 3)

    zeroed = np.zeros(16)
    compiled = cache.get_bound(circuit, weights, zeroed, yorktown, "sabre", 3)
    assert cache.stats.fallbacks == 1
    seed = cache.key_for(circuit, yorktown, "sabre", 3)[-1]
    fresh = transpile(
        circuit.bind(weights, zeroed),
        yorktown,
        initial_layout="sabre",
        optimization_level=3,
        seed=seed,
    )
    assert compiled.initial_layout == fresh.initial_layout
    assert compiled.success_rate() == pytest.approx(
        fresh.success_rate(), abs=ATOL
    )


def test_population_evaluation_keeps_parametric_compilations_immutable(
    u3cu3_supercircuit, yorktown, tiny_dataset
):
    space = get_design_space("u3cu3")
    evolution = EvolutionEngine(space, 4, yorktown, EvolutionConfig(seed=6))
    config_a, config_b = evolution.random_config(), evolution.random_config()
    mapping = evolution.random_mapping()
    candidates = [
        Candidate(config_a, mapping),
        Candidate(config_b, mapping),
        Candidate(config_a, mapping),  # duplicate: must reuse the compilation
    ]
    estimator = PerformanceEstimator(
        yorktown, EstimatorConfig(mode="noise_sim", n_valid_samples=2)
    )
    engine = ExecutionEngine(estimator, u3cu3_supercircuit)
    first_scores = engine.evaluate_qml_population(candidates, tiny_dataset, 4)
    assert first_scores[0] == first_scores[2]

    cache = engine.parametric_cache
    bound = list(cache._bound.values())
    assert bound, "population evaluation should have populated the bound cache"
    snapshots = [
        [
            (inst.gate, inst.qubits, inst.params)
            for inst in compiled.circuit.instructions
        ]
        for compiled in bound
    ]
    variants_before = cache.stats.variants_compiled

    second_scores = engine.evaluate_qml_population(candidates, tiny_dataset, 4)
    assert second_scores == first_scores
    # second pass: no recompilation, identical objects, nothing mutated
    assert cache.stats.variants_compiled == variants_before
    assert {id(c) for c in cache._bound.values()} == {id(c) for c in bound}
    for compiled, snapshot in zip(bound, snapshots):
        assert [
            (inst.gate, inst.qubits, inst.params)
            for inst in compiled.circuit.instructions
        ] == snapshot


def test_engine_parametric_matches_bound_key_path(
    u3cu3_supercircuit, yorktown, tiny_dataset
):
    """parametric_transpile=True is a pure reorganization of the PR-2 path."""
    space = get_design_space("u3cu3")
    evolution = EvolutionEngine(space, 4, yorktown, EvolutionConfig(seed=11))
    candidates = [
        Candidate(evolution.random_config(), evolution.random_mapping())
        for _ in range(4)
    ]
    scores = {}
    for parametric in (True, False):
        estimator = PerformanceEstimator(
            yorktown,
            EstimatorConfig(
                mode="noise_sim", n_valid_samples=3,
                parametric_transpile=parametric,
            ),
        )
        engine = ExecutionEngine(estimator, u3cu3_supercircuit)
        scores[parametric] = engine.evaluate_qml_population(
            candidates, tiny_dataset, 4
        )
    np.testing.assert_allclose(scores[True], scores[False], rtol=0, atol=ATOL)


def test_caches_are_shared_across_engines_and_backend(u3cu3_supercircuit, yorktown):
    """The estimator owns the caches: engines and the deploy backend reuse them."""
    estimator = PerformanceEstimator(yorktown, EstimatorConfig(mode="noise_sim"))
    engine_a = ExecutionEngine(estimator, u3cu3_supercircuit)
    engine_b = ExecutionEngine(estimator, u3cu3_supercircuit)
    assert engine_a.transpile_cache is estimator.transpile_cache
    assert engine_b.transpile_cache is estimator.transpile_cache
    assert engine_a.parametric_cache is estimator.parametric_transpile_cache
    assert engine_b.parametric_cache is estimator.parametric_transpile_cache
    # the parametric cache falls back into the same bound-key cache
    assert estimator.parametric_transpile_cache.fallback is estimator.transpile_cache

    backend = QuantumBackend(
        yorktown,
        shots=0,
        transpile_cache=estimator.transpile_cache,
        parametric_cache=estimator.parametric_transpile_cache,
    )
    candidate, circuit, weights = structure_inputs(u3cu3_supercircuit, yorktown)
    features = np.linspace(-1.0, 1.0, 16)
    backend.run_parameterized(
        circuit, weights, features, initial_layout=candidate.mapping
    )
    # the backend's run populated the estimator-owned structure cache
    assert len(estimator.parametric_transpile_cache) == 1

    # an explicit cache size opts an engine out into private caches
    private = ExecutionEngine(
        estimator, u3cu3_supercircuit, transpile_cache_size=8
    )
    assert private.transpile_cache is not estimator.transpile_cache
    assert private.parametric_cache is not estimator.parametric_transpile_cache


def test_backend_run_parameterized_matches_run(u3cu3_supercircuit, yorktown):
    """Without caches run_parameterized is exactly run(bind(...)); with caches
    it produces the same numbers through the template path."""
    candidate, circuit, weights = structure_inputs(u3cu3_supercircuit, yorktown)
    features = np.linspace(-0.8, 1.2, 16)

    plain = QuantumBackend(yorktown, shots=0, seed=0)
    reference = plain.run(
        circuit.bind(weights, features), initial_layout=candidate.mapping
    )

    cached = QuantumBackend(
        yorktown,
        shots=0,
        seed=0,
        parametric_cache=ParametricTranspileCache(),
    )
    via_template = cached.run_parameterized(
        circuit, weights, features, initial_layout=candidate.mapping
    )
    np.testing.assert_allclose(
        via_template.probabilities, reference.probabilities, rtol=0, atol=ATOL
    )


def test_cache_rejects_invalid_sizes():
    with pytest.raises(ValueError):
        ParametricTranspileCache(maxsize=0)
    with pytest.raises(ValueError):
        ParametricTranspileCache(max_variants=0)
