"""The estimator derives task-level observables once, not once per candidate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SuperCircuit, get_design_space
from repro.core.estimator import EstimatorConfig, PerformanceEstimator
from repro.execution import ExecutionEngine
from repro.vqe.molecules import load_molecule


class CountingMolecule:
    """Duck-typed molecule whose Hamiltonian derivation is counted.

    Mimics a molecule that builds its observable lazily (integral evaluation,
    operator mapping, ...) — exactly the work the estimator must not repeat
    per candidate when the task is fixed.
    """

    def __init__(self, base):
        self._base = base
        self.name = base.name
        self.n_qubits = base.n_qubits
        self.ground_energy = base.ground_energy
        self.hamiltonian_derivations = 0

    @property
    def hamiltonian(self):
        self.hamiltonian_derivations += 1
        return self._base.hamiltonian


@pytest.fixture
def h2_setup():
    molecule = CountingMolecule(load_molecule("h2"))
    space = get_design_space("u3cu3")
    supercircuit = SuperCircuit(space, molecule.n_qubits, encoder=None, seed=3)
    from repro.core.subcircuit import SubCircuitConfig

    sub_config = SubCircuitConfig.full(space, molecule.n_qubits)
    ansatz, _ = supercircuit.build_standalone_circuit(sub_config,
                                                      include_encoder=False)
    weights = supercircuit.inherited_weights(sub_config)
    return molecule, supercircuit, ansatz, weights


@pytest.mark.parametrize("mode", ["success_rate", "noise_sim", "noise_free"])
def test_estimator_derives_observable_once(h2_setup, yorktown, mode):
    molecule, _supercircuit, ansatz, weights = h2_setup
    estimator = PerformanceEstimator(yorktown, EstimatorConfig(mode=mode))

    energies = [
        estimator.estimate_vqe(ansatz, weights + 0.01 * step, molecule,
                               layout=(0, 1))
        for step in range(4)
    ]
    assert len(set(energies)) == 4  # genuinely different candidates
    assert molecule.hamiltonian_derivations == 1


def test_measurement_plan_built_once_for_real_qc(h2_setup, yorktown, monkeypatch):
    molecule, _supercircuit, ansatz, weights = h2_setup
    import repro.quantum.measurement as measurement_module

    constructions = []
    original_init = measurement_module.MeasurementPlan.__init__

    def counting_init(self, observable, n_qubits):
        constructions.append(n_qubits)
        original_init(self, observable, n_qubits)

    monkeypatch.setattr(measurement_module.MeasurementPlan, "__init__",
                        counting_init)

    estimator = PerformanceEstimator(
        yorktown, EstimatorConfig(mode="real_qc", shots=256)
    )
    for step in range(3):
        estimator.estimate_vqe(ansatz, weights + 0.01 * step, molecule,
                               layout=(0, 1))
    assert constructions == [molecule.n_qubits]
    assert molecule.hamiltonian_derivations == 1


def test_engine_batched_vqe_uses_hoisted_observable(h2_setup, yorktown):
    molecule, supercircuit, _ansatz, _weights = h2_setup
    from repro.core import EvolutionConfig, EvolutionEngine

    space = get_design_space("u3cu3")
    evolution = EvolutionEngine(space, molecule.n_qubits, yorktown,
                                EvolutionConfig(seed=1))
    candidates = [evolution.random_candidate() for _ in range(6)]

    estimator = PerformanceEstimator(
        yorktown, EstimatorConfig(mode="success_rate", engine="batched")
    )
    engine = ExecutionEngine(estimator, supercircuit)
    engine.evaluate_vqe_population(candidates, molecule)
    engine.evaluate_vqe_population(candidates[:3], molecule)
    assert molecule.hamiltonian_derivations == 1
