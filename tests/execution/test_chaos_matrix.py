"""Chaos matrix: every single-fault scenario leaves every score bitwise intact.

The acceptance contract of the resilience layer: under any single injected
worker fault — crash, hang past deadline, slow shard, flaky task error — at
any instrumented lifecycle point, in any generation, for either sharded
engine, the search completes with final scores and trajectories bitwise
identical to the fault-free run, *without* whole-generation in-process
degradation: ``degraded_generations == 0`` / ``degraded_steps == 0`` and
the retry/recovery counters account for what happened.

Faults are injected through the deterministic ``REPRO_FAULTS`` plan seam
(:mod:`repro.execution.faults`), so every scenario here is exactly
reproducible.  Hang scenarios use second-scale deadlines and sleeps to keep
the suite fast; the watchdog math is identical at production scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EvolutionConfig, EvolutionEngine, get_design_space
from repro.core.estimator import EstimatorConfig, PerformanceEstimator
from repro.execution import FaultPlan, ShardedExecutionEngine
from repro.gradients import GradientEngineConfig, ShardedGradientEngine
from repro.core.evolution import Candidate
from repro.qml import QNNModel, encoder_for_task


def make_population(space, n_qubits, device, seed, size):
    """A seeded population with genome and (genome, mapping) duplicates."""
    evolution = EvolutionEngine(space, n_qubits, device, EvolutionConfig(seed=seed))
    candidates = [evolution.random_candidate() for _ in range(size)]
    candidates.append(Candidate(candidates[0].config, evolution.random_mapping()))
    candidates.append(candidates[1])
    return candidates

#: every recoverable single-fault scenario: (fault kind, injection point)
#: pairs plus the expectation of which counter must account for it.
#: ``slow`` completes normally (no counters); ``flaky`` recovers through the
#: in-process confirmation; ``crash``/``hang`` retry on surviving pools.
SINGLE_FAULTS = [
    ("crash", "task_receive"),
    ("crash", "mid_evaluation"),
    ("crash", "result_send"),
    ("crash", "pool_spawn"),
    ("hang", "task_receive"),
    ("hang", "mid_evaluation"),
    ("slow", "task_receive"),
    ("slow", "result_send"),
    ("flaky", "task_receive"),
    ("flaky", "mid_evaluation"),
    ("flaky", "result_send"),
]

#: deadline/sleep sizing for the bounded-hang scenarios: the injected hang
#: sleeps far past the deadline, the watchdog budget stays test-sized
FAST_POLICY = dict(
    shard_deadline_seconds=5.0,
    shard_retries=2,
    shard_backoff_seconds=0.0,
)


def spec_for(kind: str, point: str, engine: str, generation: int = 0) -> str:
    seconds = ",seconds=30" if kind == "hang" else ""
    return f"{kind}@{point}[shard=0,gen={generation},engine={engine}{seconds}]"


def assert_recovered_cleanly(stats, kind, generations_attr, degraded_attr):
    """The per-archetype counter accounting for a recovered single fault."""
    assert getattr(stats, degraded_attr) == 0
    if kind == "slow":
        # a slow shard completes inside its deadline: nothing to recover
        assert stats.worker_failures == 0
    elif kind == "flaky":
        assert stats.task_error_confirmations == 1
        assert stats.flaky_recoveries == 1
        assert stats.retried_shards == 0
    else:  # crash / hang: infrastructure — retried, pool respawned
        assert stats.worker_failures >= 1
        assert stats.retried_shards >= 1
        assert stats.respawned_pools >= 1
        if kind == "hang":
            assert stats.deadline_timeouts >= 1


# ---------------------------------------------------------------------------
# Execution engine
# ---------------------------------------------------------------------------


def execution_engine(device, supercircuit, workers, faults=None):
    estimator = PerformanceEstimator(
        device,
        EstimatorConfig(
            mode="noise_sim", n_valid_samples=2, workers=workers,
            shard_min_group_size=1, **FAST_POLICY,
        ),
    )
    return ShardedExecutionEngine(
        estimator, supercircuit, fault_plan=FaultPlan.parse(faults)
    )


class TestExecutionChaosMatrix:
    @pytest.fixture(scope="class")
    def reference(self, yorktown, u3cu3_supercircuit, tiny_dataset):
        space = get_design_space("u3cu3")
        candidates = make_population(space, 4, yorktown, seed=23, size=4)
        engine = execution_engine(yorktown, u3cu3_supercircuit, workers=2)
        try:
            scores = engine.evaluate_qml_population(candidates, tiny_dataset, 4)
        finally:
            engine.close()
        return candidates, scores

    @pytest.mark.parametrize("kind,point", SINGLE_FAULTS)
    def test_single_fault_keeps_scores_bitwise(self, yorktown,
                                               u3cu3_supercircuit,
                                               tiny_dataset, reference,
                                               kind, point):
        candidates, clean_scores = reference
        engine = execution_engine(
            yorktown, u3cu3_supercircuit, workers=2,
            faults=spec_for(kind, point, "execution"),
        )
        try:
            if kind == "slow":
                scores = engine.evaluate_qml_population(
                    candidates, tiny_dataset, 4
                )
            else:
                with pytest.warns(RuntimeWarning,
                                  match="recovered from worker faults"):
                    scores = engine.evaluate_qml_population(
                        candidates, tiny_dataset, 4
                    )
            assert scores == clean_scores
            assert_recovered_cleanly(
                engine.scheduler_stats, kind,
                "sharded_generations", "degraded_generations",
            )
            assert engine.scheduler_stats.sharded_generations == 1
        finally:
            engine.close()

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_faulty_search_trajectory_matches_fault_free(self, yorktown,
                                                         u3cu3_supercircuit,
                                                         tiny_dataset,
                                                         workers):
        """A 3-generation evolutionary search under a second-generation
        crash finishes with the identical history for every worker count."""
        space = get_design_space("u3cu3")

        def run_search(faults):
            evolution = EvolutionEngine(
                space, 4, yorktown,
                EvolutionConfig(iterations=3, population_size=6,
                                parent_size=2, mutation_size=2,
                                crossover_size=2, seed=31),
            )
            engine = execution_engine(
                yorktown, u3cu3_supercircuit, workers=workers, faults=faults
            )
            try:
                return engine, evolution.search(
                    population_score_fn=engine.qml_population_scorer(
                        tiny_dataset, 4
                    )
                )
            finally:
                engine.close()

        _clean_engine, clean = run_search(None)
        faulty_engine, faulty = run_search(
            spec_for("crash", "task_receive", "execution", generation=1)
        )
        assert faulty.history == clean.history
        assert faulty.best.gene() == clean.best.gene()
        assert faulty.best_score == clean.best_score
        assert faulty_engine.scheduler_stats.degraded_generations == 0
        if workers > 1:
            # the injected generation really dispatched and really recovered
            assert faulty_engine.scheduler_stats.retried_shards >= 1


# ---------------------------------------------------------------------------
# Gradient engine
# ---------------------------------------------------------------------------


def tiny_model():
    model = QNNModel(4, 2, encoder=encoder_for_task("mnist-2"))
    for qubit in range(4):
        model.add_trainable("ry", (qubit,))
    return model


def gradient_rows(engine, model, rows, features, weights):
    return engine.qml_expectations_rows(
        model.circuit, rows, features, witness_weights=weights
    )


class TestGradientChaosMatrix:
    @pytest.fixture(scope="class")
    def problem(self):
        model = tiny_model()
        rng = np.random.default_rng(37)
        weights = rng.uniform(-np.pi, np.pi, size=model.num_weights)
        features = rng.uniform(-np.pi, np.pi, size=(2, 16))
        config = GradientEngineConfig(seed=3, **FAST_POLICY)
        reference_engine = ShardedGradientEngine(None, config, workers=1)
        rows = np.concatenate([
            weights[None, :],
            reference_engine.shift_plan(model.circuit).shifted_weight_rows(
                weights
            ),
        ])
        reference = gradient_rows(
            reference_engine, model, rows, features, weights
        )
        return model, config, rows, features, weights, reference

    @pytest.mark.parametrize("kind,point", SINGLE_FAULTS)
    def test_single_fault_keeps_values_bitwise(self, problem, kind, point):
        model, config, rows, features, weights, reference = problem
        engine = ShardedGradientEngine(
            None, config, workers=2,
            fault_plan=FaultPlan.parse(spec_for(kind, point, "gradient")),
        )
        try:
            if kind == "slow":
                values = gradient_rows(engine, model, rows, features, weights)
            else:
                with pytest.warns(RuntimeWarning,
                                  match="recovered from worker faults"):
                    values = gradient_rows(
                        engine, model, rows, features, weights
                    )
            assert np.array_equal(values, reference)
            assert_recovered_cleanly(
                engine.scheduler_stats, kind, "sharded_steps", "degraded_steps"
            )
            assert engine.scheduler_stats.sharded_steps == 1
        finally:
            engine.close()

    @pytest.mark.parametrize("workers", [2, 4])
    def test_later_step_fault_recovers_warm(self, problem, workers):
        """A fault in step 1 (warm caches) recovers bitwise too."""
        model, config, rows, features, weights, reference = problem
        engine = ShardedGradientEngine(
            None, config, workers=workers,
            fault_plan=FaultPlan.parse(
                spec_for("crash", "result_send", "gradient", generation=1)
            ),
        )
        try:
            cold = gradient_rows(engine, model, rows, features, weights)
            with pytest.warns(RuntimeWarning,
                              match="recovered from worker faults"):
                warm = gradient_rows(engine, model, rows, features, weights)
            assert np.array_equal(cold, reference)
            assert np.array_equal(warm, reference)
            stats = engine.scheduler_stats
            assert stats.degraded_steps == 0
            assert stats.retried_shards >= 1
            assert stats.sharded_steps == 2
        finally:
            engine.close()
