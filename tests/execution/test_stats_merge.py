"""Explicit stats aggregation: copy/diff/merge and cache-entry adoption.

These are the primitives the sharded scheduler's accounting is built on —
worker counters must merge into parent counters without double counting, and
entry adoption must never masquerade as cache traffic.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.devices import get_device
from repro.execution import (
    ExecutionStats,
    ParametricCacheStats,
    SchedulerStats,
    TranspileCache,
    TranspileCacheStats,
)
from repro.quantum.circuit import QuantumCircuit


# ---------------------------------------------------------------------------
# MergeableStats protocol
# ---------------------------------------------------------------------------

STATS_TYPES = [ExecutionStats, TranspileCacheStats, ParametricCacheStats,
               SchedulerStats]


def _filled(stats_type, start=1):
    """An instance with every field set to a distinct value."""
    return stats_type(**{
        field.name: index
        for index, field in enumerate(dataclasses.fields(stats_type), start=start)
    })


@pytest.mark.parametrize("stats_type", STATS_TYPES)
def test_copy_is_independent(stats_type):
    original = _filled(stats_type)
    snapshot = original.copy()
    first_field = dataclasses.fields(stats_type)[0].name
    setattr(original, first_field, getattr(original, first_field) + 10)
    assert getattr(snapshot, first_field) == getattr(original, first_field) - 10


@pytest.mark.parametrize("stats_type", STATS_TYPES)
def test_diff_then_merge_roundtrips(stats_type):
    baseline = _filled(stats_type, start=1)
    later = _filled(stats_type, start=5)
    delta = later.diff(baseline)
    for field in dataclasses.fields(stats_type):
        assert getattr(delta, field.name) == 4
    rebuilt = baseline.copy().merge(delta)
    assert rebuilt == later
    # diff of a copy is all zeros
    zero = later.diff(later.copy())
    assert all(
        getattr(zero, field.name) == 0 for field in dataclasses.fields(stats_type)
    )


@pytest.mark.parametrize("stats_type", STATS_TYPES)
def test_merge_covers_every_field(stats_type):
    """A counter added to any stats dataclass aggregates automatically."""
    total = stats_type()
    shard_deltas = [_filled(stats_type, start=1), _filled(stats_type, start=3)]
    for delta in shard_deltas:
        total.merge(delta)
    for index, field in enumerate(dataclasses.fields(stats_type)):
        expected = sum(index + start for start in (1, 3))
        assert getattr(total, field.name) == expected, field.name


def test_merge_rejects_foreign_stats():
    with pytest.raises(TypeError):
        ExecutionStats().merge(TranspileCacheStats())
    with pytest.raises(TypeError):
        TranspileCacheStats().diff(ParametricCacheStats())


def test_derived_rates_recompute_from_merged_counters():
    total = TranspileCacheStats()
    total.merge(TranspileCacheStats(hits=3, misses=1))
    total.merge(TranspileCacheStats(hits=1, misses=3))
    assert total.requests == 8
    assert total.hit_rate == pytest.approx(0.5)


# ---------------------------------------------------------------------------
# Cache-entry adoption
# ---------------------------------------------------------------------------


def _compile_some(cache, device, n_circuits):
    compiled = []
    for index in range(n_circuits):
        circuit = QuantumCircuit(2)
        circuit.add("rz", (0,), (0.1 + index,))
        circuit.add("cx", (0, 1))
        compiled.append(cache.get(circuit, device))
    return compiled


def test_transpile_cache_adoption_is_not_traffic():
    device = get_device("yorktown")
    source = TranspileCache(maxsize=8)
    _compile_some(source, device, 3)
    assert source.stats.misses == 3

    target = TranspileCache(maxsize=8)
    adopted = target.adopt_entries(source.export_entries())
    assert adopted == 3
    assert len(target) == 3
    # adoption is not a lookup: hit/miss counters untouched
    assert target.stats.hits == 0 and target.stats.misses == 0
    # re-adoption is a no-op, local entries win
    assert target.adopt_entries(source.export_entries()) == 0

    # the adopted entries now serve lookups without compiling
    _compile_some(target, device, 3)
    assert target.stats.hits == 3 and target.stats.misses == 0


def test_transpile_cache_export_exclusion_and_eviction_accounting():
    device = get_device("yorktown")
    source = TranspileCache(maxsize=8)
    _compile_some(source, device, 4)
    exported = source.export_entries()
    keys = {key for key, _ in exported}
    # a worker's second export excludes what it already shipped
    assert source.export_entries(exclude=keys) == []

    tiny = TranspileCache(maxsize=2)
    adopted = tiny.adopt_entries(exported)
    assert adopted == 4
    assert len(tiny) == 2
    assert tiny.stats.evictions == 2


def test_evicted_then_recompiled_entries_are_exported_again():
    """The worker protocol refreshes its exclusion set from export_keys()
    after every export (instead of accumulating every key ever shipped): a
    key evicted before an export boundary and recompiled afterwards must
    ship again, and the exclusion set stays bounded by the cache size."""
    device = get_device("yorktown")

    def circuit(index):
        built = QuantumCircuit(2)
        built.add("rz", (0,), (0.1 + index,))
        built.add("cx", (0, 1))
        return built

    cache = TranspileCache(maxsize=2)
    evictee_key = cache.key_for(circuit(0), device, None, 2)
    # generation 1: compile two circuits, export both
    cache.get(circuit(0), device)
    cache.get(circuit(1), device)
    assert len(cache.export_entries(exclude=())) == 2
    exclusion = cache.export_keys()

    # generation 2: a third circuit evicts circuit 0; only the new key ships
    cache.get(circuit(2), device)
    assert cache.stats.evictions == 1
    assert [key for key, _ in cache.export_entries(exclude=exclusion)] != []
    exclusion = cache.export_keys()
    assert evictee_key not in exclusion

    # generation 3: circuit 0 is recompiled — it must be exported again
    # (an accumulated all-keys-ever set would silently drop it forever)
    cache.get(circuit(0), device)
    exported_keys = {key for key, _ in cache.export_entries(exclude=exclusion)}
    assert exported_keys == {evictee_key}
    assert len(cache.export_keys()) <= cache.maxsize


def test_sharded_population_counters_not_double_counted(u3cu3_supercircuit,
                                                        yorktown, tiny_dataset):
    """The regression the explicit protocol exists for: merging shard deltas
    must count the generation's populations/candidates exactly once."""
    from repro.core import EvolutionConfig, EvolutionEngine, get_design_space
    from repro.core.estimator import EstimatorConfig, PerformanceEstimator
    from repro.execution import ShardedExecutionEngine

    space = get_design_space("u3cu3")
    evolution = EvolutionEngine(space, 4, yorktown, EvolutionConfig(seed=6))
    candidates = [evolution.random_candidate() for _ in range(6)]
    estimator = PerformanceEstimator(
        yorktown,
        EstimatorConfig(mode="success_rate", n_valid_samples=4, workers=2,
                        shard_min_group_size=1),
    )
    engine = ShardedExecutionEngine(estimator, u3cu3_supercircuit)
    try:
        for _generation in range(2):
            engine.evaluate_qml_population(candidates, tiny_dataset, 4)
        assert engine.stats.populations == 2
        assert engine.stats.candidates == 2 * len(candidates)
        assert estimator.num_queries == 2 * len(candidates)
        assert engine.scheduler_stats.generations == 2
    finally:
        engine.close()
