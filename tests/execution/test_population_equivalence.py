"""Equivalence of the batched execution engine and the sequential estimator.

The batched engine is only allowed to *reorganize* work, never to change the
numbers: expectations, losses and evolution rankings must agree with the
per-candidate seed path to 1e-9 in both estimator modes the co-search uses
(``noise_sim`` and ``success_rate``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EvolutionConfig, EvolutionEngine, SuperCircuit, get_design_space
from repro.core.estimator import EstimatorConfig, PerformanceEstimator
from repro.core.evolution import Candidate
from repro.devices import QuantumBackend
from repro.execution import ExecutionEngine
from repro.vqe.molecules import load_molecule

ATOL = 1e-9


def make_population(space, n_qubits, device, seed, size):
    """A seeded population with genome and (genome, mapping) duplicates."""
    evolution = EvolutionEngine(space, n_qubits, device, EvolutionConfig(seed=seed))
    candidates = [evolution.random_candidate() for _ in range(size)]
    # same genome, different mapping — exercises genome grouping
    candidates.append(Candidate(candidates[0].config, evolution.random_mapping()))
    # exact duplicate — exercises transpile/job deduplication
    candidates.append(candidates[1])
    return candidates


def engines_for(device, supercircuit, mode, n_valid_samples):
    sequential = ExecutionEngine(
        PerformanceEstimator(
            device,
            EstimatorConfig(
                mode=mode, n_valid_samples=n_valid_samples, engine="sequential"
            ),
        ),
        supercircuit,
    )
    batched = ExecutionEngine(
        PerformanceEstimator(
            device,
            EstimatorConfig(
                mode=mode, n_valid_samples=n_valid_samples, engine="batched"
            ),
        ),
        supercircuit,
    )
    return sequential, batched


@pytest.mark.parametrize("mode,n_valid", [("success_rate", 8), ("noise_sim", 3)])
def test_qml_population_losses_match(u3cu3_supercircuit, yorktown, tiny_dataset,
                                     mode, n_valid):
    space = get_design_space("u3cu3")
    size = 4 if mode == "noise_sim" else 6
    candidates = make_population(space, 4, yorktown, seed=11, size=size)
    sequential, batched = engines_for(yorktown, u3cu3_supercircuit, mode, n_valid)

    seq = sequential.evaluate_qml_population(candidates, tiny_dataset, 4)
    bat = batched.evaluate_qml_population(candidates, tiny_dataset, 4)

    np.testing.assert_allclose(bat, seq, rtol=0, atol=ATOL)
    # duplicated candidates must receive identical scores
    assert bat[1] == bat[-1]


@pytest.mark.parametrize("fusion", [True, False])
def test_qml_losses_match_with_and_without_fusion(u3cu3_supercircuit, yorktown,
                                                  tiny_dataset, fusion):
    space = get_design_space("u3cu3")
    candidates = make_population(space, 4, yorktown, seed=23, size=4)
    estimator = PerformanceEstimator(
        yorktown, EstimatorConfig(mode="success_rate", n_valid_samples=8)
    )
    batched = ExecutionEngine(estimator, u3cu3_supercircuit, fusion=fusion)
    sequential, _ = engines_for(yorktown, u3cu3_supercircuit, "success_rate", 8)

    seq = sequential.evaluate_qml_population(candidates, tiny_dataset, 4)
    bat = batched.evaluate_qml_population(candidates, tiny_dataset, 4)
    np.testing.assert_allclose(bat, seq, rtol=0, atol=ATOL)


def test_noisy_expectations_match_backend(u3cu3_supercircuit, yorktown,
                                          tiny_dataset):
    """The batched density-matrix path pins against per-sample backend runs."""
    space = get_design_space("u3cu3")
    candidate = make_population(space, 4, yorktown, seed=5, size=1)[0]
    circuit, _ = u3cu3_supercircuit.build_standalone_circuit(candidate.config)
    weights = u3cu3_supercircuit.inherited_weights(candidate.config)
    features = tiny_dataset.x_valid[:3]

    estimator = PerformanceEstimator(yorktown, EstimatorConfig(mode="noise_sim"))
    engine = ExecutionEngine(estimator, u3cu3_supercircuit)
    batched = engine.noisy_expectations(circuit, weights, candidate.mapping, features)

    backend = QuantumBackend(yorktown, shots=0, seed=0)
    for row, expect in zip(features, batched):
        result = backend.run(
            circuit.bind(weights, row), initial_layout=candidate.mapping, shots=0
        )
        np.testing.assert_allclose(expect, result.expectation_z_all(),
                                   rtol=0, atol=ATOL)


@pytest.mark.parametrize("mode", ["success_rate", "noise_sim"])
def test_vqe_population_energies_match(yorktown, mode):
    molecule = load_molecule("h2")
    space = get_design_space("u3cu3")
    supercircuit = SuperCircuit(space, molecule.n_qubits, encoder=None, seed=3)
    candidates = make_population(space, molecule.n_qubits, yorktown, seed=7, size=5)
    sequential, batched = engines_for(yorktown, supercircuit, mode, 8)

    seq = sequential.evaluate_vqe_population(candidates, molecule)
    bat = batched.evaluate_vqe_population(candidates, molecule)
    np.testing.assert_allclose(bat, seq, rtol=0, atol=ATOL)


@pytest.mark.parametrize("mode,n_valid,population", [
    ("success_rate", 6, 8),
    ("noise_sim", 2, 6),
])
def test_evolution_rankings_match(u3cu3_supercircuit, yorktown, tiny_dataset,
                                  mode, n_valid, population):
    """Seeded searches driven by either engine visit identical populations
    and produce identical rankings, best genes and history curves."""
    space = get_design_space("u3cu3")
    evolution_config = EvolutionConfig(
        iterations=2, population_size=population, parent_size=3,
        mutation_size=max(2, population - 5), crossover_size=2, seed=9,
    )
    results = {}
    for engine_mode in ("sequential", "batched"):
        estimator = PerformanceEstimator(
            yorktown,
            EstimatorConfig(mode=mode, n_valid_samples=n_valid, engine=engine_mode),
        )
        execution = ExecutionEngine(estimator, u3cu3_supercircuit)
        evolution = EvolutionEngine(space, 4, yorktown, evolution_config)
        results[engine_mode] = evolution.search(
            population_score_fn=execution.qml_population_scorer(tiny_dataset, 4)
        )

    sequential, batched = results["sequential"], results["batched"]
    assert batched.best.gene() == sequential.best.gene()
    assert batched.evaluated == sequential.evaluated
    assert batched.best_score == pytest.approx(sequential.best_score, abs=ATOL)
    for row_b, row_s in zip(batched.history, sequential.history):
        for key in ("best_score", "population_best", "population_mean"):
            assert row_b[key] == pytest.approx(row_s[key], abs=ATOL)


def test_sequential_engine_matches_seed_score_closure(u3cu3_supercircuit, yorktown,
                                                      tiny_dataset):
    """engine="sequential" reproduces the original per-candidate closure
    bit-for-bit (same builds, same estimator calls, same query count)."""
    space = get_design_space("u3cu3")
    candidates = make_population(space, 4, yorktown, seed=2, size=4)

    estimator = PerformanceEstimator(
        yorktown, EstimatorConfig(mode="success_rate", n_valid_samples=8,
                                  engine="sequential")
    )
    engine = ExecutionEngine(estimator, u3cu3_supercircuit)
    via_engine = engine.evaluate_qml_population(candidates, tiny_dataset, 4)

    reference_estimator = PerformanceEstimator(
        yorktown, EstimatorConfig(mode="success_rate", n_valid_samples=8)
    )
    reference = []
    for candidate in candidates:
        circuit, _ = u3cu3_supercircuit.build_standalone_circuit(candidate.config)
        weights = u3cu3_supercircuit.inherited_weights(candidate.config)
        reference.append(
            reference_estimator.estimate_qml(
                circuit, weights, tiny_dataset, 4, layout=candidate.mapping
            )
        )
    assert via_engine == reference
    assert estimator.num_queries == reference_estimator.num_queries
