"""Regression pins for the simulator stack: every execution path against
``circuit_unitary``.

Future refactors of the statevector/fusion engines (sharding, new layouts,
alternative backends) must keep these invariants: for random 2–6 qubit
circuits, ``run_circuit``, ``run_parameterized`` and the fused (static-mode)
runner all agree with the dense unitary of the same circuit to 1e-9.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.quantum.circuit import ParameterizedCircuit, QuantumCircuit
from repro.quantum.fusion import FusedCircuit
from repro.quantum.statevector import (
    circuit_unitary,
    run_circuit,
    run_parameterized,
    zero_state,
)

ATOL = 1e-9

ONE_QUBIT_GATES = ["h", "x", "sx", "rx", "ry", "rz", "u3", "t", "s"]
TWO_QUBIT_GATES = ["cx", "cz", "rzz", "cry", "swap", "cu3"]
PARAM_COUNTS = {"rx": 1, "ry": 1, "rz": 1, "u3": 3, "rzz": 1, "cry": 1, "cu3": 3}


def random_circuit(n_qubits: int, n_gates: int, rng: np.random.Generator):
    circuit = QuantumCircuit(n_qubits)
    for _ in range(n_gates):
        if n_qubits >= 2 and rng.random() < 0.4:
            gate = TWO_QUBIT_GATES[int(rng.integers(len(TWO_QUBIT_GATES)))]
            qubits = rng.permutation(n_qubits)[:2]
        else:
            gate = ONE_QUBIT_GATES[int(rng.integers(len(ONE_QUBIT_GATES)))]
            qubits = rng.permutation(n_qubits)[:1]
        params = rng.uniform(-np.pi, np.pi, size=PARAM_COUNTS.get(gate, 0))
        circuit.add(gate, tuple(int(q) for q in qubits), tuple(params))
    return circuit


def random_parameterized(n_qubits: int, n_gates: int, n_features: int,
                         rng: np.random.Generator) -> ParameterizedCircuit:
    pcirc = ParameterizedCircuit(n_qubits)
    for index in range(n_gates):
        qubit = int(rng.integers(n_qubits))
        if index % 4 == 0:
            pcirc.add_encoder("ry", (qubit,), (int(rng.integers(n_features)),))
        elif index % 4 == 1 and n_qubits >= 2:
            other = (qubit + 1 + int(rng.integers(n_qubits - 1))) % n_qubits
            pcirc.add_trainable("cry", (qubit, other))
        else:
            pcirc.add_trainable("u3", (qubit,))
    return pcirc


@pytest.mark.parametrize("n_qubits", [2, 3, 4, 5, 6])
@pytest.mark.parametrize("seed", [0, 1])
def test_run_circuit_matches_unitary(n_qubits, seed):
    rng = np.random.default_rng(100 * n_qubits + seed)
    circuit = random_circuit(n_qubits, n_gates=4 * n_qubits, rng=rng)
    unitary = circuit_unitary(circuit)
    state = run_circuit(circuit).reshape(-1)
    np.testing.assert_allclose(state, unitary[:, 0], rtol=0, atol=ATOL)
    # also from a random initial state
    dim = 2**n_qubits
    vec = rng.normal(size=dim) + 1j * rng.normal(size=dim)
    vec /= np.linalg.norm(vec)
    evolved = run_circuit(
        circuit, states=vec.reshape((1,) + (2,) * n_qubits)
    ).reshape(-1)
    np.testing.assert_allclose(evolved, unitary @ vec, rtol=0, atol=ATOL)


@pytest.mark.parametrize("n_qubits", [2, 3, 4, 5, 6])
@pytest.mark.parametrize("max_fused", [2, 3])
def test_fused_circuit_matches_unitary(n_qubits, max_fused):
    rng = np.random.default_rng(7 * n_qubits + max_fused)
    circuit = random_circuit(n_qubits, n_gates=5 * n_qubits, rng=rng)
    unitary = circuit_unitary(circuit)
    fused = FusedCircuit.from_circuit(circuit, max_fused_qubits=max_fused)
    state = fused.run(batch=1).reshape(-1)
    np.testing.assert_allclose(state, unitary[:, 0], rtol=0, atol=ATOL)
    # fusion must not change the unfused reference either
    unfused = run_circuit(circuit).reshape(-1)
    np.testing.assert_allclose(state, unfused, rtol=0, atol=ATOL)


@pytest.mark.parametrize("n_qubits", [2, 4, 6])
def test_run_parameterized_matches_per_sample_unitaries(n_qubits):
    rng = np.random.default_rng(13 * n_qubits)
    n_features = 4
    pcirc = random_parameterized(n_qubits, n_gates=3 * n_qubits,
                                 n_features=n_features, rng=rng)
    weights = pcirc.init_weights(rng)
    features = rng.uniform(-1.0, 1.0, size=(3, n_features))

    states = run_parameterized(pcirc, weights, features)
    assert states.shape == (3,) + (2,) * n_qubits
    for row, state in zip(features, states):
        bound = pcirc.bind(weights, row)
        unitary = circuit_unitary(bound)
        np.testing.assert_allclose(state.reshape(-1), unitary[:, 0],
                                   rtol=0, atol=ATOL)


@pytest.mark.parametrize("n_qubits", [2, 4, 6])
def test_fused_bound_parameterized_matches_unitary(n_qubits):
    """Static-mode execution of a bound template stays on the dynamic result."""
    rng = np.random.default_rng(17 * n_qubits)
    pcirc = random_parameterized(n_qubits, n_gates=3 * n_qubits,
                                 n_features=4, rng=rng)
    weights = pcirc.init_weights(rng)
    row = rng.uniform(-1.0, 1.0, size=4)
    bound = pcirc.bind(weights, row)
    unitary = circuit_unitary(bound)
    for max_fused in (2, 3):
        fused = FusedCircuit.from_circuit(bound, max_fused_qubits=max_fused)
        state = fused.run(batch=1).reshape(-1)
        np.testing.assert_allclose(state, unitary[:, 0], rtol=0, atol=ATOL)


def test_fused_circuit_batched_run_matches_loop():
    rng = np.random.default_rng(99)
    circuit = random_circuit(3, n_gates=12, rng=rng)
    fused = FusedCircuit.from_circuit(circuit, max_fused_qubits=2)
    batch = 5
    states = zero_state(3, batch)
    out = fused.run(states=states.copy(), batch=batch)
    single = fused.run(batch=1)
    for index in range(batch):
        np.testing.assert_allclose(out[index], single[0], rtol=0, atol=ATOL)
