"""Parallel equivalence, determinism and fault tolerance of the sharded engine.

The sharded scheduler is only allowed to *move* work between processes, never
to change the numbers: scores must match the sequential seed path and the
in-process batched engine to 1e-9, and must be bit-for-bit identical across
worker counts, across repeated evaluations, and across a worker fault that
degrades a generation to the in-process path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EvolutionConfig, EvolutionEngine, SuperCircuit, get_design_space
from repro.core.estimator import EstimatorConfig, PerformanceEstimator
from repro.core.evolution import Candidate
from repro.devices import get_device
from repro.execution import ExecutionEngine, FaultPlan, ShardedExecutionEngine

ATOL = 1e-9
WORKER_COUNTS = (1, 2, 4)


def make_population(space, n_qubits, device, seed, size):
    """A seeded population with genome and (genome, mapping) duplicates."""
    evolution = EvolutionEngine(space, n_qubits, device, EvolutionConfig(seed=seed))
    candidates = [evolution.random_candidate() for _ in range(size)]
    candidates.append(Candidate(candidates[0].config, evolution.random_mapping()))
    candidates.append(candidates[1])
    return candidates


def sharded_engine(device, supercircuit, mode, n_valid, workers, **config_kwargs):
    estimator = PerformanceEstimator(
        device,
        EstimatorConfig(
            mode=mode,
            n_valid_samples=n_valid,
            workers=workers,
            shard_min_group_size=1,
            **config_kwargs,
        ),
    )
    return ShardedExecutionEngine(estimator, supercircuit)


def reference_engines(device, supercircuit, mode, n_valid):
    sequential = ExecutionEngine(
        PerformanceEstimator(
            device,
            EstimatorConfig(mode=mode, n_valid_samples=n_valid, engine="sequential"),
        ),
        supercircuit,
    )
    batched = ExecutionEngine(
        PerformanceEstimator(
            device,
            EstimatorConfig(mode=mode, n_valid_samples=n_valid),
        ),
        supercircuit,
    )
    return sequential, batched


# ---------------------------------------------------------------------------
# Parallel equivalence
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("mode,n_valid,size", [
    ("noise_sim", 3, 4),
    ("success_rate", 8, 8),
])
def test_sharded_qml_matches_sequential_and_batched(u3cu3_supercircuit, yorktown,
                                                    tiny_dataset, mode, n_valid,
                                                    size):
    space = get_design_space("u3cu3")
    candidates = make_population(space, 4, yorktown, seed=11, size=size)
    sequential, batched = reference_engines(yorktown, u3cu3_supercircuit, mode, n_valid)
    seq = sequential.evaluate_qml_population(candidates, tiny_dataset, 4)
    bat = batched.evaluate_qml_population(candidates, tiny_dataset, 4)

    by_workers = {}
    for workers in WORKER_COUNTS:
        engine = sharded_engine(yorktown, u3cu3_supercircuit, mode, n_valid, workers)
        try:
            by_workers[workers] = engine.evaluate_qml_population(
                candidates, tiny_dataset, 4
            )
            if workers > 1:
                assert engine.scheduler_stats.sharded_generations == 1
            else:
                assert engine.scheduler_stats.in_process_generations == 1
        finally:
            engine.close()

    for workers, scores in by_workers.items():
        np.testing.assert_allclose(scores, seq, rtol=0, atol=ATOL)
        np.testing.assert_allclose(scores, bat, rtol=0, atol=ATOL)
        # duplicated candidates score identically wherever they run
        assert scores[1] == scores[-1]
    # bit-for-bit independent of the worker count
    assert by_workers[1] == by_workers[2] == by_workers[4]


@pytest.mark.parametrize("molecule_name,device_name,mode,size", [
    ("h2", "yorktown", "noise_sim", 4),       # 2 qubits
    ("h2", "yorktown", "success_rate", 6),
    ("lih", "jakarta", "noise_sim", 3),       # 6 qubits
    ("lih", "jakarta", "success_rate", 5),
])
def test_sharded_vqe_matches_across_qubit_range(molecule_name, device_name, mode,
                                                size):
    from repro.vqe.molecules import load_molecule

    molecule = load_molecule(molecule_name)
    device = get_device(device_name)
    space = get_design_space("u3cu3")
    supercircuit = SuperCircuit(space, molecule.n_qubits, encoder=None, seed=3)
    candidates = make_population(space, molecule.n_qubits, device, seed=7, size=size)
    sequential, batched = reference_engines(device, supercircuit, mode, 8)
    seq = sequential.evaluate_vqe_population(candidates, molecule)
    bat = batched.evaluate_vqe_population(candidates, molecule)

    by_workers = {}
    for workers in (1, 2):
        engine = sharded_engine(device, supercircuit, mode, 8, workers)
        try:
            by_workers[workers] = engine.evaluate_vqe_population(candidates, molecule)
        finally:
            engine.close()
    for scores in by_workers.values():
        np.testing.assert_allclose(scores, seq, rtol=0, atol=ATOL)
        np.testing.assert_allclose(scores, bat, rtol=0, atol=ATOL)
    assert by_workers[1] == by_workers[2]


@pytest.mark.parametrize("mode,n_valid,population", [
    ("success_rate", 6, 8),
    ("noise_sim", 2, 6),
])
def test_sharded_evolution_rankings_match(u3cu3_supercircuit, yorktown, tiny_dataset,
                                          mode, n_valid, population):
    """Seeded searches driven sharded visit the sequential engine's populations
    and reproduce its rankings, best gene and history curves."""
    space = get_design_space("u3cu3")
    evolution_config = EvolutionConfig(
        iterations=2, population_size=population, parent_size=3,
        mutation_size=max(2, population - 5), crossover_size=2, seed=9,
    )

    def search(engine):
        evolution = EvolutionEngine(space, 4, yorktown, evolution_config)
        try:
            return evolution.search(
                population_score_fn=engine.qml_population_scorer(tiny_dataset, 4)
            )
        finally:
            engine.close()

    sequential, _ = reference_engines(yorktown, u3cu3_supercircuit, mode, n_valid)
    reference = search(sequential)
    sharded = search(
        sharded_engine(yorktown, u3cu3_supercircuit, mode, n_valid, workers=2)
    )

    assert sharded.best.gene() == reference.best.gene()
    assert sharded.evaluated == reference.evaluated
    assert sharded.best_score == pytest.approx(reference.best_score, abs=ATOL)
    for row_s, row_r in zip(sharded.history, reference.history):
        for key in ("best_score", "population_best", "population_mean"):
            assert row_s[key] == pytest.approx(row_r[key], abs=ATOL)


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("mode,n_valid", [("noise_sim", 2), ("success_rate", 6)])
def test_same_population_twice_identical_floats(u3cu3_supercircuit, yorktown,
                                                tiny_dataset, mode, n_valid):
    """Warm re-evaluation and fresh engines at any worker count agree exactly."""
    space = get_design_space("u3cu3")
    candidates = make_population(space, 4, yorktown, seed=21, size=5)
    runs = {}
    for workers in WORKER_COUNTS:
        engine = sharded_engine(yorktown, u3cu3_supercircuit, mode, n_valid, workers)
        try:
            first = engine.evaluate_qml_population(candidates, tiny_dataset, 4)
            second = engine.evaluate_qml_population(candidates, tiny_dataset, 4)
        finally:
            engine.close()
        assert first == second, f"workers={workers} not reproducible"
        runs[workers] = first
    assert runs[1] == runs[2] == runs[4]


def test_shard_planning_is_a_pure_function_of_the_population(u3cu3_supercircuit,
                                                             yorktown):
    space = get_design_space("u3cu3")
    candidates = make_population(space, 4, yorktown, seed=4, size=6)
    engine = sharded_engine(yorktown, u3cu3_supercircuit, "success_rate", 4, workers=2)
    try:
        groups = engine._plan_groups(candidates)
        reordered = engine._plan_groups(list(reversed(candidates)))
        # assignment ignores population order (indices differ, partition not)
        plan = [[key for key, _ in shard] for shard in engine._plan_shards(groups)]
        plan_reordered = [
            [key for key, _ in shard] for shard in engine._plan_shards(reordered)
        ]
        assert plan == plan_reordered
        assert sum(len(shard) for shard in plan) == len(groups)
        # shard_min_group_size collapses tiny populations to in-process
        engine.shard_min_group_size = len(candidates) + 1
        assert len(engine._plan_shards(groups)) == 1
    finally:
        engine.close()


def test_workers_one_never_creates_a_pool(u3cu3_supercircuit, yorktown, tiny_dataset):
    space = get_design_space("u3cu3")
    candidates = make_population(space, 4, yorktown, seed=2, size=4)
    engine = sharded_engine(yorktown, u3cu3_supercircuit, "success_rate", 4, workers=1)
    engine.evaluate_qml_population(candidates, tiny_dataset, 4)
    assert all(executor is None for executor in engine._executors)
    assert engine.scheduler_stats.in_process_generations == 1
    engine.close()


def test_population_engine_dispatches_on_workers(yorktown, u3cu3_supercircuit):
    sharded = PerformanceEstimator(
        yorktown, EstimatorConfig(workers=2)
    ).population_engine(u3cu3_supercircuit)
    try:
        assert isinstance(sharded, ShardedExecutionEngine)
    finally:
        sharded.close()
    in_process = PerformanceEstimator(
        yorktown, EstimatorConfig(workers=1)
    ).population_engine(u3cu3_supercircuit)
    assert isinstance(in_process, ExecutionEngine)
    assert not isinstance(in_process, ShardedExecutionEngine)


def test_sequential_engine_config_stays_in_process(u3cu3_supercircuit, yorktown,
                                                   tiny_dataset):
    """engine="sequential" + workers>1 replays the seed path, never a pool."""
    space = get_design_space("u3cu3")
    candidates = make_population(space, 4, yorktown, seed=3, size=3)
    engine = sharded_engine(
        yorktown, u3cu3_supercircuit, "success_rate", 4, workers=2,
        engine="sequential",
    )
    sequential, _ = reference_engines(yorktown, u3cu3_supercircuit, "success_rate", 4)
    assert engine.evaluate_qml_population(candidates, tiny_dataset, 4) == \
        sequential.evaluate_qml_population(candidates, tiny_dataset, 4)
    assert all(executor is None for executor in engine._executors)
    assert engine.scheduler_stats.generations == 0
    engine.close()


# ---------------------------------------------------------------------------
# Fault injection / resilient recovery
# ---------------------------------------------------------------------------


def test_flaky_worker_recovers_without_degrading(u3cu3_supercircuit, yorktown,
                                                 tiny_dataset):
    """A transient task error is confirmed in-process — same scores, no
    whole-generation degradation."""
    space = get_design_space("u3cu3")
    candidates = make_population(space, 4, yorktown, seed=13, size=4)

    healthy = sharded_engine(yorktown, u3cu3_supercircuit, "noise_sim", 2, workers=2)
    try:
        reference = healthy.evaluate_qml_population(candidates, tiny_dataset, 4)
    finally:
        healthy.close()

    engine = sharded_engine(yorktown, u3cu3_supercircuit, "noise_sim", 2, workers=2)
    engine.fault_plan = FaultPlan.parse("flaky@task_receive[shard=0,gen=0]")
    try:
        with pytest.warns(RuntimeWarning, match="recovered from worker faults"):
            recovered = engine.evaluate_qml_population(candidates, tiny_dataset, 4)
        # never a wrong score: the recovered generation is bit-for-bit the
        # healthy sharded result
        assert recovered == reference
        assert engine.scheduler_stats.worker_failures == 1
        assert engine.scheduler_stats.task_error_confirmations == 1
        assert engine.scheduler_stats.flaky_recoveries == 1
        assert engine.scheduler_stats.degraded_generations == 0
        assert engine.scheduler_stats.sharded_generations == 1

        # next generation is fault-free and shards cleanly
        again = engine.evaluate_qml_population(candidates, tiny_dataset, 4)
        assert again == reference
        assert engine.scheduler_stats.sharded_generations == 2
    finally:
        engine.close()


def test_crashed_worker_retries_on_survivors(u3cu3_supercircuit, yorktown,
                                             tiny_dataset):
    """A crashed pool's shard is rebalanced onto survivors — same scores,
    retry counters > 0, no degradation."""
    space = get_design_space("u3cu3")
    candidates = make_population(space, 4, yorktown, seed=13, size=4)

    healthy = sharded_engine(yorktown, u3cu3_supercircuit, "noise_sim", 2, workers=2)
    try:
        reference = healthy.evaluate_qml_population(candidates, tiny_dataset, 4)
    finally:
        healthy.close()

    engine = sharded_engine(yorktown, u3cu3_supercircuit, "noise_sim", 2, workers=2)
    engine.fault_plan = FaultPlan.parse("crash@task_receive[shard=0,gen=0]")
    try:
        with pytest.warns(RuntimeWarning, match="recovered from worker faults"):
            recovered = engine.evaluate_qml_population(candidates, tiny_dataset, 4)
        assert recovered == reference
        stats = engine.scheduler_stats
        assert stats.worker_failures >= 1
        assert stats.retried_shards >= 1
        assert stats.degraded_generations == 0
        assert stats.sharded_generations == 1
    finally:
        engine.close()


def test_exhausted_retries_degrade_with_exact_scores(u3cu3_supercircuit, yorktown,
                                                     tiny_dataset):
    """When every retry round fails, the last-resort degradation still
    produces the exact sequential scores."""
    space = get_design_space("u3cu3")
    candidates = make_population(space, 4, yorktown, seed=17, size=4)
    sequential, _ = reference_engines(yorktown, u3cu3_supercircuit, "success_rate", 6)
    seq = sequential.evaluate_qml_population(candidates, tiny_dataset, 4)
    engine = sharded_engine(
        yorktown, u3cu3_supercircuit, "success_rate", 6, workers=2,
        shard_retries=1, shard_backoff_seconds=0.0,
    )
    engine.fault_plan = FaultPlan.parse("crash@task_receive[times=99]")
    try:
        with pytest.warns(RuntimeWarning, match="degraded to the in-process path"):
            degraded = engine.evaluate_qml_population(candidates, tiny_dataset, 4)
        np.testing.assert_allclose(degraded, seq, rtol=0, atol=ATOL)
        stats = engine.scheduler_stats
        assert stats.worker_failures >= 2
        assert stats.degraded_generations == 1
        assert stats.sharded_generations == 0

        # pools respawn after the failed generation: a fault-free follow-up
        # generation shards again and still agrees exactly
        engine.fault_plan = FaultPlan.parse(None)
        recovered = engine.evaluate_qml_population(candidates, tiny_dataset, 4)
        np.testing.assert_allclose(recovered, seq, rtol=0, atol=ATOL)
        assert engine.scheduler_stats.sharded_generations == 1
    finally:
        engine.close()


def test_reproducing_task_error_is_reraised(u3cu3_supercircuit, yorktown,
                                            tiny_dataset, monkeypatch):
    """A task error that reproduces in the confirmation run is a real bug
    and surfaces instead of silently degrading."""
    space = get_design_space("u3cu3")
    candidates = make_population(space, 4, yorktown, seed=13, size=4)
    engine = sharded_engine(yorktown, u3cu3_supercircuit, "noise_sim", 2, workers=2)

    def broken(*args, **kwargs):
        raise ValueError("deterministic evaluation bug")

    try:
        # break the worker-side evaluation AND the parent's confirmation path
        monkeypatch.setattr(
            ExecutionEngine, "evaluate_qml_population", broken
        )
        with pytest.raises(ValueError, match="deterministic evaluation bug"):
            engine.evaluate_qml_population(candidates, tiny_dataset, 4)
    finally:
        engine.close()


# ---------------------------------------------------------------------------
# Cache merge-back accounting
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("mode,n_valid", [("noise_sim", 2), ("success_rate", 6)])
def test_cache_and_stats_merge_accounting(u3cu3_supercircuit, yorktown, tiny_dataset,
                                          mode, n_valid):
    """Merged worker deltas reproduce the in-process run's counters exactly,
    and the adopted entries leave the parent caches warm."""
    space = get_design_space("u3cu3")
    candidates = make_population(space, 4, yorktown, seed=29, size=5)

    counters = {}
    engines = {}
    for workers in (1, 2):
        engine = sharded_engine(yorktown, u3cu3_supercircuit, mode, n_valid, workers)
        engine.evaluate_qml_population(candidates, tiny_dataset, 4)
        estimator = engine.estimator
        counters[workers] = {
            "num_queries": estimator.num_queries,
            "backend_executions": estimator._backend.executions,
            "bound": estimator.transpile_cache.stats.copy(),
            "parametric": estimator.parametric_transpile_cache.stats.copy(),
            "engine": engine.stats.copy(),
        }
        engines[workers] = engine

    try:
        in_process, sharded = counters[1], counters[2]
        assert sharded["num_queries"] == in_process["num_queries"] == len(candidates)
        assert sharded["backend_executions"] == in_process["backend_executions"]
        # cache counters merged from worker deltas == in-process counters
        # (compile/bind *timings* are machine-dependent, counters are not)
        for name in ("bound", "parametric"):
            merged = vars(sharded[name])
            local = vars(in_process[name])
            for field_name, value in merged.items():
                if field_name.endswith("_seconds"):
                    continue
                assert value == local[field_name], (name, field_name)
        # population-level counters counted exactly once per generation
        assert sharded["engine"].populations == 1
        assert sharded["engine"].candidates == len(candidates)
        assert sharded["engine"].config_groups == in_process["engine"].config_groups

        # adopted entries: the parent caches now serve the same population
        # without a single new compilation
        engine = engines[2]
        stats = engine.scheduler_stats
        assert stats.adopted_bound_entries + stats.adopted_structures > 0
        estimator = engine.estimator
        parametric = estimator.parametric_transpile_cache
        assert len(parametric) == stats.adopted_structures
        compiled_before = (
            parametric.stats.variants_compiled,
            estimator.transpile_cache.stats.misses,
        )
        replay = ExecutionEngine(estimator, u3cu3_supercircuit)
        replay_scores = replay.evaluate_qml_population(candidates, tiny_dataset, 4)
        assert (
            parametric.stats.variants_compiled,
            estimator.transpile_cache.stats.misses,
        ) == compiled_before
        np.testing.assert_allclose(
            replay_scores,
            engines[1].evaluate_qml_population(candidates, tiny_dataset, 4),
            rtol=0, atol=ATOL,
        )
    finally:
        for engine in engines.values():
            engine.close()
