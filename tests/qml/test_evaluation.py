"""Tests for noisy QNN evaluation and parameter-shift training."""

import numpy as np
import pytest

from repro.devices.backend import QuantumBackend
from repro.devices.calibration import CalibrationTargets, generate_calibration
from repro.devices.library import Device, get_device
from repro.devices.topology import line_topology
from repro.qml.encoders import ENCODER_LIBRARY
from repro.qml.evaluation import (
    evaluate_on_backend,
    make_parameter_shift_gradient_fn,
    noisy_expectations,
)
from repro.qml.qnn import QNNModel
from repro.qml.training import TrainConfig, train_qnn


def _ideal_device(n_qubits=4) -> Device:
    topology = line_topology(n_qubits, name="ideal-line")
    targets = CalibrationTargets(0.0, 0.0, 0.0, 1e9, 1e9, 0.0)
    return Device("ideal", topology, generate_calibration(topology, targets, 0), 32)


def _small_model(n_classes=2):
    model = QNNModel(4, n_classes, encoder=ENCODER_LIBRARY["image_4x4_4q"])
    for qubit in range(4):
        model.add_trainable("ry", (qubit,))
    for qubit in range(3):
        model.add_trainable("rzz", (qubit, qubit + 1))
    return model


def test_noisy_expectations_match_noise_free_on_ideal_device(tiny_binary_dataset):
    model = _small_model()
    weights = model.init_weights(np.random.default_rng(0))
    x = tiny_binary_dataset.x_test[:4]
    backend = QuantumBackend(_ideal_device(), shots=0)
    measured = noisy_expectations(model, weights, x, backend)
    exact = model.forward(weights, x).expectations
    assert np.allclose(measured, exact, atol=1e-7)


def test_evaluate_on_backend_returns_metrics(tiny_binary_dataset):
    model = _small_model()
    weights = model.init_weights(np.random.default_rng(1))
    backend = QuantumBackend(get_device("yorktown"), shots=256, seed=0)
    metrics = evaluate_on_backend(
        model, weights, tiny_binary_dataset.x_test, tiny_binary_dataset.y_test,
        backend, max_samples=6,
    )
    assert set(metrics) == {"loss", "accuracy", "n_samples"}
    assert metrics["n_samples"] == 6
    assert 0.0 <= metrics["accuracy"] <= 1.0


def test_noise_contracts_expectation_magnitudes(tiny_binary_dataset):
    """Device noise pulls measured Z expectations toward zero on average."""
    model = _small_model()
    config = TrainConfig(epochs=6, batch_size=20, learning_rate=0.05, seed=0)
    result = train_qnn(model, tiny_binary_dataset, config)
    x = tiny_binary_dataset.x_test[:8]
    ideal = noisy_expectations(
        model, result.weights, x, QuantumBackend(_ideal_device(), shots=0)
    )
    noisy = noisy_expectations(
        model, result.weights, x,
        QuantumBackend(get_device("yorktown"), shots=0, seed=0),
    )
    assert np.abs(noisy).mean() < np.abs(ideal).mean() + 1e-9


def test_parameter_shift_gradient_matches_adjoint(tiny_binary_dataset):
    model = _small_model()
    weights = model.init_weights(np.random.default_rng(3))
    x = tiny_binary_dataset.x_train[:5]
    y = tiny_binary_dataset.y_train[:5]
    loss_adjoint, grads_adjoint, _ = model.loss_and_gradient(weights, x, y)
    gradient_fn = make_parameter_shift_gradient_fn(backend=None)
    loss_shift, grads_shift = gradient_fn(model, weights, x, y)
    assert loss_shift == pytest.approx(loss_adjoint)
    assert np.allclose(grads_shift, grads_adjoint, atol=1e-6)


def test_parameter_shift_training_on_ideal_backend_reduces_loss(tiny_binary_dataset):
    """Table V: training with parameter shift on the device is feasible."""
    model = _small_model()
    backend = QuantumBackend(_ideal_device(), shots=0)
    gradient_fn = make_parameter_shift_gradient_fn(backend=backend, shots=0)
    small = tiny_binary_dataset
    config = TrainConfig(epochs=2, batch_size=4, learning_rate=0.1, seed=0,
                         shuffle=False)
    weights = model.init_weights(np.random.default_rng(4))
    start, _, _ = model.loss_and_gradient(weights, small.x_train[:8], small.y_train[:8])
    # restrict the dataset so the on-device loop stays fast
    from repro.qml.datasets import Dataset

    reduced = Dataset(
        name="reduced",
        x_train=small.x_train[:8], y_train=small.y_train[:8],
        x_valid=small.x_valid[:4], y_valid=small.y_valid[:4],
        x_test=small.x_test[:4], y_test=small.y_test[:4],
    )
    result = train_qnn(model, reduced, config, initial_weights=weights,
                       gradient_fn=gradient_fn)
    end, _, _ = model.loss_and_gradient(
        result.weights, reduced.x_train, reduced.y_train
    )
    assert end < start + 1e-9
