"""Tests for encoders, datasets, the QNN model and its training loop."""

import numpy as np
import pytest

from repro.qml.datasets import TASK_SPECS, load_task, make_classification_dataset
from repro.qml.encoders import (
    ENCODER_LIBRARY,
    attach_encoder,
    build_encoder_ops,
    encoder_for_task,
)
from repro.qml.qnn import QNNModel, readout_matrix
from repro.qml.training import TrainConfig, evaluate_noise_free, train_qnn
from repro.quantum.autodiff import finite_difference_gradient
from repro.quantum.circuit import ParameterizedCircuit
from repro.utils.stats import nll_loss, softmax


class TestEncoders:
    def test_library_feature_counts_match_table1(self):
        assert ENCODER_LIBRARY["image_4x4_4q"].n_features == 16
        assert ENCODER_LIBRARY["image_6x6_10q"].n_features == 36
        assert ENCODER_LIBRARY["vowel_10d_4q"].n_features == 10

    def test_build_encoder_ops_consumes_features_sequentially(self):
        ops = build_encoder_ops(ENCODER_LIBRARY["image_4x4_4q"])
        assert len(ops) == 16
        feature_indices = [op.slots[0].value for op in ops]
        assert feature_indices == list(range(16))
        assert all(op.uses_input for op in ops)

    def test_encoder_for_task(self):
        assert encoder_for_task("MNIST-4").n_qubits == 4
        assert encoder_for_task("mnist-10").n_qubits == 10
        assert encoder_for_task("vowel-4").n_features == 10
        with pytest.raises(KeyError):
            encoder_for_task("cifar")

    def test_attach_encoder_checks_register_size(self):
        pcirc = ParameterizedCircuit(2)
        with pytest.raises(ValueError):
            attach_encoder(pcirc, ENCODER_LIBRARY["image_4x4_4q"])


class TestDatasets:
    def test_all_task_specs_load(self):
        for task in TASK_SPECS:
            dataset = load_task(task, n_train=30, n_valid=10, n_test=10)
            assert dataset.n_classes == TASK_SPECS[task].n_classes
            assert dataset.n_features == TASK_SPECS[task].n_features
            assert dataset.x_train.shape == (30, dataset.n_features)

    def test_features_scaled_to_angle_range(self):
        dataset = load_task("mnist-4", n_train=40, n_valid=10, n_test=10)
        assert dataset.x_train.min() >= 0.0
        assert dataset.x_train.max() <= np.pi + 1e-9

    def test_deterministic_generation(self):
        a = load_task("fashion-2", n_train=20, n_valid=5, n_test=5)
        b = load_task("fashion-2", n_train=20, n_valid=5, n_test=5)
        assert np.allclose(a.x_train, b.x_train)
        assert np.array_equal(a.y_train, b.y_train)

    def test_subsample_test(self):
        dataset = load_task("mnist-2", n_train=20, n_valid=5, n_test=50)
        smaller = dataset.subsample_test(10)
        assert len(smaller.y_test) == 10

    def test_unknown_task_raises(self):
        with pytest.raises(KeyError):
            load_task("imagenet")

    def test_classes_are_learnable_by_linear_probe(self):
        """The synthetic classes must be separable enough to train against."""
        dataset = make_classification_dataset(
            "probe", n_classes=2, n_features=16, n_train=200, n_valid=50,
            n_test=50, image_side=4, seed=3,
        )
        x, y = dataset.x_train, dataset.y_train
        centroids = np.stack([x[y == c].mean(axis=0) for c in range(2)])
        distances = ((dataset.x_test[:, None, :] - centroids[None]) ** 2).sum(-1)
        accuracy = (distances.argmin(axis=1) == dataset.y_test).mean()
        assert accuracy > 0.7


class TestQNN:
    def _small_model(self, n_classes=4):
        encoder = ENCODER_LIBRARY["image_4x4_4q"]
        model = QNNModel(4, n_classes, encoder=encoder)
        for qubit in range(4):
            model.add_trainable("u3", (qubit,))
        for qubit in range(4):
            model.add_trainable("cu3", (qubit, (qubit + 1) % 4))
        return model

    def test_readout_matrix_shapes(self):
        assert readout_matrix(4, 4).shape == (4, 4)
        assert np.allclose(readout_matrix(4, 4), np.eye(4))
        two = readout_matrix(4, 2)
        assert np.allclose(two, [[1, 1, 0, 0], [0, 0, 1, 1]])
        with pytest.raises(ValueError):
            readout_matrix(2, 4)

    def test_forward_shapes(self, tiny_dataset):
        model = self._small_model()
        weights = model.init_weights(np.random.default_rng(0))
        out = model.forward(weights, tiny_dataset.x_train[:8])
        assert out.expectations.shape == (8, 4)
        assert out.logits.shape == (8, 4)

    def test_loss_and_gradient_matches_finite_difference(self, tiny_dataset):
        model = self._small_model()
        rng = np.random.default_rng(1)
        weights = model.init_weights(rng)
        x = tiny_dataset.x_train[:6]
        y = tiny_dataset.y_train[:6]

        def loss_fn(w):
            out = model.forward(w, x)
            return nll_loss(softmax(out.logits), y)

        loss, grads, _ = model.loss_and_gradient(weights, x, y)
        numeric = finite_difference_gradient(loss_fn, weights, epsilon=1e-5)
        assert loss == pytest.approx(loss_fn(weights))
        assert np.allclose(grads, numeric, atol=1e-5)

    def test_training_reduces_loss(self, tiny_binary_dataset):
        encoder = ENCODER_LIBRARY["image_4x4_4q"]
        model = QNNModel(4, 2, encoder=encoder)
        for qubit in range(4):
            model.add_trainable("ry", (qubit,))
        for qubit in range(3):
            model.add_trainable("rzz", (qubit, qubit + 1))
        for qubit in range(4):
            model.add_trainable("ry", (qubit,))
        config = TrainConfig(epochs=8, batch_size=20, learning_rate=0.05, seed=0)
        initial_weights = model.init_weights(np.random.default_rng(0))
        start = evaluate_noise_free(
            model, initial_weights, tiny_binary_dataset.x_train,
            tiny_binary_dataset.y_train,
        )
        result = train_qnn(model, tiny_binary_dataset, config,
                           initial_weights=initial_weights)
        end = evaluate_noise_free(
            model, result.weights, tiny_binary_dataset.x_train,
            tiny_binary_dataset.y_train,
        )
        assert end["loss"] < start["loss"]
        assert len(result.history) == 8

    def test_weight_mask_freezes_parameters(self, tiny_binary_dataset):
        model = self._small_model(n_classes=2)
        weights = model.init_weights(np.random.default_rng(2))
        mask = np.zeros(model.num_weights, dtype=bool)
        mask[:4] = True
        config = TrainConfig(epochs=2, batch_size=16, seed=1)
        result = train_qnn(model, tiny_binary_dataset, config,
                           initial_weights=weights, weight_mask=mask)
        assert np.allclose(result.weights[~mask], weights[~mask])
        assert not np.allclose(result.weights[mask], weights[mask])

    def test_from_circuit_wrapper(self):
        pcirc = ParameterizedCircuit(4)
        pcirc.add_trainable("ry", (0,))
        model = QNNModel.from_circuit(pcirc, 2)
        assert model.num_weights == 1
        assert model.readout.shape == (2, 4)
