"""Tests for optimizers, statistics helpers, RNG handling and tables."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.optimizers import Adam, ConstantSchedule, CosineWarmupSchedule, SGD
from repro.utils.rng import derive_rng, ensure_rng, seeded_rng
from repro.utils.stats import (
    accuracy,
    cross_entropy_with_logits,
    nll_loss,
    pearson_correlation,
    softmax,
    spearman_correlation,
)
from repro.utils.tables import format_table, print_table


class TestSchedules:
    def test_constant_schedule(self):
        schedule = ConstantSchedule(0.1)
        assert schedule.lr(0) == schedule.lr(100) == 0.1

    def test_cosine_warmup_shape(self):
        schedule = CosineWarmupSchedule(base_lr=1.0, total_steps=100, warmup_steps=10)
        assert schedule.lr(0) < schedule.lr(9)
        assert schedule.lr(10) == pytest.approx(1.0)
        assert schedule.lr(100) == pytest.approx(0.0, abs=1e-9)
        assert schedule.lr(55) < schedule.lr(20)

    def test_warmup_clamped_to_total(self):
        schedule = CosineWarmupSchedule(base_lr=1.0, total_steps=5, warmup_steps=50)
        assert schedule.warmup_steps == 5

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            CosineWarmupSchedule(1.0, total_steps=0)
        with pytest.raises(ValueError):
            CosineWarmupSchedule(1.0, total_steps=10, warmup_steps=-1)


class TestOptimizers:
    def test_adam_minimizes_quadratic(self):
        optimizer = Adam(lr=0.1, weight_decay=0.0)
        params = np.array([5.0, -3.0])
        for _ in range(200):
            grads = 2 * params
            params = optimizer.step(params, grads)
        assert np.allclose(params, 0.0, atol=1e-2)

    def test_adam_mask_freezes_parameters(self):
        optimizer = Adam(lr=0.1, weight_decay=0.0)
        params = np.array([1.0, 1.0])
        mask = np.array([True, False])
        updated = optimizer.step(params, np.array([1.0, 1.0]), mask=mask)
        assert updated[1] == pytest.approx(1.0)
        assert updated[0] != pytest.approx(1.0)

    def test_sgd_with_momentum_minimizes_quadratic(self):
        optimizer = SGD(lr=0.05, momentum=0.5, weight_decay=0.0)
        params = np.array([2.0])
        for _ in range(200):
            params = optimizer.step(params, 2 * params)
        assert abs(params[0]) < 1e-2

    def test_adam_reset(self):
        optimizer = Adam(lr=0.1)
        optimizer.step(np.ones(2), np.ones(2))
        optimizer.reset()
        assert optimizer._step == 0


class TestStats:
    def test_softmax_rows_sum_to_one(self):
        logits = np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]])
        probs = softmax(logits)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert probs[1, 0] == pytest.approx(1 / 3)

    def test_nll_and_cross_entropy_consistency(self):
        logits = np.array([[2.0, 0.0], [0.0, 2.0]])
        labels = np.array([0, 1])
        loss, grad = cross_entropy_with_logits(logits, labels)
        assert loss == pytest.approx(nll_loss(softmax(logits), labels))
        assert grad.shape == logits.shape
        assert np.allclose(grad.sum(axis=1), 0.0, atol=1e-12)

    def test_accuracy(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        labels = np.array([0, 1, 1])
        assert accuracy(logits, labels) == pytest.approx(2 / 3)

    def test_pearson_perfect_correlation(self):
        x = np.arange(10.0)
        assert pearson_correlation(x, 2 * x + 1) == pytest.approx(1.0)
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)

    def test_spearman_monotone_invariance(self):
        x = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        y = np.exp(x)  # monotone transform
        assert spearman_correlation(x, y) == pytest.approx(1.0)

    def test_spearman_handles_ties(self):
        x = np.array([1.0, 1.0, 2.0, 3.0])
        y = np.array([1.0, 1.0, 2.0, 3.0])
        assert spearman_correlation(x, y) == pytest.approx(1.0)

    def test_correlation_input_validation(self):
        with pytest.raises(ValueError):
            pearson_correlation(np.array([1.0]), np.array([1.0]))

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(-10, 10, allow_nan=False), min_size=3, max_size=20))
    def test_spearman_bounded(self, values):
        x = np.array(values)
        rng = np.random.default_rng(0)
        y = rng.normal(size=len(values))
        rho = spearman_correlation(x, y)
        assert -1.0 - 1e-9 <= rho <= 1.0 + 1e-9


class TestRng:
    def test_ensure_rng_accepts_seed_generator_and_none(self):
        assert isinstance(ensure_rng(None), np.random.Generator)
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen
        a = ensure_rng(42).integers(0, 100, 5)
        b = seeded_rng(42).integers(0, 100, 5)
        assert np.array_equal(a, b)

    def test_derive_rng_streams_differ(self):
        base = seeded_rng(0)
        a = derive_rng(base, 1).integers(0, 1000, 5)
        base = seeded_rng(0)
        b = derive_rng(base, 2).integers(0, 1000, 5)
        assert not np.array_equal(a, b)


class TestTables:
    def test_format_table_alignment_and_title(self):
        text = format_table(["name", "value"], [["a", 1.23456], ["bb", 2]],
                            title="Demo")
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "1.2346" in text
        assert "bb" in text

    def test_format_table_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_print_table_smoke(self, capsys):
        print_table(["col"], [[1]])
        captured = capsys.readouterr()
        assert "col" in captured.out
