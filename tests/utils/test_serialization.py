"""Tests for search-artifact serialization."""

import numpy as np
import pytest

from repro.core.design_space import get_design_space
from repro.core.subcircuit import SubCircuitConfig
from repro.utils.serialization import (
    load_searched_circuit,
    save_searched_circuit,
    searched_circuit_from_dict,
    searched_circuit_to_dict,
)


def _sample_config():
    space = get_design_space("u3cu3")
    return space, SubCircuitConfig(3, tuple([(2, 3)] * space.max_blocks))


def test_dict_roundtrip_preserves_everything():
    space, config = _sample_config()
    weights = np.linspace(-1.0, 1.0, config.num_parameters(space))
    keep = np.array([i % 2 == 0 for i in range(weights.size)])
    payload = searched_circuit_to_dict(
        "u3cu3", 4, config, (3, 1, 0, 2), weights=weights, keep_mask=keep,
        metadata={"device": "yorktown", "accuracy": 0.89},
    )
    loaded_space, n_qubits, loaded_config, mapping, loaded_weights, loaded_keep, meta = (
        searched_circuit_from_dict(payload)
    )
    assert loaded_space.name == "u3cu3"
    assert n_qubits == 4
    assert loaded_config == config
    assert mapping == (3, 1, 0, 2)
    assert np.allclose(loaded_weights, weights)
    assert np.array_equal(loaded_keep, keep)
    assert meta["device"] == "yorktown"


def test_file_roundtrip(tmp_path):
    space, config = _sample_config()
    path = save_searched_circuit(
        tmp_path / "artifacts" / "searched.json",
        space_name="u3cu3", n_qubits=4, config=config, mapping=(0, 1, 2, 3),
    )
    assert path.exists()
    loaded_space, n_qubits, loaded_config, mapping, weights, keep, meta = (
        load_searched_circuit(path)
    )
    assert loaded_config == config
    assert weights is None and keep is None
    assert meta == {}


def test_invalid_space_rejected():
    _space, config = _sample_config()
    with pytest.raises(KeyError):
        searched_circuit_to_dict("nonsense", 4, config, (0, 1, 2, 3))


def test_optional_fields_omitted_when_absent():
    _space, config = _sample_config()
    payload = searched_circuit_to_dict("u3cu3", 4, config, (0, 1, 2, 3))
    assert "weights" not in payload
    assert "keep_mask" not in payload
    assert "metadata" not in payload


def test_loaded_config_rebuilds_circuit():
    """A deserialized config can be turned back into a runnable circuit."""
    from repro.core.supercircuit import SuperCircuit

    space, config = _sample_config()
    payload = searched_circuit_to_dict("u3cu3", 4, config, (0, 1, 2, 3))
    loaded_space, n_qubits, loaded_config, _mapping, _w, _k, _m = (
        searched_circuit_from_dict(payload)
    )
    supercircuit = SuperCircuit(loaded_space, n_qubits, seed=0)
    circuit, mapping_idx = supercircuit.build_standalone_circuit(
        loaded_config, include_encoder=False
    )
    assert circuit.num_weights == loaded_config.num_parameters(loaded_space)
    assert len(mapping_idx) == circuit.num_weights
