"""CLI surface, exit-code policy, suppression parsing, and the self-clean
gate the CI lint lane relies on."""

import json
from pathlib import Path

import pytest
import repro
from repro.analysis import available_checkers
from repro.analysis.__main__ import main
from repro.analysis.suppressions import is_suppressed, parse_suppressions

SRC_REPRO = Path(repro.__file__).parent


# -- the CI gate ---------------------------------------------------------------


def test_src_repro_lints_clean_strict(capsys):
    """`python -m repro.analysis --strict` on src/repro exits 0 — the exact
    command the CI lint lane runs."""
    assert main([str(SRC_REPRO), "--strict"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s), 0 warning(s)" in out


def test_default_path_is_the_repro_package(capsys):
    assert main(["--strict"]) == 0
    out = capsys.readouterr().out
    assert "repro.analysis:" in out


# -- exit codes ----------------------------------------------------------------


def test_fixture_violations_gate(fixtures_dir, capsys):
    assert main([str(fixtures_dir / "fixture_determinism.py")]) == 1


def test_warnings_gate_only_under_strict(fixtures_dir, tmp_path, capsys):
    warning_only = tmp_path / "warn.py"
    warning_only.write_text(
        "import time\n"
        "def f(values):\n"
        "    for v in set(values):\n"
        "        print(v)\n"
    )
    assert main([str(warning_only)]) == 0
    assert main([str(warning_only), "--strict"]) == 1


def test_missing_path_is_usage_error(capsys):
    assert main(["/nonexistent/path/module.py"]) == 2
    assert "repro.analysis:" in capsys.readouterr().err


def test_unknown_rule_is_usage_error(capsys):
    assert main([str(SRC_REPRO), "--select", "no-such-rule"]) == 2
    assert "unknown rule" in capsys.readouterr().err


# -- output formats and filters ------------------------------------------------


def test_json_format(fixtures_dir, capsys):
    main([str(fixtures_dir / "fixture_determinism.py"), "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert payload["errors"] > 0
    assert payload["modules_checked"] == 1
    finding = payload["findings"][0]
    assert {"path", "line", "rule", "severity", "message"} <= set(finding)


def test_select_restricts_rules(fixtures_dir, capsys):
    main(
        [
            str(fixtures_dir / "fixture_determinism.py"),
            "--format",
            "json",
            "--select",
            "det-wall-clock",
        ]
    )
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"]
    assert {f["rule"] for f in payload["findings"]} == {"det-wall-clock"}


def test_checker_filter(fixtures_dir, capsys):
    main(
        [
            str(fixtures_dir / "fixture_determinism.py"),
            "--checker",
            "pickle-safety",
            "--format",
            "json",
        ]
    )
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"] == []
    assert payload["checkers"] == ["pickle-safety"]


def test_show_suppressed(fixtures_dir, capsys):
    main([str(fixtures_dir / "fixture_determinism.py"), "--show-suppressed"])
    assert "[suppressed]" in capsys.readouterr().out


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in (
        "det-global-rng",
        "det-unpinned-rng",
        "det-wall-clock",
        "det-monotonic-flow",
        "det-unordered-iter",
        "pickle-unsafe-field",
        "pickle-unsafe-attr",
        "backend-missing-name",
        "backend-missing-capabilities",
        "backend-missing-run-group",
        "backend-bad-signature",
    ):
        assert rule in out
    for checker in available_checkers():
        assert checker in out


# -- suppression parsing -------------------------------------------------------


def test_trailing_suppression_covers_own_line():
    table, _ = parse_suppressions("x = 1  # repro: ignore[det-wall-clock]\n")
    assert is_suppressed(table, 1, "det-wall-clock")
    assert not is_suppressed(table, 1, "det-global-rng")
    assert not is_suppressed(table, 2, "det-wall-clock")


def test_standalone_suppression_covers_next_line():
    table, _ = parse_suppressions(
        "# repro: ignore[det-monotonic-flow] -- timing only\nx = f()\n"
    )
    assert is_suppressed(table, 2, "det-monotonic-flow")
    assert not is_suppressed(table, 3, "det-monotonic-flow")


def test_wildcard_suppression_covers_all_rules():
    table, _ = parse_suppressions("x = 1  # repro: ignore[*]\n")
    assert is_suppressed(table, 1, "det-wall-clock")
    assert is_suppressed(table, 1, "pickle-unsafe-field")


def test_multi_rule_suppression():
    table, _ = parse_suppressions(
        "x = 1  # repro: ignore[det-wall-clock, det-global-rng]\n"
    )
    assert is_suppressed(table, 1, "det-wall-clock")
    assert is_suppressed(table, 1, "det-global-rng")
    assert not is_suppressed(table, 1, "det-unpinned-rng")


def test_boundary_marker_lines_are_collected():
    """A standalone marker covers the next line — the class (or first
    decorator) it annotates."""
    _, markers = parse_suppressions(
        "# repro: pickle-boundary\nclass _ShardThing:\n    pass\n"
    )
    assert 2 in markers


def test_marker_inside_string_is_not_a_marker():
    _, markers = parse_suppressions('text = "# repro: pickle-boundary"\n')
    assert not markers
