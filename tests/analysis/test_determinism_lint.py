"""The determinism checker fires exactly the rules its fixture tags."""

import pytest

from repro.analysis import Severity, analyze_paths


@pytest.fixture(scope="module")
def report(fixtures_dir):
    return analyze_paths(
        [fixtures_dir / "fixture_determinism.py"], checkers=["determinism"]
    )


def test_findings_match_expect_tags(report, expected_findings, fixtures_dir):
    expected = expected_findings(fixtures_dir / "fixture_determinism.py")
    actual = {(f.line, f.rule) for f in report.findings}
    assert actual == expected


def test_each_rule_fires_at_least_once(report):
    fired = {f.rule for f in report.findings}
    assert fired == {
        "det-global-rng",
        "det-unpinned-rng",
        "det-wall-clock",
        "det-monotonic-flow",
        "det-unordered-iter",
    }


def test_severities(report):
    by_rule = {f.rule: f.severity for f in report.findings}
    assert by_rule["det-global-rng"] == Severity.ERROR
    assert by_rule["det-unpinned-rng"] == Severity.ERROR
    assert by_rule["det-wall-clock"] == Severity.ERROR
    assert by_rule["det-monotonic-flow"] == Severity.WARNING
    assert by_rule["det-unordered-iter"] == Severity.WARNING


def test_suppressed_wall_clock_lands_in_suppressed(report):
    suppressed = {(f.line, f.rule) for f in report.suppressed}
    assert len(suppressed) == 1
    ((_, rule),) = suppressed
    assert rule == "det-wall-clock"


def test_findings_carry_fix_hints(report):
    assert all(f.hint for f in report.findings)


def test_pinned_streams_do_not_fire(report, fixtures_dir):
    source = (fixtures_dir / "fixture_determinism.py").read_text().splitlines()
    flagged_lines = {f.line for f in report.findings}
    for lineno, line in enumerate(source, start=1):
        code = line.split("#")[0]
        if "pinned" in code and "unpinned" not in code:
            assert lineno not in flagged_lines, line
