"""Fixture module with deliberate determinism violations.

Never imported — only parsed by the analysis suite.  Lines carrying a
violation end in a trailing ``expect`` tag naming the rule; the tests parse
the tags and assert the checker fires exactly those rules on exactly those
lines (and nothing else).
"""

import os
import random
import time
from datetime import datetime

import numpy as np
from numpy.random import default_rng


def global_draws(n):
    a = np.random.rand(n)  # expect: det-global-rng
    b = random.random()  # expect: det-global-rng
    np.random.seed(0)  # expect: det-global-rng
    random.shuffle([1, 2, 3])  # expect: det-global-rng
    c = os.urandom(8)  # expect: det-global-rng
    return a, b, c


def unpinned_streams():
    fresh = np.random.default_rng()  # expect: det-unpinned-rng
    bare = default_rng()  # expect: det-unpinned-rng
    legacy = random.Random()  # expect: det-unpinned-rng
    pinned = np.random.default_rng(1234)
    also_pinned = default_rng(seed=7)
    seeded_legacy = random.Random(99)
    return fresh, bare, legacy, pinned, also_pinned, seeded_legacy


def wall_clock_reads():
    stamp = time.time()  # expect: det-wall-clock
    now = datetime.now()  # expect: det-wall-clock
    return stamp, now


def monotonic_flows():
    start = time.perf_counter()
    if time.monotonic() > 10.0:  # expect: det-monotonic-flow
        return 0.0
    return time.perf_counter() - start  # expect: det-monotonic-flow


def unordered_consumption(values):
    for item in set(values):  # expect: det-unordered-iter
        _use(item)
    captured = list({1, 2, 3})  # expect: det-unordered-iter
    comprehended = [x for x in frozenset(values)]  # expect: det-unordered-iter
    ordered = sorted(set(values))
    keyed = {k: None for k in sorted(values)}
    return captured, comprehended, ordered, keyed


def justified_wall_clock():
    stamp = time.time()  # repro: ignore[det-wall-clock] -- suppression fixture
    return stamp


def _use(value):
    return value
