"""Fixture module with deliberate backend-protocol violations.

Never imported — only parsed by the analysis suite.  Mirrors the real
``repro.backends`` registration idiom (``@register_backend`` decorator and
the ``register_backend(Cls)`` call form); trailing ``expect`` tags name the
rule each class must fire.
"""

from repro.backends.base import BackendCapabilities, SimulationBackend
from repro.backends.registry import register_backend


@register_backend
class _NamelessBackend(SimulationBackend):  # expect: backend-missing-name
    capabilities = BackendCapabilities(noisy=False)

    def run_group(self, entry, jobs):
        return []


@register_backend
class _EmptyNameBackend(SimulationBackend):  # expect: backend-missing-name
    name = ""
    capabilities = BackendCapabilities(noisy=False)

    def run_group(self, entry, jobs):
        return []


@register_backend
class _NoCapsBackend(SimulationBackend):  # expect: backend-missing-capabilities
    name = "no-caps"

    def run_group(self, entry, jobs):
        return []


@register_backend
class _NoRunGroupBackend(SimulationBackend):  # expect: backend-missing-run-group
    name = "no-run-group"
    capabilities = BackendCapabilities(noisy=False)


@register_backend
class _BadSignatureBackend(SimulationBackend):
    name = "bad-signature"
    capabilities = BackendCapabilities(noisy=False)

    def run_group(self, entry):  # expect: backend-bad-signature
        return []

    def synchronize(self, hard):  # expect: backend-bad-signature
        pass


class _CallRegisteredBackend(SimulationBackend):  # expect: backend-missing-capabilities
    """Registered via the call form rather than the decorator."""

    name = "call-registered"

    def run_group(self, entry, jobs):
        return []


register_backend(_CallRegisteredBackend)


@register_backend
class _ConformingBackend(SimulationBackend):
    """Fully conforming: no findings."""

    name = "conforming"
    capabilities = BackendCapabilities(noisy=True, batched=True)

    def run_group(self, entry, jobs):
        return []

    def synchronize(self):
        pass

    def stats_delta(self):
        return {}


class _UnregisteredHelper:
    """Not registered — never checked, even with a bogus run_group."""

    def run_group(self):
        return []
