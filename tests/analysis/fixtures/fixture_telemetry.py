"""Deliberate telemetry-flow violations (and sanctioned shapes) for the lint.

Each violation line carries an expect tag consumed by
``tests/analysis/conftest.py``.  Untagged functions are the negative cases:
observation that stays observation must not fire.
"""

from repro import telemetry
from repro.utils import clock


def returns_clock_directly():
    return clock.monotonic()  # expect: telemetry-flow


def returns_derived_elapsed():
    started = clock.monotonic()
    elapsed = clock.monotonic() - started
    return elapsed  # expect: telemetry-flow


def returns_captured_span_buffer():
    tracer = telemetry.get_tracer()
    with tracer.capture() as spans:
        pass
    return spans  # expect: telemetry-flow


def returns_object_carrying_spans():
    payload = {}
    payload["spans"] = telemetry.get_tracer().records
    return payload  # expect: telemetry-flow


def returns_metric_value():
    score = telemetry.get_metrics().value("service_generations_total")
    return 1.0 + score  # expect: telemetry-flow


class Report:
    pass


def sanctioned_observational_report():
    report = Report()
    report.elapsed = clock.monotonic()
    return report  # repro: ignore[telemetry-flow] -- fixture: sanctioned observational report


def observes_without_returning():
    with telemetry.span("fixture.work", kind="negative"):
        result = 2 + 2
    return result


class StatsSink:
    def timed_lookup(self, table, key):
        # self-attribute accumulation is the sanctioned stats sink shape
        started = clock.monotonic()
        value = table[key]
        self.stats_seconds += clock.monotonic() - started
        return value
