"""Fixture module with deliberate pickle-safety violations.

Never imported — only parsed by the analysis suite.  Root payloads are
marked with ``# repro: pickle-boundary`` exactly like the real
``_ShardTask`` / ``_ShardResult``; trailing ``expect`` tags name the rule
each line must fire.
"""

import threading
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np


# repro: pickle-boundary
@dataclass
class _BadTask:
    index: int
    parameters: np.ndarray
    lock: threading.Lock  # expect: pickle-unsafe-field
    callback: Callable[[int], float]  # expect: pickle-unsafe-field
    pool: Optional[ProcessPoolExecutor]  # expect: pickle-unsafe-field
    nested: "_NestedPayload"
    helper: "_MemoHelper"
    lean: "_LeanHelper"
    justified: Callable  # repro: ignore[pickle-unsafe-field] -- suppression fixture


@dataclass
class _NestedPayload:
    """Reached through _BadTask.nested — its own fields are walked too."""

    rows: List[Tuple[int, float]]
    table: Dict[str, int]
    event: threading.Event  # expect: pickle-unsafe-field


class _MemoHelper:
    """Reachable plain class without __getstate__: __init__ is scanned."""

    def __init__(self, size):
        self.size = int(size)
        self._lock = threading.Lock()  # expect: pickle-unsafe-attr
        self._fn = lambda x: x + 1  # expect: pickle-unsafe-attr
        self._fh = open("/dev/null")  # expect: pickle-unsafe-attr
        self._memo = {}


class _LeanHelper:
    """Defines __getstate__ — trusted to control its pickled form."""

    def __init__(self):
        self._lock = threading.Lock()

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_lock"] = None
        return state


# repro: pickle-boundary
@dataclass
class _CleanResult:
    """A fully conforming payload: no findings."""

    shard_index: int
    scores: List[Tuple[int, float]]
    payload: dict
    parameters: np.ndarray
    note: Optional[str] = None
