"""The pickle-safety checker walks payload graphs from boundary markers."""

from pathlib import Path

import pytest
import repro
from repro.analysis import Severity, analyze_paths


@pytest.fixture(scope="module")
def report(fixtures_dir):
    return analyze_paths(
        [fixtures_dir / "fixture_pickle.py"], checkers=["pickle-safety"]
    )


def test_findings_match_expect_tags(report, expected_findings, fixtures_dir):
    expected = expected_findings(fixtures_dir / "fixture_pickle.py")
    actual = {(f.line, f.rule) for f in report.findings}
    assert actual == expected


def test_both_rules_fire(report):
    fired = {f.rule for f in report.findings}
    assert fired == {"pickle-unsafe-field", "pickle-unsafe-attr"}
    assert all(f.severity == Severity.ERROR for f in report.findings)


def test_nested_payload_is_walked(report, fixtures_dir):
    """_NestedPayload has no boundary marker of its own — it is reached
    through _BadTask.nested, and its threading.Event field still fires."""
    source = (fixtures_dir / "fixture_pickle.py").read_text().splitlines()
    event_line = next(
        lineno
        for lineno, line in enumerate(source, start=1)
        if "event: threading.Event" in line
    )
    assert any(f.line == event_line for f in report.findings)


def test_getstate_stops_the_walk(report, fixtures_dir):
    """_LeanHelper owns a __getstate__, so its lock attr is trusted."""
    source = (fixtures_dir / "fixture_pickle.py").read_text().splitlines()
    lean_init = next(
        lineno
        for lineno, line in enumerate(source, start=1)
        if "def __init__" in line and "LeanHelper" in "".join(source[lineno - 5 : lineno])
    )
    flagged = {f.line for f in report.findings}
    assert not any(lean_init <= line <= lean_init + 2 for line in flagged)


def test_justified_field_is_suppressed(report):
    assert len(report.suppressed) == 1
    assert report.suppressed[0].rule == "pickle-unsafe-field"


def test_real_scheduler_payloads_are_clean():
    """The production _ShardTask/_ShardResult/_ValidationView graphs lint
    clean — the regression the checker exists to hold."""
    scheduler = Path(repro.__file__).parent / "execution" / "scheduler.py"
    report = analyze_paths([scheduler], checkers=["pickle-safety"])
    assert report.findings == []
