"""Lean-pickle regression: derived memos stay out of worker payloads.

The sharded scheduler ships ``Device`` and ``CompiledCircuit`` objects
between processes, and the sanitizer's fingerprints rely on their
``__getstate__`` dropping derived memos.  These tests pin that contract:
memos populated before pickling must be absent after unpickling, and the
receiver must be able to re-derive them.
"""

import pickle

import numpy as np
import pytest

from repro.core import EvolutionConfig, EvolutionEngine, get_design_space
from repro.execution import TranspileCache


def compiled_entry(u3cu3_supercircuit, yorktown, seed=3):
    space = get_design_space("u3cu3")
    evolution = EvolutionEngine(space, 4, yorktown, EvolutionConfig(seed=seed))
    config = evolution.random_config()
    circuit, _ = u3cu3_supercircuit.build_standalone_circuit(config)
    weights = u3cu3_supercircuit.inherited_weights(config)
    bound = circuit.bind(weights, np.linspace(-1.0, 1.0, 16))
    cache = TranspileCache(maxsize=4)
    return cache.get(bound, yorktown, initial_layout=evolution.random_mapping())


def test_compiled_circuit_pickle_drops_memos(u3cu3_supercircuit, yorktown):
    compiled = compiled_entry(u3cu3_supercircuit, yorktown)

    # populate both derived memos
    rate = compiled.success_rate()
    compiled.reduced_circuit()
    assert compiled._success_rate is not None
    assert compiled._reduced is not None

    clone = pickle.loads(pickle.dumps(compiled))
    assert clone._success_rate is None
    assert clone._reduced is None

    # the receiver re-derives identical values
    assert clone.success_rate() == pytest.approx(rate, abs=0)
    assert clone._success_rate is not None


def test_device_pickle_drops_noise_model(yorktown):
    model = yorktown.noise_model()
    assert yorktown._noise_model is model

    clone = pickle.loads(pickle.dumps(yorktown))
    assert clone._noise_model is None

    rebuilt = clone.noise_model()
    assert rebuilt is not model
    assert clone._noise_model is rebuilt


def test_memo_population_does_not_change_pickled_form(
    u3cu3_supercircuit, yorktown
):
    """The invariant the sanitizer's fingerprints stand on: pickles taken
    before and after memo population are byte-identical."""
    compiled = compiled_entry(u3cu3_supercircuit, yorktown)
    before = pickle.dumps(compiled, protocol=4)
    compiled.success_rate()
    compiled.reduced_circuit()
    after = pickle.dumps(compiled, protocol=4)
    assert after == before
