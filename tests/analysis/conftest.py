"""Shared helpers for the analysis-suite tests.

Fixture modules under ``fixtures/`` tag each deliberate violation with a
trailing ``# expect: rule-id[, rule-id]`` comment.  ``expected_findings``
parses those tags into a ``{(line, rule), ...}`` set so the tests stay
correct under line-number drift when fixtures are edited.
"""

from pathlib import Path
from typing import Set, Tuple

import pytest

FIXTURES = Path(__file__).parent / "fixtures"


def _parse_expect_tags(path: Path) -> Set[Tuple[int, str]]:
    expected = set()
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if "# expect:" not in line:
            continue
        _, _, tag = line.partition("# expect:")
        for rule in tag.split(","):
            rule = rule.strip()
            if rule:
                expected.add((lineno, rule))
    return expected


@pytest.fixture(scope="session")
def expected_findings():
    return _parse_expect_tags


@pytest.fixture(scope="session")
def fixtures_dir():
    return FIXTURES
