"""The backend-conformance checker validates register_backend registrants."""

from pathlib import Path

import pytest
import repro
from repro.analysis import Severity, analyze_paths


@pytest.fixture(scope="module")
def report(fixtures_dir):
    return analyze_paths(
        [fixtures_dir / "fixture_conformance.py"], checkers=["backend-conformance"]
    )


def test_findings_match_expect_tags(report, expected_findings, fixtures_dir):
    expected = expected_findings(fixtures_dir / "fixture_conformance.py")
    actual = {(f.line, f.rule) for f in report.findings}
    assert actual == expected


def test_all_conformance_rules_fire(report):
    fired = {f.rule for f in report.findings}
    assert fired == {
        "backend-missing-name",
        "backend-missing-capabilities",
        "backend-missing-run-group",
        "backend-bad-signature",
    }
    assert all(f.severity == Severity.ERROR for f in report.findings)


def test_call_form_registration_is_checked(report, fixtures_dir):
    """register_backend(Cls) call form reaches the same checks as the
    decorator form."""
    source = (fixtures_dir / "fixture_conformance.py").read_text().splitlines()
    call_registered = next(
        lineno
        for lineno, line in enumerate(source, start=1)
        if "class _CallRegisteredBackend" in line
    )
    assert any(f.line == call_registered for f in report.findings)


def test_real_backends_are_conformant():
    backends = Path(repro.__file__).parent / "backends"
    report = analyze_paths([backends], checkers=["backend-conformance"])
    assert report.findings == []
    assert report.suppressed == []
