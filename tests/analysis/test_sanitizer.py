"""The REPRO_SANITIZE cache-mutation sanitizer catches post-share mutation.

Each test installs the hooks around its assertions and leaves the global
state exactly as it found it — under the CI sanitizer lane the hooks are
already installed when the suite imports ``repro.execution``, and must stay
installed for the rest of the session.
"""

import numpy as np
import pytest

from repro.analysis.sanitizer import (
    CacheMutationError,
    entry_fingerprint,
    install_sanitizer,
    sanitize_requested,
    sanitizer_installed,
    uninstall_sanitizer,
    verify_cache,
)
from repro.core import EvolutionConfig, EvolutionEngine, get_design_space
from repro.core.evolution import Candidate
from repro.execution import ParametricTranspileCache, TranspileCache


@pytest.fixture
def sanitized():
    was_installed = sanitizer_installed()
    install_sanitizer()
    yield
    if not was_installed:
        uninstall_sanitizer()


def bound_circuit(u3cu3_supercircuit, evolution, config):
    circuit, _ = u3cu3_supercircuit.build_standalone_circuit(config)
    weights = u3cu3_supercircuit.inherited_weights(config)
    return circuit.bind(weights, np.linspace(-1.0, 1.0, 16))


def make_evolution(yorktown, seed=3):
    space = get_design_space("u3cu3")
    return EvolutionEngine(space, 4, yorktown, EvolutionConfig(seed=seed))


# -- env parsing ---------------------------------------------------------------


def test_sanitize_requested_env_parsing():
    assert not sanitize_requested({})
    assert not sanitize_requested({"REPRO_SANITIZE": ""})
    assert not sanitize_requested({"REPRO_SANITIZE": "0"})
    assert not sanitize_requested({"REPRO_SANITIZE": "false"})
    assert not sanitize_requested({"REPRO_SANITIZE": "no"})
    assert sanitize_requested({"REPRO_SANITIZE": "1"})
    assert sanitize_requested({"REPRO_SANITIZE": "yes"})


def test_install_is_idempotent(sanitized):
    assert sanitizer_installed()
    install_sanitizer()
    assert sanitizer_installed()


# -- TranspileCache ------------------------------------------------------------


def test_export_mutate_export_raises(sanitized, u3cu3_supercircuit, yorktown):
    evolution = make_evolution(yorktown)
    bound = bound_circuit(u3cu3_supercircuit, evolution, evolution.random_config())
    mapping = evolution.random_mapping()

    cache = TranspileCache(maxsize=8)
    compiled = cache.get(bound, yorktown, initial_layout=mapping)
    cache.export_entries()  # share point: fingerprints recorded

    compiled.num_swaps += 1  # forbidden: mutation of shared state
    with pytest.raises(CacheMutationError, match="mutated after"):
        cache.export_entries()


def test_adopted_entry_is_guarded(sanitized, u3cu3_supercircuit, yorktown):
    evolution = make_evolution(yorktown)
    bound = bound_circuit(u3cu3_supercircuit, evolution, evolution.random_config())
    mapping = evolution.random_mapping()

    worker = TranspileCache(maxsize=8)
    compiled = worker.get(bound, yorktown, initial_layout=mapping)
    exported = worker.export_entries()

    parent = TranspileCache(maxsize=8)
    assert parent.adopt_entries(exported) == 1
    verify_cache(parent)  # clean immediately after adoption

    compiled.circuit.instructions.pop()  # entry is shared by both caches
    with pytest.raises(CacheMutationError, match="immutable"):
        parent.clear()


def test_benign_memoization_does_not_trip(sanitized, u3cu3_supercircuit, yorktown):
    evolution = make_evolution(yorktown)
    bound = bound_circuit(u3cu3_supercircuit, evolution, evolution.random_config())
    mapping = evolution.random_mapping()

    cache = TranspileCache(maxsize=8)
    compiled = cache.get(bound, yorktown, initial_layout=mapping)
    cache.export_entries()

    # __getstate__ drops the derived memos, so populating them after the
    # share point is legal — exactly what success_rate() lazy evaluation does
    compiled._success_rate = 0.875
    cache.export_entries()
    verify_cache(cache)


def test_evicted_entries_leave_the_ledger(sanitized, u3cu3_supercircuit, yorktown):
    evolution = make_evolution(yorktown)
    bound = bound_circuit(u3cu3_supercircuit, evolution, evolution.random_config())
    mapping = evolution.random_mapping()

    cache = TranspileCache(maxsize=8)
    compiled = cache.get(bound, yorktown, initial_layout=mapping)
    cache.export_entries()
    cache._entries.clear()  # simulate eviction of everything

    compiled.num_swaps += 1  # no longer cached: mutation is out of scope
    verify_cache(cache)
    assert not getattr(cache, "_sanitizer_ledger")


# -- ParametricTranspileCache --------------------------------------------------


def test_parametric_variant_mutation_raises(sanitized, u3cu3_supercircuit, yorktown):
    evolution = make_evolution(yorktown)
    candidate = Candidate(evolution.random_config(), evolution.random_mapping())
    circuit, _ = u3cu3_supercircuit.build_standalone_circuit(candidate.config)
    weights = u3cu3_supercircuit.inherited_weights(candidate.config)
    features = np.linspace(-1.0, 1.0, 16)

    worker = ParametricTranspileCache()
    worker.get_bound(circuit, weights, features, yorktown, candidate.mapping)
    payload = worker.export_entries()
    assert payload["structures"]

    parent = ParametricTranspileCache()
    parent.adopt_entries(payload)
    verify_cache(parent)

    (key, variants) = payload["structures"][0]
    variants[0].num_swaps += 1  # shared template mutated
    with pytest.raises(CacheMutationError, match="variant"):
        parent.export_entries()


def test_locally_appended_variants_are_legal(
    sanitized, u3cu3_supercircuit, yorktown
):
    evolution = make_evolution(yorktown)
    candidate = Candidate(evolution.random_config(), evolution.random_mapping())
    circuit, _ = u3cu3_supercircuit.build_standalone_circuit(candidate.config)
    weights = u3cu3_supercircuit.inherited_weights(candidate.config)

    worker = ParametricTranspileCache()
    worker.get_bound(
        circuit, weights, np.linspace(-1.0, 1.0, 16), yorktown, candidate.mapping
    )
    payload = worker.export_entries()

    parent = ParametricTranspileCache()
    parent.adopt_entries(payload)

    # binding through the adopted structure may append new local variants
    # (and memoize bound entries) without tripping verification
    parent.get_bound(
        circuit, weights, np.linspace(-0.5, 0.5, 16), yorktown, candidate.mapping
    )
    parent.export_entries()
    verify_cache(parent)


# -- uninstall -----------------------------------------------------------------


def test_uninstall_restores_original_methods(u3cu3_supercircuit, yorktown):
    was_installed = sanitizer_installed()
    install_sanitizer()
    try:
        evolution = make_evolution(yorktown)
        bound = bound_circuit(
            u3cu3_supercircuit, evolution, evolution.random_config()
        )
        mapping = evolution.random_mapping()
        cache = TranspileCache(maxsize=8)
        compiled = cache.get(bound, yorktown, initial_layout=mapping)
        cache.export_entries()
        uninstall_sanitizer()
        assert not sanitizer_installed()

        compiled.num_swaps += 1
        cache.export_entries()  # hooks gone: no verification, no raise
    finally:
        if was_installed:
            install_sanitizer()
        elif sanitizer_installed():
            uninstall_sanitizer()


def test_entry_fingerprint_is_stable_and_content_sensitive(
    u3cu3_supercircuit, yorktown
):
    evolution = make_evolution(yorktown)
    bound = bound_circuit(u3cu3_supercircuit, evolution, evolution.random_config())
    mapping = evolution.random_mapping()
    cache = TranspileCache(maxsize=8)
    compiled = cache.get(bound, yorktown, initial_layout=mapping)

    first = entry_fingerprint(compiled)
    assert entry_fingerprint(compiled) == first
    compiled.num_swaps += 1
    assert entry_fingerprint(compiled) != first
