"""The telemetry-flow checker fires exactly the flows its fixture tags."""

import pytest

from repro.analysis import Severity, analyze_paths


@pytest.fixture(scope="module")
def report(fixtures_dir):
    return analyze_paths(
        [fixtures_dir / "fixture_telemetry.py"], checkers=["telemetry"]
    )


def test_findings_match_expect_tags(report, expected_findings, fixtures_dir):
    expected = expected_findings(fixtures_dir / "fixture_telemetry.py")
    actual = {(f.line, f.rule) for f in report.findings}
    assert actual == expected


def test_rule_is_an_error(report):
    assert report.findings
    assert all(f.severity == Severity.ERROR for f in report.findings)
    assert all(f.rule == "telemetry-flow" for f in report.findings)


def test_findings_carry_fix_hints(report):
    assert all(f.hint for f in report.findings)


def test_sanctioned_report_suppression_is_live(report):
    suppressed = {f.rule for f in report.suppressed}
    assert suppressed == {"telemetry-flow"}
    assert len(report.suppressed) == 1


def test_telemetry_package_itself_is_exempt():
    from pathlib import Path

    import repro.telemetry

    package_dir = Path(repro.telemetry.__file__).parent
    clock_path = package_dir.parent / "utils" / "clock.py"
    exempt_report = analyze_paths(
        [package_dir, clock_path], checkers=["telemetry"]
    )
    assert exempt_report.findings == []
