"""Tests for design spaces and SubCircuit configurations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.design_space import (
    DESIGN_SPACES,
    LayerSpec,
    available_design_spaces,
    get_design_space,
)
from repro.core.subcircuit import SubCircuitConfig


class TestLayerSpec:
    def test_single_layer_positions(self):
        layer = LayerSpec("u3", "single")
        assert layer.positions(4) == [(0,), (1,), (2,), (3,)]
        assert layer.max_width(4) == 4
        assert layer.params_per_gate == 3

    def test_ring_layer_positions(self):
        layer = LayerSpec("cu3", "ring")
        assert layer.positions(4) == [(0, 1), (1, 2), (2, 3), (3, 0)]
        assert layer.positions(2) == [(0, 1)]

    def test_arrangement_validation(self):
        with pytest.raises(ValueError):
            LayerSpec("cu3", "single")
        with pytest.raises(ValueError):
            LayerSpec("u3", "ring")
        with pytest.raises(ValueError):
            LayerSpec("u3", "diagonal")


class TestDesignSpaces:
    def test_all_six_paper_spaces_registered(self):
        assert set(available_design_spaces()) == {
            "u3cu3", "zzry", "rxyz", "zxxx", "rxyz_u1_cu3", "ibmq_basis",
        }

    def test_space_aliases(self):
        assert get_design_space("U3+CU3").name == "u3cu3"
        assert get_design_space("ZZ+RY").name == "zzry"
        assert get_design_space("RXYZ+U1+CU3").name == "rxyz_u1_cu3"
        assert get_design_space("IBMQ Basis").name == "ibmq_basis"
        with pytest.raises(KeyError):
            get_design_space("quantumgpt")

    def test_block_counts_match_paper(self):
        assert DESIGN_SPACES["u3cu3"].max_blocks == 8
        assert DESIGN_SPACES["rxyz_u1_cu3"].max_blocks == 4
        assert DESIGN_SPACES["ibmq_basis"].max_blocks == 20
        assert not DESIGN_SPACES["ibmq_basis"].front_sampling

    def test_rxyz_has_sqrt_h_prefix(self):
        space = DESIGN_SPACES["rxyz"]
        assert len(space.prefix_layers) == 1
        assert space.prefix_layers[0].gate == "sh"

    def test_parameter_counts(self):
        space = DESIGN_SPACES["u3cu3"]
        # per block: 4 U3 gates (3 params) + 4 CU3 gates (3 params) = 24
        assert space.params_per_block(4) == 24
        assert space.total_parameters(4) == 24 * 8

    def test_design_space_size_is_huge(self):
        space = DESIGN_SPACES["rxyz_u1_cu3"]
        assert space.num_subcircuits(4) > 1e12


class TestSubCircuitConfig:
    def test_full_config(self):
        space = DESIGN_SPACES["u3cu3"]
        config = SubCircuitConfig.full(space, 4)
        assert config.n_blocks == 8
        assert config.num_parameters(space) == space.total_parameters(4)

    def test_uniform_width(self):
        space = DESIGN_SPACES["u3cu3"]
        config = SubCircuitConfig.uniform_width(space, 4, n_blocks=3, width_ratio=0.5)
        assert config.n_blocks == 3
        assert all(w == 2 for block in config.active_widths() for w in block)

    def test_validation(self):
        with pytest.raises(ValueError):
            SubCircuitConfig(0, ((1, 1),))
        with pytest.raises(ValueError):
            SubCircuitConfig(3, ((1, 1),))

    def test_difference_counts_positions(self):
        a = SubCircuitConfig(2, ((2, 3), (1, 1)))
        b = SubCircuitConfig(2, ((2, 1), (4, 1)))
        assert a.difference(b) == 2
        c = SubCircuitConfig(1, ((2, 3), (1, 1)))
        assert a.difference(c) == 1  # only the block count differs

    def test_num_gates_and_parameters(self):
        space = DESIGN_SPACES["zzry"]  # rzz (1 param) + ry (1 param)
        config = SubCircuitConfig(2, tuple([(3, 2)] * space.max_blocks))
        assert config.num_gates(space) == 10
        assert config.num_parameters(space) == 10

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_gene_roundtrip(self, seed):
        space = DESIGN_SPACES["u3cu3"]
        rng = np.random.default_rng(seed)
        n_blocks = int(rng.integers(1, space.max_blocks + 1))
        widths = tuple(
            tuple(int(rng.integers(1, w + 1)) for w in space.max_widths(4))
            for _ in range(space.max_blocks)
        )
        config = SubCircuitConfig(n_blocks, widths)
        recovered = SubCircuitConfig.from_gene(space, 4, config.as_gene())
        assert recovered == config

    def test_from_gene_clips_out_of_range_values(self):
        space = DESIGN_SPACES["zzry"]
        gene = [99] + [99] * (space.max_blocks * space.n_layers)
        config = SubCircuitConfig.from_gene(space, 4, gene)
        assert config.n_blocks == space.max_blocks
        assert all(
            w <= max(space.max_widths(4)) for block in config.widths for w in block
        )

    def test_from_gene_length_check(self):
        space = DESIGN_SPACES["zzry"]
        with pytest.raises(ValueError):
            SubCircuitConfig.from_gene(space, 4, [1, 2, 3])
