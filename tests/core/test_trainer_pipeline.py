"""Tests for SuperCircuit training, baselines and the end-to-end pipelines."""

import numpy as np
import pytest

from repro.baselines.human import build_human_circuit, human_design_config
from repro.baselines.noise_unaware import noise_unaware_qml_pipeline
from repro.baselines.random_circuit import build_random_circuit, random_design_config
from repro.core.design_space import get_design_space
from repro.core.estimator import EstimatorConfig
from repro.core.evolution import EvolutionConfig
from repro.core.pipeline import (
    QMLPipelineConfig,
    QuantumNASQMLPipeline,
    QuantumNASVQEPipeline,
    VQEPipelineConfig,
)
from repro.core.subcircuit import SubCircuitConfig
from repro.core.supercircuit import SuperCircuit
from repro.core.trainer import (
    SuperTrainConfig,
    train_subcircuit_qml,
    train_supercircuit_qml,
    train_supercircuit_vqe,
)
from repro.devices.library import get_device
from repro.qml.encoders import ENCODER_LIBRARY
from repro.qml.training import TrainConfig
from repro.vqe.molecules import load_molecule
from repro.vqe.vqe import VQEConfig


class TestSuperCircuitTraining:
    def test_qml_training_only_updates_sampled_parameters(self, tiny_dataset):
        space = get_design_space("u3cu3")
        sc = SuperCircuit(space, 4, encoder=ENCODER_LIBRARY["image_4x4_4q"], seed=5)
        before = sc.parameters.copy()
        config = SuperTrainConfig(steps=4, batch_size=12, seed=0,
                                  progressive_shrink=False)
        result = train_supercircuit_qml(sc, tiny_dataset, 4, config)
        assert len(result.history) == 4
        changed = ~np.isclose(sc.parameters, before)
        assert changed.any()
        assert changed.sum() < sc.num_parameters  # untouched weights stay put

    def test_vqe_training_runs_and_records_history(self):
        molecule = load_molecule("h2")
        space = get_design_space("zzry")
        sc = SuperCircuit(space, 2, seed=3)
        config = SuperTrainConfig(steps=5, batch_size=1, seed=0)
        result = train_supercircuit_vqe(sc, molecule, config)
        assert len(result.history) == 5
        assert np.isfinite(result.final_loss)

    def test_subcircuit_training_from_inherited_weights(self, tiny_dataset):
        space = get_design_space("u3cu3")
        sc = SuperCircuit(space, 4, encoder=ENCODER_LIBRARY["image_4x4_4q"], seed=6)
        config = SubCircuitConfig(1, tuple([(2, 2)] * space.max_blocks))
        model, result = train_subcircuit_qml(
            sc, config, tiny_dataset, 4,
            TrainConfig(epochs=2, batch_size=16, seed=0), from_inherited=True,
        )
        assert model.num_weights == config.num_parameters(space)
        assert len(result.history) == 2


class TestBaselines:
    def test_human_design_matches_parameter_budget(self):
        space = get_design_space("u3cu3")
        for budget in (12, 24, 36, 48):
            config = human_design_config(space, 4, budget)
            assert abs(config.num_parameters(space) - budget) <= 6

    def test_human_design_fills_front_blocks_first(self):
        space = get_design_space("u3cu3")
        config = human_design_config(space, 4, 48)  # exactly two full blocks
        assert config.n_blocks <= 3
        first_block = config.widths[0]
        assert all(w == 4 for w in first_block)

    def test_build_human_circuit(self):
        space = get_design_space("zzry")
        circuit, config = build_human_circuit(
            space, 4, 16, encoder=ENCODER_LIBRARY["image_4x4_4q"]
        )
        assert circuit.num_weights == config.num_parameters(space)

    def test_random_design_close_to_budget(self):
        space = get_design_space("u3cu3")
        config = random_design_config(space, 4, 36, rng=np.random.default_rng(0))
        assert abs(config.num_parameters(space) - 36) <= 6

    def test_random_circuits_differ_across_seeds(self):
        space = get_design_space("u3cu3")
        _, config_a = build_random_circuit(space, 4, 36, seed=1)
        _, config_b = build_random_circuit(space, 4, 36, seed=2)
        assert config_a != config_b


def _tiny_pipeline_config() -> QMLPipelineConfig:
    return QMLPipelineConfig(
        super_train=SuperTrainConfig(steps=6, batch_size=12, seed=0),
        evolution=EvolutionConfig(iterations=2, population_size=4, parent_size=2,
                                  mutation_size=1, crossover_size=1, seed=0),
        estimator=EstimatorConfig(mode="success_rate", n_valid_samples=6),
        sub_train=TrainConfig(epochs=2, batch_size=16, seed=0),
        pruning_ratio=None,
        eval_shots=256,
        eval_max_samples=6,
        seed=0,
    )


class TestPipelines:
    def test_qml_pipeline_end_to_end(self, tiny_dataset):
        space = get_design_space("u3cu3")
        pipeline = QuantumNASQMLPipeline(
            space, tiny_dataset, 4, get_device("yorktown"),
            ENCODER_LIBRARY["image_4x4_4q"], config=_tiny_pipeline_config(),
        )
        result = pipeline.run()
        assert 0.0 <= result.measured["accuracy"] <= 1.0
        assert result.best_config.n_blocks >= 1
        assert len(result.best_mapping) == 4
        assert result.search.evaluated > 0
        assert "loss" in result.noise_free

    def test_noise_unaware_pipeline_uses_noise_free_estimator(self, tiny_dataset):
        space = get_design_space("u3cu3")
        pipeline = noise_unaware_qml_pipeline(
            space, tiny_dataset, 4, get_device("yorktown"),
            ENCODER_LIBRARY["image_4x4_4q"], config=_tiny_pipeline_config(),
        )
        assert pipeline.config.estimator.mode == "noise_free"

    def test_vqe_pipeline_end_to_end(self):
        space = get_design_space("u3cu3")
        molecule = load_molecule("h2")
        config = VQEPipelineConfig(
            super_train=SuperTrainConfig(steps=6, batch_size=1, seed=0),
            evolution=EvolutionConfig(iterations=2, population_size=4, parent_size=2,
                                      mutation_size=1, crossover_size=1, seed=0),
            estimator=EstimatorConfig(mode="noise_sim", n_valid_samples=4),
            vqe_train=VQEConfig(steps=30, learning_rate=0.05, seed=0),
            pruning_ratio=None,
            eval_shots=512,
        )
        pipeline = QuantumNASVQEPipeline(space, molecule, get_device("santiago"),
                                         config=config)
        result = pipeline.run()
        assert result.measured_energy >= molecule.ground_energy - 1e-6
        assert np.isfinite(result.noise_free_energy)
        assert len(result.best_mapping) == 2
