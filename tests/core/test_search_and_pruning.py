"""Tests for the estimator, the evolutionary co-search and iterative pruning."""

import numpy as np
import pytest

from repro.core.design_space import get_design_space
from repro.core.estimator import EstimatorConfig, PerformanceEstimator
from repro.core.evolution import Candidate, EvolutionConfig, EvolutionEngine, random_search
from repro.core.pruning import (
    iterative_prune_qnn,
    normalized_angles,
    polynomial_ratio,
    prune_mask,
)
from repro.core.subcircuit import SubCircuitConfig
from repro.core.trainer import SuperTrainConfig, train_supercircuit_qml
from repro.devices.library import get_device
from repro.qml.encoders import ENCODER_LIBRARY
from repro.qml.qnn import QNNModel
from repro.qml.training import TrainConfig, train_qnn
from repro.vqe.molecules import load_molecule


class TestEstimator:
    def _setup(self, tiny_dataset, mode, n_valid=4):
        space = get_design_space("u3cu3")
        from repro.core.supercircuit import SuperCircuit

        sc = SuperCircuit(space, 4, encoder=ENCODER_LIBRARY["image_4x4_4q"], seed=1)
        config = SubCircuitConfig(2, tuple([(2, 2)] * space.max_blocks))
        circuit, _ = sc.build_standalone_circuit(config)
        weights = sc.inherited_weights(config)
        estimator = PerformanceEstimator(
            get_device("yorktown"),
            EstimatorConfig(mode=mode, n_valid_samples=n_valid),
        )
        return estimator, circuit, weights

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            EstimatorConfig(mode="telepathy")

    def test_noise_free_loss_is_not_higher_than_noisy(self, tiny_dataset):
        est_free, circuit, weights = self._setup(tiny_dataset, "noise_free")
        est_noisy, _, _ = self._setup(tiny_dataset, "noise_sim")
        loss_free = est_free.estimate_qml(circuit, weights, tiny_dataset, 4,
                                          layout=(0, 1, 2, 3))
        loss_noisy = est_noisy.estimate_qml(circuit, weights, tiny_dataset, 4,
                                            layout=(0, 1, 2, 3))
        assert loss_noisy >= loss_free - 0.05

    def test_success_rate_mode_augments_loss(self, tiny_dataset):
        est_free, circuit, weights = self._setup(tiny_dataset, "noise_free")
        est_rate, _, _ = self._setup(tiny_dataset, "success_rate")
        loss_free = est_free.estimate_qml(circuit, weights, tiny_dataset, 4,
                                          layout=(0, 1, 2, 3))
        loss_rate = est_rate.estimate_qml(circuit, weights, tiny_dataset, 4,
                                          layout=(0, 1, 2, 3))
        assert loss_rate > loss_free

    def test_query_counter_increments(self, tiny_dataset):
        estimator, circuit, weights = self._setup(tiny_dataset, "noise_free")
        estimator.estimate_qml(circuit, weights, tiny_dataset, 4)
        estimator.estimate_qml(circuit, weights, tiny_dataset, 4)
        assert estimator.num_queries == 2

    def test_vqe_estimates_order(self):
        molecule = load_molecule("h2")
        space = get_design_space("u3cu3")
        from repro.core.supercircuit import SuperCircuit

        sc = SuperCircuit(space, 2, seed=2)
        config = SubCircuitConfig(2, tuple([(2, 1)] * space.max_blocks))
        circuit, _ = sc.build_standalone_circuit(config, include_encoder=False)
        weights = sc.inherited_weights(config)
        noise_free = PerformanceEstimator(
            get_device("yorktown"), EstimatorConfig(mode="noise_free")
        ).estimate_vqe(circuit, weights, molecule, layout=(0, 1))
        noisy = PerformanceEstimator(
            get_device("yorktown"), EstimatorConfig(mode="noise_sim")
        ).estimate_vqe(circuit, weights, molecule, layout=(0, 1))
        mixed = molecule.hamiltonian.constant
        # noise pulls the estimate from the noise-free value toward the mixed state
        assert min(noise_free, mixed) - 1e-6 <= noisy <= max(noise_free, mixed) + 1e-6


class TestEvolution:
    def _engine(self, **overrides):
        space = get_design_space("u3cu3")
        defaults = dict(iterations=3, population_size=6, parent_size=2,
                        mutation_size=2, crossover_size=2, seed=0)
        defaults.update(overrides)
        return EvolutionEngine(space, 4, get_device("yorktown"),
                               EvolutionConfig(**defaults))

    def test_repair_mapping_removes_duplicates(self):
        engine = self._engine()
        repaired = engine.repair_mapping((0, 0, 2, 2))
        assert len(set(repaired)) == 4
        assert all(0 <= q < 5 for q in repaired)

    def test_random_candidates_are_valid(self):
        engine = self._engine()
        for _ in range(20):
            candidate = engine.random_candidate()
            assert len(set(candidate.mapping)) == 4
            assert 1 <= candidate.config.n_blocks <= 8

    def test_mutation_and_crossover_produce_valid_candidates(self):
        engine = self._engine()
        parent_a = engine.random_candidate()
        parent_b = engine.random_candidate()
        child = engine.crossover(parent_a, parent_b)
        mutant = engine.mutate(parent_a)
        for candidate in (child, mutant):
            assert len(set(candidate.mapping)) == 4
            gene = candidate.gene()
            assert len(gene) == 1 + 8 * 2 + 4

    def test_search_minimizes_synthetic_objective(self):
        """The engine should find small circuits when the score favors them."""
        engine = self._engine(iterations=6, population_size=10, parent_size=3,
                              mutation_size=4, crossover_size=3)
        space = engine.space

        def score(config, mapping):
            return config.num_parameters(space) + 0.1 * sum(mapping)

        result = engine.search(score)
        minimum = SubCircuitConfig(
            1, tuple([(1, 1)] * space.max_blocks)
        ).num_parameters(space)
        assert result.best_score <= minimum + 12
        assert result.evaluated > 0
        assert result.history[-1]["best_score"] <= result.history[0]["best_score"]

    def test_evolution_beats_or_matches_random_with_same_budget(self):
        space = get_design_space("u3cu3")
        device = get_device("yorktown")

        def score(config, mapping):
            widths = np.array([w for block in config.widths[: config.n_blocks]
                               for w in block])
            return float(np.abs(widths - 2).sum()) + 0.05 * sum(mapping)

        engine = EvolutionEngine(space, 4, device,
                                 EvolutionConfig(iterations=5, population_size=10,
                                                 parent_size=3, mutation_size=4,
                                                 crossover_size=3, seed=1))
        evolved = engine.search(score)
        rand = random_search(space, 4, device, score, n_samples=evolved.evaluated,
                             seed=1)
        assert evolved.best_score <= rand.best_score + 1.0

    def test_mapping_only_search_keeps_fixed_circuit(self):
        space = get_design_space("u3cu3")
        fixed = SubCircuitConfig(2, tuple([(2, 2)] * space.max_blocks))
        engine = EvolutionEngine(
            space, 4, get_device("yorktown"),
            EvolutionConfig(iterations=2, population_size=4, parent_size=2,
                            mutation_size=1, crossover_size=1, search_circuit=False),
            fixed_config=fixed,
        )
        result = engine.search(lambda config, mapping: sum(mapping))
        assert result.best.config == fixed


class TestPruning:
    def test_normalized_angles_range(self):
        angles = normalized_angles(np.array([0.0, np.pi, -np.pi, 3 * np.pi, 7.0]))
        assert np.all(angles >= -np.pi) and np.all(angles < np.pi)

    def test_polynomial_ratio_monotone(self):
        ratios = [polynomial_ratio(s, 0, 10, 0.05, 0.5) for s in range(11)]
        assert ratios[0] == pytest.approx(0.05)
        assert ratios[-1] == pytest.approx(0.5)
        assert all(b >= a - 1e-12 for a, b in zip(ratios, ratios[1:]))

    def test_prune_mask_removes_smallest_angles_first(self):
        weights = np.array([0.01, 2.0, -0.02, 1.5, 3.0])
        mask = prune_mask(weights, np.ones(5, dtype=bool), target_ratio=0.4)
        assert mask.sum() == 3
        assert not mask[0] and not mask[2]

    def test_prune_mask_is_monotone_in_ratio(self):
        rng = np.random.default_rng(0)
        weights = rng.uniform(-np.pi, np.pi, 20)
        mask_30 = prune_mask(weights, np.ones(20, dtype=bool), 0.3)
        mask_50 = prune_mask(weights, mask_30, 0.5)
        assert mask_50.sum() <= mask_30.sum()
        assert np.all(~mask_30 <= ~mask_50)  # pruned stays pruned

    def test_iterative_prune_qnn_reaches_target_and_keeps_mask(self, tiny_binary_dataset):
        model = QNNModel(4, 2, encoder=ENCODER_LIBRARY["image_4x4_4q"])
        for qubit in range(4):
            model.add_trainable("u3", (qubit,))
        config = TrainConfig(epochs=3, batch_size=20, learning_rate=0.05, seed=0)
        trained = train_qnn(model, tiny_binary_dataset, config)
        result = iterative_prune_qnn(
            model, trained.weights, tiny_binary_dataset,
            final_ratio=0.5, n_stages=2, finetune_epochs=1, train_config=config,
        )
        assert result.pruning_ratio == pytest.approx(0.5, abs=0.1)
        assert np.allclose(result.weights[~result.keep_mask], 0.0)
        assert result.num_remaining == result.keep_mask.sum()
        assert len(result.history) == 2
