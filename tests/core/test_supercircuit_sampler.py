"""Tests for the SuperCircuit and SubCircuit samplers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.design_space import get_design_space
from repro.core.sampler import ConfigSampler, SamplerConfig
from repro.core.subcircuit import SubCircuitConfig
from repro.core.supercircuit import SuperCircuit
from repro.qml.encoders import ENCODER_LIBRARY
from repro.quantum.statevector import run_parameterized


class TestSuperCircuit:
    def test_parameter_allocation(self, u3cu3_supercircuit):
        space = u3cu3_supercircuit.space
        assert u3cu3_supercircuit.num_parameters == space.total_parameters(4)
        slots = u3cu3_supercircuit.all_slots()
        all_indices = [i for slot in slots for i in slot.weight_indices]
        assert sorted(all_indices) == list(range(u3cu3_supercircuit.num_parameters))

    def test_active_slots_respect_front_sampling(self, u3cu3_supercircuit):
        config = SubCircuitConfig(
            2, tuple([(2, 3)] * u3cu3_supercircuit.space.max_blocks)
        )
        slots = u3cu3_supercircuit.active_slots(config)
        assert all(slot.block < 2 for slot in slots)
        u3_positions = [s.position for s in slots if s.gate == "u3"]
        cu3_positions = [s.position for s in slots if s.gate == "cu3"]
        assert max(u3_positions) == 1
        assert max(cu3_positions) == 2

    def test_active_weight_mask_counts(self, u3cu3_supercircuit):
        config = SubCircuitConfig(
            1, tuple([(4, 4)] * u3cu3_supercircuit.space.max_blocks)
        )
        mask = u3cu3_supercircuit.active_weight_mask(config)
        assert mask.sum() == 24  # one full u3cu3 block on 4 qubits

    def test_shared_and_standalone_circuits_agree(self, u3cu3_supercircuit):
        """Evaluating a SubCircuit through shared or compact weights is identical."""
        sc = u3cu3_supercircuit
        config = SubCircuitConfig(2, tuple([(3, 2)] * sc.space.max_blocks))
        rng = np.random.default_rng(0)
        features = rng.uniform(0, np.pi, size=(3, 16))
        shared = sc.build_shared_circuit(config)
        standalone, mapping = sc.build_standalone_circuit(config)
        inherited = sc.inherited_weights(config)
        assert np.allclose(inherited, sc.parameters[mapping])
        states_shared = run_parameterized(shared, sc.parameters, features)
        states_standalone = run_parameterized(standalone, inherited, features)
        assert np.allclose(states_shared, states_standalone, atol=1e-10)

    def test_standalone_without_encoder(self, u3cu3_supercircuit):
        config = SubCircuitConfig(
            1, tuple([(1, 1)] * u3cu3_supercircuit.space.max_blocks)
        )
        circuit, _ = u3cu3_supercircuit.build_standalone_circuit(
            config, include_encoder=False
        )
        assert all(not op.uses_input for op in circuit.ops)

    def test_rxyz_prefix_layer_present(self):
        space = get_design_space("rxyz")
        sc = SuperCircuit(space, 4, seed=0)
        config = SubCircuitConfig(1, tuple([(1, 1, 1, 1)] * space.max_blocks))
        circuit, _ = sc.build_standalone_circuit(config, include_encoder=False)
        assert circuit.ops[0].gate == "sh"

    def test_update_parameters_validation(self, u3cu3_supercircuit):
        with pytest.raises(ValueError):
            u3cu3_supercircuit.update_parameters(np.zeros(3))


class TestSampler:
    def _sampler(self, restricted=True, progressive=True, total=50):
        space = get_design_space("u3cu3")
        config = SamplerConfig(
            restricted_sampling=restricted,
            progressive_shrink=progressive,
            max_layer_changes=7,
            total_steps=total,
        )
        return ConfigSampler(space, 4, config, rng=np.random.default_rng(0))

    def test_samples_are_valid_configs(self):
        sampler = self._sampler()
        space = get_design_space("u3cu3")
        for config in sampler.sample_many(30):
            assert 1 <= config.n_blocks <= space.max_blocks
            for block in config.widths:
                for layer_index, width in enumerate(block):
                    assert 1 <= width <= space.max_widths(4)[layer_index]

    def test_restricted_sampling_bounds_consecutive_difference(self):
        sampler = self._sampler(restricted=True, progressive=False)
        previous = sampler.sample()
        for _ in range(30):
            current = sampler.sample()
            assert previous.difference(current) <= 7 + 1  # widths plus block count
            previous = current

    def test_progressive_shrink_lowers_min_blocks(self):
        sampler = self._sampler(progressive=True, total=100)
        assert sampler.min_blocks_at(0) == 8
        assert sampler.min_blocks_at(100) == 1
        assert sampler.min_blocks_at(50) in range(1, 9)

    def test_unrestricted_sampling_can_jump(self):
        sampler = self._sampler(restricted=False, progressive=False)
        differences = []
        previous = sampler.sample()
        for _ in range(30):
            current = sampler.sample()
            differences.append(previous.difference(current))
            previous = current
        assert max(differences) > 7

    def test_reset(self):
        sampler = self._sampler()
        sampler.sample_many(5)
        sampler.reset()
        assert sampler._step == 0
