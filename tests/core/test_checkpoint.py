"""Generation-level checkpoint/resume of the evolutionary co-search.

The contract is bitwise: a search resumed from any generation's checkpoint
must finish with the same best candidate, score and history as the
uninterrupted run — resume restores the rng stream, the population and the
score cache exactly.
"""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro.core import (
    EstimatorConfig,
    EvolutionConfig,
    EvolutionEngine,
    PerformanceEstimator,
    SearchCheckpointer,
    get_design_space,
)
from repro.core.pipeline import QMLPipelineConfig, QuantumNASQMLPipeline
from repro.devices import get_device
from repro.qml import encoder_for_task


def small_config(checkpoint_path=None, iterations=4):
    return EvolutionConfig(
        iterations=iterations, population_size=8, parent_size=2,
        mutation_size=4, crossover_size=2, seed=9,
        checkpoint_path=checkpoint_path,
    )


def make_engine(device, config):
    return EvolutionEngine(get_design_space("u3cu3"), 4, device, config)


def gene_score(config, mapping):
    """A deterministic, content-only score — no simulation needed."""
    gene = config.as_gene() + list(mapping)
    return float(sum((i + 1) * g for i, g in enumerate(gene)) % 97) / 97.0


class CrashAfter:
    """A score function that raises once generation ``n`` is reached."""

    def __init__(self, crash_at_eval):
        self.crash_at_eval = crash_at_eval
        self.calls = 0

    def __call__(self, config, mapping):
        self.calls += 1
        if self.calls > self.crash_at_eval:
            raise KeyboardInterrupt("simulated parent crash")
        return gene_score(config, mapping)


class TestCheckpointResume:
    def test_resume_after_crash_is_bitwise_identical(self, yorktown, tmp_path):
        path = str(tmp_path / "search.ckpt")
        reference = make_engine(yorktown, small_config()).search(
            score_fn=gene_score
        )

        # run until the parent "crashes" partway through the search
        crashing = CrashAfter(crash_at_eval=12)
        with pytest.raises(KeyboardInterrupt):
            make_engine(yorktown, small_config()).search(
                score_fn=crashing,
                checkpointer=SearchCheckpointer(path),
            )
        assert os.path.exists(path)

        resumed = make_engine(yorktown, small_config()).search(
            score_fn=gene_score,
            checkpointer=SearchCheckpointer(path),
        )
        assert resumed.best.gene() == reference.best.gene()
        assert resumed.best_score == reference.best_score
        assert resumed.history == reference.history
        assert resumed.evaluated == reference.evaluated

    def test_resume_from_every_generation_matches(self, yorktown, tmp_path):
        reference = make_engine(yorktown, small_config()).search(
            score_fn=gene_score
        )
        path = str(tmp_path / "gen.ckpt")
        # full checkpointed run leaves the final checkpoint behind…
        make_engine(yorktown, small_config()).search(
            score_fn=gene_score, checkpointer=SearchCheckpointer(path)
        )
        with open(path, "rb") as handle:
            final_state = pickle.load(handle)
        assert final_state["iteration"] == small_config().iterations

        # …and resuming from a truncated copy of any intermediate state
        # still converges to the identical result
        for iteration in range(1, small_config().iterations):
            truncated = str(tmp_path / f"gen{iteration}.ckpt")
            engine = make_engine(
                yorktown, small_config(iterations=iteration)
            )
            engine.search(
                score_fn=gene_score,
                checkpointer=SearchCheckpointer(truncated),
            )
            resumed = make_engine(yorktown, small_config()).search(
                score_fn=gene_score,
                checkpointer=SearchCheckpointer(truncated),
            )
            assert resumed.history == reference.history, iteration
            assert resumed.best.gene() == reference.best.gene(), iteration

    def test_completed_checkpoint_resumes_to_final_result(self, yorktown,
                                                          tmp_path):
        path = str(tmp_path / "done.ckpt")
        first = make_engine(yorktown, small_config()).search(
            score_fn=gene_score, checkpointer=SearchCheckpointer(path)
        )
        # start_iteration == iterations: the loop body never runs again and
        # no score function is consulted
        def exploding(config, mapping):
            raise AssertionError("resumed search re-evaluated a candidate")

        again = make_engine(yorktown, small_config()).search(
            score_fn=exploding, checkpointer=SearchCheckpointer(path)
        )
        assert again.best.gene() == first.best.gene()
        assert again.history == first.history

    def test_unknown_version_raises(self, tmp_path):
        path = str(tmp_path / "future.ckpt")
        with open(path, "wb") as handle:
            pickle.dump({"version": 999}, handle)
        with pytest.raises(ValueError, match="version"):
            SearchCheckpointer(path).load()

    def test_truncated_checkpoint_degrades_to_scratch(self, yorktown,
                                                      tmp_path):
        """Regression: a disk-full/crash-truncated checkpoint must warn and
        resume from scratch, not raise EOFError/UnpicklingError."""
        path = str(tmp_path / "truncated.ckpt")
        make_engine(yorktown, small_config()).search(
            score_fn=gene_score, checkpointer=SearchCheckpointer(path)
        )
        with open(path, "rb") as handle:
            payload = handle.read()
        with open(path, "wb") as handle:
            handle.write(payload[: len(payload) // 2])

        with pytest.warns(RuntimeWarning, match="unreadable"):
            assert SearchCheckpointer(path).load() is None

        reference = make_engine(yorktown, small_config()).search(
            score_fn=gene_score
        )
        with pytest.warns(RuntimeWarning, match="unreadable"):
            resumed = make_engine(yorktown, small_config()).search(
                score_fn=gene_score, checkpointer=SearchCheckpointer(path)
            )
        # scratch run, bitwise equal to a never-checkpointed search — and
        # the corrupt file was overwritten with a fresh, loadable checkpoint
        assert resumed.history == reference.history
        assert resumed.best.gene() == reference.best.gene()
        state = SearchCheckpointer(path).load()
        assert state is not None
        assert state["iteration"] == small_config().iterations

    def test_garbage_checkpoint_degrades_to_scratch(self, tmp_path):
        path = str(tmp_path / "garbage.ckpt")
        with open(path, "wb") as handle:
            handle.write(b"this is not a pickle at all")
        with pytest.warns(RuntimeWarning, match="unreadable"):
            assert SearchCheckpointer(path).load() is None

    def test_non_dict_payload_degrades_to_scratch(self, tmp_path):
        path = str(tmp_path / "weird.ckpt")
        with open(path, "wb") as handle:
            pickle.dump([1, 2, 3], handle)
        with pytest.warns(RuntimeWarning, match="search state"):
            assert SearchCheckpointer(path).load() is None

    def test_save_is_atomic_no_tmp_left_behind(self, tmp_path):
        path = str(tmp_path / "atomic.ckpt")
        checkpointer = SearchCheckpointer(path)
        checkpointer.save({"iteration": 1, "cache": []})
        assert os.path.exists(path)
        leftovers = [
            name for name in os.listdir(tmp_path) if name.endswith(".tmp")
        ]
        assert leftovers == []
        state = checkpointer.load()
        assert state["iteration"] == 1
        assert state["version"] == SearchCheckpointer.VERSION


class TestEstimatorCacheWarmStart:
    def test_estimator_caches_round_trip(self, yorktown, u3cu3_supercircuit,
                                         tiny_dataset, tmp_path):
        path = str(tmp_path / "warm.ckpt")
        config = QMLPipelineConfig(
            evolution=EvolutionConfig(
                iterations=1, population_size=6, parent_size=2,
                mutation_size=2, crossover_size=2, seed=5,
                checkpoint_path=path,
            ),
            estimator=EstimatorConfig(mode="noise_sim", n_valid_samples=2),
        )
        pipeline = QuantumNASQMLPipeline(
            get_design_space("u3cu3"), tiny_dataset, 4, yorktown,
            encoder_for_task("mnist-4"), config=config,
        )
        pipeline.co_search()
        compiled = pipeline.estimator.parametric_transpile_cache.export_keys()
        assert os.path.exists(path)

        # a fresh estimator adopts the checkpointed compilations on load
        fresh = PerformanceEstimator(
            yorktown, EstimatorConfig(mode="noise_sim", n_valid_samples=2)
        )
        state = SearchCheckpointer(path, estimator=fresh).load()
        assert state is not None
        assert fresh.parametric_transpile_cache.export_keys() == compiled
