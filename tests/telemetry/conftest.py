"""Shared fixtures for the telemetry tests.

The instrumentation records into the process-global tracer/metrics, so the
integration tests that turn tracing on must save and restore that global
state — the suite may itself be running under ``REPRO_TRACE`` (the CI
telemetry lane does exactly that), and these tests must not silently
disarm it for everything that runs after them.
"""

from __future__ import annotations

import pytest

from repro import telemetry


@pytest.fixture
def clean_telemetry():
    """Detached, disabled, empty global telemetry; prior state restored."""
    tracer = telemetry.get_tracer()
    saved_enabled = tracer.enabled
    saved_writer = tracer.writer
    tracer.enabled = False
    tracer.writer = None
    telemetry.reset()
    try:
        yield telemetry
    finally:
        telemetry.reset()
        tracer.enabled = saved_enabled
        tracer.writer = saved_writer
