"""The ``python -m repro.telemetry summarize`` trace report."""

from __future__ import annotations

import pytest

from repro.telemetry.__main__ import main, summarize
from repro.telemetry.export import TraceWriter
from repro.telemetry.spans import Tracer


@pytest.fixture
def trace_path(tmp_path):
    """A small synthetic trace with every summarizable span family."""
    path = str(tmp_path / "trace.jsonl")
    tracer = Tracer()
    tracer.enabled = True
    tracer.writer = TraceWriter(path)
    with tracer.span("service.round", tenant="tenant-a", round=0):
        with tracer.span("engine.population", kind="qml", candidates=4):
            with tracer.span("scheduler.generation", generation=0, shards=2):
                with tracer.span("worker.shard", shard=0):
                    with tracer.span("engine.phase", phase="simulate"):
                        pass
                with tracer.span("worker.shard", shard=1):
                    with tracer.span("engine.phase", phase="score"):
                        pass
    with tracer.span("service.round", tenant="tenant-b", round=1):
        pass
    tracer.writer.close()
    return path


class TestSummarize:
    def test_reports_every_breakdown(self, trace_path, capsys):
        summarize(trace_path)
        out = capsys.readouterr().out
        assert "Top spans by total duration" in out
        assert "Per-tenant service rounds" in out
        assert "tenant-a" in out and "tenant-b" in out
        assert "Per-shard worker executions" in out
        assert "Per-phase engine breakdown" in out
        assert "simulate" in out and "score" in out
        assert "Critical path per generation" in out
        assert "worker.shard" in out

    def test_main_entrypoint_parses_args(self, trace_path, capsys):
        assert main(["summarize", trace_path, "--top", "3"]) == 0
        assert "spans" in capsys.readouterr().out

    def test_empty_trace_is_reported_not_crashed(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        summarize(str(path))
        assert "empty trace" in capsys.readouterr().out
