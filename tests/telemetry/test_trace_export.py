"""JSONL trace export: round-trips, fork guards, the REPRO_TRACE wiring."""

from __future__ import annotations

import json

from repro import telemetry
from repro.telemetry.export import TraceWriter, read_trace
from repro.telemetry.spans import SpanRecord, Tracer


def make_record(span_id=1, name="work"):
    return SpanRecord(
        name=name, span_id=span_id, parent_id=None,
        start=0.25, end=1.0, attributes={"shard": 0},
    )


class TestTraceWriter:
    def test_round_trip_through_jsonl(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        writer = TraceWriter(path)
        writer.write(make_record(1, "a"))
        writer.write(make_record(2, "b"))
        writer.close()
        restored = read_trace(path)
        assert [r.name for r in restored] == ["a", "b"]
        assert restored[0] == make_record(1, "a")

    def test_lines_are_sorted_json_objects(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        writer = TraceWriter(path)
        writer.write(make_record())
        writer.close()
        (line,) = open(path).read().splitlines()
        payload = json.loads(line)
        assert list(payload) == sorted(payload)
        assert payload["duration"] == 0.75

    def test_foreign_pid_writes_are_dropped(self, tmp_path):
        # simulate a forked child that inherited the parent's writer
        path = str(tmp_path / "trace.jsonl")
        writer = TraceWriter(path)
        writer._pid = writer._pid + 1
        writer.write(make_record())
        writer.close()
        assert writer._handle is None
        # lazily opened: a writer that never wrote never created the file
        assert not (tmp_path / "trace.jsonl").exists()

    def test_writer_attached_to_a_tracer_streams_finished_spans(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer()
        tracer.enabled = True
        tracer.writer = TraceWriter(path)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        tracer.writer.close()
        assert [r.name for r in read_trace(path)] == ["inner", "outer"]


class TestConfigure:
    def test_configure_and_disable_manage_the_global_writer(
        self, tmp_path, clean_telemetry
    ):
        path = str(tmp_path / "trace.jsonl")
        tracer = telemetry.configure(trace_path=path)
        assert tracer is telemetry.get_tracer()
        assert tracer.enabled
        with telemetry.span("configured"):
            pass
        telemetry.disable()
        assert tracer.writer is None
        assert not tracer.enabled
        assert [r.name for r in read_trace(path)] == ["configured"]

    def test_tracing_requested_reads_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert telemetry.tracing_requested() is None
        monkeypatch.setenv("REPRO_TRACE", "")
        assert telemetry.tracing_requested() is None
        monkeypatch.setenv("REPRO_TRACE", "out.jsonl")
        assert telemetry.tracing_requested() == "out.jsonl"
