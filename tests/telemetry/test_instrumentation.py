"""Instrumentation integration: spans appear, numbers never change.

The two halves of the telemetry acceptance contract:

* **coverage** — a traced sharded run produces the expected span tree:
  ``scheduler.generation`` roots, worker shard spans re-parented under
  them (after riding home inside ``_ShardResult`` payloads), engine
  phase spans, and per-tenant ``service.round`` spans with metrics;
* **observation-only** — scores are *bitwise* identical with tracing on
  and off, across workers 1 / 2 / 4, for the QML and VQE execution paths
  and for sharded gradient training.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import telemetry
from repro.core import get_design_space
from repro.core.estimator import EstimatorConfig, PerformanceEstimator
from repro.execution import ShardedExecutionEngine
from repro.qml import (
    ParameterShiftGradient,
    QNNModel,
    TrainConfig,
    encoder_for_task,
    make_classification_dataset,
    train_qnn,
)

WORKER_COUNTS = (1, 2, 4)


def sharded_engine(device, supercircuit, mode, n_valid, workers):
    estimator = PerformanceEstimator(
        device,
        EstimatorConfig(
            mode=mode,
            n_valid_samples=n_valid,
            workers=workers,
            shard_min_group_size=1,
        ),
    )
    return ShardedExecutionEngine(estimator, supercircuit)


def qml_population(device, seed=11, size=4, n_qubits=4):
    from repro.core import EvolutionConfig, EvolutionEngine

    space = get_design_space("u3cu3")
    evolution = EvolutionEngine(
        space, n_qubits, device, EvolutionConfig(seed=seed)
    )
    return [evolution.random_candidate() for _ in range(size)]


def evaluate_qml(device, supercircuit, dataset, workers):
    engine = sharded_engine(device, supercircuit, "noise_sim", 3, workers)
    try:
        return engine.evaluate_qml_population(
            qml_population(device), dataset, 4
        )
    finally:
        engine.close()


def evaluate_vqe(workers):
    from repro.core import SuperCircuit
    from repro.devices import get_device
    from repro.vqe import load_molecule

    molecule = load_molecule("h2")
    device = get_device("yorktown")
    space = get_design_space("u3cu3")
    supercircuit = SuperCircuit(space, molecule.n_qubits, encoder=None, seed=3)
    engine = sharded_engine(device, supercircuit, "noise_sim", 3, workers)
    try:
        return engine.evaluate_vqe_population(
            qml_population(device, seed=7, size=3, n_qubits=molecule.n_qubits),
            molecule,
        )
    finally:
        engine.close()


# ---------------------------------------------------------------------------
# Coverage: the span tree a traced run produces
# ---------------------------------------------------------------------------


class TestSpanCoverage:
    def test_worker_spans_reparent_under_the_generation_span(
        self, clean_telemetry, u3cu3_supercircuit, yorktown, tiny_dataset
    ):
        telemetry.configure(enabled=True)
        evaluate_qml(yorktown, u3cu3_supercircuit, tiny_dataset, workers=2)
        records = telemetry.get_tracer().records
        by_name = {}
        for record in records:
            by_name.setdefault(record.name, []).append(record)

        assert "engine.population" in by_name
        assert "scheduler.generation" in by_name
        generation_ids = {
            r.span_id for r in by_name["scheduler.generation"]
        }
        worker_spans = by_name["worker.shard"]
        assert worker_spans, "worker spans should ride home and be adopted"
        for span in worker_spans:
            assert span.parent_id in generation_ids
            assert "shard" in span.attributes
        # worker-side evaluation arrives nested under the worker span:
        # worker.shard > engine.population > engine.phase
        worker_ids = {r.span_id for r in worker_spans}
        population_spans = [
            r for r in by_name["engine.population"]
            if r.parent_id in worker_ids
        ]
        assert population_spans
        population_ids = {r.span_id for r in population_spans}
        phase_spans = by_name.get("engine.phase", [])
        assert any(r.parent_id in population_ids for r in phase_spans)

    def test_phase_histogram_observed(
        self, clean_telemetry, u3cu3_supercircuit, yorktown, tiny_dataset
    ):
        telemetry.configure(enabled=True)
        evaluate_qml(yorktown, u3cu3_supercircuit, tiny_dataset, workers=1)
        snapshot = telemetry.get_metrics().snapshot()
        phases = snapshot["histograms"].get("engine_phase_seconds", {})
        observed = {labels for labels in phases}
        assert "phase=schedule" in observed
        assert "phase=simulate" in observed
        assert "phase=score" in observed

    def test_untraced_run_records_nothing(
        self, clean_telemetry, u3cu3_supercircuit, yorktown, tiny_dataset
    ):
        evaluate_qml(yorktown, u3cu3_supercircuit, tiny_dataset, workers=2)
        assert telemetry.get_tracer().records == []

    def test_trace_file_written_for_sharded_run(
        self, clean_telemetry, u3cu3_supercircuit, yorktown, tiny_dataset,
        tmp_path,
    ):
        from repro.telemetry.export import read_trace

        path = str(tmp_path / "trace.jsonl")
        telemetry.configure(trace_path=path)
        evaluate_qml(yorktown, u3cu3_supercircuit, tiny_dataset, workers=2)
        telemetry.disable()
        names = {record.name for record in read_trace(path)}
        assert {"scheduler.generation", "worker.shard"} <= names


# ---------------------------------------------------------------------------
# Observation-only: bitwise on/off x workers matrix
# ---------------------------------------------------------------------------


class TestBitwiseOnOffMatrix:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_qml_scores_identical_with_tracing_on_and_off(
        self, clean_telemetry, u3cu3_supercircuit, yorktown, tiny_dataset,
        workers,
    ):
        off = evaluate_qml(yorktown, u3cu3_supercircuit, tiny_dataset, workers)
        telemetry.configure(enabled=True)
        on = evaluate_qml(yorktown, u3cu3_supercircuit, tiny_dataset, workers)
        assert on == off

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_vqe_scores_identical_with_tracing_on_and_off(
        self, clean_telemetry, workers
    ):
        off = evaluate_vqe(workers)
        telemetry.configure(enabled=True)
        on = evaluate_vqe(workers)
        assert on == off

    def test_traced_scores_identical_across_worker_counts(
        self, clean_telemetry, u3cu3_supercircuit, yorktown, tiny_dataset
    ):
        telemetry.configure(enabled=True)
        scores = {
            workers: evaluate_qml(
                yorktown, u3cu3_supercircuit, tiny_dataset, workers
            )
            for workers in WORKER_COUNTS
        }
        assert scores[1] == scores[2] == scores[4]


class TestGradientMatrix:
    @pytest.fixture(scope="class")
    def gradient_dataset(self):
        return make_classification_dataset(
            "telemetry-2", n_classes=2, n_features=16,
            n_train=8, n_valid=4, n_test=4, image_side=4, seed=5,
        )

    @staticmethod
    def train(dataset, workers):
        model = QNNModel(4, 2, encoder=encoder_for_task("mnist-2"))
        for qubit in range(4):
            model.add_trainable("ry", (qubit,))
        config = TrainConfig(epochs=1, batch_size=4, learning_rate=0.1, seed=0)
        gradient = ParameterShiftGradient(
            None, workers=workers, engine="sequential", seed=0
        )
        with gradient:
            return train_qnn(model, dataset, config, gradient_fn=gradient)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_weights_identical_with_tracing_on_and_off(
        self, clean_telemetry, gradient_dataset, workers
    ):
        off = self.train(gradient_dataset, workers)
        telemetry.configure(enabled=True)
        on = self.train(gradient_dataset, workers)
        assert np.array_equal(on.weights, off.weights)
        assert [h["train_loss"] for h in on.history] == [
            h["train_loss"] for h in off.history
        ]

    def test_gradient_worker_spans_reparent_under_the_step_span(
        self, clean_telemetry, gradient_dataset
    ):
        telemetry.configure(enabled=True)
        self.train(gradient_dataset, workers=2)
        records = telemetry.get_tracer().records
        steps = {
            r.span_id for r in records if r.name == "gradient.step"
        }
        worker_spans = [
            r for r in records if r.name == "worker.gradient_shard"
        ]
        assert worker_spans
        for span in worker_spans:
            assert span.parent_id in steps
