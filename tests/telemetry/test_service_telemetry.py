"""Per-tenant service telemetry: round spans + always-on metric counters."""

from __future__ import annotations

import dataclasses

import pytest

from repro import telemetry
from repro.core.estimator import EstimatorConfig
from repro.core.evolution import EvolutionConfig
from repro.qml import encoder_for_task
from repro.service import CoSearchService, SearchJob

EVOLUTION = EvolutionConfig(
    iterations=2,
    population_size=6,
    parent_size=3,
    mutation_size=2,
    crossover_size=1,
    seed=5,
)
ESTIMATOR = EstimatorConfig(
    mode="success_rate", workers=1, shard_min_group_size=1, n_valid_samples=8
)


def qml_job(name, dataset, seed):
    return SearchJob(
        name=name,
        kind="qml",
        space="u3cu3",
        device="yorktown",
        n_qubits=4,
        evolution=dataclasses.replace(EVOLUTION, seed=seed),
        estimator=ESTIMATOR,
        dataset=dataset,
        n_classes=4,
        encoder=encoder_for_task("mnist-4"),
        seed=3,
    )


@pytest.fixture
def finished_service(clean_telemetry, tiny_dataset):
    telemetry.configure(enabled=True)
    with CoSearchService(max_workers=1, max_concurrent_jobs=2) as service:
        service.submit(qml_job("tenant-a", tiny_dataset, seed=5))
        service.submit(qml_job("tenant-b", tiny_dataset, seed=9))
        service.run()
        yield service


class TestServiceTelemetry:
    def test_round_spans_carry_tenant_and_round(self, finished_service):
        rounds = [
            r for r in telemetry.get_tracer().records
            if r.name == "service.round"
        ]
        assert len(rounds) == finished_service.rounds
        tenants = {r.attributes["tenant"] for r in rounds}
        assert tenants == {"tenant-a", "tenant-b"}
        indices = sorted(r.attributes["round"] for r in rounds)
        assert indices == list(range(finished_service.rounds))

    def test_metric_counters_match_tenant_stats(self, finished_service):
        metrics = telemetry.get_metrics()
        for name, stats in finished_service.tenant_stats.items():
            assert metrics.value(
                "service_generations_total", tenant=name
            ) == stats.generations
            assert metrics.value(
                "service_candidates_total", tenant=name
            ) == stats.candidates
            assert metrics.value(
                "service_cache_hits_total", tenant=name
            ) == stats.cache_hits
            assert metrics.value(
                "service_cache_misses_total", tenant=name
            ) == stats.cache_misses
            assert metrics.value(
                "service_simulator_seconds_total", tenant=name
            ) == pytest.approx(stats.simulator_seconds)

    def test_counters_accumulate_with_tracing_disabled(
        self, clean_telemetry, tiny_dataset
    ):
        # metrics are always-on: accounting survives without REPRO_TRACE
        with CoSearchService(max_workers=1, max_concurrent_jobs=1) as service:
            service.submit(qml_job("solo", tiny_dataset, seed=5))
            service.run()
            stats = service.tenant_stats["solo"]
        assert telemetry.get_tracer().records == []
        assert telemetry.get_metrics().value(
            "service_generations_total", tenant="solo"
        ) == stats.generations
