"""MetricsRegistry semantics: instruments, label keying, snapshot, export."""

from __future__ import annotations

import pytest

from repro.telemetry.metrics import MetricsRegistry


class TestInstruments:
    def test_counter_accumulates_and_rejects_negatives(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs_total", backend="noise_sim")
        counter.inc()
        counter.inc(2.5)
        assert registry.value("jobs_total", backend="noise_sim") == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("active_jobs")
        gauge.set(4)
        gauge.dec()
        gauge.inc(0.5)
        assert registry.value("active_jobs") == 3.5

    def test_histogram_summary_statistics(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("phase_seconds", phase="simulate")
        for value in (1.0, 3.0, 2.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == 6.0
        assert histogram.min == 1.0
        assert histogram.max == 3.0
        assert histogram.mean == 2.0

    def test_empty_histogram_mean_is_zero(self):
        assert MetricsRegistry().histogram("x").mean == 0.0


class TestKeying:
    def test_same_labels_return_the_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("hits", tenant="qml", kind="bound")
        b = registry.counter("hits", kind="bound", tenant="qml")
        assert a is b

    def test_different_labels_are_distinct(self):
        registry = MetricsRegistry()
        registry.counter("hits", tenant="a").inc()
        registry.counter("hits", tenant="b").inc(5)
        assert registry.value("hits", tenant="a") == 1
        assert registry.value("hits", tenant="b") == 5

    def test_unknown_series_reads_none(self):
        assert MetricsRegistry().value("nope", tenant="x") is None


class TestSnapshot:
    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", tenant="qml").inc(2)
        registry.gauge("active").set(1)
        registry.histogram("seconds", phase="bind").observe(0.5)
        snap = registry.snapshot()
        assert snap["counters"]["jobs_total"] == {"tenant=qml": 2.0}
        assert snap["gauges"]["active"] == {"": 1.0}
        assert snap["histograms"]["seconds"]["phase=bind"] == {
            "count": 1, "sum": 0.5, "min": 0.5, "max": 0.5, "mean": 0.5,
        }

    def test_render_prometheus_lines(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", tenant="qml").inc(2)
        registry.histogram("seconds", phase="bind").observe(0.5)
        text = registry.render_prometheus()
        assert 'jobs_total{tenant="qml"} 2.0' in text
        assert 'seconds_count{phase="bind"} 1' in text
        assert 'seconds_sum{phase="bind"} 0.5' in text
        assert text.endswith("\n")

    def test_reset_clears_every_series(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total").inc()
        registry.reset()
        assert registry.value("jobs_total") is None
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }
