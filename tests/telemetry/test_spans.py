"""Span semantics: nesting, no-op mode, capture, adoption, the ring buffer.

Everything here runs on *fresh* ``Tracer`` instances, never the process
global — the suite itself may be running under ``REPRO_TRACE`` and these
tests must not disturb (or depend on) the armed global tracer.
"""

from __future__ import annotations

import pytest

from repro.telemetry.spans import SpanRecord, Tracer, _NoopSpan


def enabled_tracer(**kwargs) -> Tracer:
    tracer = Tracer(**kwargs)
    tracer.enabled = True
    return tracer


class TestNesting:
    def test_parent_links_follow_the_stack(self):
        tracer = enabled_tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.record.parent_id == outer.record.span_id
            with tracer.span("sibling") as sibling:
                assert sibling.record.parent_id == outer.record.span_id
        assert outer.record.parent_id is None
        # inner spans finish before their parent
        names = [record.name for record in tracer.records]
        assert names == ["inner", "sibling", "outer"]

    def test_durations_are_non_negative_and_nested_within_parent(self):
        tracer = enabled_tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.records
        assert inner.duration >= 0.0
        assert outer.duration >= 0.0
        assert outer.start <= inner.start
        assert inner.end <= outer.end

    def test_span_ids_are_deterministic_small_integers(self):
        tracer = enabled_tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [r.span_id for r in tracer.records] == [1, 2]
        tracer.reset()
        with tracer.span("c"):
            pass
        assert [r.span_id for r in tracer.records] == [1]

    def test_current_span_id_tracks_the_open_span(self):
        tracer = enabled_tracer()
        assert tracer.current_span_id() is None
        with tracer.span("outer") as outer:
            assert tracer.current_span_id() == outer.record.span_id
        assert tracer.current_span_id() is None


class TestAttributes:
    def test_constructor_and_set_attributes_merge(self):
        tracer = enabled_tracer()
        with tracer.span("work", shard=3) as span:
            span.set(rows=17)
        (record,) = tracer.records
        assert record.attributes == {"shard": 3, "rows": 17}

    def test_event_records_a_zero_duration_span(self):
        tracer = enabled_tracer()
        with tracer.span("outer") as outer:
            tracer.event("retry", round=1)
        retry = tracer.records[0]
        assert retry.name == "retry"
        assert retry.duration == 0.0
        assert retry.parent_id == outer.record.span_id
        assert retry.attributes == {"round": 1}


class TestInactive:
    def test_disabled_tracer_returns_the_shared_noop(self):
        tracer = Tracer()
        span = tracer.span("work", shard=1)
        assert isinstance(span, _NoopSpan)
        assert tracer.span("other") is span
        with span as active:
            active.set(rows=1)
            assert active.record is None
        assert tracer.records == []

    def test_disabled_event_records_nothing(self):
        tracer = Tracer()
        tracer.event("retry")
        assert tracer.records == []

    def test_capture_activates_a_disabled_tracer(self):
        tracer = Tracer()
        assert not tracer.active
        with tracer.capture() as spans:
            assert tracer.active
            with tracer.span("work"):
                pass
        assert not tracer.active
        assert [s.name for s in spans] == ["work"]


class TestCapture:
    def test_capture_collects_spans_finished_while_open(self):
        tracer = enabled_tracer()
        with tracer.span("before"):
            pass
        with tracer.capture() as spans:
            with tracer.span("during"):
                pass
        with tracer.span("after"):
            pass
        assert [s.name for s in spans] == ["during"]
        assert [s.name for s in tracer.records] == ["before", "during", "after"]

    def test_root_span_is_last_in_the_capture(self):
        # the worker relies on this: elapsed_seconds = spans[-1].duration
        tracer = Tracer()
        with tracer.capture() as spans:
            with tracer.span("root"):
                with tracer.span("leaf"):
                    pass
        assert spans[-1].name == "root"
        assert spans[-1].parent_id is None


class TestAdoption:
    def worker_buffer(self):
        worker = Tracer()
        with worker.capture() as spans:
            with worker.span("worker.shard", shard=0):
                with worker.span("cache.compile"):
                    pass
        return spans

    def test_adopt_reassigns_ids_and_preserves_internal_links(self):
        spans = self.worker_buffer()
        parent = enabled_tracer()
        with parent.span("scheduler.generation") as generation:
            adopted = parent.adopt(spans)
        by_name = {record.name: record for record in adopted}
        root = by_name["worker.shard"]
        leaf = by_name["cache.compile"]
        assert root.parent_id == generation.record.span_id
        assert leaf.parent_id == root.span_id
        # fresh ids from the parent's own sequence, no collisions there
        adopted_ids = {record.span_id for record in adopted}
        assert len(adopted_ids) == len(adopted)
        assert generation.record.span_id not in adopted_ids

    def test_adopt_preserves_timestamps_and_attributes(self):
        spans = self.worker_buffer()
        parent = enabled_tracer()
        adopted = parent.adopt(spans)
        for original, copy in zip(spans, adopted):
            assert copy.start == original.start
            assert copy.end == original.end
            assert copy.attributes == original.attributes

    def test_adopt_on_inactive_tracer_drops_the_buffer(self):
        spans = self.worker_buffer()
        parent = Tracer()
        assert parent.adopt(spans) == []
        assert parent.records == []

    def test_adopt_with_explicit_parent(self):
        spans = self.worker_buffer()
        parent = enabled_tracer()
        adopted = parent.adopt(spans, parent_id=99)
        root = next(r for r in adopted if r.name == "worker.shard")
        assert root.parent_id == 99


class TestRingBuffer:
    def test_old_spans_fall_off_a_full_buffer(self):
        tracer = enabled_tracer(max_spans=3)
        for index in range(5):
            with tracer.span(f"span-{index}"):
                pass
        assert [r.name for r in tracer.records] == ["span-2", "span-3", "span-4"]


class TestSpanRecord:
    def test_round_trips_through_dict(self):
        record = SpanRecord(
            name="work", span_id=7, parent_id=3,
            start=1.0, end=2.5, attributes={"shard": 1},
        )
        payload = record.to_dict()
        assert payload["duration"] == pytest.approx(1.5)
        restored = SpanRecord.from_dict(payload)
        assert restored == record
