"""Tests for optimization passes and the end-to-end transpiler."""

import numpy as np
import pytest

from repro.devices.library import get_device
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.statevector import circuit_unitary
from repro.transpile.compiler import transpile
from repro.transpile.decompose import BASIS_GATES
from repro.transpile.passes import (
    cancel_adjacent_inverse_cx,
    drop_identity_rotations,
    merge_adjacent_rz,
    resynthesize_single_qubit_runs,
)


def _equal_up_to_phase(a, b, atol=1e-7):
    index = np.unravel_index(np.argmax(np.abs(a)), a.shape)
    phase = a[index] / b[index]
    return np.allclose(a, phase * b, atol=atol)


class TestPasses:
    def test_cancel_adjacent_cx_pairs(self):
        circuit = QuantumCircuit(2)
        circuit.add("cx", (0, 1))
        circuit.add("cx", (0, 1))
        circuit.add("h", (0,))
        out = cancel_adjacent_inverse_cx(circuit)
        assert out.count_ops() == {"h": 1}

    def test_cx_pairs_with_interference_not_cancelled(self):
        circuit = QuantumCircuit(2)
        circuit.add("cx", (0, 1))
        circuit.add("x", (1,))
        circuit.add("cx", (0, 1))
        out = cancel_adjacent_inverse_cx(circuit)
        assert out.count_ops()["cx"] == 2

    def test_merge_adjacent_rz(self):
        circuit = QuantumCircuit(1)
        circuit.add("rz", (0,), (0.3,))
        circuit.add("rz", (0,), (0.4,))
        out = merge_adjacent_rz(circuit)
        assert len(out) == 1
        assert out.instructions[0].params[0] == pytest.approx(0.7)

    def test_merge_adjacent_rz_cancels_to_identity(self):
        circuit = QuantumCircuit(1)
        circuit.add("rz", (0,), (0.5,))
        circuit.add("rz", (0,), (-0.5,))
        assert len(merge_adjacent_rz(circuit)) == 0

    def test_drop_identity_rotations(self):
        circuit = QuantumCircuit(2)
        circuit.add("rx", (0,), (0.0,))
        circuit.add("u3", (0,), (0.0, 0.0, 0.0))
        circuit.add("cry", (0, 1), (0.0,))
        circuit.add("ry", (1,), (0.4,))
        out = drop_identity_rotations(circuit)
        assert out.count_ops() == {"ry": 1}

    def test_resynthesize_single_qubit_runs_preserves_unitary(self):
        circuit = QuantumCircuit(2)
        circuit.add("h", (0,))
        circuit.add("t", (0,))
        circuit.add("rx", (0,), (0.3,))
        circuit.add("cx", (0, 1))
        circuit.add("s", (1,))
        circuit.add("rz", (1,), (0.2,))
        out = resynthesize_single_qubit_runs(circuit)
        assert _equal_up_to_phase(circuit_unitary(circuit), circuit_unitary(out))
        # the run of three 1q gates collapses into at most 5 basis gates
        assert len(out) <= len(circuit) + 2


class TestTranspile:
    def _logical_circuit(self):
        circuit = QuantumCircuit(4)
        for qubit in range(4):
            circuit.add("u3", (qubit,), (0.5, 0.2, -0.3))
        for qubit in range(4):
            circuit.add("cu3", (qubit, (qubit + 1) % 4), (0.8, 0.1, 0.4))
        return circuit

    def test_compiled_gates_in_basis(self):
        compiled = transpile(self._logical_circuit(), get_device("yorktown"),
                             initial_layout="noise_adaptive")
        for instruction in compiled.circuit.instructions:
            assert instruction.gate in BASIS_GATES

    def test_unitary_preserved_on_line_without_swaps(self):
        device = get_device("santiago")
        circuit = QuantumCircuit(3)
        circuit.add("u3", (0,), (0.4, 0.1, 0.9))
        circuit.add("cu3", (0, 1), (0.7, -0.2, 0.3))
        circuit.add("rzz", (1, 2), (1.1,))
        compiled = transpile(circuit, device, initial_layout="trivial",
                             optimization_level=2)
        assert compiled.num_swaps == 0
        reduced, used = compiled.reduced_circuit()
        assert used == (0, 1, 2)
        assert _equal_up_to_phase(circuit_unitary(circuit), circuit_unitary(reduced))

    def test_higher_optimization_levels_do_not_increase_gate_count(self):
        device = get_device("yorktown")
        circuit = self._logical_circuit()
        counts = [
            transpile(circuit, device, optimization_level=level).num_gates
            for level in (0, 1, 2)
        ]
        assert counts[1] <= counts[0]
        assert counts[2] <= counts[1]

    def test_optimization_level_3_not_worse_in_two_qubit_gates(self):
        device = get_device("belem")
        circuit = self._logical_circuit()
        level2 = transpile(circuit, device, optimization_level=2, seed=0)
        level3 = transpile(circuit, device, optimization_level=3, seed=0)
        assert level3.num_two_qubit_gates <= level2.num_two_qubit_gates

    def test_invalid_optimization_level(self):
        with pytest.raises(ValueError):
            transpile(QuantumCircuit(2), get_device("belem"), optimization_level=7)

    def test_summary_and_success_rate(self):
        compiled = transpile(self._logical_circuit(), get_device("quito"),
                             initial_layout="sabre", seed=1)
        summary = compiled.summary()
        assert 0 < summary["success_rate"] <= 1
        assert summary["depth"] > 0
        assert summary["n_gates"] == summary["n_1q"] + summary["n_2q"]

    def test_layout_sequence_spec(self):
        compiled = transpile(self._logical_circuit(), get_device("quito"),
                             initial_layout=(4, 1, 0, 3))
        assert compiled.initial_layout == {0: 4, 1: 1, 2: 0, 3: 3}

    def test_unknown_layout_strategy(self):
        with pytest.raises(ValueError):
            transpile(QuantumCircuit(2), get_device("quito"),
                      initial_layout="magic")


class TestCompiledCircuitPickling:
    """Compiled circuits cross the sharded-scheduler process boundary."""

    def _compiled(self):
        circuit = QuantumCircuit(3)
        circuit.add("h", (0,))
        circuit.add("rz", (1,), (0.7,))
        circuit.add("cx", (0, 2))
        return transpile(circuit, get_device("yorktown"), optimization_level=2)

    def test_pickle_drops_memos_and_rederives_identically(self):
        import pickle

        compiled = self._compiled()
        rate = compiled.success_rate()          # populate both memos
        reduced, used = compiled.reduced_circuit()
        restored = pickle.loads(pickle.dumps(compiled))
        assert restored._success_rate is None and restored._reduced is None
        assert restored.success_rate() == rate
        restored_reduced, restored_used = restored.reduced_circuit()
        assert restored_used == used
        assert [
            (inst.gate, inst.qubits, inst.params)
            for inst in restored_reduced.instructions
        ] == [
            (inst.gate, inst.qubits, inst.params)
            for inst in reduced.instructions
        ]
        assert restored.final_layout == compiled.final_layout
