"""Tests for basis-gate decomposition (unitary equivalence, gate counts)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum.circuit import Instruction, QuantumCircuit
from repro.quantum.gates import gate_matrix, gate_num_params
from repro.quantum.statevector import circuit_unitary
from repro.transpile.decompose import (
    BASIS_GATES,
    compiled_gate_count_u3,
    decompose_circuit,
    decompose_instruction,
    decompose_u3,
    u3_angles_from_matrix,
)

ANGLES = st.floats(-np.pi + 1e-3, np.pi - 1e-3, allow_nan=False)


def _equal_up_to_phase(a: np.ndarray, b: np.ndarray, atol=1e-7) -> bool:
    index = np.unravel_index(np.argmax(np.abs(a)), a.shape)
    if abs(b[index]) < 1e-12:
        return False
    phase = a[index] / b[index]
    return np.allclose(a, phase * b, atol=atol)


def _instruction_unitary(instructions, n_qubits):
    circuit = QuantumCircuit(n_qubits)
    circuit.extend(instructions)
    return circuit_unitary(circuit)


@settings(max_examples=30, deadline=None)
@given(theta=ANGLES, phi=ANGLES, lam=ANGLES)
def test_u3_angle_extraction_roundtrip(theta, phi, lam):
    matrix = gate_matrix("u3", (theta, phi, lam))
    recovered = u3_angles_from_matrix(matrix)
    rebuilt = gate_matrix("u3", recovered)
    assert _equal_up_to_phase(matrix, rebuilt)


@settings(max_examples=30, deadline=None)
@given(theta=ANGLES, phi=ANGLES, lam=ANGLES)
def test_decompose_u3_preserves_unitary(theta, phi, lam):
    original = gate_matrix("u3", (theta, phi, lam))
    decomposed = _instruction_unitary(decompose_u3(0, theta, phi, lam), 1)
    assert _equal_up_to_phase(original, decomposed)


def test_u3_compiled_gate_counts_match_paper():
    """U3 special cases: pruning angles reduces the compiled gate count.

    The paper's Table (5, 1, 4, 4, 4, 1, 1) is reproduced except for
    ``U3(theta, 0, lambda)`` where our ZSX template keeps a trailing RZ(pi)
    (5 gates instead of 4); the monotone benefit of pruning is unchanged.
    """
    assert compiled_gate_count_u3(0.7, 0.5, 0.3) == 5
    assert compiled_gate_count_u3(0.7, 0.5, 0.0) == 4
    assert compiled_gate_count_u3(0.7, 0.0, 0.3) <= 5
    assert compiled_gate_count_u3(0.7, 0.0, 0.0) == 4
    assert compiled_gate_count_u3(0.0, 0.5, 0.3) == 1
    assert compiled_gate_count_u3(0.0, 0.5, 0.0) == 1
    assert compiled_gate_count_u3(0.0, 0.0, 0.3) == 1
    assert compiled_gate_count_u3(0.0, 0.0, 0.0) == 0


TWO_QUBIT_PARAM_GATES = ["cu3", "cu1", "crx", "cry", "crz", "rzz", "rxx", "ryy", "rzx"]


@pytest.mark.parametrize("gate", TWO_QUBIT_PARAM_GATES)
def test_two_qubit_decompositions_preserve_unitary(gate):
    rng = np.random.default_rng(hash(gate) % 2**31)
    for _ in range(3):
        params = tuple(rng.uniform(-np.pi, np.pi, size=gate_num_params(gate)))
        instruction = Instruction(gate, (0, 1), params)
        decomposed = decompose_instruction(instruction)
        assert _equal_up_to_phase(
            _instruction_unitary([instruction], 2),
            _instruction_unitary(decomposed, 2),
        ), gate


@pytest.mark.parametrize("gate", ["cz", "cy", "swap", "cx"])
def test_fixed_two_qubit_decompositions(gate):
    instruction = Instruction(gate, (0, 1))
    decomposed = decompose_instruction(instruction)
    assert _equal_up_to_phase(
        _instruction_unitary([instruction], 2), _instruction_unitary(decomposed, 2)
    )


@pytest.mark.parametrize("gate", ["h", "s", "t", "sx", "x", "sh", "sdg", "tdg"])
def test_single_qubit_gates_decompose_to_basis(gate):
    instruction = Instruction(gate, (0,))
    decomposed = decompose_instruction(instruction)
    for out in decomposed:
        assert out.gate in BASIS_GATES
    assert _equal_up_to_phase(
        _instruction_unitary([instruction], 1), _instruction_unitary(decomposed, 1)
    )


def test_opaque_two_qubit_gate_is_kept():
    instruction = Instruction("sqswap", (0, 1))
    decomposed = decompose_instruction(instruction)
    assert decomposed == [instruction]


def test_decompose_circuit_only_contains_basis_or_opaque_gates():
    circuit = QuantumCircuit(3)
    circuit.add("u3", (0,), (0.4, 0.2, 0.1))
    circuit.add("cu3", (0, 1), (0.9, -0.3, 0.5))
    circuit.add("rzz", (1, 2), (0.6,))
    circuit.add("h", (2,))
    lowered = decompose_circuit(circuit)
    allowed = set(BASIS_GATES)
    for instruction in lowered.instructions:
        assert instruction.gate in allowed
    assert _equal_up_to_phase(circuit_unitary(circuit), circuit_unitary(lowered))


def test_identity_rotations_disappear():
    assert decompose_instruction(Instruction("rz", (0,), (0.0,))) == []
    assert decompose_instruction(Instruction("i", (0,))) == []
