"""Tests for layout selection and SWAP routing."""

import numpy as np
import pytest

from repro.devices.library import get_device
from repro.quantum.circuit import QuantumCircuit
from repro.transpile.layout import (
    interaction_weights,
    layout_fidelity_score,
    layout_from_sequence,
    noise_adaptive_layout,
    random_layout,
    sabre_layout,
    trivial_layout,
)
from repro.transpile.routing import route_circuit


def _ring_circuit(n_qubits=4):
    circuit = QuantumCircuit(n_qubits)
    for qubit in range(n_qubits):
        circuit.add("u3", (qubit,), (0.3, 0.2, 0.1))
    for qubit in range(n_qubits):
        circuit.add("cx", (qubit, (qubit + 1) % n_qubits))
    return circuit


class TestLayouts:
    def test_trivial_layout(self):
        device = get_device("santiago")
        layout = trivial_layout(4, device)
        assert layout == {0: 0, 1: 1, 2: 2, 3: 3}
        with pytest.raises(ValueError):
            trivial_layout(6, device)

    def test_layout_from_sequence_validation(self):
        device = get_device("santiago")
        assert layout_from_sequence([2, 0, 4, 1], device) == {0: 2, 1: 0, 2: 4, 3: 1}
        with pytest.raises(ValueError):
            layout_from_sequence([0, 0, 1, 2], device)
        with pytest.raises(ValueError):
            layout_from_sequence([0, 1, 2, 9], device)

    def test_random_layout_is_injective(self):
        device = get_device("quito")
        layout = random_layout(4, device, np.random.default_rng(0))
        assert len(set(layout.values())) == 4

    def test_interaction_weights(self):
        circuit = _ring_circuit(3)
        weights = interaction_weights(circuit)
        assert weights[(0, 1)] == 1
        assert weights[(1, 2)] == 1
        assert weights[(0, 2)] == 1

    def test_noise_adaptive_layout_valid_and_better_than_worst(self):
        device = get_device("yorktown")
        circuit = _ring_circuit(4)
        layout = noise_adaptive_layout(circuit, device)
        assert len(set(layout.values())) == 4
        assert all(0 <= p < device.n_qubits for p in layout.values())
        score = layout_fidelity_score(circuit, layout, device)
        scores = [
            layout_fidelity_score(
                circuit, random_layout(4, device, np.random.default_rng(seed)), device
            )
            for seed in range(20)
        ]
        assert score >= min(scores)

    def test_sabre_layout_valid(self):
        device = get_device("belem")
        circuit = _ring_circuit(4)
        layout = sabre_layout(circuit, device, n_trials=4, rng=np.random.default_rng(0))
        assert len(set(layout.values())) == 4

    def test_fidelity_score_in_unit_interval(self):
        device = get_device("santiago")
        circuit = _ring_circuit(4)
        score = layout_fidelity_score(circuit, trivial_layout(4, device), device)
        assert 0.0 < score <= 1.0


class TestRouting:
    def test_all_two_qubit_gates_respect_coupling_map(self):
        device = get_device("santiago")  # line topology forces SWAPs for a ring
        circuit = _ring_circuit(4)
        routed = route_circuit(circuit, device, trivial_layout(4, device))
        for instruction in routed.circuit.instructions:
            if len(instruction.qubits) == 2:
                assert device.topology.are_adjacent(*instruction.qubits)
        assert routed.num_swaps > 0

    def test_no_swaps_needed_when_already_adjacent(self):
        device = get_device("santiago")
        circuit = QuantumCircuit(3)
        circuit.add("cx", (0, 1))
        circuit.add("cx", (1, 2))
        routed = route_circuit(circuit, device, trivial_layout(3, device))
        assert routed.num_swaps == 0

    def test_final_layout_is_injective_and_complete(self):
        device = get_device("santiago")
        circuit = _ring_circuit(4)
        routed = route_circuit(circuit, device, trivial_layout(4, device))
        finals = list(routed.final_layout.values())
        assert len(set(finals)) == len(finals)
        assert set(routed.final_layout.keys()) == set(range(4))

    def test_routing_rejects_oversized_circuits(self):
        device = get_device("santiago")
        with pytest.raises(ValueError):
            route_circuit(QuantumCircuit(6), device, {i: i for i in range(6)})

    def test_routing_rejects_incomplete_layout(self):
        device = get_device("santiago")
        circuit = _ring_circuit(3)
        with pytest.raises(ValueError):
            route_circuit(circuit, device, {0: 0, 1: 1})

    def test_used_qubits_cover_layout(self):
        device = get_device("quito")
        circuit = _ring_circuit(4)
        layout = {0: 0, 1: 1, 2: 3, 3: 4}
        routed = route_circuit(circuit, device, layout)
        for physical in layout.values():
            assert physical in routed.used_qubits
