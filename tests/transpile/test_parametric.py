"""Parametric transpilation must reproduce the concrete pipeline exactly.

For every (circuit structure, layout spec, optimization level) the compiled
template's ``bind(values)`` is pinned against a fresh ``transpile`` of the
bound circuit: identical gate/qubit streams, angles equal modulo ``2*pi``
(the parametric pipeline skips angle normalization — a global phase), and
noisy observables (success rate, backend probabilities) equal to 1e-9.
Bindings that cross a compile-time branch must *refuse* (``try_bind`` →
``None``) rather than return an inexact circuit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.devices import QuantumBackend, get_device
from repro.quantum.circuit import ParameterizedCircuit
from repro.quantum.gates import gate_num_params
from repro.transpile.compiler import transpile
from repro.transpile.parametric import (
    ParametricBindMismatch,
    num_feature_params,
    parametric_fingerprint,
    parametric_transpile,
)

ATOL = 1e-9

GATES_1Q = ["u3", "rx", "ry", "rz", "u1", "h", "x", "sx"]
GATES_2Q = ["cx", "cu3", "crz", "rzz", "cry", "rxx", "cz", "swap", "cu1"]


def random_parameterized_circuit(n_qubits, n_ops, rng, n_features=4):
    """A random mixed circuit: trainable, encoder and constant gates."""
    circuit = ParameterizedCircuit(n_qubits)
    for _ in range(n_ops):
        if rng.random() < 0.55 or n_qubits == 1:
            gate = GATES_1Q[rng.integers(len(GATES_1Q))]
            qubits = [int(rng.integers(n_qubits))]
        else:
            gate = GATES_2Q[rng.integers(len(GATES_2Q))]
            a, b = rng.choice(n_qubits, size=2, replace=False)
            qubits = [int(a), int(b)]
        n_params = gate_num_params(gate)
        if n_params == 0:
            circuit.add_fixed(gate, qubits)
            continue
        draw = rng.random()
        if draw < 0.25:
            circuit.add_encoder(
                gate, qubits, [int(rng.integers(n_features)) for _ in range(n_params)]
            )
        elif draw < 0.6:
            circuit.add_trainable(gate, qubits)
        else:
            circuit.add_fixed(gate, qubits, rng.uniform(-np.pi, np.pi, size=n_params))
    return circuit


def random_binding(circuit, rng, n_features=4):
    weights = rng.uniform(-np.pi, np.pi, circuit.num_weights)
    features = rng.uniform(-1.5, 1.5, n_features)
    return weights, features


def layout_spec(kind, n_qubits, device, rng):
    if kind == "trivial":
        return None
    if kind == "sequence":
        return [int(q) for q in rng.permutation(device.n_qubits)[:n_qubits]]
    if kind == "dict":
        return {
            logical: int(physical)
            for logical, physical in enumerate(
                rng.permutation(device.n_qubits)[:n_qubits]
            )
        }
    return "noise_adaptive"


def angles_equal_mod_2pi(a, b, atol=ATOL):
    return abs((a - b + np.pi) % (2.0 * np.pi) - np.pi) < atol


def assert_bind_matches_fresh(bound_compiled, fresh):
    got = [(inst.gate, inst.qubits) for inst in bound_compiled.circuit.instructions]
    ref = [(inst.gate, inst.qubits) for inst in fresh.circuit.instructions]
    assert got == ref
    for got_inst, ref_inst in zip(
        bound_compiled.circuit.instructions, fresh.circuit.instructions
    ):
        for got_param, ref_param in zip(got_inst.params, ref_inst.params):
            assert angles_equal_mod_2pi(got_param, ref_param)
    assert bound_compiled.initial_layout == fresh.initial_layout
    assert bound_compiled.final_layout == fresh.final_layout
    assert bound_compiled.used_qubits == fresh.used_qubits
    assert bound_compiled.num_swaps == fresh.num_swaps
    assert bound_compiled.success_rate() == pytest.approx(
        fresh.success_rate(), abs=ATOL
    )


LAYOUT_KINDS = ["trivial", "sequence", "dict", "noise_adaptive"]


@pytest.mark.parametrize("layout_kind", LAYOUT_KINDS)
@pytest.mark.parametrize("optimization_level", [0, 1, 2, 3])
def test_bind_matches_fresh_transpile(layout_kind, optimization_level):
    """Random 2-6 qubit structures, three bindings each, against yorktown/jakarta."""
    rng = np.random.default_rng(
        11 * optimization_level + 29 * LAYOUT_KINDS.index(layout_kind)
    )
    for trial in range(4):
        n_qubits = int(rng.integers(2, 7))
        device = get_device("yorktown") if n_qubits <= 5 else get_device("jakarta")
        circuit = random_parameterized_circuit(n_qubits, int(rng.integers(5, 16)), rng)
        layout = layout_spec(layout_kind, n_qubits, device, rng)
        seed = int(rng.integers(1 << 30))
        weights, features = random_binding(circuit, rng)
        witness = np.concatenate([weights, features])
        parametric = parametric_transpile(
            circuit,
            device,
            initial_layout=layout,
            optimization_level=optimization_level,
            seed=seed,
            witness_values=witness,
        )
        for repetition in range(3):
            if repetition:
                weights, features = random_binding(circuit, rng)
            values = np.concatenate([weights, features])
            compiled = parametric.try_bind(values)
            fresh = transpile(
                circuit.bind(weights, features),
                device,
                initial_layout=layout,
                optimization_level=optimization_level,
                seed=seed,
            )
            if compiled is None:
                # the binding crossed a compile-time branch; refusing is the
                # correct (exact) behavior — the caches fall back to `fresh`
                continue
            assert_bind_matches_fresh(compiled, fresh)


def test_noisy_probabilities_match_to_1e9(yorktown):
    """Bound templates produce backend probabilities identical to fresh compiles."""
    rng = np.random.default_rng(5)
    backend = QuantumBackend(yorktown, shots=0, seed=0)
    for trial in range(3):
        circuit = random_parameterized_circuit(4, 12, rng)
        layout = layout_spec("sequence", 4, yorktown, rng)
        weights, features = random_binding(circuit, rng)
        witness = np.concatenate([weights, features])
        parametric = parametric_transpile(
            circuit, yorktown, initial_layout=layout, witness_values=witness
        )
        for repetition in range(2):
            if repetition:
                weights, features = random_binding(circuit, rng)
            compiled = parametric.try_bind(np.concatenate([weights, features]))
            if compiled is None:
                continue
            fresh = transpile(
                circuit.bind(weights, features), yorktown, initial_layout=layout
            )
            result = backend.run_compiled(compiled, n_logical=4, shots=0)
            reference = backend.run_compiled(fresh, n_logical=4, shots=0)
            np.testing.assert_allclose(
                result.probabilities, reference.probabilities, rtol=0, atol=ATOL
            )


def test_witness_binding_always_binds(yorktown):
    """The witness's own values can never cross a compile-time branch."""
    rng = np.random.default_rng(17)
    for trial in range(5):
        circuit = random_parameterized_circuit(3, 10, rng)
        weights, features = random_binding(circuit, rng)
        witness = np.concatenate([weights, features])
        parametric = parametric_transpile(
            circuit, yorktown, witness_values=witness
        )
        assert parametric.try_bind(witness) is not None


def test_binding_plan_is_immutable(yorktown):
    """Binding must not mutate the template: repeated binds are identical and
    earlier results are unaffected by later binds."""
    rng = np.random.default_rng(23)
    circuit = random_parameterized_circuit(4, 12, rng)
    weights, features = random_binding(circuit, rng)
    witness = np.concatenate([weights, features])
    parametric = parametric_transpile(circuit, yorktown, witness_values=witness)

    first = parametric.bind(witness)
    snapshot = [
        (inst.gate, inst.qubits, inst.params)
        for inst in first.circuit.instructions
    ]
    structure = (
        parametric.num_instructions,
        parametric.num_parametric_slots,
        parametric.num_guards,
        parametric.num_replay_nodes,
    )

    for _ in range(4):
        weights2, features2 = random_binding(circuit, rng)
        parametric.try_bind(np.concatenate([weights2, features2]))

    again = parametric.bind(witness)
    assert [
        (inst.gate, inst.qubits, inst.params)
        for inst in again.circuit.instructions
    ] == snapshot
    # the first result's object graph was not touched by later binds
    assert [
        (inst.gate, inst.qubits, inst.params)
        for inst in first.circuit.instructions
    ] == snapshot
    assert (
        parametric.num_instructions,
        parametric.num_parametric_slots,
        parametric.num_guards,
        parametric.num_replay_nodes,
    ) == structure


def test_branch_crossing_refuses_instead_of_guessing(yorktown):
    """A binding that zeroes a traced rotation must raise, not misbind."""
    circuit = ParameterizedCircuit(2)
    circuit.add_trainable("rz", [0])
    circuit.add_fixed("cx", [0, 1])
    circuit.add_trainable("rz", [1])

    witness = np.array([1.1, 0.7])
    parametric = parametric_transpile(
        circuit, yorktown, optimization_level=1, witness_values=witness
    )
    assert parametric.try_bind(witness) is not None
    # zeroing the first rotation drops it in the concrete pipeline -> the
    # recorded non-zero branch no longer holds
    with pytest.raises(ParametricBindMismatch):
        parametric.bind(np.array([0.0, 0.7]))


def test_reduced_circuit_is_prebuilt_and_consistent(yorktown):
    rng = np.random.default_rng(31)
    circuit = random_parameterized_circuit(3, 9, rng)
    weights, features = random_binding(circuit, rng)
    values = np.concatenate([weights, features])
    parametric = parametric_transpile(
        circuit, yorktown, initial_layout=[2, 0, 1], witness_values=values
    )
    compiled = parametric.bind(values)
    reduced, used = compiled.reduced_circuit()
    fresh = transpile(
        circuit.bind(weights, features), yorktown, initial_layout=[2, 0, 1]
    )
    fresh_reduced, fresh_used = fresh.reduced_circuit()
    assert used == fresh_used
    assert [(i.gate, i.qubits) for i in reduced.instructions] == [
        (i.gate, i.qubits) for i in fresh_reduced.instructions
    ]
    # the reduced view re-indexes the same instruction stream
    assert len(reduced.instructions) == len(compiled.circuit.instructions)


def test_fingerprint_ignores_values_and_sees_structure():
    a = ParameterizedCircuit(2)
    a.add_trainable("u3", [0])
    a.add_encoder("ry", [1], [2])
    a.add_fixed("cx", [0, 1])

    b = ParameterizedCircuit(2)
    b.add_trainable("u3", [0])
    b.add_encoder("ry", [1], [2])
    b.add_fixed("cx", [0, 1])
    assert parametric_fingerprint(a) == parametric_fingerprint(b)
    assert num_feature_params(a) == 3

    c = ParameterizedCircuit(2)
    c.add_trainable("u3", [0])
    c.add_encoder("ry", [1], [3])  # different feature slot
    c.add_fixed("cx", [0, 1])
    assert parametric_fingerprint(a) != parametric_fingerprint(c)


def test_bind_rejects_short_value_vectors(yorktown):
    circuit = ParameterizedCircuit(2)
    circuit.add_trainable("u3", [0])
    circuit.add_encoder("ry", [1], [1])
    parametric = parametric_transpile(circuit, yorktown)
    with pytest.raises(ValueError):
        parametric.bind(np.zeros(2))  # needs 3 weights + 2 features
