"""Tests for the density-matrix simulator and noisy execution."""

import numpy as np
import pytest

from repro.noise.channels import depolarizing_kraus, thermal_relaxation_kraus
from repro.noise.models import NoiseModel
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.density_matrix import (
    DensityMatrixSimulator,
    apply_kraus,
    apply_unitary,
    density_probabilities,
    expectation_pauli_sum_dm,
    expectation_z_all_dm,
    kraus_to_superoperator,
    purity,
    zero_density_matrix,
)
from repro.quantum.operators import PauliSum
from repro.quantum.statevector import expectation_z_all, probabilities, run_circuit


def _bell_circuit():
    circuit = QuantumCircuit(2)
    circuit.add("h", (0,))
    circuit.add("cx", (0, 1))
    return circuit


def _random_density_matrix(n_qubits, seed=0):
    rng = np.random.default_rng(seed)
    dim = 2**n_qubits
    mat = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    rho = mat @ mat.conj().T
    rho /= np.trace(rho)
    return rho.reshape((2,) * (2 * n_qubits))


def test_noiseless_density_matrix_matches_statevector():
    circuit = _bell_circuit()
    simulator = DensityMatrixSimulator(2, noise_model=None)
    rho_probs = density_probabilities(simulator.run(circuit))
    sv_probs = probabilities(run_circuit(circuit))[0]
    assert np.allclose(rho_probs, sv_probs, atol=1e-10)


def test_noiseless_z_expectations_match_statevector():
    circuit = QuantumCircuit(3)
    circuit.add("ry", (0,), (0.7,))
    circuit.add("cx", (0, 1))
    circuit.add("rx", (2,), (1.2,))
    simulator = DensityMatrixSimulator(3)
    dm_expectations = simulator.expectation_z_all(circuit, with_readout_error=False)
    sv_expectations = expectation_z_all(run_circuit(circuit))[0]
    assert np.allclose(dm_expectations, sv_expectations, atol=1e-10)


def test_pure_state_purity_one_and_noise_reduces_it():
    circuit = _bell_circuit()
    clean = DensityMatrixSimulator(2).run(circuit)
    assert np.isclose(purity(clean), 1.0, atol=1e-10)
    noisy_model = NoiseModel.uniform(2, two_qubit_error=0.05, edges=[(0, 1)])
    noisy = DensityMatrixSimulator(2, noisy_model).run(circuit)
    assert purity(noisy) < 1.0 - 1e-4


def test_kraus_application_preserves_trace():
    rho = _random_density_matrix(3)
    for kraus in (depolarizing_kraus(0.2, 1), thermal_relaxation_kraus(50.0, 40.0, 0.3)):
        out = apply_kraus(rho, kraus, (1,))
        assert np.isclose(
            np.trace(out.reshape(8, 8)).real, 1.0, atol=1e-9
        )


def test_superoperator_path_matches_naive_sum():
    rho = _random_density_matrix(3, seed=4)
    kraus = depolarizing_kraus(0.15, 2)
    fast = apply_kraus(rho, kraus, (0, 2))
    slow = np.zeros_like(rho)
    from repro.quantum.density_matrix import _apply_left, _apply_right

    for op in kraus:
        slow = slow + _apply_right(_apply_left(rho, op, (0, 2), 3), op, (0, 2), 3)
    assert np.allclose(fast, slow, atol=1e-10)


def test_kraus_to_superoperator_identity_channel():
    superop = kraus_to_superoperator([np.eye(2)])
    expected = np.einsum("ac,bd->abcd", np.eye(2), np.eye(2))
    assert np.allclose(superop, expected)


def test_full_depolarizing_gives_maximally_mixed_state():
    rho = zero_density_matrix(1)
    out = apply_kraus(rho, depolarizing_kraus(1.0, 1), (0,))
    matrix = out.reshape(2, 2)
    # with p=1 the state becomes (rho + X rho X + Y rho Y + Z rho Z)/3 which for
    # |0><0| has 1/3 vs 2/3 populations; just check it is mixed and unit trace
    assert np.isclose(np.trace(matrix).real, 1.0)
    assert purity(out) < 1.0


def test_expectation_pauli_sum_dm_matches_dense():
    rho = _random_density_matrix(2, seed=7)
    observable = PauliSum.from_terms(
        [(0.4, {0: "X"}), (0.6, {0: "Z", 1: "Z"}), (0.25, {})]
    )
    dense = observable.to_matrix(2)
    expected = float(np.real(np.trace(dense @ rho.reshape(4, 4))))
    assert np.isclose(expectation_pauli_sum_dm(rho, observable), expected, atol=1e-10)


def test_readout_error_biases_probabilities():
    circuit = QuantumCircuit(1)  # stays in |0>
    model = NoiseModel.uniform(1, single_qubit_error=0.0, readout_error=0.1)
    simulator = DensityMatrixSimulator(1, model)
    probs = simulator.probabilities(circuit, with_readout_error=True)
    assert probs[1] == pytest.approx(0.1, abs=1e-6)


def test_expectation_z_all_dm_shape():
    rho = zero_density_matrix(3)
    values = expectation_z_all_dm(rho)
    assert values.shape == (3,)
    assert np.allclose(values, 1.0)


def test_simulator_rejects_size_mismatch():
    simulator = DensityMatrixSimulator(2)
    with pytest.raises(ValueError):
        simulator.run(QuantumCircuit(3))


def test_unitary_application_matches_statevector_product():
    circuit = QuantumCircuit(2)
    circuit.add("u3", (0,), (0.3, 0.1, -0.4))
    circuit.add("cx", (0, 1))
    rho = zero_density_matrix(2)
    for instruction in circuit.instructions:
        rho = apply_unitary(rho, instruction.matrix(), instruction.qubits)
    sv = run_circuit(circuit)[0].reshape(-1)
    expected = np.outer(sv, sv.conj())
    assert np.allclose(rho.reshape(4, 4), expected, atol=1e-10)
