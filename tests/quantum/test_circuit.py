"""Tests for the circuit IR: instructions, circuits, parameterized circuits."""

import numpy as np
import pytest

from repro.quantum.circuit import (
    Instruction,
    ParamOp,
    ParameterizedCircuit,
    QuantumCircuit,
    const,
    feature,
    weight,
)
from repro.quantum.statevector import circuit_unitary


class TestInstruction:
    def test_normalizes_gate_aliases(self):
        inst = Instruction("CNOT", (0, 1))
        assert inst.gate == "cx"

    def test_rejects_wrong_qubit_count(self):
        with pytest.raises(ValueError):
            Instruction("cx", (0,))

    def test_rejects_duplicate_qubits(self):
        with pytest.raises(ValueError):
            Instruction("cx", (1, 1))

    def test_rejects_wrong_param_count(self):
        with pytest.raises(ValueError):
            Instruction("u3", (0,), (0.1,))

    def test_matrix_shape(self):
        assert Instruction("cu3", (0, 1), (0.1, 0.2, 0.3)).matrix().shape == (4, 4)


class TestQuantumCircuit:
    def test_append_checks_register_size(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(ValueError):
            circuit.add("x", (2,))

    def test_depth_and_counts(self):
        circuit = QuantumCircuit(3)
        circuit.add("h", (0,))
        circuit.add("cx", (0, 1))
        circuit.add("cx", (1, 2))
        circuit.add("x", (0,))
        assert circuit.depth() == 3
        assert circuit.count_ops() == {"h": 1, "cx": 2, "x": 1}
        assert circuit.num_two_qubit_gates() == 2
        assert circuit.num_single_qubit_gates() == 2

    def test_inverse_undoes_circuit(self):
        circuit = QuantumCircuit(2)
        circuit.add("h", (0,))
        circuit.add("u3", (1,), (0.4, -0.3, 0.9))
        circuit.add("cu3", (0, 1), (0.7, 0.1, -0.2))
        circuit.add("rzz", (0, 1), (0.5,))
        circuit.add("s", (0,))
        combined = circuit.compose(circuit.inverse())
        unitary = circuit_unitary(combined)
        phase = unitary[0, 0]
        assert np.allclose(unitary, phase * np.eye(4), atol=1e-9)

    def test_compose_size_check(self):
        small = QuantumCircuit(2)
        big = QuantumCircuit(3)
        with pytest.raises(ValueError):
            small.compose(big)

    def test_copy_is_independent(self):
        circuit = QuantumCircuit(1)
        circuit.add("x", (0,))
        clone = circuit.copy()
        clone.add("x", (0,))
        assert len(circuit) == 1
        assert len(clone) == 2


class TestParameterizedCircuit:
    def test_add_trainable_allocates_weights(self):
        pcirc = ParameterizedCircuit(2)
        first = pcirc.add_trainable("u3", (0,))
        second = pcirc.add_trainable("cu3", (0, 1))
        assert first == (0, 1, 2)
        assert second == (3, 4, 5)
        assert pcirc.num_weights == 6

    def test_fixed_mask_creates_constant_slots(self):
        pcirc = ParameterizedCircuit(1)
        created = pcirc.add_trainable("u3", (0,), fixed_mask=[False, True, False])
        assert created == (0, 1)
        assert pcirc.num_weights == 2
        op = pcirc.ops[0]
        assert op.slots[1].kind == "const"

    def test_encoder_requires_matching_features(self):
        pcirc = ParameterizedCircuit(1)
        with pytest.raises(ValueError):
            pcirc.add_encoder("u3", (0,), (0,))

    def test_bind_produces_concrete_circuit(self):
        pcirc = ParameterizedCircuit(2)
        pcirc.add_encoder("ry", (0,), (0,))
        pcirc.add_trainable("rx", (1,))
        pcirc.add_fixed("cx", (0, 1))
        weights = np.array([0.5])
        bound = pcirc.bind(weights, features_row=np.array([1.25]))
        assert bound.instructions[0].params == (1.25,)
        assert bound.instructions[1].params == (0.5,)
        assert bound.instructions[2].gate == "cx"

    def test_bind_without_features_raises_when_needed(self):
        pcirc = ParameterizedCircuit(1)
        pcirc.add_encoder("ry", (0,), (0,))
        with pytest.raises(ValueError):
            pcirc.bind(np.zeros(0))

    def test_bind_checks_weight_shape(self):
        pcirc = ParameterizedCircuit(1)
        pcirc.add_trainable("rx", (0,))
        with pytest.raises(ValueError):
            pcirc.bind(np.zeros(3))

    def test_resolve_params_batched(self):
        pcirc = ParameterizedCircuit(1)
        pcirc.add_encoder("ry", (0,), (1,))
        features = np.array([[0.0, 1.0], [0.0, 2.0]])
        resolved = pcirc.resolve_params(pcirc.ops[0], np.zeros(0), features)
        assert resolved.shape == (2, 1)
        assert np.allclose(resolved[:, 0], [1.0, 2.0])

    def test_weight_to_ops_mapping(self):
        pcirc = ParameterizedCircuit(2)
        pcirc.add_trainable("rx", (0,))
        pcirc.add_trainable("ry", (1,))
        mapping = pcirc.weight_to_ops()
        assert mapping == {0: [0], 1: [1]}

    def test_ensure_num_weights_grows_only(self):
        pcirc = ParameterizedCircuit(1)
        pcirc.add_trainable("rx", (0,))
        pcirc.ensure_num_weights(5)
        assert pcirc.num_weights == 5
        pcirc.ensure_num_weights(2)
        assert pcirc.num_weights == 5

    def test_init_weights_range(self):
        pcirc = ParameterizedCircuit(1)
        for _ in range(4):
            pcirc.add_trainable("rx", (0,))
        weights = pcirc.init_weights(np.random.default_rng(0))
        assert weights.shape == (4,)
        assert np.all(weights >= -np.pi) and np.all(weights < np.pi)

    def test_param_slot_validation(self):
        with pytest.raises(ValueError):
            ParamOp("rx", (0,), (const(0.1), const(0.2)))
        assert weight(3).kind == "weight"
        assert feature(2).kind == "input"
