"""Tests for the gate library: unitarity, derivatives, aliases."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum.gates import (
    GATES,
    canonical_name,
    controlled,
    gate_gradients,
    gate_matrix,
    gate_num_params,
    gate_num_qubits,
    gate_spec,
    is_parameterized,
)

ANGLES = st.floats(min_value=-2 * np.pi, max_value=2 * np.pi,
                   allow_nan=False, allow_infinity=False)


def _random_params(name, rng):
    return rng.uniform(-np.pi, np.pi, size=gate_num_params(name))


@pytest.mark.parametrize("name", sorted(GATES))
def test_every_gate_matrix_is_unitary(name):
    rng = np.random.default_rng(0)
    params = _random_params(name, rng)
    matrix = gate_matrix(name, params)
    dim = 2 ** gate_num_qubits(name)
    assert matrix.shape == (dim, dim)
    assert np.allclose(matrix @ matrix.conj().T, np.eye(dim), atol=1e-10)


@pytest.mark.parametrize("name", sorted(GATES))
def test_gate_gradients_match_finite_differences(name):
    if not is_parameterized(name):
        assert gate_gradients(name, ()) == ()
        return
    rng = np.random.default_rng(1)
    params = _random_params(name, rng)
    grads = gate_gradients(name, params)
    assert len(grads) == gate_num_params(name)
    eps = 1e-6
    for index, grad in enumerate(grads):
        plus = np.array(params)
        minus = np.array(params)
        plus[index] += eps
        minus[index] -= eps
        numeric = (gate_matrix(name, plus) - gate_matrix(name, minus)) / (2 * eps)
        assert np.allclose(grad, numeric, atol=1e-6), name


def test_alias_resolution():
    assert canonical_name("CNOT") == "cx"
    assert canonical_name("ZZ") == "rzz"
    assert canonical_name("zx") == "rzx"
    assert canonical_name("XX") == "rxx"
    assert canonical_name("p") == "u1"


def test_unknown_gate_raises():
    with pytest.raises(KeyError):
        gate_spec("definitely_not_a_gate")


def test_wrong_param_count_raises():
    with pytest.raises(ValueError):
        gate_matrix("rx", ())
    with pytest.raises(ValueError):
        gate_matrix("u3", (0.1,))


def test_controlled_structure():
    u = gate_matrix("u3", (0.3, 0.2, 0.1))
    cu = controlled(u)
    assert np.allclose(cu[:2, :2], np.eye(2))
    assert np.allclose(cu[2:, 2:], u)
    assert np.allclose(cu[:2, 2:], 0)


@settings(max_examples=25, deadline=None)
@given(theta=ANGLES, phi=ANGLES, lam=ANGLES)
def test_u3_decomposes_into_rz_ry_rz(theta, phi, lam):
    """U3(t, p, l) equals RZ(p) RY(t) RZ(l) up to a global phase."""
    u3 = gate_matrix("u3", (theta, phi, lam))
    composed = gate_matrix("rz", (phi,)) @ gate_matrix("ry", (theta,)) @ gate_matrix(
        "rz", (lam,)
    )
    # strip global phase via the largest-magnitude entry
    index = np.unravel_index(np.argmax(np.abs(u3)), u3.shape)
    if abs(composed[index]) < 1e-12:
        return
    phase = u3[index] / composed[index]
    assert np.allclose(u3, phase * composed, atol=1e-8)


@settings(max_examples=25, deadline=None)
@given(theta=ANGLES)
def test_rotation_periodicity(theta):
    """R(theta + 4*pi) == R(theta) for all standard rotations."""
    for name in ("rx", "ry", "rz", "rzz"):
        a = gate_matrix(name, (theta,))
        b = gate_matrix(name, (theta + 4 * np.pi,))
        assert np.allclose(a, b, atol=1e-8)


def test_sh_is_square_root_of_h():
    sh = gate_matrix("sh")
    h = gate_matrix("h")
    assert np.allclose(sh @ sh, h, atol=1e-10)


def test_sqswap_is_square_root_of_swap():
    sqswap = gate_matrix("sqswap")
    swap = gate_matrix("swap")
    assert np.allclose(sqswap @ sqswap, swap, atol=1e-10)


def test_cz_symmetry():
    cz = gate_matrix("cz")
    swap = gate_matrix("swap")
    assert np.allclose(swap @ cz @ swap, cz)
