"""Tests for shot sampling, basis changes and measurement planning."""

import numpy as np
import pytest

from repro.quantum.circuit import QuantumCircuit
from repro.quantum.measurement import (
    MeasurementPlan,
    basis_change_circuit,
    counts_to_probabilities,
    expectation_z_all_from_probabilities,
    expectation_z_from_probabilities,
    pauli_expectation_from_probabilities,
    sample_counts,
)
from repro.quantum.operators import PauliString, PauliSum
from repro.quantum.statevector import (
    expectation_pauli_sum,
    probabilities,
    run_circuit,
)


def test_sample_counts_distribution():
    probs = np.array([0.7, 0.3])
    counts = sample_counts(probs, shots=20000, rng=np.random.default_rng(0))
    assert counts.sum() == 20000
    assert counts[0] / 20000 == pytest.approx(0.7, abs=0.02)


def test_sample_counts_rejects_zero_vector():
    with pytest.raises(ValueError):
        sample_counts(np.zeros(4), shots=10)


def test_counts_to_probabilities():
    probs = counts_to_probabilities(np.array([30.0, 70.0]))
    assert np.allclose(probs, [0.3, 0.7])
    with pytest.raises(ValueError):
        counts_to_probabilities(np.zeros(2))


def test_expectation_z_from_probabilities():
    # |10> with qubit-0 = 1 and qubit-1 = 0
    probs = np.zeros(4)
    probs[2] = 1.0  # binary 10 -> qubit0=1, qubit1=0
    assert expectation_z_from_probabilities(probs, 0, 2) == pytest.approx(-1.0)
    assert expectation_z_from_probabilities(probs, 1, 2) == pytest.approx(1.0)
    both = expectation_z_all_from_probabilities(probs, 2)
    assert np.allclose(both, [-1.0, 1.0])


def test_basis_change_circuit_gates():
    circuit = basis_change_circuit(3, {0: "X", 1: "Y", 2: "Z"})
    names = [inst.gate for inst in circuit.instructions]
    assert names == ["h", "sdg", "h"]
    with pytest.raises(ValueError):
        basis_change_circuit(1, {0: "Q"})


def test_pauli_expectation_via_basis_change_matches_statevector():
    state_prep = QuantumCircuit(2)
    state_prep.add("ry", (0,), (0.9,))
    state_prep.add("cx", (0, 1))
    state_prep.add("rz", (1,), (0.4,))
    observable = PauliSum.from_terms(
        [(0.7, {0: "X", 1: "X"}), (0.2, {0: "Z"}), (0.1, {})]
    )
    expected = expectation_pauli_sum(run_circuit(state_prep), observable)[0]

    plan = MeasurementPlan(observable, 2)
    group_probs = []
    for basis_change, _terms in plan.settings():
        circuit = state_prep.compose(basis_change)
        group_probs.append(probabilities(run_circuit(circuit))[0])
    measured = plan.expectation_from_group_probabilities(group_probs)
    assert measured == pytest.approx(expected, abs=1e-9)


def test_measurement_plan_group_count_and_validation():
    observable = PauliSum.from_terms(
        [(1.0, {0: "Z"}), (1.0, {1: "Z"}), (1.0, {0: "X", 1: "X"})]
    )
    plan = MeasurementPlan(observable, 2)
    assert len(plan) == 2
    with pytest.raises(ValueError):
        plan.expectation_from_group_probabilities([np.ones(4) / 4])


def test_pauli_expectation_from_probabilities_parity():
    term = PauliString.from_dict(1.0, {0: "Z", 1: "Z"})
    probs = np.zeros(4)
    probs[3] = 1.0  # |11> -> even parity -> +1
    assert pauli_expectation_from_probabilities(probs, term, 2) == pytest.approx(1.0)
    probs = np.zeros(4)
    probs[1] = 1.0  # |01> -> odd parity -> -1
    assert pauli_expectation_from_probabilities(probs, term, 2) == pytest.approx(-1.0)
