"""Tests for the batched statevector simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum.circuit import ParameterizedCircuit, QuantumCircuit
from repro.quantum.operators import PauliString, PauliSum
from repro.quantum.statevector import (
    apply_matrix,
    apply_pauli_sum,
    circuit_unitary,
    expectation_pauli_string,
    expectation_pauli_sum,
    expectation_z,
    expectation_z_all,
    probabilities,
    run_circuit,
    run_parameterized,
    state_fidelity,
    zero_state,
)


def _random_circuit(n_qubits, n_gates, rng):
    circuit = QuantumCircuit(n_qubits)
    gates_1q = ["h", "x", "rx", "ry", "rz", "u3", "s", "t", "sx"]
    gates_2q = ["cx", "cz", "rzz", "cu3", "swap"]
    for _ in range(n_gates):
        if n_qubits > 1 and rng.random() < 0.4:
            name = rng.choice(gates_2q)
            qubits = tuple(rng.choice(n_qubits, size=2, replace=False))
        else:
            name = rng.choice(gates_1q)
            qubits = (int(rng.integers(n_qubits)),)
        from repro.quantum.gates import gate_num_params

        params = tuple(rng.uniform(-np.pi, np.pi, size=gate_num_params(name)))
        circuit.add(name, qubits, params)
    return circuit


def test_zero_state_normalised():
    states = zero_state(3, batch=5)
    assert states.shape == (5, 2, 2, 2)
    assert np.allclose(probabilities(states).sum(axis=1), 1.0)
    assert np.allclose(probabilities(states)[:, 0], 1.0)


def test_bell_state_probabilities():
    circuit = QuantumCircuit(2)
    circuit.add("h", (0,))
    circuit.add("cx", (0, 1))
    probs = probabilities(run_circuit(circuit))[0]
    assert np.allclose(probs, [0.5, 0, 0, 0.5], atol=1e-12)


def test_norm_preserved_by_random_circuits():
    rng = np.random.default_rng(3)
    for _ in range(5):
        circuit = _random_circuit(3, 12, rng)
        states = run_circuit(circuit)
        assert np.isclose(probabilities(states).sum(), 1.0, atol=1e-10)


def test_apply_matrix_matches_full_unitary():
    """Local application equals embedding the gate in the full register."""
    rng = np.random.default_rng(5)
    circuit = _random_circuit(3, 8, rng)
    unitary = circuit_unitary(circuit)
    state_direct = run_circuit(circuit)[0].reshape(-1)
    state_from_unitary = unitary[:, 0]
    assert np.allclose(state_direct, state_from_unitary, atol=1e-10)


def test_apply_matrix_batched_per_sample_matrices():
    rng = np.random.default_rng(7)
    thetas = rng.uniform(-np.pi, np.pi, size=3)
    from repro.quantum.gates import gate_matrix

    matrices = np.stack([gate_matrix("ry", (t,)) for t in thetas])
    states = zero_state(2, batch=3)
    batched = apply_matrix(states, matrices, (1,))
    for index, theta in enumerate(thetas):
        single = apply_matrix(zero_state(2, 1), gate_matrix("ry", (theta,)), (1,))
        assert np.allclose(batched[index], single[0])


def test_expectation_z_matches_dense():
    rng = np.random.default_rng(11)
    circuit = _random_circuit(3, 10, rng)
    states = run_circuit(circuit)
    vector = states[0].reshape(-1)
    for qubit in range(3):
        dense = PauliString.from_dict(1.0, {qubit: "Z"}).to_matrix(3)
        expected = np.real(vector.conj() @ dense @ vector)
        assert np.isclose(expectation_z(states, qubit)[0], expected, atol=1e-10)
    all_z = expectation_z_all(states)
    assert all_z.shape == (1, 3)


def test_expectation_pauli_sum_matches_dense():
    rng = np.random.default_rng(13)
    circuit = _random_circuit(3, 10, rng)
    states = run_circuit(circuit)
    vector = states[0].reshape(-1)
    observable = PauliSum.from_terms(
        [(0.5, {0: "X", 1: "Y"}), (-0.7, {2: "Z"}), (0.2, {}), (1.1, {0: "Z", 2: "X"})]
    )
    dense = observable.to_matrix(3)
    expected = np.real(vector.conj() @ dense @ vector)
    assert np.isclose(expectation_pauli_sum(states, observable)[0], expected, atol=1e-9)


def test_apply_pauli_sum_matches_dense():
    rng = np.random.default_rng(17)
    circuit = _random_circuit(2, 6, rng)
    states = run_circuit(circuit)
    observable = PauliSum.from_terms([(0.3, {0: "X"}), (0.9, {0: "Z", 1: "Z"})])
    applied = apply_pauli_sum(states, observable)[0].reshape(-1)
    dense = observable.to_matrix(2) @ states[0].reshape(-1)
    assert np.allclose(applied, dense, atol=1e-10)


def test_run_parameterized_batches_match_individual_binds():
    pcirc = ParameterizedCircuit(2)
    pcirc.add_encoder("ry", (0,), (0,))
    pcirc.add_encoder("rz", (1,), (1,))
    pcirc.add_trainable("cu3", (0, 1))
    rng = np.random.default_rng(19)
    weights = pcirc.init_weights(rng)
    features = rng.uniform(0, np.pi, size=(4, 2))
    batched = run_parameterized(pcirc, weights, features)
    for index in range(4):
        bound = pcirc.bind(weights, features[index])
        single = run_circuit(bound)
        assert np.allclose(batched[index], single[0], atol=1e-10)


def test_circuit_unitary_is_unitary():
    rng = np.random.default_rng(23)
    circuit = _random_circuit(3, 9, rng)
    unitary = circuit_unitary(circuit)
    assert np.allclose(unitary @ unitary.conj().T, np.eye(8), atol=1e-10)


def test_state_fidelity_bounds():
    a = zero_state(2)[0]
    circuit = QuantumCircuit(2)
    circuit.add("x", (0,))
    b = run_circuit(circuit)[0]
    assert np.isclose(state_fidelity(a, a), 1.0)
    assert np.isclose(state_fidelity(a, b), 0.0)


@settings(max_examples=20, deadline=None)
@given(theta=st.floats(-np.pi, np.pi, allow_nan=False))
def test_ry_rotation_expectation(theta):
    """<Z> after RY(theta) on |0> equals cos(theta)."""
    circuit = QuantumCircuit(1)
    circuit.add("ry", (0,), (theta,))
    states = run_circuit(circuit)
    assert np.isclose(expectation_z(states, 0)[0], np.cos(theta), atol=1e-9)
