"""Batched density-matrix primitives against their single-sample references."""

from __future__ import annotations

import numpy as np
import pytest

from repro.noise.channels import (
    amplitude_damping_kraus,
    depolarizing_kraus,
    thermal_relaxation_kraus,
)
from repro.quantum.density_matrix import (
    apply_kraus,
    apply_kraus_batch,
    apply_unitary,
    apply_unitary_batch,
    density_probabilities,
    density_probabilities_batch,
    zero_density_matrices,
    zero_density_matrix,
)
from repro.quantum.gates import gate_matrix

ATOL = 1e-12


def random_density_stack(n_qubits: int, batch: int, rng: np.random.Generator):
    """A stack of valid (PSD, trace-one) density matrices."""
    dim = 2**n_qubits
    rhos = np.empty((batch,) + (2,) * (2 * n_qubits), dtype=complex)
    for index in range(batch):
        mat = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
        rho = mat @ mat.conj().T
        rho /= np.trace(rho)
        rhos[index] = rho.reshape((2,) * (2 * n_qubits))
    return rhos


def test_zero_density_matrices_matches_single():
    batch = zero_density_matrices(3, batch=4)
    single = zero_density_matrix(3)
    assert batch.shape == (4,) + (2,) * 6
    for index in range(4):
        np.testing.assert_array_equal(batch[index], single)


@pytest.mark.parametrize("n_qubits,qubits", [(2, (0,)), (3, (2,)), (3, (0, 2)),
                                             (4, (3, 1))])
def test_apply_unitary_batch_shared_matrix(n_qubits, qubits):
    rng = np.random.default_rng(21)
    rhos = random_density_stack(n_qubits, 5, rng)
    gate = "u3" if len(qubits) == 1 else "cu3"
    matrix = gate_matrix(gate, rng.uniform(-np.pi, np.pi, size=3))

    batched = apply_unitary_batch(rhos, matrix, qubits)
    for index in range(rhos.shape[0]):
        expected = apply_unitary(rhos[index], matrix, qubits)
        np.testing.assert_allclose(batched[index], expected, rtol=0, atol=ATOL)


@pytest.mark.parametrize("n_qubits,qubits", [(2, (1,)), (3, (0, 2))])
def test_apply_unitary_batch_per_sample_matrices(n_qubits, qubits):
    rng = np.random.default_rng(33)
    batch = 4
    rhos = random_density_stack(n_qubits, batch, rng)
    gate = "u3" if len(qubits) == 1 else "cu3"
    matrices = np.stack([
        gate_matrix(gate, rng.uniform(-np.pi, np.pi, size=3))
        for _ in range(batch)
    ])

    batched = apply_unitary_batch(rhos, matrices, qubits)
    for index in range(batch):
        expected = apply_unitary(rhos[index], matrices[index], qubits)
        np.testing.assert_allclose(batched[index], expected, rtol=0, atol=ATOL)


@pytest.mark.parametrize("kraus_factory", [
    lambda: amplitude_damping_kraus(0.13),                    # 2 operators
    lambda: thermal_relaxation_kraus(50e3, 70e3, 300.0),      # few operators
    lambda: depolarizing_kraus(0.05, 1),                      # 4 operators
])
def test_apply_kraus_batch_single_qubit(kraus_factory):
    rng = np.random.default_rng(55)
    rhos = random_density_stack(3, 4, rng)
    kraus_ops = kraus_factory()
    batched = apply_kraus_batch(rhos, kraus_ops, (1,))
    for index in range(rhos.shape[0]):
        expected = apply_kraus(rhos[index], kraus_ops, (1,))
        np.testing.assert_allclose(batched[index], expected, rtol=0, atol=ATOL)


def test_apply_kraus_batch_two_qubit_depolarizing():
    rng = np.random.default_rng(77)
    rhos = random_density_stack(3, 3, rng)
    kraus_ops = depolarizing_kraus(0.08, 2)   # 16 operators -> superoperator path
    batched = apply_kraus_batch(rhos, kraus_ops, (0, 2))
    for index in range(rhos.shape[0]):
        expected = apply_kraus(rhos[index], kraus_ops, (0, 2))
        np.testing.assert_allclose(batched[index], expected, rtol=0, atol=ATOL)


def test_density_probabilities_batch_matches_loop():
    rng = np.random.default_rng(88)
    rhos = random_density_stack(3, 6, rng)
    batched = density_probabilities_batch(rhos)
    assert batched.shape == (6, 8)
    for index in range(6):
        np.testing.assert_allclose(
            batched[index], density_probabilities(rhos[index]), rtol=0, atol=ATOL
        )
    np.testing.assert_allclose(batched.sum(axis=1), 1.0, rtol=0, atol=1e-12)


def test_apply_unitary_batch_rejects_wrong_batch_dimension():
    rng = np.random.default_rng(3)
    rhos = random_density_stack(2, 3, rng)
    matrices = np.stack([gate_matrix("x") for _ in range(2)])  # wrong batch
    with pytest.raises(ValueError):
        apply_unitary_batch(rhos, matrices, (0,))
