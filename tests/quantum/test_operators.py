"""Tests for Pauli strings, Pauli sums and commutation grouping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum.operators import PauliString, PauliSum, group_commuting


class TestPauliString:
    def test_identity_factors_are_dropped(self):
        term = PauliString.from_dict(1.0, {0: "I", 1: "X"})
        assert term.paulis == ((1, "X"),)
        assert term.weight() == 1

    def test_invalid_label_raises(self):
        with pytest.raises(ValueError):
            PauliString.from_dict(1.0, {0: "Q"})

    def test_from_label(self):
        term = PauliString.from_label(0.5, "XIZ")
        assert term.paulis == ((0, "X"), (2, "Z"))
        assert term.label(3) == "XIZ"

    def test_to_matrix_hermitian(self):
        term = PauliString.from_dict(0.7, {0: "X", 1: "Y"})
        matrix = term.to_matrix(2)
        assert np.allclose(matrix, matrix.conj().T)

    def test_commutes_qubitwise(self):
        a = PauliString.from_dict(1.0, {0: "X", 1: "Z"})
        b = PauliString.from_dict(1.0, {0: "X", 2: "Y"})
        c = PauliString.from_dict(1.0, {0: "Z"})
        assert a.commutes_qubitwise(b)
        assert not a.commutes_qubitwise(c)


class TestPauliSum:
    def test_simplify_merges_duplicates(self):
        total = PauliSum.from_terms(
            [(0.5, {0: "Z"}), (0.25, {0: "Z"}), (1e-15, {1: "X"})]
        ).simplify()
        assert len(total) == 1
        assert total.terms[0].coefficient == pytest.approx(0.75)

    def test_constant_and_min_qubits(self):
        total = PauliSum.from_terms([(0.3, {}), (0.1, {3: "Z"})])
        assert total.constant == pytest.approx(0.3)
        assert total.n_qubits_min == 4

    def test_ground_energy_single_qubit(self):
        total = PauliSum.from_terms([(1.0, {0: "Z"})])
        assert total.ground_energy_dense(1) == pytest.approx(-1.0)

    def test_scaled_and_shifted(self):
        total = PauliSum.from_terms([(1.0, {0: "Z"})])
        modified = total.scaled(2.0).shifted(0.5)
        assert modified.ground_energy_dense(1) == pytest.approx(-1.5)

    def test_addition_concatenates_terms(self):
        a = PauliSum.from_terms([(1.0, {0: "Z"})])
        b = PauliSum.from_terms([(2.0, {1: "X"})])
        assert len(a + b) == 2


class TestGrouping:
    def test_grouping_covers_all_non_identity_terms(self):
        observable = PauliSum.from_terms(
            [
                (0.5, {0: "Z"}),
                (0.2, {0: "Z", 1: "Z"}),
                (0.1, {0: "X", 1: "X"}),
                (0.3, {}),
            ]
        )
        groups = group_commuting(observable)
        grouped_terms = [t for group in groups for t in group]
        assert len(grouped_terms) == 3
        # Z terms share a group; the XX term needs its own setting
        assert len(groups) == 2

    def test_groups_are_internally_commuting(self):
        rng = np.random.default_rng(0)
        terms = []
        for _ in range(20):
            paulis = {
                int(q): rng.choice(["X", "Y", "Z"])
                for q in rng.choice(4, size=rng.integers(1, 4), replace=False)
            }
            terms.append((float(rng.normal()), paulis))
        groups = group_commuting(PauliSum.from_terms(terms))
        for group in groups:
            for i, a in enumerate(group):
                for b in group[i + 1 :]:
                    assert a.commutes_qubitwise(b)


@settings(max_examples=20, deadline=None)
@given(
    coefficients=st.lists(
        st.floats(-2, 2, allow_nan=False), min_size=1, max_size=5
    )
)
def test_pauli_sum_matrix_is_hermitian(coefficients):
    rng = np.random.default_rng(42)
    terms = []
    for coefficient in coefficients:
        paulis = {
            int(q): rng.choice(["X", "Y", "Z"])
            for q in rng.choice(3, size=rng.integers(1, 3), replace=False)
        }
        terms.append((coefficient, paulis))
    matrix = PauliSum.from_terms(terms).to_matrix(3)
    assert np.allclose(matrix, matrix.conj().T)
