"""Tests for gradient engines: adjoint, parameter shift, finite differences."""

import numpy as np
import pytest

from repro.quantum.autodiff import (
    adjoint_gradient,
    finite_difference_gradient,
    parameter_shift_jacobian,
)
from repro.quantum.circuit import ParameterizedCircuit
from repro.quantum.operators import PauliSum
from repro.quantum.statevector import (
    expectation_pauli_sum,
    expectation_z_all,
    run_parameterized,
)


def _toy_circuit(with_encoder=True):
    pcirc = ParameterizedCircuit(3)
    if with_encoder:
        pcirc.add_encoder("ry", (0,), (0,))
        pcirc.add_encoder("rx", (1,), (1,))
    pcirc.add_trainable("u3", (0,))
    pcirc.add_trainable("cu3", (0, 1))
    pcirc.add_trainable("rzz", (1, 2))
    pcirc.add_fixed("h", (2,))
    pcirc.add_trainable("crx", (2, 0))
    return pcirc


OBSERVABLE = PauliSum.from_terms(
    [(0.8, {0: "Z"}), (0.5, {1: "Z", 2: "Z"}), (-0.3, {0: "X", 2: "Y"}), (0.1, {})]
)


def test_adjoint_matches_finite_difference_observable():
    pcirc = _toy_circuit()
    rng = np.random.default_rng(0)
    weights = pcirc.init_weights(rng)
    features = rng.uniform(0, np.pi, size=(5, 2))

    def loss(w):
        states = run_parameterized(pcirc, w, features)
        return float(np.sum(expectation_pauli_sum(states, OBSERVABLE)))

    numeric = finite_difference_gradient(loss, weights)
    analytic = adjoint_gradient(pcirc, weights, features, observable=OBSERVABLE)
    assert np.allclose(numeric, analytic, atol=1e-6)


def test_adjoint_matches_finite_difference_z_coefficients():
    pcirc = _toy_circuit()
    rng = np.random.default_rng(1)
    weights = pcirc.init_weights(rng)
    features = rng.uniform(0, np.pi, size=(4, 2))
    coefficients = rng.normal(size=(4, 3))

    def loss(w):
        states = run_parameterized(pcirc, w, features)
        return float(np.sum(coefficients * expectation_z_all(states)))

    numeric = finite_difference_gradient(loss, weights)
    analytic = adjoint_gradient(pcirc, weights, features, z_coefficients=coefficients)
    assert np.allclose(numeric, analytic, atol=1e-6)


def test_adjoint_without_encoder():
    pcirc = _toy_circuit(with_encoder=False)
    rng = np.random.default_rng(2)
    weights = pcirc.init_weights(rng)

    def loss(w):
        states = run_parameterized(pcirc, w)
        return float(expectation_pauli_sum(states, OBSERVABLE)[0])

    numeric = finite_difference_gradient(loss, weights)
    analytic = adjoint_gradient(pcirc, weights, observable=OBSERVABLE)
    assert np.allclose(numeric, analytic, atol=1e-6)


def test_adjoint_requires_exactly_one_observable_spec():
    pcirc = _toy_circuit(with_encoder=False)
    weights = np.zeros(pcirc.num_weights)
    with pytest.raises(ValueError):
        adjoint_gradient(pcirc, weights)
    with pytest.raises(ValueError):
        adjoint_gradient(
            pcirc, weights, observable=OBSERVABLE, z_coefficients=np.zeros((1, 3))
        )


def test_parameter_shift_matches_adjoint_for_exact_gates():
    pcirc = ParameterizedCircuit(2)
    pcirc.add_trainable("rx", (0,))
    pcirc.add_trainable("ry", (1,))
    pcirc.add_trainable("rzz", (0, 1))
    pcirc.add_trainable("u3", (0,))
    rng = np.random.default_rng(3)
    weights = pcirc.init_weights(rng)
    observable = PauliSum.from_terms([(1.0, {0: "Z"}), (0.5, {1: "Z"})])

    def expectations_fn(w):
        states = run_parameterized(pcirc, w)
        return expectation_pauli_sum(states, observable)

    jacobian = parameter_shift_jacobian(expectations_fn, pcirc, weights)
    analytic = adjoint_gradient(pcirc, weights, observable=observable)
    assert jacobian.shape == (1, pcirc.num_weights)
    assert np.allclose(jacobian[0], analytic, atol=1e-6)


def test_parameter_shift_handles_controlled_gates_via_finite_difference():
    pcirc = ParameterizedCircuit(2)
    pcirc.add_trainable("cry", (0, 1))
    pcirc.add_fixed("h", (0,))
    rng = np.random.default_rng(4)
    weights = pcirc.init_weights(rng)
    observable = PauliSum.from_terms([(1.0, {1: "Z"})])

    def expectations_fn(w):
        states = run_parameterized(pcirc, w)
        return expectation_pauli_sum(states, observable)

    jacobian = parameter_shift_jacobian(expectations_fn, pcirc, weights)
    analytic = adjoint_gradient(pcirc, weights, observable=observable)
    assert np.allclose(jacobian[0], analytic, atol=1e-4)


def test_gradient_zero_for_unused_weight():
    pcirc = ParameterizedCircuit(2)
    pcirc.add_trainable("rx", (0,))
    pcirc.ensure_num_weights(3)  # weights 1 and 2 are unused
    weights = np.array([0.3, 1.0, -2.0])
    observable = PauliSum.from_terms([(1.0, {0: "Z"})])
    grads = adjoint_gradient(pcirc, weights, observable=observable)
    assert grads.shape == (3,)
    assert grads[1] == 0.0 and grads[2] == 0.0
    assert abs(grads[0]) > 1e-6
