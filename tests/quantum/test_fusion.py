"""Tests for static-mode gate fusion."""

import numpy as np
import pytest

from repro.quantum.circuit import QuantumCircuit
from repro.quantum.fusion import FusedCircuit, fuse_circuit
from repro.quantum.statevector import probabilities, run_circuit


def _layered_circuit(n_qubits=3, n_blocks=4):
    rng = np.random.default_rng(0)
    circuit = QuantumCircuit(n_qubits)
    for _ in range(n_blocks):
        for qubit in range(n_qubits):
            circuit.add("u3", (qubit,), tuple(rng.uniform(-np.pi, np.pi, 3)))
        for qubit in range(n_qubits - 1):
            circuit.add("cx", (qubit, qubit + 1))
    return circuit


def test_fused_circuit_matches_dynamic_execution():
    circuit = _layered_circuit()
    reference = run_circuit(circuit)
    for max_qubits in (1, 2, 3):
        fused = FusedCircuit.from_circuit(circuit, max_fused_qubits=max_qubits)
        assert np.allclose(fused.run(), reference, atol=1e-10)


def test_fusion_reduces_instruction_count():
    circuit = _layered_circuit()
    fused = fuse_circuit(circuit, max_fused_qubits=2)
    assert len(fused) < len(circuit)


def test_fusion_rejects_invalid_max():
    circuit = _layered_circuit()
    with pytest.raises(ValueError):
        fuse_circuit(circuit, max_fused_qubits=0)


def test_fused_blocks_are_unitary():
    circuit = _layered_circuit()
    for block in fuse_circuit(circuit, max_fused_qubits=2):
        dim = block.matrix.shape[0]
        assert dim == 2 ** len(block.qubits)
        assert np.allclose(
            block.matrix @ block.matrix.conj().T, np.eye(dim), atol=1e-10
        )


def test_fused_probabilities_normalised():
    circuit = _layered_circuit()
    fused = FusedCircuit.from_circuit(circuit, max_fused_qubits=3)
    probs = probabilities(fused.run())
    assert np.isclose(probs.sum(), 1.0, atol=1e-10)
