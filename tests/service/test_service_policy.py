"""Admission control, EDD ordering and tenant isolation unit tests."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.estimator import EstimatorConfig
from repro.core.evolution import EvolutionConfig
from repro.service import CoSearchService, JobHandle, SearchJob, edd_order

EVOLUTION = EvolutionConfig(
    iterations=2,
    population_size=6,
    parent_size=2,
    mutation_size=2,
    crossover_size=2,
    seed=5,
)
#: in-process (workers=0 via the service) and cheap: success_rate mode
ESTIMATOR = EstimatorConfig(mode="success_rate", workers=1, n_valid_samples=4)


def make_job(name, dataset, encoder, *, seed=5, iterations=2, **kwargs):
    return SearchJob(
        name=name,
        kind="qml",
        space="u3cu3",
        device="yorktown",
        n_qubits=4,
        evolution=dataclasses.replace(EVOLUTION, seed=seed, iterations=iterations),
        estimator=ESTIMATOR,
        dataset=dataset,
        n_classes=4,
        encoder=encoder,
        seed=3,
        **kwargs,
    )


def handle(name, *, priority=0, deadline=None, arrival=0):
    """A JobHandle for pure ordering tests (the job never runs)."""
    job = SearchJob.__new__(SearchJob)  # skip __post_init__ payload checks
    job.name = name
    job.priority = priority
    job.deadline = deadline
    return JobHandle(job=job, arrival=arrival)


class TestEddOrder:
    def test_earlier_deadline_first(self):
        late = handle("late", deadline=10.0, arrival=0)
        soon = handle("soon", deadline=2.0, arrival=1)
        assert [h.name for h in edd_order([late, soon])] == ["soon", "late"]

    def test_deadline_beats_priority(self):
        urgent = handle("urgent", deadline=3.0, priority=0, arrival=1)
        important = handle("important", deadline=None, priority=99, arrival=0)
        assert [h.name for h in edd_order([important, urgent])] == [
            "urgent",
            "important",
        ]

    def test_priority_breaks_ties_then_arrival(self):
        a = handle("a", priority=1, arrival=2)
        b = handle("b", priority=5, arrival=3)
        c = handle("c", priority=5, arrival=1)
        assert [h.name for h in edd_order([a, b, c])] == ["c", "b", "a"]

    def test_best_effort_ordered_by_arrival(self):
        first = handle("first", arrival=0)
        second = handle("second", arrival=1)
        assert [h.name for h in edd_order([second, first])] == [
            "first",
            "second",
        ]


class TestAdmissionControl:
    @pytest.fixture
    def encoder(self):
        from repro.qml import encoder_for_task

        return encoder_for_task("mnist-4")

    def test_excess_jobs_queue_and_promote_fifo(self, tiny_dataset, encoder):
        with CoSearchService(max_workers=0, max_concurrent_jobs=1) as service:
            first = service.submit(make_job("first", tiny_dataset, encoder))
            second = service.submit(
                make_job("second", tiny_dataset, encoder, seed=11)
            )
            assert first.state == "active"
            assert second.state == "queued"
            results = service.run()
            assert first.state == second.state == "done"
            # the queued job was only admitted once the first retired
            assert second.activated_round is not None
            assert second.activated_round >= first.completed_round
            assert sorted(results) == ["first", "second"]

    def test_duplicate_tenant_name_rejected(self, tiny_dataset, encoder):
        with CoSearchService(max_workers=0, max_concurrent_jobs=2) as service:
            service.submit(make_job("alpha", tiny_dataset, encoder))
            with pytest.raises(ValueError, match="already submitted"):
                service.submit(make_job("alpha", tiny_dataset, encoder))

    def test_deadline_job_finishes_before_best_effort(
        self, tiny_dataset, encoder
    ):
        """With both jobs active, every round goes to the deadline job
        until it completes."""
        with CoSearchService(max_workers=0, max_concurrent_jobs=2) as service:
            casual = service.submit(
                make_job("casual", tiny_dataset, encoder, seed=11)
            )
            urgent = service.submit(
                make_job("urgent", tiny_dataset, encoder, deadline=2.0)
            )
            service.run()
            assert urgent.completed_round < casual.completed_round
            # completed within 2 rounds: no deadline miss recorded
            assert service.tenant_stats["urgent"].deadline_misses == 0

    def test_missed_deadline_is_counted(self, tiny_dataset, encoder):
        with CoSearchService(max_workers=0, max_concurrent_jobs=1) as service:
            service.submit(
                make_job(
                    "tardy", tiny_dataset, encoder, iterations=3, deadline=1.0
                )
            )
            service.run()
            assert service.tenant_stats["tardy"].deadline_misses == 1

    def test_failed_tenant_is_isolated(self, tiny_dataset, encoder):
        """One job's deterministic bug retires that job; others finish."""

        class BrokenMolecule:
            pass  # no hamiltonian/observable: scoring raises

        broken = SearchJob(
            name="broken",
            kind="vqe",
            space="u3cu3",
            device="yorktown",
            n_qubits=4,
            evolution=dataclasses.replace(EVOLUTION, seed=5),
            estimator=ESTIMATOR,
            molecule=BrokenMolecule(),
            seed=3,
        )
        with CoSearchService(max_workers=0, max_concurrent_jobs=2) as service:
            bad = service.submit(broken)
            good = service.submit(make_job("good", tiny_dataset, encoder))
            with pytest.warns(RuntimeWarning, match="failed and was retired"):
                results = service.run()
            assert bad.state == "failed"
            assert bad.error is not None
            assert good.state == "done"
            assert sorted(results) == ["good"]
