"""Service-level determinism: multiplexing never changes a tenant's scores.

The acceptance property of the multi-tenant service: a job run through
``CoSearchService`` alongside competing tenants produces bitwise-identical
scores, history and best candidate to the same job run alone on a private
engine — the sharded scheduler's group-at-a-time determinism contract
survives multiplexing — and the per-tenant stats account for every
generation.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.design_space import get_design_space
from repro.core.estimator import EstimatorConfig, PerformanceEstimator
from repro.core.evolution import EvolutionConfig, EvolutionEngine
from repro.core.supercircuit import SuperCircuit
from repro.execution.scheduler import ShardedExecutionEngine
from repro.qml import encoder_for_task
from repro.service import CoSearchService, SearchJob
from repro.vqe import load_molecule

EVOLUTION = EvolutionConfig(
    iterations=2,
    population_size=8,
    parent_size=3,
    mutation_size=3,
    crossover_size=2,
    seed=5,
)
ESTIMATOR = EstimatorConfig(
    mode="success_rate", workers=2, shard_min_group_size=1, n_valid_samples=8
)


def qml_job(name, dataset, seed, **kwargs):
    return SearchJob(
        name=name,
        kind="qml",
        space="u3cu3",
        device="yorktown",
        n_qubits=4,
        evolution=dataclasses.replace(EVOLUTION, seed=seed),
        estimator=ESTIMATOR,
        dataset=dataset,
        n_classes=4,
        encoder=encoder_for_task("mnist-4"),
        seed=3,
        **kwargs,
    )


def vqe_job(name, seed, **kwargs):
    return SearchJob(
        name=name,
        kind="vqe",
        space="u3cu3",
        device="santiago",
        n_qubits=2,
        evolution=dataclasses.replace(
            EVOLUTION, iterations=2, population_size=6, seed=seed
        ),
        estimator=ESTIMATOR,
        molecule=load_molecule("h2"),
        seed=3,
        **kwargs,
    )


def solo_qml(dataset, seed):
    """The same search on a private sharded engine (the job run alone)."""
    space = get_design_space("u3cu3")
    from repro.devices import get_device

    device = get_device("yorktown")
    supercircuit = SuperCircuit(
        space, 4, encoder=encoder_for_task("mnist-4"), seed=3
    )
    estimator = PerformanceEstimator(device, ESTIMATOR)
    engine = EvolutionEngine(
        space, 4, device, dataclasses.replace(EVOLUTION, seed=seed)
    )
    with ShardedExecutionEngine(estimator, supercircuit) as execution:
        return engine.search(
            population_score_fn=execution.qml_population_scorer(dataset, 4)
        )


def solo_vqe(seed):
    space = get_design_space("u3cu3")
    from repro.devices import get_device

    device = get_device("santiago")
    supercircuit = SuperCircuit(space, 2, encoder=None, seed=3)
    estimator = PerformanceEstimator(device, ESTIMATOR)
    engine = EvolutionEngine(
        space,
        2,
        device,
        dataclasses.replace(EVOLUTION, iterations=2, population_size=6, seed=seed),
    )
    with ShardedExecutionEngine(estimator, supercircuit) as execution:
        return engine.search(
            population_score_fn=execution.vqe_population_scorer(
                load_molecule("h2")
            )
        )


class TestServiceDeterminism:
    def test_concurrent_tenants_match_solo_runs_bitwise(self, tiny_dataset):
        """Three tenants (2 QML seeds + 1 VQE, two devices) on one shared
        pool each reproduce their solo run exactly."""
        reference = {
            "tenant-a": solo_qml(tiny_dataset, seed=5),
            "tenant-b": solo_qml(tiny_dataset, seed=11),
            "tenant-vqe": solo_vqe(seed=7),
        }
        with CoSearchService(max_workers=2, max_concurrent_jobs=3) as service:
            service.submit(qml_job("tenant-a", tiny_dataset, seed=5))
            service.submit(qml_job("tenant-b", tiny_dataset, seed=11))
            service.submit(vqe_job("tenant-vqe", seed=7))
            results = service.run()

            assert sorted(results) == sorted(reference)
            for name in sorted(reference):
                solo = reference[name]
                shared = results[name]
                # bitwise: exact float equality, not closeness
                assert shared.history == solo.history
                assert shared.best_score == solo.best_score
                assert shared.best.gene() == solo.best.gene()
                assert shared.evaluated == solo.evaluated

            # per-tenant accounting covers every generation
            for name in sorted(reference):
                stats = service.tenant_stats[name]
                handle = service.handles[name]
                assert stats.generations == handle.job.evolution.iterations
                assert stats.candidates == results[name].evaluated
                assert stats.populations >= 1
                assert stats.simulator_seconds > 0.0
                assert stats.cache_hits + stats.cache_misses > 0

    def test_engines_share_the_service_pools(self, tiny_dataset):
        with CoSearchService(max_workers=2, max_concurrent_jobs=2) as service:
            service.submit(qml_job("alpha", tiny_dataset, seed=5))
            runtime = service._runtimes["alpha"]
            assert runtime.engine._pools is service.pools
            assert runtime.engine._owns_pools is False
            # retiring the job must leave the shared pools open
            service.run()
            assert "alpha" not in service._runtimes
            assert service.pools.size == 2

    def test_suspend_resume_is_bitwise(self, tiny_dataset, tmp_path):
        solo = solo_qml(tiny_dataset, seed=5)
        path = str(tmp_path / "alpha.ckpt")
        with CoSearchService(max_workers=2, max_concurrent_jobs=2) as service:
            handle = service.submit(
                qml_job("alpha", tiny_dataset, seed=5, checkpoint_path=path)
            )
            assert service.step() == "alpha"  # one generation, checkpointed
            service.suspend("alpha")
            assert handle.state == "suspended"
            assert "alpha" not in service._runtimes
            service.resume("alpha")
            results = service.run()
        assert results["alpha"].history == solo.history
        assert results["alpha"].best_score == solo.best_score
        # the post-resume runtime replays nothing: only the remaining
        # generation is charged to the tenant
        assert service.tenant_stats["alpha"].generations == EVOLUTION.iterations

    def test_suspend_without_checkpoint_path_refuses(self, tiny_dataset):
        with CoSearchService(max_workers=0, max_concurrent_jobs=1) as service:
            service.submit(qml_job("alpha", tiny_dataset, seed=5))
            with pytest.raises(ValueError, match="checkpoint"):
                service.suspend("alpha")

    def test_zero_workers_runs_in_process(self, tiny_dataset):
        """A worker-less service still completes jobs (in-process path)."""
        solo = solo_qml(tiny_dataset, seed=5)
        with CoSearchService(max_workers=0, max_concurrent_jobs=1) as service:
            service.submit(qml_job("alpha", tiny_dataset, seed=5))
            results = service.run()
        assert results["alpha"].history == solo.history
