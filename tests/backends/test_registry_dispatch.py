"""Registry and dispatcher policy: deterministic, capability-checked,
override-aware backend selection."""

from __future__ import annotations

import pytest

from repro.backends import (
    BackendCapabilities,
    BackendDispatcher,
    DispatchRequest,
    SimulationBackend,
    available_backends,
    backend_class,
    create_backend,
    register_backend,
    unregister_backend,
)
from repro.core.estimator import EstimatorConfig, PerformanceEstimator


def make_estimator(yorktown, **kwargs):
    kwargs.setdefault("backend", None)
    return PerformanceEstimator(yorktown, EstimatorConfig(**kwargs))


def test_in_tree_backends_are_registered():
    assert available_backends() == ["density", "shots", "statevector"]


def test_backend_class_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown simulation backend"):
        backend_class("aer")


@pytest.mark.parametrize("mode,expected", [
    ("noise_sim", "density"),
    ("real_qc", "shots"),
    ("success_rate", "statevector"),
    ("noise_free", "statevector"),
])
def test_default_dispatch_follows_the_estimator_mode(yorktown, mode, expected):
    dispatcher = BackendDispatcher(make_estimator(yorktown))
    assert dispatcher.select(DispatchRequest(mode=mode, n_qubits=4)) == expected
    assert dispatcher.overrides_applied == 0


def test_capable_override_is_applied(yorktown):
    dispatcher = BackendDispatcher(make_estimator(yorktown, backend="shots"))
    assert dispatcher.select(DispatchRequest(mode="noise_sim", n_qubits=4)) == "shots"
    assert dispatcher.overrides_applied == 1


def test_incapable_override_is_ignored_not_fatal(yorktown):
    # statevector cannot simulate noise: noise_sim keeps the density engine
    dispatcher = BackendDispatcher(make_estimator(yorktown, backend="statevector"))
    assert (
        dispatcher.select(DispatchRequest(mode="noise_sim", n_qubits=4))
        == "density"
    )
    assert dispatcher.overrides_ignored == 1
    # ...but applies where capable (the CI statevector lane's contract)
    assert (
        dispatcher.select(DispatchRequest(mode="noise_free", n_qubits=4))
        == "statevector"
    )


def test_observable_requests_veto_the_shot_backend(yorktown):
    dispatcher = BackendDispatcher(make_estimator(yorktown, backend="shots"))
    request = DispatchRequest(mode="noise_sim", n_qubits=4, needs_observables=True)
    assert dispatcher.select(request) == "density"
    assert dispatcher.overrides_ignored == 1


def test_unknown_override_fails_fast(yorktown):
    estimator = make_estimator(yorktown)
    with pytest.raises(ValueError, match="unknown simulation backend"):
        BackendDispatcher(estimator, override="gpu")


def test_repro_backend_env_seeds_the_config_default(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "Statevector")
    assert EstimatorConfig().backend == "statevector"  # normalized
    monkeypatch.setenv("REPRO_BACKEND", "")
    assert EstimatorConfig().backend is None
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    assert EstimatorConfig().backend is None


def test_max_qubits_capability_bounds_dispatch(yorktown):
    """A capability-bounded third-party backend declines oversized groups."""

    @register_backend
    class TinyGpuBackend(SimulationBackend):
        name = "tinygpu"
        capabilities = BackendCapabilities(
            noisy=True, observables=True, batched=True, max_qubits=3
        )

        def run_group(self, entry, jobs):  # pragma: no cover - never scheduled
            return []

    try:
        dispatcher = BackendDispatcher(
            make_estimator(yorktown, backend="tinygpu")
        )
        small = DispatchRequest(mode="noise_sim", n_qubits=2)
        large = DispatchRequest(mode="noise_sim", n_qubits=4)
        assert dispatcher.select(small) == "tinygpu"
        assert dispatcher.select(large) == "density"
        backend = create_backend("tinygpu", dispatcher.estimator)
        assert backend.estimator is dispatcher.estimator
    finally:
        unregister_backend("tinygpu")
    assert "tinygpu" not in available_backends()


def test_register_backend_requires_a_name_and_the_protocol():
    with pytest.raises(ValueError, match="non-empty name"):

        @register_backend
        class Nameless(SimulationBackend):
            def run_group(self, entry, jobs):
                return []

    with pytest.raises(TypeError, match="must subclass"):
        register_backend(type("NotABackend", (), {"name": "rogue"}))
