"""The vectorized template bind feeding the density backend.

``bind_batch`` must be a pure reorganization of per-row ``bind`` calls: same
instruction skeleton, same angles (to fp round-off of one matmul vs. many
matvecs), same branch behavior — rows that cross a compile-time branch are
rejected exactly like ``bind`` raising ``ParametricBindMismatch``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EvolutionConfig, EvolutionEngine, get_design_space
from repro.core.estimator import EstimatorConfig, PerformanceEstimator
from repro.execution import ExecutionEngine
from repro.execution.cache import ParametricTranspileCache
from repro.quantum.circuit import Instruction
from repro.transpile.parametric import (
    _default_witness,
    num_feature_params,
    parametric_transpile,
)


def structure_for(supercircuit, device, seed=21):
    space = get_design_space("u3cu3")
    evolution = EvolutionEngine(space, 4, device, EvolutionConfig(seed=seed))
    candidate = evolution.random_candidate()
    circuit, _ = supercircuit.build_standalone_circuit(candidate.config)
    weights = supercircuit.inherited_weights(candidate.config)
    return circuit, weights, candidate


def compile_template(circuit, weights, candidate, device):
    """A template traced against the cache's hybrid witness: the real
    weights (whose branch signs every sample shares) joined with generic
    nowhere-zero feature values."""
    generic = _default_witness(num_feature_params(circuit), None)
    return parametric_transpile(
        circuit,
        device,
        initial_layout=candidate.mapping,
        seed=7,
        witness_values=np.concatenate([weights, generic]),
    )


def test_bind_batch_matches_per_row_bind(u3cu3_supercircuit, yorktown, rng):
    circuit, weights, candidate = structure_for(u3cu3_supercircuit, yorktown)
    template = compile_template(circuit, weights, candidate, yorktown)
    features = rng.uniform(0.2, 2.9, size=(5, template.n_features))
    values = np.concatenate(
        [np.broadcast_to(weights, (5, weights.size)), features], axis=1
    )

    ok, binding = template.bind_batch(values)
    assert ok.all()
    assert binding.n_rows == 5
    assert len(binding.slots) == template.num_instructions

    for position, row in enumerate(binding.rows):
        compiled = template.bind(values[int(row)])
        reduced, used = compiled.reduced_circuit()
        assert used == binding.used_qubits
        for slot, inst in zip(binding.slots, reduced.instructions):
            if type(slot) is Instruction:
                assert (slot.gate, slot.qubits, slot.params) == (
                    inst.gate, inst.qubits, inst.params
                )
            else:
                gate, qubits, params = slot
                assert (gate, qubits) == (inst.gate, inst.qubits)
                np.testing.assert_allclose(
                    params[position], inst.params, rtol=0, atol=1e-12
                )


def test_bind_batch_rejects_branch_crossing_rows(u3cu3_supercircuit, yorktown,
                                                 rng):
    """A row whose encoder angle is exactly zero crosses the witness's
    branches and must be rejected, not silently mis-bound."""
    circuit, weights, candidate = structure_for(u3cu3_supercircuit, yorktown)
    template = compile_template(circuit, weights, candidate, yorktown)
    features = rng.uniform(0.2, 2.9, size=(4, template.n_features))
    features[2] = 0.0  # blank sample: every encoder rotation lands on zero
    values = np.concatenate(
        [np.broadcast_to(weights, (4, weights.size)), features], axis=1
    )
    ok, binding = template.bind_batch(values)
    assert list(ok) == [True, True, False, True]
    assert binding.n_rows == 3
    assert template.try_bind(values[2]) is None  # scalar bind agrees


def test_get_bound_batch_serves_crossing_rows_exactly(u3cu3_supercircuit,
                                                      yorktown, rng):
    circuit, weights, candidate = structure_for(u3cu3_supercircuit, yorktown)
    cache = ParametricTranspileCache(fallback=None)
    features = rng.uniform(0.2, 2.9, size=(4, 16))
    features[1] = 0.0
    binding, fallback = cache.get_bound_batch(
        circuit, weights, features, yorktown, initial_layout=candidate.mapping
    )
    assert binding is not None and list(binding.rows) == [0, 2, 3]
    assert list(fallback) == [1]
    assert cache.stats.batch_binds == 1
    assert cache.stats.batch_rows == 3
    # the crossing row is the exact bound-key result get_bound would serve
    expected = cache.get_bound(
        circuit, weights, features[1], yorktown, initial_layout=candidate.mapping
    )
    assert fallback[1] is expected


def test_engine_template_path_matches_bound_key_path(u3cu3_supercircuit,
                                                     yorktown, tiny_dataset):
    """End to end: the template-batch density path reproduces the bound-key
    per-sample path to 1e-9 and actually exercises the vectorized bind."""
    space = get_design_space("u3cu3")
    evolution = EvolutionEngine(space, 4, yorktown, EvolutionConfig(seed=11))
    candidates = [evolution.random_candidate() for _ in range(4)]
    scores = {}
    engines = {}
    for parametric in (True, False):
        estimator = PerformanceEstimator(
            yorktown,
            EstimatorConfig(mode="noise_sim", n_valid_samples=3,
                            parametric_transpile=parametric),
        )
        with ExecutionEngine(estimator, u3cu3_supercircuit) as engine:
            scores[parametric] = engine.evaluate_qml_population(
                candidates, tiny_dataset, 4
            )
            engines[parametric] = (engine.stats.copy(),
                                   estimator.parametric_transpile_cache.stats)
    np.testing.assert_allclose(scores[True], scores[False], rtol=0, atol=1e-9)
    template_stats, parametric_stats = engines[True]
    assert template_stats.template_batches > 0
    assert parametric_stats.batch_rows > 0
    bound_stats, _ = engines[False]
    assert bound_stats.template_batches == 0
