"""Pinned-seed shot sampling through the population protocol.

The shot backend's contract: scores carry *sampling* noise (they are not the
noiseless-simulator numbers) but are bit-for-bit deterministic — across
repeated evaluations, across engine instances, and across worker counts —
because every job's rng stream is pinned to a pure function of its content
(genome gene, mapping, sample index), never of scheduling order.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import ShotSamplerBackend
from repro.core import EvolutionConfig, EvolutionEngine, get_design_space
from repro.core.estimator import EstimatorConfig, PerformanceEstimator
from repro.core.evolution import Candidate
from repro.devices import QuantumBackend
from repro.execution import ExecutionEngine, ShardedExecutionEngine
from repro.execution.cache import _normalize_layout


def make_population(space, device, seed, size):
    evolution = EvolutionEngine(space, 4, device, EvolutionConfig(seed=seed))
    candidates = [evolution.random_candidate() for _ in range(size)]
    candidates.append(candidates[0])  # duplicate: must score identically
    return candidates


def shots_engine(device, supercircuit, workers=1, shots=256):
    estimator = PerformanceEstimator(
        device,
        EstimatorConfig(
            mode="noise_sim", n_valid_samples=2, backend="shots", shots=shots,
            workers=workers, shard_min_group_size=1,
        ),
    )
    if workers > 1:
        return ShardedExecutionEngine(estimator, supercircuit)
    return ExecutionEngine(estimator, supercircuit)


def test_shot_scores_are_bitwise_deterministic(u3cu3_supercircuit, yorktown,
                                               tiny_dataset):
    space = get_design_space("u3cu3")
    candidates = make_population(space, yorktown, seed=13, size=3)
    with shots_engine(yorktown, u3cu3_supercircuit) as engine:
        first = engine.evaluate_qml_population(candidates, tiny_dataset, 4)
        second = engine.evaluate_qml_population(candidates, tiny_dataset, 4)
        assert engine.stats.shot_circuits > 0
        assert engine.stats.sequential_fallbacks == 0
    with shots_engine(yorktown, u3cu3_supercircuit) as engine:
        fresh = engine.evaluate_qml_population(candidates, tiny_dataset, 4)
    assert first == second == fresh
    # the duplicated candidate draws the same pinned stream
    assert first[0] == first[-1]


def test_shot_scores_are_worker_count_invariant(u3cu3_supercircuit, yorktown,
                                                tiny_dataset):
    space = get_design_space("u3cu3")
    candidates = make_population(space, yorktown, seed=17, size=4)
    by_workers = {}
    for workers in (1, 2):
        with shots_engine(yorktown, u3cu3_supercircuit, workers=workers) as engine:
            by_workers[workers] = engine.evaluate_qml_population(
                candidates, tiny_dataset, 4
            )
    assert by_workers[1] == by_workers[2]


def test_shot_scores_differ_from_noiseless_simulation(u3cu3_supercircuit,
                                                      yorktown, tiny_dataset):
    """Finite shots must actually sample (not silently fall back to the
    density engine)."""
    space = get_design_space("u3cu3")
    candidates = make_population(space, yorktown, seed=19, size=2)
    with shots_engine(yorktown, u3cu3_supercircuit, shots=64) as engine:
        sampled = engine.evaluate_qml_population(candidates, tiny_dataset, 4)
    estimator = PerformanceEstimator(
        yorktown, EstimatorConfig(mode="noise_sim", n_valid_samples=2)
    )
    with ExecutionEngine(estimator, u3cu3_supercircuit) as engine:
        simulated = engine.evaluate_qml_population(candidates, tiny_dataset, 4)
    assert sampled != simulated


def test_job_seeds_match_manual_run_parameterized(u3cu3_supercircuit, yorktown,
                                                  tiny_dataset):
    """The backend is literally QuantumBackend.run_parameterized with a
    pinned per-job seed — pin the derivation so it never silently changes."""
    space = get_design_space("u3cu3")
    candidate = make_population(space, yorktown, seed=23, size=1)[0]
    estimator = PerformanceEstimator(
        yorktown,
        EstimatorConfig(mode="noise_sim", n_valid_samples=2, backend="shots",
                        shots=128),
    )
    with ExecutionEngine(estimator, u3cu3_supercircuit) as engine:
        scores = engine.evaluate_qml_population([candidate], tiny_dataset, 4)

    circuit, _ = u3cu3_supercircuit.build_standalone_circuit(candidate.config)
    weights = u3cu3_supercircuit.inherited_weights(candidate.config)
    features, labels = estimator.validation_subset(tiny_dataset)
    sampler = ShotSamplerBackend(estimator)
    gene_key = tuple(candidate.config.as_gene())
    mapping_key = _normalize_layout(candidate.mapping)
    backend = QuantumBackend(
        yorktown, shots=128, max_density_qubits=estimator.config.max_density_qubits
    )
    expectations = []
    for row_index, row in enumerate(features):
        backend.reseed(sampler.job_seed((gene_key, mapping_key, row_index)))
        result = backend.run_parameterized(
            circuit, weights, row, initial_layout=candidate.mapping, shots=128
        )
        expectations.append(result.expectation_z_all())

    from repro.qml.qnn import readout_matrix
    from repro.utils.stats import nll_loss, softmax

    logits = np.stack(expectations) @ readout_matrix(4, 4).T
    assert scores[0] == nll_loss(softmax(logits), labels)


def test_incapable_override_never_changes_real_qc_scores(u3cu3_supercircuit,
                                                         yorktown,
                                                         tiny_dataset):
    """Only a *shot-capable* override opts real_qc into batched dispatch; an
    ignored override (the REPRO_BACKEND=statevector lane) must keep the
    sequential rng-stream path and its exact scores."""
    space = get_design_space("u3cu3")
    candidates = make_population(space, yorktown, seed=29, size=3)

    def run(backend_name):
        estimator = PerformanceEstimator(
            yorktown,
            EstimatorConfig(mode="real_qc", n_valid_samples=2, shots=64,
                            backend=backend_name),
        )
        with ExecutionEngine(estimator, u3cu3_supercircuit) as engine:
            scores = engine.evaluate_qml_population(candidates, tiny_dataset, 4)
        return scores, engine.stats.sequential_fallbacks

    default_scores, default_fallbacks = run(None)
    ignored_scores, ignored_fallbacks = run("statevector")
    assert default_fallbacks == ignored_fallbacks == len(candidates)
    assert ignored_scores == default_scores  # bitwise: the override was a no-op
    _shot_scores, shot_fallbacks = run("shots")
    assert shot_fallbacks == 0  # shot-capable override opted in


def test_vqe_real_qc_keeps_the_sequential_measurement_path(yorktown):
    """Shot dispatch is Z-basis only: VQE real_qc stays on the sequential
    measurement-plan fallback even when the shot backend is forced."""
    from repro.core import SuperCircuit
    from repro.vqe.molecules import load_molecule

    molecule = load_molecule("h2")
    space = get_design_space("u3cu3")
    supercircuit = SuperCircuit(space, molecule.n_qubits, encoder=None, seed=3)
    evolution = EvolutionEngine(
        space, molecule.n_qubits, yorktown, EvolutionConfig(seed=5)
    )
    candidates = [evolution.random_candidate() for _ in range(2)]
    estimator = PerformanceEstimator(
        yorktown,
        EstimatorConfig(mode="real_qc", shots=64, backend="shots"),
    )
    with ExecutionEngine(estimator, supercircuit) as engine:
        engine.evaluate_vqe_population(candidates, molecule)
        assert engine.stats.sequential_fallbacks == len(candidates)
