"""Backend dispatch is a pure reorganization of the same numbers.

Population scores routed through the dispatched backends must match the
per-candidate sequential seed path to 1e-9 across qubit counts (2q/4q/6q),
tasks (QML and VQE) and estimator modes (``noise_sim``/``success_rate``),
and forcing a capable backend must either reproduce the default exactly
(density, statevector) or be deterministically pinned (shots — covered in
``test_shot_sampler``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EvolutionConfig, EvolutionEngine, SuperCircuit, get_design_space
from repro.core.estimator import EstimatorConfig, PerformanceEstimator
from repro.devices import get_device
from repro.execution import ExecutionEngine
from repro.qml.encoders import EncoderSpec
from repro.qml import make_classification_dataset
from repro.vqe.molecules import load_molecule

ATOL = 1e-9


def make_population(space, n_qubits, device, seed, size):
    evolution = EvolutionEngine(space, n_qubits, device, EvolutionConfig(seed=seed))
    return [evolution.random_candidate() for _ in range(size)]


def qml_task(n_qubits: int):
    """A small n-qubit QML task: per-qubit ry/rz encoder + matching dataset."""
    encoder = EncoderSpec(
        f"test_{n_qubits}q", n_qubits, (("ry", n_qubits), ("rz", n_qubits))
    )
    dataset = make_classification_dataset(
        f"tiny-{n_qubits}q", n_classes=2, n_features=encoder.n_features,
        n_train=12, n_valid=6, n_test=6, seed=5,
    )
    return encoder, dataset


def qml_scores(device, supercircuit, dataset, candidates, mode, engine="batched",
               backend=None, n_valid=3):
    estimator = PerformanceEstimator(
        device,
        EstimatorConfig(
            mode=mode, n_valid_samples=n_valid, engine=engine, backend=backend
        ),
    )
    with ExecutionEngine(estimator, supercircuit) as engine_obj:
        scores = engine_obj.evaluate_qml_population(candidates, dataset, 2)
        return scores, engine_obj


@pytest.mark.parametrize("n_qubits,device_name", [(2, "yorktown"), (6, "jakarta")])
@pytest.mark.parametrize("mode", ["noise_sim", "success_rate"])
def test_qml_dispatch_matches_sequential_across_widths(n_qubits, device_name,
                                                       mode):
    device = get_device(device_name)
    space = get_design_space("u3cu3")
    encoder, dataset = qml_task(n_qubits)
    supercircuit = SuperCircuit(space, n_qubits, encoder=encoder, seed=3)
    candidates = make_population(space, n_qubits, device, seed=11, size=3)

    sequential, _ = qml_scores(
        device, supercircuit, dataset, candidates, mode, engine="sequential"
    )
    batched, engine = qml_scores(
        device, supercircuit, dataset, candidates, mode
    )
    np.testing.assert_allclose(batched, sequential, rtol=0, atol=ATOL)
    if mode == "noise_sim":
        assert engine.stats.density_circuits == 3 * 3
    else:
        assert engine.stats.statevector_batches >= len(
            {tuple(c.config.as_gene()) for c in candidates}
        )


@pytest.mark.parametrize("mode,backend", [
    ("noise_sim", "density"),
    ("success_rate", "statevector"),
    ("noise_free", "statevector"),
])
def test_forced_capable_backend_reproduces_default_scores(
    u3cu3_supercircuit, yorktown, tiny_dataset, mode, backend
):
    space = get_design_space("u3cu3")
    candidates = make_population(space, 4, yorktown, seed=7, size=4)

    def scores(backend_name):
        estimator = PerformanceEstimator(
            yorktown,
            EstimatorConfig(mode=mode, n_valid_samples=4, backend=backend_name),
        )
        with ExecutionEngine(estimator, u3cu3_supercircuit) as engine:
            return engine.evaluate_qml_population(candidates, tiny_dataset, 4)

    assert scores(backend) == scores(None)


def test_forcing_statevector_on_noise_sim_keeps_density_scores(
    u3cu3_supercircuit, yorktown, tiny_dataset
):
    """The REPRO_BACKEND=statevector CI lane contract: an incapable override
    never changes a noisy score — it is ignored for that group."""
    space = get_design_space("u3cu3")
    candidates = make_population(space, 4, yorktown, seed=3, size=3)

    def run(backend_name):
        estimator = PerformanceEstimator(
            yorktown,
            EstimatorConfig(
                mode="noise_sim", n_valid_samples=2, backend=backend_name
            ),
        )
        with ExecutionEngine(estimator, u3cu3_supercircuit) as engine:
            scores = engine.evaluate_qml_population(candidates, tiny_dataset, 4)
        return scores, engine

    forced_scores, forced_engine = run("statevector")
    default_scores, _ = run(None)
    np.testing.assert_allclose(forced_scores, default_scores, rtol=0, atol=ATOL)
    assert forced_engine.dispatcher.overrides_ignored > 0
    assert forced_engine.stats.density_circuits == 3 * 2


@pytest.mark.parametrize("molecule_name,device_name", [
    ("h2", "yorktown"),     # 2 qubits
    ("lih", "jakarta"),     # 6 qubits
])
@pytest.mark.parametrize("mode", ["noise_sim", "success_rate"])
def test_vqe_dispatch_matches_sequential_across_widths(molecule_name,
                                                       device_name, mode):
    molecule = load_molecule(molecule_name)
    device = get_device(device_name)
    space = get_design_space("u3cu3")
    supercircuit = SuperCircuit(space, molecule.n_qubits, encoder=None, seed=3)
    candidates = make_population(space, molecule.n_qubits, device, seed=7, size=3)

    def scores(engine_mode, backend=None):
        estimator = PerformanceEstimator(
            device,
            EstimatorConfig(mode=mode, engine=engine_mode, backend=backend),
        )
        with ExecutionEngine(estimator, supercircuit) as engine:
            return engine.evaluate_vqe_population(candidates, molecule)

    sequential = scores("sequential")
    np.testing.assert_allclose(scores("batched"), sequential, rtol=0, atol=ATOL)
    # forcing the default engine family must be a no-op; forcing the shot
    # backend is vetoed by the observable requirement and is one too
    for forced in ("density", "statevector", "shots"):
        np.testing.assert_allclose(
            scores("batched", backend=forced), sequential, rtol=0, atol=ATOL
        )


@pytest.mark.parametrize("mode,n_valid,population", [
    ("success_rate", 4, 8),
    ("noise_sim", 2, 6),
])
def test_evolution_rankings_match_under_dispatch(u3cu3_supercircuit, yorktown,
                                                 tiny_dataset, mode, n_valid,
                                                 population):
    """Seeded searches driven by the dispatched engines visit identical
    populations and produce identical rankings to the sequential path."""
    space = get_design_space("u3cu3")
    evolution_config = EvolutionConfig(
        iterations=2, population_size=population, parent_size=3,
        mutation_size=max(2, population - 5), crossover_size=2, seed=9,
    )
    results = {}
    for engine_mode in ("sequential", "batched"):
        estimator = PerformanceEstimator(
            yorktown,
            EstimatorConfig(mode=mode, n_valid_samples=n_valid,
                            engine=engine_mode, backend=None),
        )
        with ExecutionEngine(estimator, u3cu3_supercircuit) as execution:
            evolution = EvolutionEngine(space, 4, yorktown, evolution_config)
            results[engine_mode] = evolution.search(
                population_score_fn=execution.qml_population_scorer(
                    tiny_dataset, 4
                )
            )
    sequential, batched = results["sequential"], results["batched"]
    assert batched.best.gene() == sequential.best.gene()
    assert batched.evaluated == sequential.evaluated
    assert batched.best_score == pytest.approx(sequential.best_score, abs=ATOL)
