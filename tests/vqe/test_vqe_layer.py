"""Tests for molecules, the UCCSD ansatz and the VQE runner."""

import numpy as np
import pytest
from scipy.linalg import expm

from repro.devices.backend import QuantumBackend
from repro.devices.calibration import CalibrationTargets, generate_calibration
from repro.devices.library import Device, get_device
from repro.devices.topology import line_topology
from repro.quantum.circuit import ParameterizedCircuit
from repro.quantum.operators import PauliString
from repro.quantum.statevector import run_parameterized
from repro.vqe.molecules import (
    MOLECULE_SPECS,
    available_molecules,
    h2_hamiltonian,
    load_molecule,
    synthetic_molecular_hamiltonian,
)
from repro.vqe.uccsd import build_uccsd_ansatz, excitation_pairs, pauli_exponential_ops
from repro.vqe.vqe import VQEConfig, VQEModel


def _ideal_device(n_qubits=4) -> Device:
    topology = line_topology(n_qubits, name="ideal-line")
    targets = CalibrationTargets(0.0, 0.0, 0.0, 1e9, 1e9, 0.0)
    return Device("ideal", topology, generate_calibration(topology, targets, 0), 32)


class TestMolecules:
    def test_h2_ground_energy_matches_paper_optimum(self):
        hamiltonian = h2_hamiltonian()
        assert hamiltonian.ground_energy_dense(2) == pytest.approx(-1.85, abs=1e-6)

    def test_molecule_registry(self):
        assert set(available_molecules()) == set(MOLECULE_SPECS)
        with pytest.raises(KeyError):
            load_molecule("caffeine")

    @pytest.mark.parametrize("name", ["h2", "lih", "h2o", "ch4-6q"])
    def test_molecule_spectra_hit_targets(self, name):
        molecule = load_molecule(name)
        assert molecule.n_qubits == MOLECULE_SPECS[name].n_qubits
        assert molecule.ground_energy == pytest.approx(
            MOLECULE_SPECS[name].target_ground_energy, abs=1e-6
        )
        exact = molecule.hamiltonian.ground_energy_dense(molecule.n_qubits)
        assert exact == pytest.approx(molecule.ground_energy, abs=1e-6)

    def test_synthetic_hamiltonian_deterministic(self):
        a, _ = synthetic_molecular_hamiltonian("x", 4, -3.0, seed=9)
        b, _ = synthetic_molecular_hamiltonian("x", 4, -3.0, seed=9)
        assert len(a) == len(b)
        for term_a, term_b in zip(a.terms, b.terms):
            assert term_a.paulis == term_b.paulis
            assert term_a.coefficient == pytest.approx(term_b.coefficient)


class TestUCCSD:
    def test_pauli_exponential_matches_expm(self):
        paulis = ((0, "X"), (1, "Y"), (2, "Z"))
        theta = 0.73
        pcirc = ParameterizedCircuit(3)
        for op in pauli_exponential_ops(paulis, 0):
            pcirc.add_op(op)
        state = run_parameterized(pcirc, np.array([theta]))[0].reshape(-1)
        pauli_matrix = PauliString.from_dict(1.0, dict(paulis)).to_matrix(3)
        exact = expm(-0.5j * theta * pauli_matrix)
        initial = np.zeros(8, dtype=complex)
        initial[0] = 1.0
        assert np.allclose(state, exact @ initial, atol=1e-9)

    def test_excitation_pairs_counts(self):
        singles, doubles = excitation_pairs(4)
        assert len(singles) == 4
        assert len(doubles) == 1
        singles6, doubles6 = excitation_pairs(6)
        assert len(singles6) == 9
        assert len(doubles6) == 9

    def test_uccsd_ansatz_is_deep(self):
        ansatz = build_uccsd_ansatz(4)
        shallow = build_uccsd_ansatz(4, max_doubles=0)
        assert len(ansatz.ops) > len(shallow.ops)
        assert ansatz.num_weights == 5  # 4 singles + 1 double

    def test_uccsd_requires_two_qubits(self):
        with pytest.raises(ValueError):
            build_uccsd_ansatz(1)


class TestVQE:
    def _simple_ansatz(self, n_qubits=2, n_blocks=3):
        pcirc = ParameterizedCircuit(n_qubits)
        for _ in range(n_blocks):
            for qubit in range(n_qubits):
                pcirc.add_trainable("ry", (qubit,))
            for qubit in range(n_qubits - 1):
                pcirc.add_trainable("rzz", (qubit, qubit + 1))
            for qubit in range(n_qubits):
                pcirc.add_trainable("ry", (qubit,))
        return pcirc

    def test_training_lowers_energy_toward_ground_state(self):
        molecule = load_molecule("h2")
        model = VQEModel(self._simple_ansatz(), molecule)
        config = VQEConfig(steps=150, learning_rate=0.08, seed=1)
        result = model.train(config)
        assert result.final_energy < -1.5
        assert result.final_energy >= molecule.ground_energy - 1e-6
        assert result.energies[0] > result.final_energy

    def test_energy_and_gradient_consistent(self):
        molecule = load_molecule("h2")
        model = VQEModel(self._simple_ansatz(), molecule)
        rng = np.random.default_rng(0)
        weights = model.init_weights(rng)
        energy, grads = model.energy_and_gradient(weights)
        assert energy == pytest.approx(model.energy(weights))
        assert grads.shape == (model.num_weights,)

    def test_measured_energy_on_ideal_backend_matches_statevector(self):
        molecule = load_molecule("h2")
        model = VQEModel(self._simple_ansatz(), molecule)
        weights = model.init_weights(np.random.default_rng(2))
        backend = QuantumBackend(_ideal_device(2), shots=0)
        measured = model.measure_energy(weights, backend)
        assert measured == pytest.approx(model.energy(weights), abs=1e-6)

    def test_noisy_measurement_is_above_noise_free_ground_estimate(self):
        molecule = load_molecule("h2")
        model = VQEModel(self._simple_ansatz(), molecule)
        result = model.train(VQEConfig(steps=120, learning_rate=0.08, seed=3))
        backend = QuantumBackend(get_device("yorktown"), shots=0, seed=0)
        noisy = model.measure_energy(result.weights, backend)
        assert noisy > result.final_energy - 1e-9

    def test_ansatz_size_validation(self):
        molecule = load_molecule("lih")  # 6 qubits
        with pytest.raises(ValueError):
            VQEModel(self._simple_ansatz(n_qubits=2), molecule)

    def test_weight_mask_freezes_parameters(self):
        molecule = load_molecule("h2")
        model = VQEModel(self._simple_ansatz(), molecule)
        weights = model.init_weights(np.random.default_rng(5))
        mask = np.zeros(model.num_weights, dtype=bool)
        mask[: model.num_weights // 2] = True
        result = model.train(VQEConfig(steps=10, seed=0), initial_weights=weights,
                             weight_mask=mask)
        assert np.allclose(result.weights[~mask], weights[~mask])
