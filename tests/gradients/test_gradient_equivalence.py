"""Gradient-equivalence layer: the batched shift-rule engines vs every reference.

Three tolerance tiers lock the batched parameter-shift engines down:

* **bitwise** — paths that are contractually the *same floats*: the
  sequential engine vs the legacy closure on the noise-free simulator, the
  shot-sampled modes under repeated runs (per-job pinned seeds), and the
  ``backend="shots"`` dispatch override at ``shots == 0``;
* **``1e-12``** — batched vs sequential row evaluation (the fused evolution
  only reorders floating-point contractions) and the density engine vs the
  per-sample legacy/measured references;
* **analytic** — the shift rule vs :func:`adjoint_gradient` (both exact,
  ``1e-10``) and vs central finite differences (``1e-6``).

Circuits are randomized over 2–6 qubits (seeded), mixing every exact-rule
gate family plus a controlled rotation to exercise the finite-difference
fallback rows of the shift plan.
"""

import numpy as np
import pytest

from repro.devices import QuantumBackend, get_device
from repro.gradients import BatchedGradientEngine, GradientEngineConfig
from repro.qml import EncoderSpec, ParameterShiftGradient, QNNModel
from repro.quantum.autodiff import finite_difference_gradient
from repro.quantum.circuit import ParameterizedCircuit
from repro.vqe import VQEModel, build_uccsd_ansatz, load_molecule
from repro.vqe.vqe import VQEConfig

#: batched vs sequential: same numbers, different contraction order
BATCH_TOL = 1e-12
#: shift rule vs adjoint: both analytically exact
EXACT_TOL = 1e-10
#: shift rule vs central finite differences (epsilon = 1e-5)
FD_TOL = 1e-6

EXACT_1Q = ("rx", "ry", "rz")
EXACT_2Q = ("rzz", "rxx")


def random_model(n_qubits, seed, *, layers=2, nonexact=False):
    """A randomized QNN: rotation encoder + mixed exact/non-exact layers."""
    rng = np.random.default_rng(seed)
    spec = EncoderSpec(
        f"rand-{n_qubits}q", n_qubits, (("ry", n_qubits), ("rz", n_qubits))
    )
    model = QNNModel(n_qubits, 2, encoder=spec)
    for _ in range(layers):
        for qubit in range(n_qubits):
            model.add_trainable(str(rng.choice(EXACT_1Q)), (qubit,))
        for qubit in range(n_qubits - 1):
            model.add_trainable(str(rng.choice(EXACT_2Q)), (qubit, qubit + 1))
    if nonexact:
        # controlled rotations have no exact two-term rule: these weights
        # take the shift plan's symmetric finite-difference rows
        model.add_trainable("crx", (0, n_qubits - 1))
    return model


def random_batch(model, seed, batch=3):
    rng = np.random.default_rng(seed + 1)
    weights = rng.uniform(-np.pi, np.pi, size=model.num_weights)
    features = rng.uniform(
        -np.pi, np.pi, size=(batch, model.encoder.n_features)
    )
    labels = rng.integers(0, model.n_classes, size=batch)
    return weights, features, labels


def random_ansatz(n_qubits, seed, layers=2):
    rng = np.random.default_rng(seed)
    circuit = ParameterizedCircuit(n_qubits)
    for _ in range(layers):
        for qubit in range(n_qubits):
            circuit.add_trainable(str(rng.choice(EXACT_1Q)), (qubit,))
        for qubit in range(n_qubits - 1):
            circuit.add_trainable(str(rng.choice(EXACT_2Q)), (qubit, qubit + 1))
    return circuit


def shift_rows(engine, circuit, weights):
    """Center row + every shifted row of one gradient step."""
    plan = engine.shift_plan(circuit)
    return np.concatenate([weights[None, :], plan.shifted_weight_rows(weights)])


def engine_pair(device=None, **config_kwargs):
    config = GradientEngineConfig(**config_kwargs)
    return (
        BatchedGradientEngine(device, config, engine="batched"),
        BatchedGradientEngine(device, config, engine="sequential"),
    )


class TestQMLEquivalence:
    @pytest.mark.parametrize("n_qubits", [2, 3, 4, 5, 6])
    def test_batched_matches_sequential_noise_free(self, n_qubits):
        model = random_model(n_qubits, seed=10 + n_qubits, nonexact=n_qubits >= 3)
        weights, features, _labels = random_batch(model, seed=20 + n_qubits)
        batched, sequential = engine_pair()
        rows = shift_rows(batched, model.circuit, weights)
        fused = batched.qml_expectations_rows(
            model.circuit, rows, features, witness_weights=weights
        )
        unfused = sequential.qml_expectations_rows(
            model.circuit, rows, features, witness_weights=weights
        )
        assert np.max(np.abs(fused - unfused)) <= BATCH_TOL

    @pytest.mark.parametrize(
        "n_qubits,device_name", [(2, "santiago"), (4, "santiago"), (5, "yorktown")]
    )
    def test_batched_matches_sequential_density(self, n_qubits, device_name):
        model = random_model(n_qubits, seed=30 + n_qubits, layers=1)
        weights, features, _labels = random_batch(model, seed=40 + n_qubits, batch=2)
        device = get_device(device_name)
        batched, sequential = engine_pair(device, shots=0)
        rows = shift_rows(batched, model.circuit, weights)
        fused = batched.qml_expectations_rows(
            model.circuit, rows, features, witness_weights=weights
        )
        unfused = sequential.qml_expectations_rows(
            model.circuit, rows, features, witness_weights=weights
        )
        assert np.max(np.abs(fused - unfused)) <= BATCH_TOL
        # every row ran, either through the vectorized template batch or the
        # per-row compiled fallback; the line-topology device must actually
        # engage the template path (on yorktown's bowtie the random circuit
        # can legitimately fall back row-by-row)
        stats = batched.stats
        assert stats.template_rows + stats.fallback_rows > 0
        if device_name == "santiago":
            assert stats.template_rows > 0

    def test_batched_matches_sequential_shot_sampled_bitwise(self, santiago):
        model = random_model(4, seed=51, layers=1)
        weights, features, _labels = random_batch(model, seed=52, batch=2)
        batched, sequential = engine_pair(santiago, shots=96, seed=7)
        rows = shift_rows(batched, model.circuit, weights)
        fused = batched.qml_expectations_rows(
            model.circuit, rows, features, witness_weights=weights
        )
        unfused = sequential.qml_expectations_rows(
            model.circuit, rows, features, witness_weights=weights
        )
        # every shot job's sampling seed is a pure function of (row label,
        # sample index), so batching cannot change a single sample
        assert np.array_equal(fused, unfused)
        assert batched.stats.shot_jobs == rows.shape[0] * features.shape[0]

    def test_sequential_matches_legacy_bitwise_noise_free(self):
        model = random_model(3, seed=61, nonexact=True)
        weights, features, labels = random_batch(model, seed=62)
        with ParameterShiftGradient(engine="sequential") as gradient:
            loss, grads = gradient(model, weights, features, labels)
        with ParameterShiftGradient(engine="legacy") as legacy:
            loss_ref, grads_ref = legacy(model, weights, features, labels)
        assert loss == loss_ref
        assert np.array_equal(grads, grads_ref)

    @pytest.mark.parametrize("n_qubits", [2, 4, 6])
    def test_matches_adjoint_noise_free(self, n_qubits):
        model = random_model(n_qubits, seed=70 + n_qubits)
        weights, features, labels = random_batch(model, seed=80 + n_qubits)
        with ParameterShiftGradient() as gradient:
            loss, grads = gradient(model, weights, features, labels)
        loss_ref, grads_ref, _logits = model.loss_and_gradient(
            weights, features, labels
        )
        assert loss == pytest.approx(loss_ref, abs=EXACT_TOL)
        np.testing.assert_allclose(grads, grads_ref, rtol=0, atol=EXACT_TOL)

    def test_matches_finite_difference(self):
        model = random_model(3, seed=91, nonexact=True)
        weights, features, labels = random_batch(model, seed=92)
        with ParameterShiftGradient() as gradient:
            _loss, grads = gradient(model, weights, features, labels)
        fd_grads = finite_difference_gradient(
            lambda w: model.loss(w, features, labels)[0], weights
        )
        np.testing.assert_allclose(grads, fd_grads, rtol=0, atol=FD_TOL)

    def test_density_matches_legacy(self, santiago):
        model = random_model(4, seed=101, layers=1)
        weights, features, labels = random_batch(model, seed=102, batch=2)
        backend = QuantumBackend(santiago, shots=0, seed=0)
        with ParameterShiftGradient(backend, shots=0) as gradient:
            loss, grads = gradient(model, weights, features, labels)
        with ParameterShiftGradient(backend, shots=0, engine="legacy") as legacy:
            loss_ref, grads_ref = legacy(model, weights, features, labels)
        assert loss == pytest.approx(loss_ref, abs=BATCH_TOL)
        np.testing.assert_allclose(grads, grads_ref, rtol=0, atol=BATCH_TOL)

    def test_shot_gradient_repeats_bitwise(self, santiago):
        model = random_model(3, seed=111, layers=1)
        weights, features, labels = random_batch(model, seed=112, batch=2)
        runs = []
        for _attempt in range(2):
            backend = QuantumBackend(santiago, shots=128, seed=3)
            with ParameterShiftGradient(backend, seed=3) as gradient:
                runs.append(gradient(model, weights, features, labels))
        assert runs[0][0] == runs[1][0]
        assert np.array_equal(runs[0][1], runs[1][1])

    def test_shots_backend_override_matches_density(self, santiago):
        model = random_model(3, seed=121, layers=1)
        weights, features, _labels = random_batch(model, seed=122, batch=2)
        density = BatchedGradientEngine(
            santiago, GradientEngineConfig(shots=0, backend=None),
            engine="sequential",
        )
        overridden = BatchedGradientEngine(
            santiago, GradientEngineConfig(shots=0, backend="shots"),
            engine="sequential",
        )
        rows = shift_rows(density, model.circuit, weights)
        reference = density.qml_expectations_rows(
            model.circuit, rows, features, witness_weights=weights
        )
        routed = overridden.qml_expectations_rows(
            model.circuit, rows, features, witness_weights=weights
        )
        # at shots == 0 the shot backend evolves the exact density, so the
        # dispatch override must not change a single float
        np.testing.assert_allclose(routed, reference, rtol=0, atol=BATCH_TOL)
        assert overridden.stats.shot_jobs > 0
        assert density.stats.shot_jobs == 0


class TestVQEEquivalence:
    @pytest.fixture(scope="class")
    def h2(self):
        return load_molecule("h2")

    @pytest.fixture(scope="class")
    def uccsd_model(self, h2):
        return VQEModel(build_uccsd_ansatz(h2.n_qubits, max_doubles=1), h2)

    def test_noise_free_energies_match_reference(self, h2):
        model = VQEModel(random_ansatz(h2.n_qubits, seed=131), h2)
        weights = model.init_weights(np.random.default_rng(132))
        batched, sequential = engine_pair()
        rows = shift_rows(batched, model.ansatz, weights)
        fused = batched.vqe_energy_rows(
            model.ansatz, model.measurement_plan, rows, witness_weights=weights
        )
        unfused = sequential.vqe_energy_rows(
            model.ansatz, model.measurement_plan, rows, witness_weights=weights
        )
        reference = np.array([model.energy(row) for row in rows])
        assert np.max(np.abs(fused - unfused)) <= BATCH_TOL
        np.testing.assert_allclose(fused, reference, rtol=0, atol=EXACT_TOL)

    def test_shift_gradient_matches_adjoint_and_fd(self, uccsd_model):
        weights = uccsd_model.init_weights(np.random.default_rng(141))
        engine = BatchedGradientEngine(engine="batched")
        energy, grads = uccsd_model._shift_energy_and_gradient(engine, weights)
        energy_ref, grads_ref = uccsd_model.energy_and_gradient(weights)
        assert energy == pytest.approx(energy_ref, abs=EXACT_TOL)
        np.testing.assert_allclose(grads, grads_ref, rtol=0, atol=EXACT_TOL)
        fd_grads = finite_difference_gradient(uccsd_model.energy, weights)
        np.testing.assert_allclose(grads, fd_grads, rtol=0, atol=FD_TOL)

    def test_density_matches_measured_energy(self, h2, santiago):
        model = VQEModel(random_ansatz(h2.n_qubits, seed=151, layers=1), h2)
        weights = model.init_weights(np.random.default_rng(152))
        backend = QuantumBackend(santiago, shots=0, seed=0)
        batched, sequential = engine_pair(santiago, shots=0)
        rows = shift_rows(batched, model.ansatz, weights)
        fused = batched.vqe_energy_rows(
            model.ansatz, model.measurement_plan, rows, witness_weights=weights
        )
        unfused = sequential.vqe_energy_rows(
            model.ansatz, model.measurement_plan, rows, witness_weights=weights
        )
        assert np.max(np.abs(fused - unfused)) <= BATCH_TOL
        # the engine's center-row energy is the same measured expectation the
        # per-setting device loop produces at shots == 0
        measured = model.measure_energy(weights, backend)
        assert fused[0] == pytest.approx(measured, abs=BATCH_TOL)

    def test_measured_shots_repeat_bitwise(self, uccsd_model, santiago):
        weights = uccsd_model.init_weights(np.random.default_rng(161))
        runs = []
        for _attempt in range(2):
            engine = BatchedGradientEngine(
                santiago, GradientEngineConfig(shots=256, seed=5)
            )
            rows = shift_rows(engine, uccsd_model.ansatz, weights)
            runs.append(
                engine.vqe_energy_rows(
                    uccsd_model.ansatz, uccsd_model.measurement_plan, rows,
                    witness_weights=weights,
                )
            )
            assert engine.stats.measured_rows == rows.shape[0]
        assert np.array_equal(runs[0], runs[1])

    def test_train_parameter_shift_tracks_adjoint(self, uccsd_model):
        initial = uccsd_model.init_weights(np.random.default_rng(171))
        shift = uccsd_model.train(
            VQEConfig(steps=3, gradient="parameter_shift", gradient_workers=1),
            initial_weights=initial,
        )
        adjoint = uccsd_model.train(
            VQEConfig(steps=3, gradient="adjoint"), initial_weights=initial
        )
        np.testing.assert_allclose(
            shift.energies, adjoint.energies, rtol=0, atol=1e-8
        )
        np.testing.assert_allclose(
            shift.weights, adjoint.weights, rtol=0, atol=1e-8
        )

    def test_unknown_gradient_rejected(self, uccsd_model):
        with pytest.raises(ValueError, match="unknown VQE gradient"):
            uccsd_model.train(VQEConfig(steps=1, gradient="spsa"))


class TestRankingInvariance:
    def test_candidate_ranking_invariant_across_engines(self):
        """Evolution-style candidate ranking cannot depend on the engine.

        Three randomized candidates are trained for two epochs with each
        gradient engine; the loss-based ranking (what an evolutionary search
        would select on) must be identical for legacy, sequential and
        batched evaluation.
        """
        from repro.qml import TrainConfig, make_classification_dataset, train_qnn

        dataset = make_classification_dataset(
            "rank-4q", n_classes=2, n_features=8,
            n_train=16, n_valid=4, n_test=4, seed=9,
        )
        config = TrainConfig(epochs=2, batch_size=8, learning_rate=0.1, seed=0)
        losses = {}
        for engine in ("legacy", "sequential", "batched"):
            losses[engine] = []
            for candidate in range(3):
                model = random_model(4, seed=200 + candidate, layers=1)
                with ParameterShiftGradient(engine=engine) as gradient:
                    result = train_qnn(
                        model, dataset, config, gradient_fn=gradient
                    )
                losses[engine].append(result.final_train_loss)
        reference = np.argsort(losses["legacy"])
        for engine in ("sequential", "batched"):
            assert np.array_equal(np.argsort(losses[engine]), reference), losses
