"""Regression guards for per-structure hoisting in gradient evaluation.

A shift-rule gradient evaluates the *same* circuit structure under
``2 * num_weights + 1`` weight rows, so everything derived from the
structure alone must be built once per structure, never once per shifted
row:

* :meth:`MeasurementPlan.settings` derives each commuting group's
  basis-change circuit exactly once per plan (memoized), no matter how many
  rows the measured/density loops evaluate;
* the gradient engine hoists one parametric (ansatz + basis change)
  structure per measurement group and reuses it for every row and every
  step;
* the parametric transpile cache compiles one template per structure — a
  whole gradient is angle re-binds, not recompilations.
"""

import numpy as np
import pytest

from repro.devices import QuantumBackend
from repro.execution.cache import ParametricTranspileCache, TranspileCache
from repro.gradients import BatchedGradientEngine, GradientEngineConfig
from repro.qml import ParameterShiftGradient, QNNModel, encoder_for_task
from repro.quantum import measurement
from repro.quantum.measurement import MeasurementPlan
from repro.vqe import VQEModel, build_uccsd_ansatz, load_molecule


@pytest.fixture()
def basis_change_calls(monkeypatch):
    """Count every basis-change derivation MeasurementPlan performs."""
    calls = []
    original = measurement.basis_change_circuit

    def counting(n_qubits, bases):
        calls.append(dict(bases))
        return original(n_qubits, bases)

    monkeypatch.setattr(measurement, "basis_change_circuit", counting)
    return calls


def tiny_model():
    model = QNNModel(4, 2, encoder=encoder_for_task("mnist-2"))
    for qubit in range(4):
        model.add_trainable("ry", (qubit,))
    for qubit in range(3):
        model.add_trainable("rzz", (qubit, qubit + 1))
    return model


class TestMeasurementPlanMemoization:
    def test_settings_derived_once_per_plan(self, basis_change_calls):
        molecule = load_molecule("h2")
        plan = MeasurementPlan(molecule.hamiltonian, molecule.n_qubits)
        first = plan.settings()
        n_groups = len(first)
        assert len(basis_change_calls) == n_groups
        assert plan.settings() is first
        assert len(basis_change_calls) == n_groups

    def test_density_gradient_derives_settings_once(
        self, santiago, basis_change_calls
    ):
        molecule = load_molecule("h2")
        model = VQEModel(
            build_uccsd_ansatz(molecule.n_qubits, max_doubles=1), molecule
        )
        engine = BatchedGradientEngine(santiago, GradientEngineConfig(shots=0))
        weights = model.init_weights(np.random.default_rng(1))
        for _step in range(2):
            energy, _grads = model._shift_energy_and_gradient(engine, weights)
            assert np.isfinite(energy)
        # one derivation per commuting group for the whole 2-step gradient
        # run — the per-shifted-row rebuilds this guards against would scale
        # the count by rows * steps
        n_groups = len(model.measurement_plan.settings())
        assert len(basis_change_calls) == n_groups

    def test_measured_loop_derives_settings_once(
        self, santiago, basis_change_calls
    ):
        molecule = load_molecule("h2")
        model = VQEModel(
            build_uccsd_ansatz(molecule.n_qubits, max_doubles=1), molecule
        )
        engine = BatchedGradientEngine(
            santiago, GradientEngineConfig(shots=128, seed=2)
        )
        weights = model.init_weights(np.random.default_rng(2))
        plan = engine.shift_plan(model.ansatz)
        rows = np.concatenate(
            [weights[None, :], plan.shifted_weight_rows(weights)]
        )
        engine.vqe_energy_rows(
            model.ansatz, model.measurement_plan, rows, witness_weights=weights
        )
        n_groups = len(model.measurement_plan.settings())
        assert engine.stats.measured_rows == rows.shape[0]
        assert len(basis_change_calls) == n_groups


class TestStructureHoisting:
    def test_vqe_group_structures_built_once(self, santiago):
        molecule = load_molecule("h2")
        model = VQEModel(
            build_uccsd_ansatz(molecule.n_qubits, max_doubles=1), molecule
        )
        engine = BatchedGradientEngine(santiago, GradientEngineConfig(shots=0))
        weights = model.init_weights(np.random.default_rng(3))
        model._shift_energy_and_gradient(engine, weights)
        assert len(engine._vqe_structures) == 1
        structures = engine._vqe_group_structures(
            model.ansatz, model.measurement_plan
        )
        stats = engine.parametric_transpile_cache.stats
        misses_after_first = stats.structure_misses
        variants_after_first = stats.variants_compiled
        assert misses_after_first == len(structures)
        # a second step re-binds angles into the same templates: no new
        # structures, no new compiled variants
        model._shift_energy_and_gradient(engine, weights + 0.05)
        assert len(engine._vqe_structures) == 1
        assert stats.structure_misses == misses_after_first
        assert stats.variants_compiled == variants_after_first
        assert stats.structure_hits >= len(structures)

    def test_qml_gradient_compiles_structure_once(self, santiago):
        model = tiny_model()
        backend = QuantumBackend(
            santiago, shots=0, seed=0,
            transpile_cache=TranspileCache(),
            parametric_cache=ParametricTranspileCache(),
        )
        rng = np.random.default_rng(4)
        weights = rng.uniform(-np.pi, np.pi, size=model.num_weights)
        features = rng.uniform(-np.pi, np.pi, size=(2, 16))
        labels = np.array([0, 1])
        with ParameterShiftGradient(backend, workers=1) as gradient:
            # the engine joins the backend's caches (the cache-sharing
            # contract): gradient compilations warm the evaluation path
            engine = gradient._engine
            assert engine.parametric_transpile_cache is backend.parametric_cache
            assert engine.transpile_cache is backend.transpile_cache
            gradient(model, weights, features, labels)
            stats = engine.parametric_transpile_cache.stats
            assert stats.structure_misses == 1
            variants_after_first = stats.variants_compiled
            gradient(model, weights + 0.05, features, labels)
            assert stats.structure_misses == 1
            assert stats.variants_compiled == variants_after_first
