"""Bitwise determinism of sharded epoch training.

The sharded gradient engine's contract is stronger than the equivalence
layer's tolerances: because the unit of evaluation is one weight row
everywhere (worker, parent, degraded retry), whole *weight trajectories* of
a training run must be bit-for-bit identical across worker counts, across
repeated runs, and across injected worker faults.  ``np.array_equal`` — not
``allclose`` — is the assertion throughout.
"""

import numpy as np
import pytest

from repro.devices import QuantumBackend, get_device
from repro.execution import FaultPlan
from repro.gradients import (
    BatchedGradientEngine,
    GradientEngineConfig,
    ShardedGradientEngine,
)
from repro.qml import (
    ParameterShiftGradient,
    QNNModel,
    TrainConfig,
    encoder_for_task,
    make_classification_dataset,
    train_qnn,
)
from repro.vqe import VQEModel, build_uccsd_ansatz, load_molecule
from repro.vqe.vqe import VQEConfig

WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def shard_dataset():
    return make_classification_dataset(
        "shard-2", n_classes=2, n_features=16,
        n_train=8, n_valid=4, n_test=4, image_side=4, seed=5,
    )


def tiny_model():
    model = QNNModel(4, 2, encoder=encoder_for_task("mnist-2"))
    for qubit in range(4):
        model.add_trainable("ry", (qubit,))
    for qubit in range(3):
        model.add_trainable("rzz", (qubit, qubit + 1))
    return model


def train_with_workers(dataset, workers, backend=None, faults=None):
    """Two epochs of parameter-shift training; returns (result, history)."""
    model = tiny_model()
    config = TrainConfig(epochs=2, batch_size=4, learning_rate=0.1, seed=0)
    gradient = ParameterShiftGradient(
        backend, workers=workers, engine="sequential", seed=0
    )
    if faults is not None:
        gradient._engine.fault_plan = FaultPlan.parse(faults)
    with gradient:
        result = train_qnn(model, dataset, config, gradient_fn=gradient)
    return result


class TestTrajectoryDeterminism:
    def test_weight_trajectories_bitwise_identical_across_workers(
        self, shard_dataset
    ):
        results = {
            workers: train_with_workers(shard_dataset, workers)
            for workers in WORKER_COUNTS
        }
        reference = results[WORKER_COUNTS[0]]
        for workers in WORKER_COUNTS[1:]:
            result = results[workers]
            assert np.array_equal(result.weights, reference.weights), workers
            assert [h["train_loss"] for h in result.history] == [
                h["train_loss"] for h in reference.history
            ], workers

    def test_repeated_sharded_runs_identical(self, shard_dataset):
        first = train_with_workers(shard_dataset, workers=2)
        second = train_with_workers(shard_dataset, workers=2)
        assert np.array_equal(first.weights, second.weights)
        assert [h["train_loss"] for h in first.history] == [
            h["train_loss"] for h in second.history
        ]

    def test_epoch_report_lands_in_history(self, shard_dataset):
        result = train_with_workers(shard_dataset, workers=2)
        for record in result.history:
            assert record["gradient_gradient_calls"] > 0
            assert record["gradient_sharded_steps"] > 0


class TestFaultInjection:
    def test_flaky_step_recovers_and_changes_nothing(self, shard_dataset):
        """A transient task error recovers via the in-process confirmation
        run — identical trajectories, zero degraded steps."""
        reference = train_with_workers(shard_dataset, workers=1)
        with pytest.warns(RuntimeWarning, match="recovered from worker faults"):
            faulty = train_with_workers(
                shard_dataset, workers=2,
                faults="flaky@task_receive[shard=1,gen=0,engine=gradient]",
            )
        assert np.array_equal(faulty.weights, reference.weights)
        assert [h["train_loss"] for h in faulty.history] == [
            h["train_loss"] for h in reference.history
        ]
        recovered = sum(
            record.get("gradient_flaky_recoveries", 0.0)
            for record in faulty.history
        )
        degraded = sum(
            record.get("gradient_degraded_steps", 0.0)
            for record in faulty.history
        )
        assert recovered > 0
        assert degraded == 0

    def test_crashed_shard_retries_and_changes_nothing(self, shard_dataset):
        """A worker crash retries on the surviving pool — identical
        trajectories, retry counters in the epoch report, zero degraded."""
        reference = train_with_workers(shard_dataset, workers=1)
        with pytest.warns(RuntimeWarning, match="recovered from worker faults"):
            faulty = train_with_workers(
                shard_dataset, workers=2,
                faults="crash@result_send[shard=0,gen=0,engine=gradient]",
            )
        assert np.array_equal(faulty.weights, reference.weights)
        assert [h["train_loss"] for h in faulty.history] == [
            h["train_loss"] for h in reference.history
        ]
        retried = sum(
            record.get("gradient_retried_shards", 0.0)
            for record in faulty.history
        )
        degraded = sum(
            record.get("gradient_degraded_steps", 0.0)
            for record in faulty.history
        )
        assert retried > 0
        assert degraded == 0

    def test_exhausted_retries_degrade_and_change_nothing(self, shard_dataset):
        """Unrecoverable infrastructure faults fall back whole-step — the
        genuine last resort — and still change nothing."""
        reference = train_with_workers(shard_dataset, workers=1)
        with pytest.warns(RuntimeWarning, match="degraded to the in-process"):
            faulty = train_with_workers(
                shard_dataset, workers=2,
                faults="crash@task_receive[engine=gradient,times=99]",
            )
        assert np.array_equal(faulty.weights, reference.weights)
        assert [h["train_loss"] for h in faulty.history] == [
            h["train_loss"] for h in reference.history
        ]
        degraded = sum(
            record.get("gradient_degraded_steps", 0.0)
            for record in faulty.history
        )
        assert degraded > 0


class TestDirectEngineSharding:
    """Engine-level sharding checks across estimator modes and backends."""

    @pytest.mark.parametrize("shots", [0, 64])
    def test_qml_rows_match_in_process_bitwise(self, santiago, shots):
        model = tiny_model()
        rng = np.random.default_rng(21)
        weights = rng.uniform(-np.pi, np.pi, size=model.num_weights)
        features = rng.uniform(-np.pi, np.pi, size=(2, 16))
        config = GradientEngineConfig(shots=shots, seed=4)
        reference_engine = BatchedGradientEngine(
            santiago, config, engine="sequential"
        )
        rows = np.concatenate([
            weights[None, :],
            reference_engine.shift_plan(model.circuit).shifted_weight_rows(weights),
        ])
        reference = reference_engine.qml_expectations_rows(
            model.circuit, rows, features, witness_weights=weights
        )
        with ShardedGradientEngine(santiago, config, workers=2) as sharded:
            values = sharded.qml_expectations_rows(
                model.circuit, rows, features, witness_weights=weights
            )
            # a second (warm-cache) step must stay sharded and identical
            warm = sharded.qml_expectations_rows(
                model.circuit, rows, features, witness_weights=weights
            )
            stats = sharded.scheduler_stats
            assert stats.sharded_steps == 2
            assert stats.shards_dispatched == 4
            assert stats.degraded_steps == 0
        assert np.array_equal(values, reference)
        assert np.array_equal(warm, reference)

    def test_vqe_rows_match_in_process_bitwise(self, santiago):
        molecule = load_molecule("h2")
        model = VQEModel(
            build_uccsd_ansatz(molecule.n_qubits, max_doubles=1), molecule
        )
        weights = model.init_weights(np.random.default_rng(31))
        config = GradientEngineConfig(shots=0, seed=4)
        reference_engine = BatchedGradientEngine(
            santiago, config, engine="sequential"
        )
        rows = np.concatenate([
            weights[None, :],
            reference_engine.shift_plan(model.ansatz).shifted_weight_rows(weights),
        ])
        reference = reference_engine.vqe_energy_rows(
            model.ansatz, model.measurement_plan, rows, witness_weights=weights
        )
        with ShardedGradientEngine(santiago, config, workers=2) as sharded:
            values = sharded.vqe_energy_rows(
                model.ansatz, model.measurement_plan, rows,
                witness_weights=weights,
            )
        assert np.array_equal(values, reference)

    def test_single_row_step_stays_in_process(self):
        model = tiny_model()
        weights = np.zeros(model.num_weights)
        features = np.zeros((1, 16))
        with ShardedGradientEngine(workers=4) as sharded:
            sharded.qml_expectations_rows(
                model.circuit, weights[None, :], features,
                witness_weights=weights,
            )
            assert sharded.scheduler_stats.in_process_steps == 1
            assert sharded.scheduler_stats.sharded_steps == 0


class TestVQETrainingDeterminism:
    def test_vqe_trajectories_identical_across_workers(self):
        molecule = load_molecule("h2")
        initial = None
        results = {}
        for workers in (1, 2):
            model = VQEModel(
                build_uccsd_ansatz(molecule.n_qubits, max_doubles=1), molecule
            )
            if initial is None:
                initial = model.init_weights(np.random.default_rng(41))
            # the bitwise contract is defined over the sequential row unit
            # ("auto" at workers=1 would pick the fused batched mode, which
            # is 1e-12-equal, not bitwise — see repro.gradients)
            results[workers] = model.train(
                VQEConfig(
                    steps=2, gradient="parameter_shift",
                    gradient_engine="sequential",
                    gradient_workers=workers, seed=0,
                ),
                initial_weights=initial,
            )
        assert np.array_equal(results[1].weights, results[2].weights)
        assert results[1].energies == results[2].energies

    def test_vqe_density_training_identical_across_workers(self, santiago):
        molecule = load_molecule("h2")
        results = {}
        initial = None
        for workers in (1, 2):
            backend = QuantumBackend(santiago, shots=0, seed=0)
            model = VQEModel(
                build_uccsd_ansatz(molecule.n_qubits, max_doubles=1), molecule
            )
            if initial is None:
                initial = model.init_weights(np.random.default_rng(51))
            results[workers] = model.train(
                VQEConfig(
                    steps=1, gradient="parameter_shift",
                    gradient_engine="sequential",
                    gradient_workers=workers, seed=0,
                ),
                initial_weights=initial,
                backend=backend,
            )
        assert np.array_equal(results[1].weights, results[2].weights)
        assert results[1].energies == results[2].energies
