"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SuperCircuit, get_design_space
from repro.devices import get_device
from repro.qml import encoder_for_task, make_classification_dataset


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small 4-class, 16-feature dataset (MNIST-4 shaped)."""
    return make_classification_dataset(
        "tiny-4", n_classes=4, n_features=16, n_train=48, n_valid=24, n_test=24,
        image_side=4, seed=7,
    )


@pytest.fixture(scope="session")
def tiny_binary_dataset():
    return make_classification_dataset(
        "tiny-2", n_classes=2, n_features=16, n_train=40, n_valid=20, n_test=20,
        image_side=4, seed=8,
    )


@pytest.fixture(scope="session")
def yorktown():
    return get_device("yorktown")


@pytest.fixture(scope="session")
def santiago():
    return get_device("santiago")


@pytest.fixture(scope="session")
def u3cu3_supercircuit():
    space = get_design_space("u3cu3")
    encoder = encoder_for_task("mnist-4")
    return SuperCircuit(space, 4, encoder=encoder, seed=3)
