"""Tests for the device NoiseModel."""

import numpy as np
import pytest

from repro.noise.models import NoiseModel, QubitNoiseParameters
from repro.quantum.circuit import Instruction, QuantumCircuit


def _simple_circuit():
    circuit = QuantumCircuit(3)
    circuit.add("u3", (0,), (0.3, 0.1, 0.2))
    circuit.add("cx", (0, 1))
    circuit.add("cx", (1, 2))
    return circuit


def test_ideal_model_has_unit_success_rate():
    model = NoiseModel.ideal(3)
    assert model.circuit_success_rate(_simple_circuit()) == pytest.approx(1.0)
    assert model.channels_for(Instruction("cx", (0, 1))) == []


def test_uniform_model_error_lookup():
    model = NoiseModel.uniform(
        3, single_qubit_error=1e-3, two_qubit_error=2e-2,
        readout_error=5e-2, edges=[(0, 1), (1, 2)],
    )
    assert model.single_qubit_error(0) == pytest.approx(1e-3)
    assert model.two_qubit_error(0, 1) == pytest.approx(2e-2)
    assert model.two_qubit_error(1, 0) == pytest.approx(2e-2)
    assert model.readout_error(2) == pytest.approx(5e-2)
    assert model.n_qubits() == 3


def test_success_rate_decreases_with_more_gates():
    model = NoiseModel.uniform(3, two_qubit_error=0.02, edges=[(0, 1), (1, 2)])
    short = QuantumCircuit(3)
    short.add("cx", (0, 1))
    long = _simple_circuit()
    assert model.circuit_success_rate(long) < model.circuit_success_rate(short)


def test_instruction_error_dispatch():
    model = NoiseModel.uniform(2, single_qubit_error=1e-3, two_qubit_error=1e-2,
                               edges=[(0, 1)])
    assert model.instruction_error(Instruction("x", (0,))) == pytest.approx(1e-3)
    assert model.instruction_error(Instruction("cx", (0, 1))) == pytest.approx(1e-2)


def test_channels_for_includes_depolarizing_and_relaxation():
    model = NoiseModel.uniform(2, single_qubit_error=1e-3, two_qubit_error=1e-2,
                               t1=50.0, t2=40.0, edges=[(0, 1)])
    channels = model.channels_for(Instruction("cx", (0, 1)))
    # one depolarizing channel on the pair plus thermal relaxation per qubit
    assert len(channels) == 3
    assert channels[0][1] == (0, 1)


def test_apply_readout_error_preserves_normalisation():
    model = NoiseModel.uniform(2, readout_error=0.1, edges=[(0, 1)])
    probs = np.array([0.5, 0.5, 0.0, 0.0])
    adjusted = model.apply_readout_error(probs, 2)
    assert adjusted.shape == (4,)
    assert np.isclose(adjusted.sum(), 1.0)
    assert adjusted[2] > 0  # confusion leaks probability into other outcomes


def test_reduced_model_reindexes_qubits():
    model = NoiseModel.uniform(4, two_qubit_error=0.03, readout_error=0.07,
                               edges=[(0, 1), (1, 2), (2, 3)])
    reduced = model.reduced([2, 3])
    assert reduced.n_qubits() == 2
    assert reduced.two_qubit_error(0, 1) == pytest.approx(0.03)
    assert reduced.readout_error(0) == pytest.approx(0.07)


def test_average_error_summary_keys():
    model = NoiseModel.uniform(3, edges=[(0, 1)])
    summary = model.average_error_summary()
    assert set(summary) == {"single_qubit_error", "two_qubit_error", "readout_error"}


def test_qubit_noise_parameters_readout_error():
    params = QubitNoiseParameters(t1=50, t2=40, readout_p01=0.02, readout_p10=0.04,
                                  single_qubit_error=1e-3)
    assert params.readout_error == pytest.approx(0.03)
