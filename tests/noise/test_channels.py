"""Tests for noise channels (CPTP properties, limits)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noise.channels import (
    amplitude_damping_kraus,
    depolarizing_kraus,
    is_cptp,
    phase_damping_kraus,
    readout_confusion_matrix,
    thermal_relaxation_kraus,
)

PROB = st.floats(0.0, 1.0, allow_nan=False)


@settings(max_examples=25, deadline=None)
@given(p=PROB)
def test_depolarizing_is_cptp(p):
    assert is_cptp(depolarizing_kraus(p, 1))


@settings(max_examples=10, deadline=None)
@given(p=PROB)
def test_two_qubit_depolarizing_is_cptp(p):
    assert is_cptp(depolarizing_kraus(p, 2))


@settings(max_examples=25, deadline=None)
@given(gamma=PROB)
def test_amplitude_damping_is_cptp(gamma):
    assert is_cptp(amplitude_damping_kraus(gamma))


@settings(max_examples=25, deadline=None)
@given(lam=PROB)
def test_phase_damping_is_cptp(lam):
    assert is_cptp(phase_damping_kraus(lam))


@settings(max_examples=25, deadline=None)
@given(
    t1=st.floats(1.0, 200.0, allow_nan=False),
    t2_fraction=st.floats(0.1, 2.0, allow_nan=False),
    duration=st.floats(0.0, 10.0, allow_nan=False),
)
def test_thermal_relaxation_is_cptp(t1, t2_fraction, duration):
    assert is_cptp(thermal_relaxation_kraus(t1, t1 * t2_fraction, duration))


def test_depolarizing_identity_limit():
    kraus = depolarizing_kraus(0.0, 1)
    assert np.allclose(kraus[0], np.eye(2))
    for op in kraus[1:]:
        assert np.allclose(op, 0.0)


def test_depolarizing_rejects_invalid_probability():
    with pytest.raises(ValueError):
        depolarizing_kraus(1.5, 1)
    with pytest.raises(ValueError):
        depolarizing_kraus(-0.1, 1)


def test_amplitude_damping_decays_excited_state():
    gamma = 0.3
    kraus = amplitude_damping_kraus(gamma)
    excited = np.array([[0.0, 0.0], [0.0, 1.0]], dtype=complex)
    out = sum(k @ excited @ k.conj().T for k in kraus)
    assert out[1, 1].real == pytest.approx(1.0 - gamma)
    assert out[0, 0].real == pytest.approx(gamma)


def test_thermal_relaxation_zero_duration_is_identity():
    kraus = thermal_relaxation_kraus(50.0, 40.0, 0.0)
    rho = np.array([[0.5, 0.5], [0.5, 0.5]], dtype=complex)
    out = sum(k @ rho @ k.conj().T for k in kraus)
    assert np.allclose(out, rho, atol=1e-12)


def test_thermal_relaxation_validates_inputs():
    with pytest.raises(ValueError):
        thermal_relaxation_kraus(-1.0, 10.0, 0.1)
    with pytest.raises(ValueError):
        thermal_relaxation_kraus(10.0, 10.0, -0.1)


def test_readout_confusion_columns_sum_to_one():
    matrix = readout_confusion_matrix(0.03, 0.08)
    assert np.allclose(matrix.sum(axis=0), 1.0)
    assert matrix[1, 0] == pytest.approx(0.03)
    assert matrix[0, 1] == pytest.approx(0.08)
    with pytest.raises(ValueError):
        readout_confusion_matrix(1.2, 0.0)
