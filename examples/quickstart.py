"""Quickstart: train a small quantum neural network and measure it under noise.

This example exercises the basic public API:

1. build a QNN (encoder + trainable layers) with :class:`repro.qml.QNNModel`,
2. train it noise-free with Adam + adjoint ("backprop") gradients,
3. compile it for a synthetic IBMQ-like device and measure the accuracy on the
   shot-based noisy backend.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

import numpy as np

from repro.devices import QuantumBackend, get_device
from repro.qml import (
    QNNModel,
    TrainConfig,
    encoder_for_task,
    evaluate_noise_free,
    evaluate_on_backend,
    load_task,
    train_qnn,
)
from repro.utils.tables import print_table


def build_model() -> QNNModel:
    """A hand-designed U3+CU3 circuit: two full-width blocks on 4 qubits."""
    model = QNNModel(n_qubits=4, n_classes=4, encoder=encoder_for_task("mnist-4"))
    for _block in range(2):
        for qubit in range(4):
            model.add_trainable("u3", (qubit,))
        for qubit in range(4):
            model.add_trainable("cu3", (qubit, (qubit + 1) % 4))
    return model


def main() -> None:
    print("Loading the (synthetic) MNIST-4 task ...")
    dataset = load_task("mnist-4", n_train=160, n_valid=40, n_test=60)

    model = build_model()
    print(f"Model has {model.num_weights} trainable parameters")

    print("Training noise-free (Adam, cosine LR, adjoint gradients) ...")
    config = TrainConfig(epochs=15, batch_size=32, learning_rate=0.02, seed=0)
    result = train_qnn(model, dataset, config)
    noise_free = evaluate_noise_free(model, result.weights, dataset.x_test,
                                     dataset.y_test)

    print("Measuring on the noisy IBMQ-Yorktown model (noise-adaptive layout) ...")
    backend = QuantumBackend(get_device("yorktown"), shots=2048, seed=0)
    measured = evaluate_on_backend(
        model, result.weights, dataset.x_test, dataset.y_test, backend,
        initial_layout="noise_adaptive", max_samples=20,
    )

    print_table(
        ["setting", "loss", "accuracy"],
        [
            ["noise-free simulation", noise_free["loss"], noise_free["accuracy"]],
            ["measured on yorktown", measured["loss"], measured["accuracy"]],
        ],
        title="Quickstart: human-designed U3+CU3 QNN on MNIST-4",
    )
    print("Note the gap between noise-free and measured accuracy — closing that "
          "gap is exactly what QuantumNAS is for (see examples/mnist4_quantumnas.py).")


if __name__ == "__main__":
    main()
