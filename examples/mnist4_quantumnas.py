"""End-to-end QuantumNAS: noise-adaptive circuit and qubit-mapping co-search.

Runs the five stages of the paper's Fig. 5 on the MNIST-4 task in the U3+CU3
design space, targeting the (synthetic) IBMQ-Yorktown device, and compares the
searched circuit against a human baseline with the same number of parameters.

Run with ``python examples/mnist4_quantumnas.py`` (a few minutes on a laptop).
"""

from __future__ import annotations

from repro.baselines import build_human_circuit
from repro.core import (
    EstimatorConfig,
    EvolutionConfig,
    QMLPipelineConfig,
    QuantumNASQMLPipeline,
    SuperTrainConfig,
    get_design_space,
)
from repro.devices import QuantumBackend, get_device
from repro.qml import (
    QNNModel,
    TrainConfig,
    encoder_for_task,
    evaluate_on_backend,
    load_task,
    train_qnn,
)
from repro.utils.tables import print_table


def main() -> None:
    task = "mnist-4"
    dataset = load_task(task, n_train=160, n_valid=48, n_test=60)
    encoder = encoder_for_task(task)
    space = get_design_space("u3cu3")
    device = get_device("yorktown")

    config = QMLPipelineConfig(
        super_train=SuperTrainConfig(steps=80, batch_size=32, seed=0),
        evolution=EvolutionConfig(iterations=8, population_size=16, parent_size=4,
                                  mutation_size=8, crossover_size=4, seed=0),
        estimator=EstimatorConfig(mode="success_rate", n_valid_samples=12),
        sub_train=TrainConfig(epochs=15, batch_size=32, learning_rate=0.02, seed=0),
        pruning_ratio=0.3,
        eval_shots=0,
        eval_max_samples=24,
        seed=0,
    )
    pipeline = QuantumNASQMLPipeline(space, dataset, 4, device, encoder, config=config)
    result = pipeline.run(verbose=True)

    n_params = result.best_config.num_parameters(space)
    print(f"\nSearched SubCircuit: {result.best_config.n_blocks} blocks, "
          f"{n_params} parameters, mapping {result.best_mapping}")

    # Human baseline with the same parameter budget, noise-adaptive layout.
    human_circuit, _cfg = build_human_circuit(space, 4, n_params, encoder=encoder)
    human_model = QNNModel.from_circuit(human_circuit, 4)
    human_weights = train_qnn(
        human_model, dataset,
        TrainConfig(epochs=15, batch_size=32, learning_rate=0.02, seed=0),
    ).weights
    backend = QuantumBackend(device, shots=0, seed=0)
    human_measured = evaluate_on_backend(
        human_model, human_weights, dataset.x_test, dataset.y_test, backend,
        initial_layout="noise_adaptive", max_samples=24,
    )

    rows = [
        ["human design + noise-adaptive mapping", human_measured["accuracy"]],
        ["QuantumNAS co-search", result.measured["accuracy"]],
    ]
    if result.measured_pruned is not None:
        rows.append(["QuantumNAS + pruning", result.measured_pruned["accuracy"]])
    rows.append(["(noise-free upper bound)", result.noise_free["accuracy"]])
    print_table(["method", "measured accuracy"], rows,
                title="MNIST-4 on IBMQ-Yorktown (synthetic device)")


if __name__ == "__main__":
    main()
