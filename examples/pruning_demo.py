"""Iterative quantum pruning: fewer gates, less noise, better measured accuracy.

Trains a QNN, prunes it to several final ratios with finetuning, and reports
how the compiled gate count, the estimated success rate and the measured
accuracy change (the Fig. 23 / Table II story).

Run with ``python examples/pruning_demo.py``.
"""

from __future__ import annotations

import numpy as np

from repro.core import iterative_prune_qnn
from repro.devices import QuantumBackend, get_device
from repro.qml import (
    QNNModel,
    TrainConfig,
    encoder_for_task,
    evaluate_on_backend,
    load_task,
    train_qnn,
)
from repro.transpile import transpile
from repro.utils.tables import print_table


def compiled_stats(model, weights, device):
    """Depth / gate count / success rate of the deployed circuit."""
    bound = model.circuit.bind(weights, np.zeros(16))
    compiled = transpile(bound, device, initial_layout="noise_adaptive")
    return compiled.depth, compiled.num_gates, compiled.success_rate()


def main() -> None:
    dataset = load_task("fashion-2", n_train=160, n_valid=48, n_test=40)
    device = get_device("yorktown")
    model = QNNModel(4, 2, encoder=encoder_for_task("fashion-2"))
    for _block in range(2):
        for qubit in range(4):
            model.add_trainable("u3", (qubit,))
        for qubit in range(4):
            model.add_trainable("cu3", (qubit, (qubit + 1) % 4))

    config = TrainConfig(epochs=15, batch_size=32, learning_rate=0.02, seed=0)
    trained = train_qnn(model, dataset, config)
    backend = QuantumBackend(device, shots=0, seed=0)

    rows = []
    depth, n_gates, rate = compiled_stats(model, trained.weights, device)
    measured = evaluate_on_backend(model, trained.weights, dataset.x_test,
                                   dataset.y_test, backend,
                                   initial_layout="noise_adaptive", max_samples=16)
    rows.append(["0% (unpruned)", depth, n_gates, rate, measured["accuracy"]])

    for ratio in (0.2, 0.4):
        pruning = iterative_prune_qnn(
            model, trained.weights, dataset, final_ratio=ratio,
            n_stages=3, finetune_epochs=4, train_config=config,
        )
        depth, n_gates, rate = compiled_stats(model, pruning.weights, device)
        measured = evaluate_on_backend(model, pruning.weights, dataset.x_test,
                                       dataset.y_test, backend,
                                       initial_layout="noise_adaptive",
                                       max_samples=16)
        rows.append([f"{int(ratio * 100)}%", depth, n_gates, rate,
                     measured["accuracy"]])

    print_table(
        ["pruning ratio", "compiled depth", "compiled gates",
         "success rate", "measured accuracy"],
        rows,
        title="Iterative pruning of a Fashion-2 QNN on IBMQ-Yorktown",
    )


if __name__ == "__main__":
    main()
