"""VQE for the H2 molecule: QuantumNAS-searched ansatz vs. the UCCSD baseline.

Reproduces the shape of Fig. 17: the searched, hardware-adapted ansatz reaches
a lower measured energy on a noisy device than the deep UCCSD problem ansatz,
even though both are trained noise-free.

Run with ``python examples/vqe_h2.py``.
"""

from __future__ import annotations

from repro.core import (
    EstimatorConfig,
    EvolutionConfig,
    QuantumNASVQEPipeline,
    SuperTrainConfig,
    VQEPipelineConfig,
    get_design_space,
)
from repro.devices import QuantumBackend, get_device
from repro.utils.tables import print_table
from repro.vqe import VQEConfig, VQEModel, build_uccsd_ansatz, load_molecule


def main() -> None:
    molecule = load_molecule("h2")
    device = get_device("yorktown")
    print(f"H2 Hamiltonian: {len(molecule.hamiltonian)} Pauli terms, "
          f"exact ground energy {molecule.ground_energy:.4f}")

    # --- UCCSD baseline -----------------------------------------------------
    uccsd = VQEModel(build_uccsd_ansatz(2), molecule)
    uccsd_result = uccsd.train(VQEConfig(steps=200, learning_rate=0.05, seed=0))
    backend = QuantumBackend(device, shots=0, seed=0)
    uccsd_measured = uccsd.measure_energy(uccsd_result.weights, backend,
                                          initial_layout="noise_adaptive")

    # --- QuantumNAS ----------------------------------------------------------
    config = VQEPipelineConfig(
        super_train=SuperTrainConfig(steps=80, batch_size=1, learning_rate=0.05,
                                     seed=0),
        evolution=EvolutionConfig(iterations=8, population_size=16, parent_size=4,
                                  mutation_size=8, crossover_size=4, seed=0),
        estimator=EstimatorConfig(mode="noise_sim", n_valid_samples=1),
        vqe_train=VQEConfig(steps=200, learning_rate=0.05, seed=0),
        pruning_ratio=0.5,
        eval_shots=0,
        seed=0,
    )
    pipeline = QuantumNASVQEPipeline(get_design_space("u3cu3"), molecule, device,
                                     config=config)
    result = pipeline.run(verbose=True)

    rows = [
        ["UCCSD ansatz", uccsd_result.final_energy, uccsd_measured],
        ["QuantumNAS searched", result.noise_free_energy, result.measured_energy],
    ]
    if result.measured_energy_pruned is not None:
        rows.append(["QuantumNAS + pruning", result.noise_free_energy,
                     result.measured_energy_pruned])
    rows.append(["exact ground state", molecule.ground_energy, molecule.ground_energy])
    print_table(
        ["ansatz", "noise-free energy", "measured energy (yorktown)"], rows,
        title="H2 VQE expectation values (lower is better)",
    )


if __name__ == "__main__":
    main()
