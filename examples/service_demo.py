"""Multi-tenant co-search service demo.

Three tenants — two QML classification searches with different budgets and
priorities, plus one H2 VQE search on a different device — share one
:class:`repro.service.CoSearchService` worker pool.  The EDD policy runs
the deadline job's generations first, admission control queues the third
job until a slot frees up, and every tenant's consumption lands in its
:class:`repro.service.TenantStats` ledger.

The accounting table is read back from the telemetry metrics registry —
the always-on per-tenant counters the service publishes every round — and
the demo finishes by re-running one tenant's job alone and asserting its
scores are bitwise identical to the shared run: the determinism contract
the service is built on, and the reason the telemetry can only ever
*observe* those numbers.

Run with ``python examples/service_demo.py`` (set ``REPRO_WORKERS=2`` to
watch the shared pool shard generations across processes, and
``REPRO_TRACE=trace.jsonl`` to record a span trace for
``python -m repro.telemetry summarize``).
"""

from __future__ import annotations

from repro import telemetry
from repro.core import EstimatorConfig, EvolutionConfig
from repro.qml import encoder_for_task, make_classification_dataset
from repro.service import CoSearchService, SearchJob
from repro.utils.tables import print_table
from repro.vqe import load_molecule


def qml_job(name: str, dataset, seed: int, **kwargs) -> SearchJob:
    return SearchJob(
        name=name,
        kind="qml",
        space="u3cu3",
        device="yorktown",
        n_qubits=4,
        evolution=EvolutionConfig(
            iterations=3, population_size=10, parent_size=3,
            mutation_size=4, crossover_size=3, seed=seed,
        ),
        estimator=EstimatorConfig(
            mode="noise_sim", shard_min_group_size=1, n_valid_samples=8
        ),
        dataset=dataset,
        n_classes=4,
        encoder=encoder_for_task("mnist-4"),
        seed=3,
        **kwargs,
    )


def vqe_job(name: str, **kwargs) -> SearchJob:
    return SearchJob(
        name=name,
        kind="vqe",
        space="u3cu3",
        device="santiago",
        n_qubits=2,
        evolution=EvolutionConfig(
            iterations=3, population_size=8, parent_size=3,
            mutation_size=3, crossover_size=2, seed=7,
        ),
        estimator=EstimatorConfig(shard_min_group_size=1),
        molecule=load_molecule("h2"),
        seed=3,
        **kwargs,
    )


def main() -> None:
    dataset = make_classification_dataset(
        "tiny-4", n_classes=4, n_features=16, n_train=48, n_valid=24,
        n_test=24, image_side=4, seed=7,
    )
    jobs = [
        qml_job("mnist-batch", dataset, seed=5, priority=1),
        vqe_job("h2-deadline", deadline=3.0),
        qml_job("mnist-backfill", dataset, seed=11),
    ]

    with CoSearchService(max_workers=2, max_concurrent_jobs=2) as service:
        for job in jobs:
            handle = service.submit(job)
            print(f"submitted {handle.name:15s} -> {handle.state}")
        results = service.run()

        # the service mirrors every tenant's consumption into always-on
        # telemetry counters; the accounting table reads those back
        metrics = telemetry.get_metrics()
        print_table(
            ["tenant", "state", "done@round", "best score", "generations",
             "candidates", "cache hits", "sim seconds"],
            [
                [
                    name,
                    service.handles[name].state,
                    service.handles[name].completed_round,
                    results[name].best_score,
                    int(metrics.value(
                        "service_generations_total", tenant=name
                    )),
                    int(metrics.value(
                        "service_candidates_total", tenant=name
                    )),
                    int(metrics.value(
                        "service_cache_hits_total", tenant=name
                    )),
                    metrics.value(
                        "service_simulator_seconds_total", tenant=name
                    ),
                ]
                for name in sorted(results)
            ],
            title="Per-tenant accounting (telemetry metrics snapshot)",
        )
        for name in sorted(results):
            ledger = service.tenant_stats[name]
            assert metrics.value(
                "service_generations_total", tenant=name
            ) == ledger.generations, "metrics diverged from TenantStats"

    # determinism check: one tenant re-run alone reproduces its shared-run
    # scores exactly
    with CoSearchService(max_workers=2, max_concurrent_jobs=1) as solo:
        solo.submit(qml_job("mnist-batch", dataset, seed=5, priority=1))
        alone = solo.run()["mnist-batch"]
    shared = results["mnist-batch"]
    assert alone.history == shared.history, "multiplexing changed scores!"
    assert alone.best_score == shared.best_score
    print(
        "determinism: 'mnist-batch' alone == alongside two other tenants "
        f"(best score {alone.best_score:.4f}, bitwise identical)"
    )


if __name__ == "__main__":
    main()
