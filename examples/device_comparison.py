"""Compare one trained QNN across several devices and qubit mappings.

Shows how topology and error rate affect measured accuracy (the Fig. 21 story):
the same trained circuit is compiled for several 5-qubit devices with either
the trivial or the noise-adaptive layout and measured on each.

Run with ``python examples/device_comparison.py``.
"""

from __future__ import annotations

from repro.devices import QuantumBackend, get_device
from repro.qml import (
    QNNModel,
    TrainConfig,
    encoder_for_task,
    evaluate_on_backend,
    load_task,
    train_qnn,
)
from repro.utils.tables import print_table

DEVICES = ["santiago", "athens", "lima", "belem", "quito", "yorktown"]


def main() -> None:
    dataset = load_task("mnist-4", n_train=160, n_valid=40, n_test=40)
    model = QNNModel(4, 4, encoder=encoder_for_task("mnist-4"))
    for _block in range(2):
        for qubit in range(4):
            model.add_trainable("u3", (qubit,))
        for qubit in range(4):
            model.add_trainable("cu3", (qubit, (qubit + 1) % 4))
    weights = train_qnn(
        model, dataset, TrainConfig(epochs=15, batch_size=32, learning_rate=0.02)
    ).weights

    rows = []
    for name in DEVICES:
        device = get_device(name)
        summary = device.error_summary()
        backend = QuantumBackend(device, shots=0, seed=0)
        trivial = evaluate_on_backend(
            model, weights, dataset.x_test, dataset.y_test, backend,
            initial_layout="trivial", max_samples=16,
        )
        adaptive = evaluate_on_backend(
            model, weights, dataset.x_test, dataset.y_test, backend,
            initial_layout="noise_adaptive", max_samples=16,
        )
        rows.append([
            name,
            device.topology.name.split("-")[-1],
            summary["two_qubit_error"],
            summary["readout_error"],
            trivial["accuracy"],
            adaptive["accuracy"],
        ])
    print_table(
        ["device", "topology", "cx error", "readout error",
         "acc (trivial layout)", "acc (noise-adaptive layout)"],
        rows,
        title="Same trained MNIST-4 circuit measured on different devices",
    )


if __name__ == "__main__":
    main()
