"""The sanctioned monotonic-clock seam.

Every duration measured inside the ``repro`` package — cache compile/bind
timers, shard wall clocks, watchdog waits, telemetry spans — reads the
clock through :func:`monotonic`.  Centralizing the read buys two things:

* **One audited suppression instead of many.**  The determinism lint
  (``det-monotonic-flow``) warns wherever a raw ``time.perf_counter()``
  value flows beyond a plain local timestamp assignment.  Before this seam
  existed, every stats sink carried its own per-site suppression; now the
  single suppression lives here, and the *flow* policing moves to the
  stricter ``telemetry-flow`` checker (:mod:`repro.analysis.telemetry`),
  which errors if any clock/telemetry value escapes into a return value
  outside the telemetry and stats layers.

* **A single override point.**  Tests and future remote transports can
  swap the reading (via :func:`set_clock`) without touching call sites —
  durations are observational by contract, so swapping the clock must
  never change a score.

The contract this seam exists to protect: clock readings feed *stats and
telemetry only*.  They must never influence scores, seeds, shard
assignment or any other result a search returns.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

__all__ = ["monotonic", "set_clock", "reset_clock"]

#: a swapped-in reading (tests / simulated time), or None for the default
_override: Optional[Callable[[], float]] = None


def monotonic() -> float:
    """Return the current monotonic timestamp in seconds.

    The one sanctioned raw clock read in the package: the returned value
    is observational (stats counters, telemetry spans) and must never flow
    into scores, seeds or scheduling decisions — enforced by the
    ``telemetry-flow`` analysis rule at every call site.
    """
    if _override is not None:
        return _override()
    # The seam's single audited escape: the reading leaves this function as
    # a return value so no other module needs a per-site suppression.
    return time.perf_counter()  # repro: ignore[det-monotonic-flow] -- the one sanctioned clock seam; call-site flow is policed by telemetry-flow


def set_clock(reading: Callable[[], float]) -> None:
    """Swap the clock reading (tests / simulated time).  Observation-only."""
    global _override
    _override = reading


def reset_clock() -> None:
    """Restore the default ``time.perf_counter`` reading."""
    global _override
    _override = None
