"""Plain-text table rendering for benchmark harnesses.

Every benchmark prints the rows/series of the paper table or figure it
reproduces; these helpers keep that output consistent and readable.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "print_table"]


def _format_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence], title: str | None = None
) -> str:
    """Render a fixed-width table with optional title."""
    rendered_rows: List[List[str]] = [[_format_cell(c) for c in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_row(headers))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in rendered_rows)
    return "\n".join(lines)


def print_table(
    headers: Sequence[str], rows: Iterable[Sequence], title: str | None = None
) -> None:
    print()
    print(format_table(headers, rows, title))
    print()
