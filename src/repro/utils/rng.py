"""Deterministic random-number-generator helpers.

Every stochastic component (dataset synthesis, SuperCircuit sampling, the
evolutionary engine, shot noise, calibration drift) accepts either a seed or a
``numpy.random.Generator`` so experiments are reproducible end to end.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Tuple, Union

import numpy as np

__all__ = ["ensure_rng", "seeded_rng", "derive_rng", "stable_seed"]

RngLike = Union[int, np.random.Generator, None]


def stable_seed(key: Tuple) -> int:
    """A deterministic 32-bit seed derived from a hashable key.

    ``hash()`` is salted per process for strings, so the seed is derived from
    ``repr`` instead — seeds (cache entries, shard rng streams, pinned shot
    draws) are then reproducible across processes and insertion orders.
    """
    digest = hashlib.blake2b(repr(key).encode("utf-8"), digest_size=4).digest()
    return int.from_bytes(digest, "big")


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` (seed, generator or None) into a Generator."""
    if rng is None:
        # The one sanctioned unpinned stream: every determinism-contract
        # path (engine, scheduler, backends, caches) passes an explicit
        # seed or Generator; ``None`` is the exploratory-use escape hatch,
        # and funnelling every call site through here keeps this the single
        # audited occurrence in the tree.
        # repro: ignore[det-unpinned-rng] -- documented escape hatch
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(int(rng))


def seeded_rng(seed: int) -> np.random.Generator:
    """A generator with an explicit seed (alias kept for readability)."""
    return np.random.default_rng(int(seed))


def derive_rng(rng: np.random.Generator, stream: int) -> np.random.Generator:
    """Derive an independent sub-stream from an existing generator."""
    seed = int(rng.integers(0, 2**31 - 1)) + 7919 * int(stream)
    return np.random.default_rng(seed)
