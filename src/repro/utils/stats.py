"""Small statistics helpers used across training and evaluation."""

from __future__ import annotations

import numpy as np

__all__ = [
    "softmax",
    "nll_loss",
    "cross_entropy_with_logits",
    "accuracy",
    "pearson_correlation",
    "spearman_correlation",
]


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    logits = np.asarray(logits, dtype=float)
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def nll_loss(probabilities: np.ndarray, labels: np.ndarray, eps: float = 1e-12):
    """Mean negative log-likelihood of the true class probabilities."""
    probabilities = np.asarray(probabilities, dtype=float)
    labels = np.asarray(labels, dtype=int)
    picked = probabilities[np.arange(len(labels)), labels]
    return float(-np.mean(np.log(picked + eps)))


def cross_entropy_with_logits(logits: np.ndarray, labels: np.ndarray):
    """Mean cross entropy plus its gradient with respect to the logits."""
    probs = softmax(logits)
    labels = np.asarray(labels, dtype=int)
    batch = len(labels)
    loss = nll_loss(probs, labels)
    grad = probs.copy()
    grad[np.arange(batch), labels] -= 1.0
    grad /= batch
    return loss, grad


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 classification accuracy."""
    predictions = np.argmax(np.asarray(logits), axis=-1)
    return float(np.mean(predictions == np.asarray(labels)))


def pearson_correlation(x: np.ndarray, y: np.ndarray) -> float:
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.size != y.size or x.size < 2:
        raise ValueError("need two equally sized arrays with at least 2 entries")
    x_c = x - x.mean()
    y_c = y - y.mean()
    denom = np.sqrt((x_c**2).sum() * (y_c**2).sum())
    if denom == 0:
        return 0.0
    return float((x_c * y_c).sum() / denom)


def _ranks(values: np.ndarray) -> np.ndarray:
    """Average ranks (ties receive the mean of their rank positions)."""
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(len(values), dtype=float)
    sorted_vals = values[order]
    i = 0
    while i < len(values):
        j = i
        while j + 1 < len(values) and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    return ranks


def spearman_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Spearman rank correlation (the estimator-reliability metric in Fig. 9/10)."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    return pearson_correlation(_ranks(x), _ranks(y))
