"""Serialization of search artifacts.

QuantumNAS runs produce artifacts worth persisting: the searched SubCircuit
configuration, the qubit mapping, trained weights and pruning masks.  These
helpers serialize them to plain JSON so a search performed once (e.g. on a big
machine) can be re-deployed later, which is exactly the "SuperCircuit is reused
for new devices" workflow of the paper.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Union

import numpy as np

from ..core.design_space import get_design_space
from ..core.subcircuit import SubCircuitConfig

__all__ = [
    "searched_circuit_to_dict",
    "searched_circuit_from_dict",
    "save_searched_circuit",
    "load_searched_circuit",
]

PathLike = Union[str, Path]


def searched_circuit_to_dict(
    space_name: str,
    n_qubits: int,
    config: SubCircuitConfig,
    mapping: Sequence[int],
    weights: Optional[np.ndarray] = None,
    keep_mask: Optional[np.ndarray] = None,
    metadata: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Serialize a searched (SubCircuit, mapping, weights) triple to a dict."""
    get_design_space(space_name)  # validate the space name early
    payload: Dict[str, Any] = {
        "space": space_name,
        "n_qubits": int(n_qubits),
        "n_blocks": int(config.n_blocks),
        "widths": [list(block) for block in config.widths],
        "mapping": [int(q) for q in mapping],
    }
    if weights is not None:
        payload["weights"] = np.asarray(weights, dtype=float).tolist()
    if keep_mask is not None:
        payload["keep_mask"] = np.asarray(keep_mask, dtype=bool).tolist()
    if metadata:
        payload["metadata"] = dict(metadata)
    return payload


def searched_circuit_from_dict(payload: Dict[str, Any]):
    """Inverse of :func:`searched_circuit_to_dict`.

    Returns ``(space, n_qubits, config, mapping, weights, keep_mask, metadata)``.
    """
    space = get_design_space(payload["space"])
    n_qubits = int(payload["n_qubits"])
    config = SubCircuitConfig(
        int(payload["n_blocks"]),
        tuple(tuple(int(w) for w in block) for block in payload["widths"]),
    )
    mapping = tuple(int(q) for q in payload["mapping"])
    weights = (
        np.asarray(payload["weights"], dtype=float)
        if "weights" in payload
        else None
    )
    keep_mask = (
        np.asarray(payload["keep_mask"], dtype=bool)
        if "keep_mask" in payload
        else None
    )
    metadata = payload.get("metadata", {})
    return space, n_qubits, config, mapping, weights, keep_mask, metadata


def save_searched_circuit(path: PathLike, **kwargs) -> Path:
    """Serialize a searched circuit to a JSON file (see ``searched_circuit_to_dict``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(searched_circuit_to_dict(**kwargs), handle, indent=2)
    return path


def load_searched_circuit(path: PathLike):
    """Load a searched circuit previously stored with :func:`save_searched_circuit`."""
    with Path(path).open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return searched_circuit_from_dict(payload)
