"""Shared utilities: RNG handling, optimizers, statistics and reporting."""

from .rng import ensure_rng, seeded_rng
from .optimizers import Adam, SGD, CosineWarmupSchedule, ConstantSchedule
from .stats import spearman_correlation, pearson_correlation, softmax, nll_loss
from .tables import format_table, print_table

__all__ = [
    "ensure_rng",
    "seeded_rng",
    "Adam",
    "SGD",
    "CosineWarmupSchedule",
    "ConstantSchedule",
    "spearman_correlation",
    "pearson_correlation",
    "softmax",
    "nll_loss",
    "format_table",
    "print_table",
]
