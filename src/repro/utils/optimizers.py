"""Gradient-descent optimizers and learning-rate schedules.

The paper trains every circuit with Adam (initial LR 5e-3, weight decay 1e-4)
under a cosine schedule with a linear warm-up; these are re-implemented here
on plain NumPy arrays.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

__all__ = ["Adam", "SGD", "CosineWarmupSchedule", "ConstantSchedule"]


class ConstantSchedule:
    """A learning-rate schedule that always returns the base rate."""

    def __init__(self, base_lr: float) -> None:
        self.base_lr = float(base_lr)

    def lr(self, step: int) -> float:
        return self.base_lr


class CosineWarmupSchedule:
    """Linear warm-up followed by cosine decay to ``min_lr``."""

    def __init__(
        self,
        base_lr: float,
        total_steps: int,
        warmup_steps: int = 0,
        min_lr: float = 0.0,
    ) -> None:
        if total_steps < 1:
            raise ValueError("total_steps must be positive")
        if warmup_steps < 0:
            raise ValueError("warmup_steps must be non-negative")
        self.base_lr = float(base_lr)
        self.total_steps = int(total_steps)
        self.warmup_steps = min(int(warmup_steps), self.total_steps)
        self.min_lr = float(min_lr)

    def lr(self, step: int) -> float:
        step = min(max(step, 0), self.total_steps)
        if self.warmup_steps and step < self.warmup_steps:
            return self.base_lr * (step + 1) / self.warmup_steps
        span = max(self.total_steps - self.warmup_steps, 1)
        progress = (step - self.warmup_steps) / span
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine


class SGD:
    """Vanilla stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        schedule: Optional[CosineWarmupSchedule] = None,
    ) -> None:
        self.lr = float(lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.schedule = schedule
        self._velocity: Optional[np.ndarray] = None
        self._step = 0

    def step(self, params: np.ndarray, grads: np.ndarray) -> np.ndarray:
        params = np.asarray(params, dtype=float)
        grads = np.asarray(grads, dtype=float) + self.weight_decay * params
        if self._velocity is None:
            self._velocity = np.zeros_like(params)
        lr = self.schedule.lr(self._step) if self.schedule else self.lr
        self._velocity = self.momentum * self._velocity - lr * grads
        self._step += 1
        return params + self._velocity


class Adam:
    """Adam optimizer with decoupled weight decay and an optional schedule."""

    def __init__(
        self,
        lr: float = 5e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 1e-4,
        schedule: Optional[CosineWarmupSchedule] = None,
    ) -> None:
        self.lr = float(lr)
        self.beta1, self.beta2 = betas
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self.schedule = schedule
        self._m: Optional[np.ndarray] = None
        self._v: Optional[np.ndarray] = None
        self._step = 0

    def reset(self) -> None:
        self._m = None
        self._v = None
        self._step = 0

    def step(
        self,
        params: np.ndarray,
        grads: np.ndarray,
        mask: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Return updated parameters.

        ``mask`` (boolean) restricts the update to a subset of parameters —
        this is how SuperCircuit training updates only the sampled SubCircuit's
        parameter subset at each step.
        """
        params = np.asarray(params, dtype=float).copy()
        grads = np.asarray(grads, dtype=float) + self.weight_decay * params
        if self._m is None or self._m.shape != params.shape:
            self._m = np.zeros_like(params)
            self._v = np.zeros_like(params)
        self._step += 1
        lr = self.schedule.lr(self._step - 1) if self.schedule else self.lr

        if mask is None:
            mask = np.ones_like(params, dtype=bool)
        mask = np.asarray(mask, dtype=bool)

        self._m[mask] = self.beta1 * self._m[mask] + (1 - self.beta1) * grads[mask]
        self._v[mask] = self.beta2 * self._v[mask] + (1 - self.beta2) * grads[mask] ** 2
        m_hat = self._m[mask] / (1 - self.beta1**self._step)
        v_hat = self._v[mask] / (1 - self.beta2**self._step)
        params[mask] -= lr * m_hat / (np.sqrt(v_hat) + self.eps)
        return params
