"""Variational quantum eigensolver layer: molecules, ansatzes, VQE runner."""

from .molecules import (
    MOLECULE_SPECS,
    Molecule,
    available_molecules,
    h2_hamiltonian,
    load_molecule,
    synthetic_molecular_hamiltonian,
)
from .uccsd import build_uccsd_ansatz, excitation_pairs, pauli_exponential_ops
from .vqe import VQEConfig, VQEModel, VQEResult

__all__ = [
    "MOLECULE_SPECS",
    "Molecule",
    "available_molecules",
    "h2_hamiltonian",
    "load_molecule",
    "synthetic_molecular_hamiltonian",
    "build_uccsd_ansatz",
    "excitation_pairs",
    "pauli_exponential_ops",
    "VQEConfig",
    "VQEModel",
    "VQEResult",
]
