"""UCCSD-style baseline ansatz.

The paper compares QuantumNAS against the UCCSD problem ansatz and notes it is
far from optimal on hardware because it is not adapted to device noise (it is
deep: thousands of gates for the larger molecules).  We build a Trotterized
unitary-coupled-cluster ansatz out of Pauli-string exponentials: every single
and double excitation contributes exponentials of the form ``exp(-i theta/2 P)``
with the standard CNOT-ladder circuit, so the circuit depth grows exactly the
way the paper's UCCSD baselines do.
"""

from __future__ import annotations

import itertools
import math
from typing import List, Sequence, Tuple

from ..quantum.circuit import ParamOp, ParameterizedCircuit, const, weight

__all__ = ["pauli_exponential_ops", "build_uccsd_ansatz", "excitation_pairs"]

_HALF_PI = math.pi / 2


def pauli_exponential_ops(
    paulis: Sequence[Tuple[int, str]], weight_index: int
) -> List[ParamOp]:
    """Circuit for ``exp(-i theta/2 * P)`` where ``P`` is a Pauli string.

    Standard construction: rotate each qubit into the Z basis (H for X,
    RX(pi/2) for Y), entangle along a CNOT ladder, apply RZ(theta) on the last
    qubit, then undo the ladder and the basis rotations.  ``theta`` is the
    trainable weight at ``weight_index``.
    """
    if not paulis:
        return []
    ordered = sorted(paulis)
    ops: List[ParamOp] = []
    for qubit, pauli in ordered:
        if pauli == "X":
            ops.append(ParamOp("h", (qubit,)))
        elif pauli == "Y":
            ops.append(ParamOp("rx", (qubit,), (const(_HALF_PI),)))
        elif pauli != "Z":
            raise ValueError(f"invalid Pauli label '{pauli}'")
    qubits = [q for q, _p in ordered]
    for first, second in zip(qubits, qubits[1:]):
        ops.append(ParamOp("cx", (first, second)))
    ops.append(ParamOp("rz", (qubits[-1],), (weight(weight_index),)))
    for first, second in reversed(list(zip(qubits, qubits[1:]))):
        ops.append(ParamOp("cx", (first, second)))
    for qubit, pauli in reversed(ordered):
        if pauli == "X":
            ops.append(ParamOp("h", (qubit,)))
        elif pauli == "Y":
            ops.append(ParamOp("rx", (qubit,), (const(-_HALF_PI),)))
    return ops


def excitation_pairs(
    n_qubits: int,
) -> Tuple[List[Tuple[int, int]], List[Tuple[int, int, int, int]]]:
    """Single and double excitations for a half-filled register.

    Qubits ``0 .. n/2 - 1`` are treated as occupied spin-orbitals and the rest
    as virtual, following the usual UCCSD reference-state convention.
    """
    occupied = list(range(n_qubits // 2))
    virtual = list(range(n_qubits // 2, n_qubits))
    singles = [(i, a) for i in occupied for a in virtual]
    doubles = [
        (i, j, a, b)
        for i, j in itertools.combinations(occupied, 2)
        for a, b in itertools.combinations(virtual, 2)
    ]
    return singles, doubles


def build_uccsd_ansatz(
    n_qubits: int,
    max_doubles: int | None = None,
    include_reference_state: bool = True,
) -> ParameterizedCircuit:
    """Build a Trotterized UCCSD-style ansatz circuit.

    Each single excitation ``(i, a)`` contributes the two Pauli exponentials
    ``exp(-i t/2 X_i Y_a)`` and ``exp(-i t/2 Y_i X_a)`` sharing one parameter;
    each double excitation contributes two four-qubit exponentials.  The
    resulting circuit is intentionally deep — that is the property the UCCSD
    baseline comparison exercises.
    """
    if n_qubits < 2:
        raise ValueError("UCCSD needs at least two qubits")
    circuit = ParameterizedCircuit(n_qubits)
    if include_reference_state:
        for qubit in range(n_qubits // 2):
            circuit.add_fixed("x", (qubit,))

    singles, doubles = excitation_pairs(n_qubits)
    if max_doubles is not None:
        doubles = doubles[:max_doubles]

    next_weight = 0
    for i, a in singles:
        for paulis in (((i, "X"), (a, "Y")), ((i, "Y"), (a, "X"))):
            for op in pauli_exponential_ops(paulis, next_weight):
                circuit.add_op(op)
        next_weight += 1
    for i, j, a, b in doubles:
        for paulis in (
            ((i, "X"), (j, "X"), (a, "X"), (b, "Y")),
            ((i, "Y"), (j, "Y"), (a, "Y"), (b, "X")),
        ):
            for op in pauli_exponential_ops(paulis, next_weight):
                circuit.add_op(op)
        next_weight += 1
    return circuit
