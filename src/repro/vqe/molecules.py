"""Molecular Hamiltonians for the VQE benchmarks.

H2 uses the standard 2-qubit Bravyi-Kitaev-reduced STO-3G Hamiltonian (the
coefficients published by O'Malley et al., "Scalable Quantum Simulation of
Molecular Energies"), shifted by the nuclear-repulsion constant so the exact
ground-state energy matches the -1.85 optimum quoted in the paper.

The larger molecules (LiH, H2O, CH4 at 6/10 qubits, BeH2 at 15 qubits) would
require a quantum-chemistry package to derive their fermionic Hamiltonians,
which is unavailable offline.  They are replaced by deterministic synthetic
Pauli Hamiltonians with molecule-scale spectra: low-weight Pauli terms with a
dominant diagonal part (as Bravyi-Kitaev molecular Hamiltonians have), scaled
so the exact ground-state energy sits at a chemically plausible value.  Only
the *relative* comparison (searched ansatz vs. UCCSD, noisy vs. noise-free)
matters for the reproduction, and that comparison is preserved; see DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..quantum.operators import PauliString, PauliSum
from ..utils.rng import ensure_rng

__all__ = ["Molecule", "h2_hamiltonian", "synthetic_molecular_hamiltonian",
           "MOLECULE_SPECS", "load_molecule", "available_molecules"]


@dataclass
class Molecule:
    """A named VQE problem instance."""

    name: str
    n_qubits: int
    hamiltonian: PauliSum
    ground_energy: float

    def __repr__(self) -> str:
        return (
            f"Molecule(name='{self.name}', n_qubits={self.n_qubits}, "
            f"n_terms={len(self.hamiltonian)}, ground_energy={self.ground_energy:.4f})"
        )


def h2_hamiltonian(include_nuclear_repulsion: bool = True) -> PauliSum:
    """The 2-qubit BK-reduced H2 Hamiltonian at equilibrium bond length."""
    g0, g1, g2, g3, g4, g5 = (-0.4804, 0.3435, -0.4347, 0.5716, 0.0910, 0.0910)
    terms = [
        (g0, {}),
        (g1, {0: "Z"}),
        (g2, {1: "Z"}),
        (g3, {0: "Z", 1: "Z"}),
        (g4, {0: "X", 1: "X"}),
        (g5, {0: "Y", 1: "Y"}),
    ]
    hamiltonian = PauliSum.from_terms(terms)
    if include_nuclear_repulsion:
        # Shift so the exact ground state sits at the -1.85 optimum the paper
        # quotes for H2 (electronic energy plus a constant offset).
        current = hamiltonian.ground_energy_dense(2)
        hamiltonian = hamiltonian.shifted(-1.85 - current)
    return hamiltonian.simplify()


def _lowest_eigenvalue(hamiltonian: PauliSum, n_qubits: int) -> float:
    """Ground-state energy: dense for small systems, Lanczos for larger ones."""
    if n_qubits <= 10:
        return hamiltonian.ground_energy_dense(n_qubits)
    from scipy.sparse.linalg import LinearOperator, eigsh

    from ..quantum.statevector import apply_pauli_sum

    dim = 2**n_qubits

    def matvec(vector: np.ndarray) -> np.ndarray:
        state = vector.astype(complex).reshape((1,) + (2,) * n_qubits)
        return apply_pauli_sum(state, hamiltonian).reshape(-1)

    operator = LinearOperator((dim, dim), matvec=matvec, dtype=complex)
    eigenvalues = eigsh(operator, k=1, which="SA", return_eigenvectors=False)
    return float(np.real(eigenvalues[0]))


def synthetic_molecular_hamiltonian(
    name: str,
    n_qubits: int,
    target_ground_energy: float,
    n_offdiagonal_terms: int = 12,
    seed: int = 0,
) -> Tuple[PauliSum, float]:
    """Build a deterministic molecule-like Hamiltonian with a target spectrum.

    Structure: single-Z and ZZ terms on all qubits (the dominant diagonal part
    of Bravyi-Kitaev molecular Hamiltonians) plus a limited number of low-weight
    XX/YY/XZX-style exchange terms.  Coefficients are scaled and shifted so the
    exact ground-state energy equals ``target_ground_energy``.
    """
    rng = ensure_rng(seed)
    terms: List[Tuple[float, Dict[int, str]]] = []
    for qubit in range(n_qubits):
        terms.append((float(rng.normal(0.4, 0.25)), {qubit: "Z"}))
    for qubit in range(n_qubits - 1):
        terms.append((float(rng.normal(0.25, 0.1)), {qubit: "Z", qubit + 1: "Z"}))
    for _ in range(n_offdiagonal_terms):
        a, b = rng.choice(n_qubits, size=2, replace=False)
        kind = rng.choice(["XX", "YY", "XY"])
        coefficient = float(rng.normal(0.0, 0.12))
        terms.append((coefficient, {int(a): kind[0], int(b): kind[1]}))
    hamiltonian = PauliSum.from_terms(terms).simplify()

    raw_ground = _lowest_eigenvalue(hamiltonian, n_qubits)
    scale = abs(target_ground_energy) / max(abs(raw_ground), 1e-9)
    hamiltonian = hamiltonian.scaled(scale)
    scaled_ground = raw_ground * scale
    shift = target_ground_energy - scaled_ground
    hamiltonian = hamiltonian.shifted(shift).simplify()
    return hamiltonian, target_ground_energy


@dataclass(frozen=True)
class _MoleculeSpec:
    n_qubits: int
    target_ground_energy: float
    n_offdiagonal_terms: int
    seed: int


# Target energies are chosen at the scale of the expectation values the paper
# reports for each molecule (Figs. 17-18); see the module docstring.
MOLECULE_SPECS: Dict[str, _MoleculeSpec] = {
    "h2": _MoleculeSpec(2, -1.85, 2, 201),
    "lih": _MoleculeSpec(6, -8.9, 14, 202),
    "h2o": _MoleculeSpec(6, -55.0, 14, 203),
    "ch4-6q": _MoleculeSpec(6, -28.0, 14, 204),
    "ch4-10q": _MoleculeSpec(10, -35.0, 20, 205),
    "beh2": _MoleculeSpec(15, -17.0, 24, 206),
}


def available_molecules() -> List[str]:
    return sorted(MOLECULE_SPECS)


def load_molecule(name: str) -> Molecule:
    """Load a molecule by name (``h2``, ``lih``, ``h2o``, ``ch4-6q``, ...)."""
    key = name.lower()
    if key not in MOLECULE_SPECS:
        raise KeyError(
            f"unknown molecule '{name}'; available: {', '.join(available_molecules())}"
        )
    spec = MOLECULE_SPECS[key]
    if key == "h2":
        hamiltonian = h2_hamiltonian()
        ground = hamiltonian.ground_energy_dense(2)
        return Molecule("h2", 2, hamiltonian, ground)
    hamiltonian, ground = synthetic_molecular_hamiltonian(
        key,
        spec.n_qubits,
        spec.target_ground_energy,
        n_offdiagonal_terms=spec.n_offdiagonal_terms,
        seed=spec.seed,
    )
    return Molecule(key, spec.n_qubits, hamiltonian, ground)
