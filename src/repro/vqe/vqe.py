"""VQE model: ansatz + Hamiltonian, training and noisy energy measurement."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..devices.backend import QuantumBackend
from ..quantum.autodiff import adjoint_gradient
from ..quantum.circuit import ParameterizedCircuit, QuantumCircuit
from ..quantum.measurement import MeasurementPlan
from ..quantum.operators import PauliSum
from ..quantum.statevector import expectation_pauli_sum, run_parameterized
from ..utils.optimizers import Adam, CosineWarmupSchedule
from ..utils.rng import ensure_rng
from .molecules import Molecule

__all__ = ["VQEConfig", "VQEResult", "VQEModel"]


@dataclass
class VQEConfig:
    """Training hyper-parameters (paper: 1000 steps, Adam, LR 5e-3)."""

    steps: int = 300
    learning_rate: float = 5e-3
    weight_decay: float = 1e-4
    warmup_steps: int = 0
    seed: int = 0


@dataclass
class VQEResult:
    """Optimized parameters and the energy trajectory."""

    weights: np.ndarray
    energies: List[float] = field(default_factory=list)

    @property
    def final_energy(self) -> float:
        return self.energies[-1] if self.energies else float("nan")

    @property
    def best_energy(self) -> float:
        return min(self.energies) if self.energies else float("nan")


class VQEModel:
    """A variational eigensolver for one molecule with a given ansatz."""

    def __init__(
        self,
        ansatz: ParameterizedCircuit,
        molecule: Molecule,
        measurement_plan: Optional[MeasurementPlan] = None,
    ) -> None:
        if ansatz.n_qubits < molecule.n_qubits:
            raise ValueError("ansatz has fewer qubits than the molecule requires")
        self.ansatz = ansatz
        self.molecule = molecule
        if measurement_plan is not None:
            # A hoisted plan (e.g. the estimator's per-task cache) avoids
            # re-deriving the commuting-group decomposition per candidate.
            if measurement_plan.n_qubits != ansatz.n_qubits:
                raise ValueError("measurement plan does not match the ansatz size")
            self.hamiltonian: PauliSum = measurement_plan.observable
            self.measurement_plan = measurement_plan
        else:
            self.hamiltonian = molecule.hamiltonian
            self.measurement_plan = MeasurementPlan(self.hamiltonian, ansatz.n_qubits)

    @property
    def num_weights(self) -> int:
        return self.ansatz.num_weights

    def init_weights(self, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        rng = ensure_rng(rng)
        # Small initial angles keep the ansatz near the reference state, the
        # usual VQE initialisation.
        return 0.1 * rng.normal(size=self.num_weights)

    # -- noise-free energy -----------------------------------------------------

    def energy(self, weights: np.ndarray) -> float:
        states = run_parameterized(self.ansatz, weights)
        return float(expectation_pauli_sum(states, self.hamiltonian)[0])

    def energy_and_gradient(self, weights: np.ndarray):
        states = run_parameterized(self.ansatz, weights)
        energy = float(expectation_pauli_sum(states, self.hamiltonian)[0])
        grads = adjoint_gradient(
            self.ansatz, weights, observable=self.hamiltonian, states_final=states
        )
        return energy, grads

    # -- training ---------------------------------------------------------------

    def train(
        self,
        config: Optional[VQEConfig] = None,
        initial_weights: Optional[np.ndarray] = None,
        weight_mask: Optional[np.ndarray] = None,
    ) -> VQEResult:
        """Minimize the energy with Adam (optionally with frozen weights)."""
        config = config or VQEConfig()
        rng = ensure_rng(config.seed)
        weights = (
            self.init_weights(rng)
            if initial_weights is None
            else np.array(initial_weights, dtype=float)
        )
        if weight_mask is None:
            weight_mask = np.ones_like(weights, dtype=bool)
        weight_mask = np.asarray(weight_mask, dtype=bool)
        schedule = CosineWarmupSchedule(
            base_lr=config.learning_rate,
            total_steps=max(config.steps, 1),
            warmup_steps=config.warmup_steps,
        )
        optimizer = Adam(
            lr=config.learning_rate,
            weight_decay=config.weight_decay,
            schedule=schedule,
        )
        energies: List[float] = []
        for _step in range(config.steps):
            energy, grads = self.energy_and_gradient(weights)
            grads = np.where(weight_mask, grads, 0.0)
            weights = optimizer.step(weights, grads, mask=weight_mask)
            energies.append(energy)
        energies.append(self.energy(weights))
        return VQEResult(weights=weights, energies=energies)

    # -- noisy measurement -------------------------------------------------------

    def bound_circuit(self, weights: np.ndarray) -> QuantumCircuit:
        return self.ansatz.bind(weights)

    def measure_energy(
        self,
        weights: np.ndarray,
        backend: QuantumBackend,
        initial_layout=None,
        optimization_level: int = 2,
        shots: Optional[int] = None,
    ) -> float:
        """Measured expectation value on a noisy backend.

        Every qubit-wise commuting measurement group is executed as its own
        circuit (state preparation + basis change), exactly as on hardware.
        """
        prepared = self.bound_circuit(weights)
        group_probabilities = []
        for basis_change, _terms in self.measurement_plan.settings():
            circuit = prepared.compose(basis_change)
            result = backend.run(
                circuit,
                initial_layout=initial_layout,
                optimization_level=optimization_level,
                shots=shots,
            )
            group_probabilities.append(result.probabilities)
        return self.measurement_plan.expectation_from_group_probabilities(
            group_probabilities
        )
