"""VQE model: ansatz + Hamiltonian, training and noisy energy measurement."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..devices.backend import QuantumBackend
from ..gradients import (
    BatchedGradientEngine,
    GradientEngineConfig,
    ShardedGradientEngine,
)
from ..quantum.autodiff import adjoint_gradient
from ..quantum.circuit import ParameterizedCircuit, QuantumCircuit
from ..quantum.measurement import MeasurementPlan
from ..quantum.operators import PauliSum
from ..quantum.statevector import expectation_pauli_sum, run_parameterized
from ..utils.optimizers import Adam, CosineWarmupSchedule
from ..utils.rng import ensure_rng
from .molecules import Molecule

__all__ = ["VQEConfig", "VQEResult", "VQEModel"]


@dataclass
class VQEConfig:
    """Training hyper-parameters (paper: 1000 steps, Adam, LR 5e-3).

    ``gradient`` selects the optimization gradient: ``"adjoint"`` (the fast
    classical-simulation default) or ``"parameter_shift"`` (the
    hardware-compatible rule, routed through the batched gradient engines —
    noise-free without a backend, noisy/measured with one).
    ``gradient_workers`` (default: the ``REPRO_WORKERS`` environment
    variable) shards each step's shifted evaluations across worker
    processes; ``gradient_engine`` picks ``"batched"`` (default via
    ``"auto"``) or ``"sequential"`` row evaluation.  ``shots`` overrides the
    backend's shot count for parameter-shift energy evaluations (``0`` means
    exact noisy simulation).
    """

    steps: int = 300
    learning_rate: float = 5e-3
    weight_decay: float = 1e-4
    warmup_steps: int = 0
    seed: int = 0
    gradient: str = "adjoint"
    gradient_engine: str = "auto"
    gradient_workers: Optional[int] = None
    shots: Optional[int] = None
    optimization_level: int = 2


@dataclass
class VQEResult:
    """Optimized parameters and the energy trajectory."""

    weights: np.ndarray
    energies: List[float] = field(default_factory=list)

    @property
    def final_energy(self) -> float:
        return self.energies[-1] if self.energies else float("nan")

    @property
    def best_energy(self) -> float:
        return min(self.energies) if self.energies else float("nan")


class VQEModel:
    """A variational eigensolver for one molecule with a given ansatz."""

    def __init__(
        self,
        ansatz: ParameterizedCircuit,
        molecule: Molecule,
        measurement_plan: Optional[MeasurementPlan] = None,
    ) -> None:
        if ansatz.n_qubits < molecule.n_qubits:
            raise ValueError("ansatz has fewer qubits than the molecule requires")
        self.ansatz = ansatz
        self.molecule = molecule
        if measurement_plan is not None:
            # A hoisted plan (e.g. the estimator's per-task cache) avoids
            # re-deriving the commuting-group decomposition per candidate.
            if measurement_plan.n_qubits != ansatz.n_qubits:
                raise ValueError("measurement plan does not match the ansatz size")
            self.hamiltonian: PauliSum = measurement_plan.observable
            self.measurement_plan = measurement_plan
        else:
            self.hamiltonian = molecule.hamiltonian
            self.measurement_plan = MeasurementPlan(self.hamiltonian, ansatz.n_qubits)

    @property
    def num_weights(self) -> int:
        return self.ansatz.num_weights

    def init_weights(self, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        rng = ensure_rng(rng)
        # Small initial angles keep the ansatz near the reference state, the
        # usual VQE initialisation.
        return 0.1 * rng.normal(size=self.num_weights)

    # -- noise-free energy -----------------------------------------------------

    def energy(self, weights: np.ndarray) -> float:
        states = run_parameterized(self.ansatz, weights)
        return float(expectation_pauli_sum(states, self.hamiltonian)[0])

    def energy_and_gradient(self, weights: np.ndarray):
        states = run_parameterized(self.ansatz, weights)
        energy = float(expectation_pauli_sum(states, self.hamiltonian)[0])
        grads = adjoint_gradient(
            self.ansatz, weights, observable=self.hamiltonian, states_final=states
        )
        return energy, grads

    # -- training ---------------------------------------------------------------

    def train(
        self,
        config: Optional[VQEConfig] = None,
        initial_weights: Optional[np.ndarray] = None,
        weight_mask: Optional[np.ndarray] = None,
        backend: Optional[QuantumBackend] = None,
        initial_layout=None,
    ) -> VQEResult:
        """Minimize the energy with Adam (optionally with frozen weights).

        With ``config.gradient == "parameter_shift"``, each step's energy
        and gradient come from one batched shift-rule evaluation —
        noise-free without a ``backend``, under its noise model otherwise —
        and the trajectory's final entry is the same evaluator's energy, so
        the recorded energies are consistent with what drove optimization.
        """
        config = config or VQEConfig()
        rng = ensure_rng(config.seed)
        weights = (
            self.init_weights(rng)
            if initial_weights is None
            else np.array(initial_weights, dtype=float)
        )
        if weight_mask is None:
            weight_mask = np.ones_like(weights, dtype=bool)
        weight_mask = np.asarray(weight_mask, dtype=bool)
        schedule = CosineWarmupSchedule(
            base_lr=config.learning_rate,
            total_steps=max(config.steps, 1),
            warmup_steps=config.warmup_steps,
        )
        optimizer = Adam(
            lr=config.learning_rate,
            weight_decay=config.weight_decay,
            schedule=schedule,
        )
        engine = None
        if config.gradient == "parameter_shift":
            engine = self._gradient_engine(config, backend, initial_layout)
        elif config.gradient != "adjoint":
            raise ValueError(f"unknown VQE gradient {config.gradient!r}")
        try:
            energies: List[float] = []
            for _step in range(config.steps):
                if engine is None:
                    energy, grads = self.energy_and_gradient(weights)
                else:
                    energy, grads = self._shift_energy_and_gradient(
                        engine, weights
                    )
                grads = np.where(weight_mask, grads, 0.0)
                weights = optimizer.step(weights, grads, mask=weight_mask)
                energies.append(energy)
            if engine is None:
                energies.append(self.energy(weights))
            else:
                energies.append(
                    float(
                        engine.vqe_energy_rows(
                            self.ansatz,
                            self.measurement_plan,
                            weights[None, :],
                            witness_weights=weights,
                        )[0]
                    )
                )
        finally:
            if engine is not None:
                engine.close()
        return VQEResult(weights=weights, energies=energies)

    def _gradient_engine(
        self,
        config: VQEConfig,
        backend: Optional[QuantumBackend],
        initial_layout,
    ):
        """Build the parameter-shift engine one training run owns."""
        engine_mode = config.gradient_engine
        if engine_mode == "auto":
            engine_mode = "batched"
        workers = config.gradient_workers
        if workers is None:
            workers = int(os.environ.get("REPRO_WORKERS", "1"))
        device = backend.device if backend is not None else None
        if backend is None:
            shots = 0
        else:
            shots = int(
                backend.shots if config.shots is None else config.shots
            )
        engine_config = GradientEngineConfig(
            shots=shots,
            seed=int(config.seed),
            optimization_level=int(config.optimization_level),
            max_density_qubits=int(getattr(backend, "max_density_qubits", 10)),
        )
        if int(workers) > 1:
            return ShardedGradientEngine(
                device, engine_config,
                initial_layout=initial_layout, workers=int(workers),
            )
        return BatchedGradientEngine(
            device, engine_config,
            initial_layout=initial_layout,
            transpile_cache=getattr(backend, "transpile_cache", None),
            parametric_cache=getattr(backend, "parametric_cache", None),
            engine=engine_mode,
        )

    def _shift_energy_and_gradient(self, engine, weights: np.ndarray):
        """One batched shift-rule step: center + shifted rows, one dispatch."""
        weights = np.asarray(weights, dtype=float)
        plan = engine.shift_plan(self.ansatz)
        rows = np.concatenate(
            [weights[None, :], plan.shifted_weight_rows(weights)]
        )
        energies = engine.vqe_energy_rows(
            self.ansatz, self.measurement_plan, rows, witness_weights=weights
        )
        return float(energies[0]), plan.jacobian_from_shifted(energies[1:])

    # -- noisy measurement -------------------------------------------------------

    def bound_circuit(self, weights: np.ndarray) -> QuantumCircuit:
        return self.ansatz.bind(weights)

    def measure_energy(
        self,
        weights: np.ndarray,
        backend: QuantumBackend,
        initial_layout=None,
        optimization_level: int = 2,
        shots: Optional[int] = None,
    ) -> float:
        """Measured expectation value on a noisy backend.

        Every qubit-wise commuting measurement group is executed as its own
        circuit (state preparation + basis change), exactly as on hardware.
        """
        prepared = self.bound_circuit(weights)
        group_probabilities = []
        for basis_change, _terms in self.measurement_plan.settings():
            circuit = prepared.compose(basis_change)
            result = backend.run(
                circuit,
                initial_layout=initial_layout,
                optimization_level=optimization_level,
                shots=shots,
            )
            group_probabilities.append(result.probabilities)
        return self.measurement_plan.expectation_from_group_probabilities(
            group_probabilities
        )
