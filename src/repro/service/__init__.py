"""Multi-tenant co-search service.

Turns the single-run co-search into a long-running scheduler: many
:class:`SearchJob` submissions (QML and VQE, different devices, different
budgets) share one worker pool group, an EDD-style priority/deadline
policy picks whose generation runs each round, and every tenant's
consumption is accounted in :class:`TenantStats`.  See ``README.md`` in
this package for the job model, the scheduling policy and the determinism
contract.
"""

from .jobs import JobHandle, SearchJob, TenantStats
from .service import CoSearchService, edd_order

__all__ = [
    "CoSearchService",
    "JobHandle",
    "SearchJob",
    "TenantStats",
    "edd_order",
]
