"""The multi-tenant co-search scheduler (see ``README.md`` in this package).

:class:`CoSearchService` turns the single-run co-search into a long-running
service: many :class:`~repro.service.jobs.SearchJob` submissions — QML and
VQE, different devices, different budgets — share one
:class:`~repro.execution.resilience.WorkerPoolGroup`, and an EDD-style
policy decides whose next generation runs each round.  Admission control
bounds both the number of live jobs (``max_concurrent_jobs``; the rest
queue FIFO) and the total worker processes (``max_workers``: the size of
the one shared pool group every tenant's engine dispatches onto).

Scores are bitwise identical to each job running alone: the sharded
engine's determinism contract makes every unit of evaluation hermetic with
respect to which process runs it, and each tenant keeps its own
estimator/caches on both sides of the process boundary (parent-side
per-tenant :class:`~repro.core.estimator.PerformanceEstimator`,
worker-side per-tenant contexts keyed by tenant name).  Multiplexing moves
work between processes; it never changes the numbers.
"""

from __future__ import annotations

import itertools
import os
import warnings
from typing import Dict, List, Optional, Sequence

from .. import telemetry
from ..core.evolution import EvolutionResult
from ..utils import clock
from ..execution.resilience import WorkerPoolGroup
from ..execution.scheduler import _init_service_worker
from .jobs import JobHandle, SearchJob, TenantStats, _JobRuntime

__all__ = ["CoSearchService", "edd_order"]


def _service_initargs(shard_index: int, spawn_attempt: int) -> tuple:
    """Shared service workers take no initargs; contexts build lazily."""
    return ()


def edd_order(handles: Sequence[JobHandle]) -> List[JobHandle]:
    """Scheduling order: earliest deadline due first, best-effort last.

    Jobs with a deadline come first, ordered by the deadline round
    (earliest-due-date); ties and the deadline-less tail order by priority
    (higher first) and then submission order.  A pure function of the
    handles, so the schedule — like everything else here — is deterministic.
    """
    return sorted(
        handles,
        key=lambda handle: (
            handle.job.deadline is None,
            handle.job.deadline if handle.job.deadline is not None else 0.0,
            -handle.job.priority,
            handle.arrival,
        ),
    )


class CoSearchService:
    """Schedules many tenants' co-search generations onto shared workers.

    ``max_workers`` caps the total worker processes (defaults to the
    ``REPRO_WORKERS`` environment default, like ``EstimatorConfig``);
    ``max_concurrent_jobs`` caps how many jobs hold live engine state at
    once — further submissions queue and are admitted FIFO as slots free
    up.  ``step()`` runs exactly one generation of the most urgent active
    job (see :func:`edd_order`); ``run()`` steps until every job finishes.
    One *round* of virtual time passes per ``step()`` — deadlines are
    measured in rounds, and a job completing after its deadline round
    counts a ``deadline_miss`` in its :class:`~repro.service.jobs.
    TenantStats`.

    Use as a context manager (or call :meth:`close`) so the shared pool
    group is torn down even when a tenant's search raises.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        max_concurrent_jobs: int = 2,
    ) -> None:
        if max_workers is None:
            max_workers = int(os.environ.get("REPRO_WORKERS", "1"))
        self.max_workers = max(0, int(max_workers))
        self.max_concurrent_jobs = int(max_concurrent_jobs)
        if self.max_concurrent_jobs < 1:
            raise ValueError("max_concurrent_jobs must be >= 1")
        #: the one pool group every tenant's shard tasks dispatch onto
        self.pools = WorkerPoolGroup(
            self.max_workers, _init_service_worker, _service_initargs
        )
        self.handles: Dict[str, JobHandle] = {}
        self.tenant_stats: Dict[str, TenantStats] = {}
        self.rounds = 0
        self._runtimes: Dict[str, _JobRuntime] = {}
        self._waiting: List[str] = []
        self._arrival = itertools.count()

    # -- submission / admission ----------------------------------------------

    def submit(self, job: SearchJob) -> JobHandle:
        """Admit ``job`` (active if a slot is free, queued otherwise)."""
        if job.name in self.handles:
            raise ValueError(
                f"a job named {job.name!r} was already submitted "
                f"(state {self.handles[job.name].state!r}); "
                "tenant names are unique per service"
            )
        handle = JobHandle(
            job=job,
            arrival=next(self._arrival),
            submitted_round=self.rounds,
        )
        self.handles[job.name] = handle
        self.tenant_stats.setdefault(job.name, TenantStats())
        if len(self._runtimes) < self.max_concurrent_jobs:
            self._activate(handle)
        else:
            handle.state = "queued"
            self._waiting.append(job.name)
        return handle

    def _activate(self, handle: JobHandle) -> None:
        self._runtimes[handle.name] = _JobRuntime(handle.job, self.pools)
        handle.state = "active"
        handle.activated_round = self.rounds

    def _admit_waiting(self) -> None:
        while self._waiting and len(self._runtimes) < self.max_concurrent_jobs:
            self._activate(self.handles[self._waiting.pop(0)])

    # -- scheduling ----------------------------------------------------------

    def step(self) -> Optional[str]:
        """Run one generation of the most urgent active job.

        Returns the stepped job's name, or ``None`` when nothing is active
        (every job finished, failed or suspended).
        """
        self._admit_waiting()
        if not self._runtimes:
            return None
        ordered = edd_order(
            [self.handles[name] for name in sorted(self._runtimes)]
        )
        handle = ordered[0]
        runtime = self._runtimes[handle.name]
        stats = self.tenant_stats[handle.name]
        round_index = self.rounds
        self.rounds += 1
        try:
            with telemetry.span(
                "service.round", tenant=handle.name, round=round_index
            ):
                self._step_runtime(runtime, stats)
        except Exception as exc:
            # tenant isolation: one job's bug must not take the service (and
            # every other tenant's search) down with it
            handle.state = "failed"
            handle.error = exc
            handle.completed_round = round_index
            self._retire(handle.name)
            warnings.warn(
                f"service job {handle.name!r} failed and was retired: "
                f"{exc!r}",
                RuntimeWarning,
                stacklevel=2,
            )
            return handle.name
        if runtime.run.done:
            handle.result = (
                runtime.run.result() if runtime.run.history else None
            )
            handle.state = "done"
            handle.completed_round = round_index
            deadline = handle.job.deadline
            if deadline is not None and round_index + 1 > deadline:
                stats.deadline_misses += 1
            self._retire(handle.name)
        return handle.name

    def _step_runtime(self, runtime: _JobRuntime, stats: TenantStats) -> None:
        """One generation + per-tenant accounting from the stats deltas."""
        engine = runtime.engine
        estimator = runtime.estimator
        sched_before = engine.scheduler_stats.copy()
        engine_before = engine.stats.copy()
        bound_before = estimator.transpile_cache.stats.copy()
        parametric_before = estimator.parametric_transpile_cache.stats.copy()
        started = clock.monotonic()
        if not runtime.run.step():
            return
        elapsed = clock.monotonic() - started
        sched = engine.scheduler_stats.diff(sched_before)
        engine_delta = engine.stats.diff(engine_before)
        bound = estimator.transpile_cache.stats.diff(bound_before)
        parametric = estimator.parametric_transpile_cache.stats.diff(
            parametric_before
        )
        stats.generations += 1
        stats.populations += engine_delta.populations
        stats.candidates += engine_delta.candidates
        stats.cache_hits += (
            bound.hits + parametric.structure_hits + parametric.bind_hits
        )
        stats.cache_misses += (
            bound.misses + parametric.structure_misses + parametric.bind_misses
        )
        stats.worker_failures += sched.worker_failures
        stats.retried_shards += sched.retried_shards
        stats.rebalanced_shards += sched.rebalanced_shards
        stats.degraded_generations += sched.degraded_generations
        shard_seconds = sum(
            report["elapsed_seconds"] for report in engine.last_shard_reports
        )
        stats.simulator_seconds += shard_seconds if shard_seconds else elapsed
        # observation-only mirror of the deltas into the metrics registry —
        # the same numbers TenantStats accumulates, queryable per tenant
        metrics = telemetry.get_metrics()
        tenant = runtime.job.name
        metrics.counter("service_generations_total", tenant=tenant).inc()
        metrics.counter("service_candidates_total", tenant=tenant).inc(
            engine_delta.candidates
        )
        metrics.counter("service_cache_hits_total", tenant=tenant).inc(
            bound.hits + parametric.structure_hits + parametric.bind_hits
        )
        metrics.counter("service_cache_misses_total", tenant=tenant).inc(
            bound.misses + parametric.structure_misses + parametric.bind_misses
        )
        metrics.counter("service_simulator_seconds_total", tenant=tenant).inc(
            shard_seconds if shard_seconds else elapsed
        )

    def _retire(self, name: str) -> None:
        runtime = self._runtimes.pop(name, None)
        if runtime is not None:
            runtime.close()
        self._admit_waiting()

    def run(self) -> Dict[str, EvolutionResult]:
        """Drive every admitted job to completion; results by job name."""
        while self._runtimes or self._waiting:
            if self.step() is None:
                break
        return {
            name: handle.result
            for name, handle in sorted(self.handles.items())
            if handle.state == "done" and handle.result is not None
        }

    # -- suspend / resume ----------------------------------------------------

    def suspend(self, name: str) -> JobHandle:
        """Drop an active job's live state, freeing its slot.

        Requires the job to have a checkpoint path — the
        :class:`~repro.core.checkpoint.SearchCheckpointer` already persisted
        every completed generation, so :meth:`resume` rebuilds the runtime
        and continues bitwise from where the job stopped.
        """
        handle = self.handles[name]
        if handle.state != "active":
            raise ValueError(f"job {name!r} is {handle.state!r}, not active")
        if not handle.job.effective_checkpoint_path:
            raise ValueError(
                f"job {name!r} has no checkpoint path; suspending would "
                "discard its progress"
            )
        handle.state = "suspended"
        self._retire(name)
        return handle

    def resume(self, name: str) -> JobHandle:
        """Re-admit a suspended job (active if a slot is free, else queued)."""
        handle = self.handles[name]
        if handle.state != "suspended":
            raise ValueError(f"job {name!r} is {handle.state!r}, not suspended")
        if len(self._runtimes) < self.max_concurrent_jobs:
            self._activate(handle)
        else:
            handle.state = "queued"
            self._waiting.append(name)
        return handle

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Tear every runtime and the shared pool group down (idempotent)."""
        for name in sorted(self._runtimes):
            self._runtimes[name].close()
        self._runtimes.clear()
        self.pools.close()

    def __enter__(self) -> "CoSearchService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
