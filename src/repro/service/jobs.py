"""Job specifications and per-tenant accounting for the co-search service.

A :class:`SearchJob` is everything the service needs to run one tenant's
evolutionary co-search: the task family (QML classification or VQE), the
design space and device (objects or registry names), the evolution and
estimator budgets, and the scheduling knobs — priority, an optional
deadline in service rounds, a checkpoint path for suspend/resume.

:class:`TenantStats` is the per-tenant ledger the service fills in after
every scheduled generation, harvested from the engine/estimator stats
deltas through the :class:`~repro.execution.stats.MergeableStats`
protocol — the same counters the sharded scheduler merges back from its
workers, re-aggregated per tenant instead of per engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..core.checkpoint import SearchCheckpointer
from ..core.design_space import DesignSpace, get_design_space
from ..core.estimator import EstimatorConfig, PerformanceEstimator
from ..core.evolution import EvolutionConfig, EvolutionEngine, EvolutionResult
from ..core.supercircuit import SuperCircuit
from ..devices.library import Device, get_device
from ..execution.scheduler import ShardedExecutionEngine
from ..execution.stats import MergeableStats

__all__ = ["SearchJob", "JobHandle", "TenantStats"]


@dataclass
class TenantStats(MergeableStats):
    """What one tenant consumed, per generation the service ran for it."""

    #: generations the service actually advanced (== the job's iterations
    #: once it completes)
    generations: int = 0
    #: populations evaluated (one per generation that had uncached work)
    populations: int = 0
    #: candidates evaluated across those populations
    candidates: int = 0
    #: transpile-cache hits/misses (bound + parametric structure + bind)
    cache_hits: int = 0
    cache_misses: int = 0
    #: wall time spent evaluating: summed worker-side shard seconds when the
    #: generation was sharded, parent wall time when it ran in-process
    simulator_seconds: float = 0.0
    worker_failures: int = 0
    retried_shards: int = 0
    rebalanced_shards: int = 0
    degraded_generations: int = 0
    #: jobs that completed after their deadline round had passed
    deadline_misses: int = 0


@dataclass
class SearchJob:
    """One tenant's co-search request.

    ``space`` and ``device`` accept either live objects or registry names
    (:func:`~repro.core.design_space.get_design_space` /
    :func:`~repro.devices.library.get_device`).  ``estimator`` accepts
    either an :class:`~repro.core.estimator.EstimatorConfig` (the service
    builds a private per-tenant estimator, so tenants never share caches)
    or a live :class:`~repro.core.estimator.PerformanceEstimator` — the
    hook pipelines use to keep their warm caches across service runs.

    ``deadline`` is measured in *service rounds* (one round = one
    generation of whichever job the policy picks), the virtual time base
    of the EDD scheduling policy; ``None`` means best-effort.
    """

    name: str
    kind: str                                       # "qml" | "vqe"
    space: Union[DesignSpace, str]
    device: Union[Device, str]
    n_qubits: int
    evolution: EvolutionConfig = field(default_factory=EvolutionConfig)
    estimator: Union[EstimatorConfig, PerformanceEstimator] = field(
        default_factory=EstimatorConfig
    )
    dataset: object = None                          # QML jobs
    n_classes: int = 0                              # QML jobs
    encoder: object = None                          # QML jobs
    molecule: object = None                         # VQE jobs
    #: reuse a (typically trained) SuperCircuit; None builds a fresh one
    supercircuit: Optional[SuperCircuit] = None
    #: seed for the SuperCircuit built when ``supercircuit`` is None
    seed: int = 0
    priority: int = 0
    deadline: Optional[float] = None
    #: overrides ``evolution.checkpoint_path``; either enables
    #: suspend/resume through :class:`~repro.core.checkpoint.SearchCheckpointer`
    checkpoint_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in ("qml", "vqe"):
            raise ValueError(f"unknown job kind {self.kind!r}")
        if self.kind == "qml" and self.dataset is None:
            raise ValueError(f"QML job {self.name!r} needs a dataset")
        if self.kind == "vqe" and self.molecule is None:
            raise ValueError(f"VQE job {self.name!r} needs a molecule")

    @property
    def effective_checkpoint_path(self) -> Optional[str]:
        return self.checkpoint_path or self.evolution.checkpoint_path


@dataclass
class JobHandle:
    """The service's view of one submitted job, returned by ``submit``."""

    job: SearchJob
    arrival: int = 0
    state: str = "queued"      # queued | active | suspended | done | failed
    submitted_round: int = 0
    activated_round: Optional[int] = None
    completed_round: Optional[int] = None
    result: Optional[EvolutionResult] = None
    error: Optional[BaseException] = None

    @property
    def name(self) -> str:
        return self.job.name


class _JobRuntime:
    """The live per-tenant stack behind one active job.

    Owns the tenant's estimator (unless the job supplied a warm one), its
    supercircuit, a shared-pool :class:`~repro.execution.scheduler.
    ShardedExecutionEngine` and the generation-stepping
    :class:`~repro.core.evolution.SearchRun`.  Dropping the runtime (on
    completion or suspend) releases everything but the shared pools, which
    belong to the service.
    """

    def __init__(self, job: SearchJob, pools) -> None:
        self.job = job
        space = (
            get_design_space(job.space)
            if isinstance(job.space, str)
            else job.space
        )
        if isinstance(job.estimator, PerformanceEstimator):
            self.estimator = job.estimator
            device = self.estimator.device
        else:
            device = (
                get_device(job.device)
                if isinstance(job.device, str)
                else job.device
            )
            self.estimator = PerformanceEstimator(device, job.estimator)
        self.supercircuit = job.supercircuit or SuperCircuit(
            space,
            job.n_qubits,
            encoder=job.encoder if job.kind == "qml" else None,
            seed=job.seed,
        )
        self.engine = ShardedExecutionEngine(
            self.estimator, self.supercircuit, pools=pools, tenant=job.name
        )
        if job.kind == "qml":
            scorer = self.engine.qml_population_scorer(
                job.dataset, job.n_classes
            )
        else:
            scorer = self.engine.vqe_population_scorer(job.molecule)
        path = job.effective_checkpoint_path
        checkpointer = (
            SearchCheckpointer(path, estimator=self.estimator)
            if path
            else None
        )
        self.evolution = EvolutionEngine(
            space, job.n_qubits, device, job.evolution
        )
        self.run = self.evolution.start_search(
            population_score_fn=scorer, checkpointer=checkpointer
        )

    def close(self) -> None:
        # shared pools survive this (the engine does not own them)
        self.engine.close()
