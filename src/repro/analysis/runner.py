"""Run checkers over a project; apply suppressions; render findings.

This is the layer shared by the CLI, the CI gate and the test suite:
checkers return raw findings, the runner filters them through the per-line
``# repro: ignore[rule]`` tables, sorts them, and reports an
:class:`AnalysisReport` whose :meth:`~AnalysisReport.exit_code` implements
the gating policy (errors always gate; warnings gate under ``--strict``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence

from .findings import Finding, Severity
from .project import Project, load_project
from .registry import all_rules, available_checkers, checker_class
from .suppressions import is_suppressed

__all__ = ["AnalysisReport", "analyze", "analyze_paths"]


@dataclass
class AnalysisReport:
    """Everything one analysis run produced."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    modules_checked: int = 0
    checkers_run: List[str] = field(default_factory=list)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == Severity.ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == Severity.WARNING]

    def exit_code(self, strict: bool = False) -> int:
        if self.errors:
            return 1
        if strict and self.warnings:
            return 1
        return 0

    # -- rendering ------------------------------------------------------------

    def render_text(self, show_suppressed: bool = False) -> str:
        lines = [finding.render() for finding in self.findings]
        if show_suppressed:
            lines.extend(
                f"{finding.render()} [suppressed]" for finding in self.suppressed
            )
        lines.append(
            f"repro.analysis: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s), {len(self.suppressed)} "
            f"suppressed across {self.modules_checked} module(s) "
            f"[checkers: {', '.join(self.checkers_run)}]"
        )
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps(
            {
                "findings": [f.to_dict() for f in self.findings],
                "suppressed": [f.to_dict() for f in self.suppressed],
                "modules_checked": self.modules_checked,
                "checkers": self.checkers_run,
                "errors": len(self.errors),
                "warnings": len(self.warnings),
            },
            indent=2,
        )


def _validate_selection(rule_ids: Sequence[str]) -> None:
    known = {rule.id for rule in all_rules()}
    unknown = sorted(set(rule_ids) - known)
    if unknown:
        raise ValueError(
            f"unknown rule id(s) {unknown}; known rules: {sorted(known)}"
        )


def analyze(
    project: Project,
    checkers: Optional[Sequence[str]] = None,
    select: Optional[Sequence[str]] = None,
) -> AnalysisReport:
    """Run ``checkers`` (default: all registered) over a loaded project.

    ``select`` restricts the report to the given rule ids — suppression
    still applies first, so a selected-and-suppressed finding stays
    suppressed.
    """
    names = list(checkers) if checkers is not None else available_checkers()
    if select is not None:
        _validate_selection(select)
        selected = set(select)
    else:
        selected = None
    report = AnalysisReport(
        modules_checked=len(project.modules), checkers_run=names
    )
    instances = [checker_class(name)() for name in names]
    for module in project.modules:
        for checker in instances:
            for finding in checker.check_module(module, project):
                if selected is not None and finding.rule not in selected:
                    continue
                if is_suppressed(module.suppressions, finding.line, finding.rule):
                    finding.suppressed = True
                    report.suppressed.append(finding)
                else:
                    report.findings.append(finding)
    report.findings.sort(key=Finding.sort_key)
    report.suppressed.sort(key=Finding.sort_key)
    return report


def analyze_paths(
    paths: Sequence[Path],
    checkers: Optional[Sequence[str]] = None,
    select: Optional[Sequence[str]] = None,
) -> AnalysisReport:
    """Load ``paths`` and analyze them (the programmatic entry point)."""
    return analyze(load_project(paths), checkers=checkers, select=select)
