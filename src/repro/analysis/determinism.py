"""Determinism lint: the static half of the bit-for-bit score contract.

The sharded scheduler, the backend dispatcher and the parametric caches all
promise that scores are pure functions of ``(population, config, seed)`` —
independent of worker count, backend choice, scheduling order and wall
clock.  A single unseeded ``np.random`` call or a time-based branch erodes
that silently until a flaky 1e-9 diff appears in the equivalence suite.
This checker flags the sources of that erosion at lint time:

``det-global-rng``
    Draws from process-global entropy: ``numpy.random`` *module* functions
    (the shared legacy global stream), stdlib ``random.*``, ``os.urandom``,
    ``secrets.*``, ``uuid.uuid1/uuid4``.  Seeded ``Generator`` objects
    threaded through call chains (``repro.utils.rng``) are the sanctioned
    alternative.

``det-unpinned-rng``
    ``numpy.random.default_rng()`` / ``random.Random()`` called with no
    seed — a fresh OS-entropy stream per call.

``det-wall-clock``
    ``time.time()``, ``time.time_ns()``, ``datetime.now()`` and friends.
    Wall clock may feed *stats*; anything else is nondeterminism.  Intended
    uses carry ``# repro: ignore[det-wall-clock] -- <why>``.

``det-monotonic-flow``
    A monotonic-clock read (``time.perf_counter``/``time.monotonic``/...)
    whose value flows anywhere except a plain local-variable assignment
    (``start = time.perf_counter()``).  Timing deltas accumulated into
    stats counters are the intended use — each such sink is annotated with
    a suppression so the audit trail lives next to the code.

``det-unordered-iter``
    Ordering-sensitive consumption of a set: iterating a ``set()`` /
    ``frozenset()`` call or a set literal in a ``for`` loop, a
    comprehension, or a ``list()``/``tuple()``/``enumerate()`` capture.
    Set iteration order varies across processes (string hashing is salted),
    so anything it feeds — shard assignment, cache keys, export payloads —
    diverges between the parent and its workers.  Wrap in ``sorted(...)``
    or iterate the originating ordered container instead.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from .findings import Finding, Rule, Severity
from .project import ModuleInfo, Project, dotted_name
from .registry import Checker, register_checker

__all__ = ["DeterminismChecker"]

GLOBAL_RNG = Rule(
    "det-global-rng",
    Severity.ERROR,
    "call draws from process-global entropy (numpy.random module functions, "
    "stdlib random, os.urandom, secrets, uuid1/uuid4)",
)
UNPINNED_RNG = Rule(
    "det-unpinned-rng",
    Severity.ERROR,
    "default_rng()/Random() constructed without a seed",
)
WALL_CLOCK = Rule(
    "det-wall-clock",
    Severity.ERROR,
    "wall-clock read (time.time/datetime.now) — results must not depend on "
    "when they were computed",
)
MONOTONIC_FLOW = Rule(
    "det-monotonic-flow",
    Severity.WARNING,
    "monotonic-clock value flows beyond a plain local timestamp assignment",
)
UNORDERED_ITER = Rule(
    "det-unordered-iter",
    Severity.WARNING,
    "ordering-sensitive consumption of an unordered set",
)

#: numpy.random attributes that are deterministic constructors, not draws
#: from the legacy global stream
_NUMPY_RANDOM_OK = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "RandomState",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "MT19937",
    "Philox",
    "SFC64",
}

_WALL_CLOCK_FNS = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

_MONOTONIC_FNS = {
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
}

#: callables whose consumption of a set is ordering-sensitive
_ORDER_CAPTURING = {"list", "tuple", "enumerate", "iter", "next"}


def _enclosing_statement(node: ast.AST) -> Optional[ast.stmt]:
    while node is not None and not isinstance(node, ast.stmt):
        node = getattr(node, "_repro_parent", None)
    return node


def _is_set_expression(node: ast.expr, module: ModuleInfo) -> bool:
    if isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Call):
        path = dotted_name(node.func)
        if path is not None and module.resolve(path) in ("set", "frozenset"):
            return True
    return False


@register_checker
class DeterminismChecker(Checker):
    """AST lint for global RNG, wall clock and unordered iteration."""

    name = "determinism"
    rules = (GLOBAL_RNG, UNPINNED_RNG, WALL_CLOCK, MONOTONIC_FLOW, UNORDERED_ITER)

    def check_module(self, module: ModuleInfo, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        path = module.display_path
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                findings.extend(self._check_call(node, module, path))
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expression(node.iter, module):
                    findings.append(self._unordered(node.iter, path, "for loop"))
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for generator in node.generators:
                    if _is_set_expression(generator.iter, module):
                        findings.append(
                            self._unordered(generator.iter, path, "comprehension")
                        )
        return findings

    # -- calls ----------------------------------------------------------------

    def _check_call(
        self, node: ast.Call, module: ModuleInfo, path: str
    ) -> List[Finding]:
        local = dotted_name(node.func)
        if local is None:
            return []
        resolved = module.resolve(local)
        findings: List[Finding] = []

        if resolved.startswith("numpy.random."):
            tail = resolved[len("numpy.random."):]
            if tail == "default_rng":
                if not node.args and not node.keywords:
                    findings.append(
                        UNPINNED_RNG.finding(
                            path,
                            node.lineno,
                            "numpy.random.default_rng() has no seed",
                            hint="pass a pinned seed (e.g. utils.rng."
                            "stable_seed(key)) or accept an rng argument",
                            col=node.col_offset,
                        )
                    )
            elif "." not in tail and tail not in _NUMPY_RANDOM_OK:
                findings.append(
                    GLOBAL_RNG.finding(
                        path,
                        node.lineno,
                        f"numpy.random.{tail} draws from the shared legacy "
                        "global stream",
                        hint="thread a seeded np.random.Generator through "
                        "(see repro.utils.rng)",
                        col=node.col_offset,
                    )
                )
        elif resolved.startswith("random."):
            tail = resolved[len("random."):]
            if tail == "Random":
                if not node.args and not node.keywords:
                    findings.append(
                        UNPINNED_RNG.finding(
                            path,
                            node.lineno,
                            "random.Random() has no seed",
                            hint="pass an explicit seed",
                            col=node.col_offset,
                        )
                    )
            elif "." not in tail:
                findings.append(
                    GLOBAL_RNG.finding(
                        path,
                        node.lineno,
                        f"random.{tail} uses the process-global stdlib stream",
                        hint="use a seeded np.random.Generator instead",
                        col=node.col_offset,
                    )
                )
        elif resolved == "os.urandom" or resolved.startswith("secrets."):
            findings.append(
                GLOBAL_RNG.finding(
                    path,
                    node.lineno,
                    f"{resolved} reads OS entropy — unreproducible by design",
                    hint="derive bytes from utils.rng.stable_seed instead",
                    col=node.col_offset,
                )
            )
        elif resolved in ("uuid.uuid1", "uuid.uuid4"):
            findings.append(
                GLOBAL_RNG.finding(
                    path,
                    node.lineno,
                    f"{resolved} generates entropy-/host-dependent ids",
                    hint="build stable ids from content hashes "
                    "(utils.rng.stable_seed)",
                    col=node.col_offset,
                )
            )
        elif resolved in _WALL_CLOCK_FNS:
            findings.append(
                WALL_CLOCK.finding(
                    path,
                    node.lineno,
                    f"{resolved}() reads the wall clock",
                    hint="wall clock may feed stats only; suppress with "
                    "# repro: ignore[det-wall-clock] -- <why> if intended",
                    col=node.col_offset,
                )
            )
        elif resolved in _MONOTONIC_FNS:
            statement = _enclosing_statement(node)
            if not (
                isinstance(statement, ast.Assign)
                and all(isinstance(t, ast.Name) for t in statement.targets)
            ):
                findings.append(
                    MONOTONIC_FLOW.finding(
                        path,
                        node.lineno,
                        f"{resolved}() value flows beyond a local timestamp "
                        "assignment",
                        hint="keep timing in stats/bookkeeping sinks and "
                        "annotate them with # repro: "
                        "ignore[det-monotonic-flow] -- <sink>",
                        col=node.col_offset,
                    )
                )
        elif resolved in _ORDER_CAPTURING and node.args:
            if _is_set_expression(node.args[0], module):
                findings.append(
                    self._unordered(node.args[0], path, f"{resolved}() capture")
                )
        return findings

    def _unordered(self, node: ast.expr, path: str, context: str) -> Finding:
        return UNORDERED_ITER.finding(
            path,
            node.lineno,
            f"set iterated in a {context} — iteration order varies across "
            "processes",
            hint="wrap in sorted(...) before anything order-sensitive "
            "consumes it",
            col=node.col_offset,
        )
