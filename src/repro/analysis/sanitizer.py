"""Runtime cache-mutation sanitizer (``REPRO_SANITIZE=1``).

The transpile caches promise that entries crossing the sharded scheduler's
process boundary are immutable shared state: a worker exports what it
compiled, the parent adopts it, and from then on *nobody* may mutate the
shared objects — the equivalence suite pins the numbers, but a mutation
that happens to keep scores stable on today's workloads would still be a
latent bug for tomorrow's.  This module is the dynamic half of the
enforcement (the static half is :mod:`repro.analysis`): with
``REPRO_SANITIZE=1`` in the environment, every
:class:`~repro.execution.cache.TranspileCache` /
:class:`~repro.execution.cache.ParametricTranspileCache` fingerprints each
entry at the moment it becomes shared (``export_entries`` /
``adopt_entries``) and re-verifies all recorded fingerprints at every
subsequent share point (and at ``clear``), raising
:class:`CacheMutationError` on the first divergence.

Fingerprints are ``blake2b(pickle.dumps(entry))``.  Because
``CompiledCircuit.__getstate__`` / ``Device.__getstate__`` drop their
derived memos, *benign* lazy memoization (``success_rate()`` populating
``_success_rate`` after adoption) never trips the sanitizer — only changes
to the pickled contract state do.  A shared parametric structure may grow
new template variants locally; the sanitizer therefore fingerprints the
variants that were shared, not the list that holds them.

The hooks are installed by :func:`install_sanitizer` — called automatically
from :mod:`repro.execution` when ``REPRO_SANITIZE`` is set — and are
process-global but idempotent; :func:`uninstall_sanitizer` restores the
original methods (tests toggle them around assertions).
"""

from __future__ import annotations

import hashlib
import os
import pickle
from typing import Dict, List, Optional, Tuple

__all__ = [
    "CacheMutationError",
    "sanitize_requested",
    "entry_fingerprint",
    "install_sanitizer",
    "uninstall_sanitizer",
    "sanitizer_installed",
    "verify_cache",
]


class CacheMutationError(RuntimeError):
    """A cache entry shared across the process boundary was mutated."""


def sanitize_requested(environ: Optional[Dict[str, str]] = None) -> bool:
    """Whether the environment asks for the sanitizer (``REPRO_SANITIZE``)."""
    env = os.environ if environ is None else environ
    return env.get("REPRO_SANITIZE", "").strip() not in ("", "0", "false", "no")


def entry_fingerprint(entry) -> bytes:
    """Content fingerprint of one cache entry.

    ``__getstate__`` implementations apply, so state a class explicitly
    excludes from its pickled form (derived memos) is — by design — free to
    change without tripping verification.
    """
    payload = pickle.dumps(entry, protocol=4)
    return hashlib.blake2b(payload, digest_size=16).digest()


# ---------------------------------------------------------------------------
# Per-cache fingerprint ledgers
# ---------------------------------------------------------------------------

_LEDGER_ATTR = "_sanitizer_ledger"


def _ledger(cache) -> Dict[Tuple, object]:
    """The cache's ``shared-entry key -> fingerprint`` ledger.

    Keys are ``("bound", key)`` for plain compiled entries and
    ``("structure", key)`` for parametric structures (whose value is the
    list of per-variant fingerprints recorded at share time).
    """
    ledger = getattr(cache, _LEDGER_ATTR, None)
    if ledger is None:
        ledger = {}
        setattr(cache, _LEDGER_ATTR, ledger)
    return ledger


def _record_bound(cache, key, entry) -> None:
    _ledger(cache)[("bound", key)] = entry_fingerprint(entry)


def _record_structure(cache, key, variants) -> None:
    _ledger(cache)[("structure", key)] = [
        entry_fingerprint(variant) for variant in variants
    ]


def verify_cache(cache) -> None:
    """Re-fingerprint every recorded shared entry still present; raise on
    the first divergence.  Evicted entries are dropped from the ledger."""
    ledger = getattr(cache, _LEDGER_ATTR, None)
    if not ledger:
        return
    bound_entries = getattr(cache, "_entries", None)
    if bound_entries is None:
        bound_entries = getattr(cache, "_bound", {})
    structures = getattr(cache, "_structures", {})
    stale: List[Tuple] = []
    for ledger_key, recorded in ledger.items():
        kind, key = ledger_key
        if kind == "bound":
            entry = bound_entries.get(key)
            if entry is None:
                stale.append(ledger_key)
                continue
            if entry_fingerprint(entry) != recorded:
                raise CacheMutationError(
                    f"{type(cache).__name__} entry {key!r} was mutated after "
                    "it was shared across the process boundary "
                    "(export_entries/adopt_entries); shared compilations "
                    "must be treated as immutable"
                )
        else:
            state = structures.get(key)
            if state is None:
                stale.append(ledger_key)
                continue
            variants = list(getattr(state, "variants", ()))
            # variants appended after sharing are local, not shared: verify
            # only the prefix that was fingerprinted
            for index, fingerprint in enumerate(recorded[: len(variants)]):
                if entry_fingerprint(variants[index]) != fingerprint:
                    raise CacheMutationError(
                        f"{type(cache).__name__} structure {key!r} variant "
                        f"{index} was mutated after it was shared across the "
                        "process boundary; shared parametric templates must "
                        "be treated as immutable"
                    )
    for ledger_key in stale:
        del ledger[ledger_key]


# ---------------------------------------------------------------------------
# Method hooks
# ---------------------------------------------------------------------------

_ORIGINALS: Dict[Tuple[type, str], object] = {}


def _wrap_transpile_cache(cls) -> None:
    original_export = cls.export_entries
    original_adopt = cls.adopt_entries
    original_clear = cls.clear
    _ORIGINALS[(cls, "export_entries")] = original_export
    _ORIGINALS[(cls, "adopt_entries")] = original_adopt
    _ORIGINALS[(cls, "clear")] = original_clear

    def export_entries(self, exclude=()):
        verify_cache(self)
        entries = original_export(self, exclude)
        for key, entry in entries:
            _record_bound(self, key, entry)
        return entries

    def adopt_entries(self, entries):
        verify_cache(self)
        entries = list(entries)
        present_before = set(self._entries)
        adopted = original_adopt(self, entries)
        for key, entry in entries:
            if key not in present_before and key in self._entries:
                _record_bound(self, key, entry)
        return adopted

    def clear(self):
        verify_cache(self)
        getattr(self, _LEDGER_ATTR, {}).clear()
        return original_clear(self)

    cls.export_entries = export_entries
    cls.adopt_entries = adopt_entries
    cls.clear = clear


def _wrap_parametric_cache(cls) -> None:
    original_export = cls.export_entries
    original_adopt = cls.adopt_entries
    original_clear = cls.clear
    _ORIGINALS[(cls, "export_entries")] = original_export
    _ORIGINALS[(cls, "adopt_entries")] = original_adopt
    _ORIGINALS[(cls, "clear")] = original_clear

    def export_entries(self, exclude_structures=(), exclude_bound=()):
        verify_cache(self)
        payload = original_export(self, exclude_structures, exclude_bound)
        for key, variants in payload.get("structures", ()):
            _record_structure(self, key, variants)
        for key, entry in payload.get("bound", ()):
            _record_bound(self, key, entry)
        return payload

    def adopt_entries(self, payload):
        verify_cache(self)
        structures_before = set(self._structures)
        bound_before = set(self._bound)
        adopted = original_adopt(self, payload)
        for key, variants in payload.get("structures", ()):
            if key not in structures_before and key in self._structures:
                _record_structure(self, key, variants)
        for key, entry in payload.get("bound", ()):
            if key not in bound_before and key in self._bound:
                _record_bound(self, key, entry)
        return adopted

    def clear(self):
        verify_cache(self)
        getattr(self, _LEDGER_ATTR, {}).clear()
        return original_clear(self)

    cls.export_entries = export_entries
    cls.adopt_entries = adopt_entries
    cls.clear = clear


def sanitizer_installed() -> bool:
    return bool(_ORIGINALS)


def install_sanitizer() -> None:
    """Install the share-point verification hooks (idempotent)."""
    if _ORIGINALS:
        return
    from ..execution import cache as cache_module

    _wrap_transpile_cache(cache_module.TranspileCache)
    _wrap_parametric_cache(cache_module.ParametricTranspileCache)


def uninstall_sanitizer() -> None:
    """Restore the original cache methods (idempotent)."""
    for (cls, method_name), original in _ORIGINALS.items():
        setattr(cls, method_name, original)
    _ORIGINALS.clear()
