"""The pluggable checker registry.

Checkers mirror the simulation-backend registry idiom
(:mod:`repro.backends.registry`): a checker subclasses :class:`Checker`,
declares a ``name`` and the :class:`~repro.analysis.findings.Rule` catalogue
it can fire, and registers itself with :func:`register_checker`.  The runner
and the CLI only ever talk to the registry, so an out-of-tree checker (or a
repo-specific one added later) needs no wiring beyond its import.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Type

from .findings import Finding, Rule
from .project import ModuleInfo, Project

__all__ = [
    "Checker",
    "register_checker",
    "unregister_checker",
    "available_checkers",
    "checker_class",
    "all_rules",
]


class Checker(abc.ABC):
    """Base of every static checker.

    A checker is stateless between runs; the runner constructs one instance
    per analysis and calls :meth:`check_module` for every module, handing it
    the whole :class:`Project` so cross-module facts (imported payload
    classes, backend base classes) resolve.  Findings are returned raw —
    suppression filtering is the runner's job.
    """

    #: registry key; subclasses must override
    name: str = ""
    #: the rules this checker can fire (drives ``--list-rules`` and
    #: ``--select`` validation)
    rules: tuple = ()

    @abc.abstractmethod
    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> List[Finding]:
        """All findings for one module."""

    def rule(self, rule_id: str) -> Rule:
        for rule in self.rules:
            if rule.id == rule_id:
                return rule
        raise KeyError(f"{type(self).__name__} declares no rule {rule_id!r}")


_REGISTRY: Dict[str, Type[Checker]] = {}


def register_checker(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator: register ``cls`` under its ``name`` attribute."""
    name = getattr(cls, "name", "")
    if not name:
        raise ValueError(f"{cls.__name__} must define a non-empty name")
    if not issubclass(cls, Checker):
        raise TypeError(f"{cls.__name__} must subclass Checker")
    _REGISTRY[name] = cls
    return cls


def unregister_checker(name: str) -> None:
    """Remove a registered checker (for tests of third-party registration)."""
    _REGISTRY.pop(name, None)


def available_checkers() -> List[str]:
    """Registered checker names, sorted for stable messages."""
    return sorted(_REGISTRY)


def checker_class(name: str) -> Type[Checker]:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown checker {name!r}; registered: {available_checkers()}"
        ) from None


def all_rules() -> List[Rule]:
    """Every rule of every registered checker, sorted by id."""
    rules: List[Rule] = []
    for name in available_checkers():
        rules.extend(_REGISTRY[name].rules)
    return sorted(rules, key=lambda rule: rule.id)
