"""The project model the checkers analyze.

A :class:`Project` is a set of parsed modules (``.py`` files under the
analyzed roots).  Each :class:`ModuleInfo` carries the AST (with parent
links), the dotted module name (derived from the package layout, so
cross-module references like ``from ..devices.library import Device``
resolve), the per-line suppression table parsed from ``# repro:`` comments,
and an import map from local names to the dotted path they refer to.

Nothing here is imported or executed — analysis is purely syntactic, so the
suite can lint fixture modules containing deliberate violations (or modules
whose dependencies are absent) without side effects.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .suppressions import SuppressionTable, parse_suppressions

__all__ = ["ModuleInfo", "Project", "load_project", "dotted_name"]


def _module_name_for(path: Path) -> str:
    """Dotted module name derived from the enclosing package directories."""
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").is_file():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


def _attach_parents(tree: ast.AST) -> None:
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._repro_parent = node  # type: ignore[attr-defined]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


@dataclass
class ModuleInfo:
    """One parsed source file plus everything checkers ask about it."""

    path: Path
    name: str
    source: str
    tree: ast.Module
    suppressions: SuppressionTable
    #: line numbers carrying a standalone ``# repro: pickle-boundary`` marker
    boundary_markers: Set[int] = field(default_factory=set)
    _imports: Optional[Dict[str, str]] = field(default=None, repr=False)
    _classes: Optional[Dict[str, ast.ClassDef]] = field(default=None, repr=False)

    @property
    def display_path(self) -> str:
        return str(self.path)

    # -- import resolution ---------------------------------------------------

    @property
    def imports(self) -> Dict[str, str]:
        """Local name -> dotted path it was imported as.

        ``import numpy as np`` maps ``np -> numpy``; ``from ..devices.library
        import Device`` maps ``Device -> repro.devices.library.Device``
        (relative imports resolved against this module's own dotted name).
        """
        if self._imports is None:
            table: Dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        table[alias.asname or alias.name.split(".")[0]] = (
                            alias.name if alias.asname else alias.name.split(".")[0]
                        )
                        if alias.asname:
                            table[alias.asname] = alias.name
                elif isinstance(node, ast.ImportFrom):
                    base = self._resolve_from(node)
                    for alias in node.names:
                        if alias.name == "*":
                            continue
                        target = f"{base}.{alias.name}" if base else alias.name
                        table[alias.asname or alias.name] = target
            self._imports = table
        return self._imports

    def _resolve_from(self, node: ast.ImportFrom) -> str:
        if not node.level:
            return node.module or ""
        # relative import: climb ``level`` packages from this module's name
        parts = self.name.split(".")
        # a module's own segment never counts as a package level
        parts = parts[: len(parts) - node.level]
        if node.module:
            parts.append(node.module)
        return ".".join(parts)

    def resolve(self, local_dotted: str) -> str:
        """Expand a local dotted path through the import map.

        ``np.random.rand`` -> ``numpy.random.rand``; names with no import
        entry resolve to themselves (builtins, module-local definitions).
        """
        head, _, rest = local_dotted.partition(".")
        target = self.imports.get(head, head)
        return f"{target}.{rest}" if rest else target

    # -- class lookup ---------------------------------------------------------

    @property
    def classes(self) -> Dict[str, ast.ClassDef]:
        if self._classes is None:
            self._classes = {
                node.name: node
                for node in self.tree.body
                if isinstance(node, ast.ClassDef)
            }
        return self._classes


class Project:
    """All modules under analysis, indexed by dotted name and by path."""

    def __init__(self, modules: Iterable[ModuleInfo]) -> None:
        self.modules: List[ModuleInfo] = list(modules)
        self.by_name: Dict[str, ModuleInfo] = {m.name: m for m in self.modules}
        self.by_path: Dict[Path, ModuleInfo] = {m.path: m for m in self.modules}

    def find_class(
        self, module: ModuleInfo, local_name: str
    ) -> Optional[Tuple[ModuleInfo, ast.ClassDef]]:
        """Resolve a (possibly imported) class name to its definition.

        Looks in the referencing module first, then follows the import map
        into other analyzed modules.  Returns ``None`` for classes outside
        the project (numpy, stdlib) — callers decide how to treat unknowns.
        """
        if local_name in module.classes:
            return module, module.classes[local_name]
        target = module.resolve(local_name)
        mod_name, _, cls_name = target.rpartition(".")
        if not cls_name:
            return None
        owner = self.by_name.get(mod_name)
        if owner is not None and cls_name in owner.classes:
            return owner, owner.classes[cls_name]
        return None


def load_module(path: Path) -> ModuleInfo:
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    _attach_parents(tree)
    suppressions, markers = parse_suppressions(source)
    return ModuleInfo(
        path=path,
        name=_module_name_for(path),
        source=source,
        tree=tree,
        suppressions=suppressions,
        boundary_markers=markers,
    )


def load_project(paths: Sequence[Path]) -> Project:
    """Parse every ``.py`` file under ``paths`` (files or directories)."""
    files: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    seen: Set[Path] = set()
    modules = []
    for file in files:
        resolved = file.resolve()
        if resolved in seen:
            continue
        seen.add(resolved)
        modules.append(load_module(file))
    return Project(modules)
