"""Backend-protocol conformance: ``register_backend`` registrants, at lint time.

The registry (:mod:`repro.backends.registry`) accepts any class with a name;
whether it actually honors the :class:`~repro.backends.base.SimulationBackend`
protocol only surfaces when the dispatcher instantiates it inside a
population evaluation — or worse, inside a sharded worker, where the failure
degrades into a ``RuntimeWarning`` and a silent slowdown.  Third-party
adapters (the GPU/Aer sketch in ``src/repro/backends/README.md``) should
fail here instead.

For every class registered with ``@register_backend`` (decorator form) or
``register_backend(Cls)`` (call form), the checker verifies:

``backend-missing-name``
    a non-empty string ``name`` class attribute (the registry key);
``backend-missing-capabilities``
    a ``capabilities = BackendCapabilities(...)`` class attribute declaring
    at least one capability flag — the dispatcher's policy inputs;
``backend-missing-run-group``
    a ``run_group`` method;
``backend-bad-signature``
    ``run_group(self, entry, jobs)`` — exactly two required parameters after
    ``self`` (extras must carry defaults); ``synchronize(self)`` and
    ``stats_delta(self)``, when overridden, take no required parameters.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from .findings import Finding, Rule, Severity
from .project import ModuleInfo, Project, dotted_name
from .registry import Checker, register_checker

__all__ = ["BackendConformanceChecker"]

MISSING_NAME = Rule(
    "backend-missing-name",
    Severity.ERROR,
    "registered backend lacks a non-empty string `name` class attribute",
)
MISSING_CAPABILITIES = Rule(
    "backend-missing-capabilities",
    Severity.ERROR,
    "registered backend declares no BackendCapabilities flags",
)
MISSING_RUN_GROUP = Rule(
    "backend-missing-run-group",
    Severity.ERROR,
    "registered backend implements no run_group method",
)
BAD_SIGNATURE = Rule(
    "backend-bad-signature",
    Severity.ERROR,
    "backend protocol method has an incompatible signature",
)


def _required_params(node: ast.FunctionDef) -> List[str]:
    """Parameter names that a caller must supply positionally (incl. self)."""
    args = node.args
    n_defaults = len(args.defaults)
    positional = args.posonlyargs + args.args
    required = positional[: len(positional) - n_defaults]
    required_kwonly = [
        kw for kw, default in zip(args.kwonlyargs, args.kw_defaults)
        if default is None
    ]
    return [a.arg for a in required] + [a.arg for a in required_kwonly]


def _find_method(node: ast.ClassDef, name: str) -> Optional[ast.FunctionDef]:
    for item in node.body:
        if isinstance(item, ast.FunctionDef) and item.name == name:
            return item
    return None


def _class_assignment(node: ast.ClassDef, name: str) -> Optional[ast.expr]:
    for item in node.body:
        if isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return item.value
        elif isinstance(item, ast.AnnAssign):
            if (
                isinstance(item.target, ast.Name)
                and item.target.id == name
                and item.value is not None
            ):
                return item.value
    return None


@register_checker
class BackendConformanceChecker(Checker):
    """Signature/declaration checks for simulation-backend registrants."""

    name = "backend-conformance"
    rules = (MISSING_NAME, MISSING_CAPABILITIES, MISSING_RUN_GROUP, BAD_SIGNATURE)

    def check_module(self, module: ModuleInfo, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        for node in self._registered_classes(module):
            findings.extend(self._check_backend(module, node))
        return findings

    # -- registrant discovery -------------------------------------------------

    def _registered_classes(self, module: ModuleInfo) -> List[ast.ClassDef]:
        registered: List[ast.ClassDef] = []
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef) and any(
                self._is_register_call(decorator, module)
                for decorator in node.decorator_list
            ):
                registered.append(node)
        # call form: register_backend(Cls) at module level
        for node in module.tree.body:
            value = None
            if isinstance(node, ast.Expr):
                value = node.value
            elif isinstance(node, ast.Assign):
                value = node.value
            if (
                isinstance(value, ast.Call)
                and self._is_register_call(value.func, module)
                and value.args
                and isinstance(value.args[0], ast.Name)
            ):
                target = module.classes.get(value.args[0].id)
                if target is not None and target not in registered:
                    registered.append(target)
        return registered

    @staticmethod
    def _is_register_call(node: ast.expr, module: ModuleInfo) -> bool:
        path = dotted_name(node)
        if path is None:
            return False
        resolved = module.resolve(path)
        return resolved.split(".")[-1] == "register_backend"

    # -- per-backend checks ---------------------------------------------------

    def _check_backend(
        self, module: ModuleInfo, node: ast.ClassDef
    ) -> List[Finding]:
        findings: List[Finding] = []
        path = module.display_path

        name_value = _class_assignment(node, "name")
        if not (
            isinstance(name_value, ast.Constant)
            and isinstance(name_value.value, str)
            and name_value.value
        ):
            findings.append(
                MISSING_NAME.finding(
                    path,
                    node.lineno,
                    f"backend class {node.name!r} needs `name = \"...\"` — "
                    "the registry key EstimatorConfig(backend=...) selects",
                    hint="assign a non-empty string literal at class level",
                    col=node.col_offset,
                )
            )

        caps_value = _class_assignment(node, "capabilities")
        caps_ok = False
        if isinstance(caps_value, ast.Call):
            head = dotted_name(caps_value.func)
            if head is not None and head.split(".")[-1] == "BackendCapabilities":
                caps_ok = bool(caps_value.keywords) or bool(caps_value.args)
        if not caps_ok:
            findings.append(
                MISSING_CAPABILITIES.finding(
                    path,
                    caps_value.lineno if caps_value is not None else node.lineno,
                    f"backend class {node.name!r} must declare `capabilities "
                    "= BackendCapabilities(...)` with at least one flag — "
                    "the dispatcher's only decision inputs",
                    hint="declare noisy/noise_free/shot_based/observables/"
                    "batched/max_qubits explicitly",
                    col=node.col_offset,
                )
            )

        run_group = _find_method(node, "run_group")
        if run_group is None:
            findings.append(
                MISSING_RUN_GROUP.finding(
                    path,
                    node.lineno,
                    f"backend class {node.name!r} implements no "
                    "run_group(self, entry, jobs)",
                    hint="schedule one structure group's jobs and return one "
                    "JobResult handle per binding",
                    col=node.col_offset,
                )
            )
        else:
            required = _required_params(run_group)
            if len(required) != 3:
                findings.append(
                    BAD_SIGNATURE.finding(
                        path,
                        run_group.lineno,
                        f"{node.name}.run_group must take exactly (self, "
                        f"entry, jobs); required parameters are "
                        f"{tuple(required)}",
                        hint="extra parameters need defaults — the engine "
                        "calls run_group(entry, jobs) positionally",
                        col=run_group.col_offset,
                    )
                )

        for method_name in ("synchronize", "stats_delta"):
            method = _find_method(node, method_name)
            if method is not None and len(_required_params(method)) != 1:
                findings.append(
                    BAD_SIGNATURE.finding(
                        path,
                        method.lineno,
                        f"{node.name}.{method_name} must take only (self); "
                        f"required parameters are "
                        f"{tuple(_required_params(method))}",
                        hint="the engine calls it with no arguments",
                        col=method.col_offset,
                    )
                )
        return findings
