"""Telemetry containment lint: observation must never become computation.

PR 10 threaded spans, metrics and the :mod:`repro.utils.clock` seam through
the engine, the sharded schedulers and the service.  The whole point of that
instrumentation is that it is *observation-only*: durations, span buffers
and metric values may be recorded, merged and reported, but they must never
flow back into anything the engine returns — a score, a seed, a shard
assignment.  The dynamic half of that contract is the bitwise
tracing-on/off equivalence matrix in ``tests/telemetry``; this checker is
the static half:

``telemetry-flow``
    A value obtained from :mod:`repro.telemetry` or
    :mod:`repro.utils.clock` (or derived from one) reaches a ``return``
    statement outside the telemetry/stats modules.  The two sanctioned
    escapes — worker shard results carrying their span buffer and root-span
    elapsed time home as an observational report — are annotated with
    ``# repro: ignore[telemetry-flow] -- <why>`` so the audit trail lives
    next to the code.

The analysis is a per-function forward taint pass, deliberately in the
tripwire spirit of the rest of this package rather than a proof:

* sources: any call resolving under ``repro.telemetry.`` or
  ``repro.utils.clock.`` (so ``telemetry.get_tracer()``,
  ``clock.monotonic()``, ``telemetry.span(...)``...);
* propagation: assignment to names (``started = clock.monotonic()``),
  ``with ... as name`` bindings (``with tracer.capture() as spans:``),
  augmented assignment, and any expression mentioning a tainted name
  (``clock.monotonic() - started``, ``spans[-1].duration``);
* containers: storing a tainted value into an attribute or item of a local
  name taints that name too (``result.spans = spans`` taints ``result`` —
  how the worker ``run()`` returns are caught).  Stores into ``self`` /
  ``cls`` attributes are exempt: those are the stats-accumulation sinks
  (``self.stats.compile_seconds += ...``) that ``det-monotonic-flow``
  already audits, and tainting ``self`` would flag every unrelated
  ``return self.x`` in the class.

Sinks are ``return`` statements whose expression is tainted.  Modules whose
business *is* telemetry — ``repro.telemetry*``, ``repro.utils.clock`` and
the mergeable-stats module ``repro.execution.stats`` — are exempt
wholesale.
"""

from __future__ import annotations

import ast
from typing import List, Set

from .findings import Finding, Rule, Severity
from .project import ModuleInfo, Project, dotted_name
from .registry import Checker, register_checker

__all__ = ["TelemetryFlowChecker"]

TELEMETRY_FLOW = Rule(
    "telemetry-flow",
    Severity.ERROR,
    "telemetry-derived value flows into a return outside the "
    "telemetry/stats modules",
)

#: resolved-call prefixes whose results are telemetry-tainted
_SOURCE_PREFIXES = ("repro.telemetry.", "repro.utils.clock.")

#: modules whose business is telemetry — sources there are their own sinks
_EXEMPT_MODULES = ("repro.utils.clock", "repro.execution.stats")
_EXEMPT_PREFIXES = ("repro.telemetry",)

#: attribute bases whose stores are stats-accumulation, not caller data flow
_ACCUMULATOR_BASES = {"self", "cls"}


def _is_exempt(module: ModuleInfo) -> bool:
    if module.name in _EXEMPT_MODULES:
        return True
    return any(
        module.name == prefix or module.name.startswith(prefix + ".")
        for prefix in _EXEMPT_PREFIXES
    )


def _is_source_call(node: ast.Call, module: ModuleInfo) -> bool:
    path = dotted_name(node.func)
    if path is None:
        return False
    resolved = module.resolve(path)
    return resolved.startswith(_SOURCE_PREFIXES)


def _expr_tainted(node: ast.expr, tainted: Set[str], module: ModuleInfo) -> bool:
    """True when the expression mentions a tainted name or a source call."""
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and child.id in tainted:
            return True
        if isinstance(child, ast.Call) and _is_source_call(child, module):
            return True
    return False


def _base_name(node: ast.expr) -> ast.expr:
    """The root of an attribute/subscript chain: ``a`` for ``a.b[0].c``."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node


def _taint_target(target: ast.expr, tainted: Set[str]) -> None:
    if isinstance(target, ast.Name):
        tainted.add(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            _taint_target(element, tainted)
    elif isinstance(target, ast.Starred):
        _taint_target(target.value, tainted)
    elif isinstance(target, (ast.Attribute, ast.Subscript)):
        base = _base_name(target)
        if isinstance(base, ast.Name) and base.id not in _ACCUMULATOR_BASES:
            tainted.add(base.id)


@register_checker
class TelemetryFlowChecker(Checker):
    """Forward taint pass: telemetry/clock values must not reach returns."""

    name = "telemetry"
    rules = (TELEMETRY_FLOW,)

    def check_module(self, module: ModuleInfo, project: Project) -> List[Finding]:
        if _is_exempt(module):
            return []
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                tainted: Set[str] = set()
                self._scan_body(node.body, tainted, module, findings)
        return findings

    # -- per-function forward pass --------------------------------------------

    def _scan_body(
        self,
        body: List[ast.stmt],
        tainted: Set[str],
        module: ModuleInfo,
        findings: List[Finding],
    ) -> None:
        for statement in body:
            self._scan_statement(statement, tainted, module, findings)

    def _scan_statement(
        self,
        statement: ast.stmt,
        tainted: Set[str],
        module: ModuleInfo,
        findings: List[Finding],
    ) -> None:
        # nested defs get their own pass from check_module; their returns
        # are not this function's returns
        if isinstance(
            statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return
        if isinstance(statement, ast.Return):
            if statement.value is not None and _expr_tainted(
                statement.value, tainted, module
            ):
                findings.append(
                    TELEMETRY_FLOW.finding(
                        module.display_path,
                        statement.lineno,
                        "telemetry/clock-derived value reaches this return — "
                        "observation must stay out of computed results",
                        hint="keep timing inside stats sinks, or annotate a "
                        "sanctioned observational report with # repro: "
                        "ignore[telemetry-flow] -- <why>",
                        col=statement.col_offset,
                    )
                )
            return
        if isinstance(statement, ast.Assign):
            if _expr_tainted(statement.value, tainted, module):
                for target in statement.targets:
                    _taint_target(target, tainted)
            return
        if isinstance(statement, ast.AugAssign):
            if _expr_tainted(statement.value, tainted, module):
                _taint_target(statement.target, tainted)
            return
        if isinstance(statement, ast.AnnAssign):
            if statement.value is not None and _expr_tainted(
                statement.value, tainted, module
            ):
                _taint_target(statement.target, tainted)
            return
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            for item in statement.items:
                if item.optional_vars is not None and _expr_tainted(
                    item.context_expr, tainted, module
                ):
                    _taint_target(item.optional_vars, tainted)
            self._scan_body(statement.body, tainted, module, findings)
            return
        if isinstance(statement, (ast.For, ast.AsyncFor)):
            if _expr_tainted(statement.iter, tainted, module):
                _taint_target(statement.target, tainted)
            self._scan_body(statement.body, tainted, module, findings)
            self._scan_body(statement.orelse, tainted, module, findings)
            return
        if isinstance(statement, ast.While):
            self._scan_body(statement.body, tainted, module, findings)
            self._scan_body(statement.orelse, tainted, module, findings)
            return
        if isinstance(statement, ast.If):
            self._scan_body(statement.body, tainted, module, findings)
            self._scan_body(statement.orelse, tainted, module, findings)
            return
        if isinstance(statement, ast.Try):
            self._scan_body(statement.body, tainted, module, findings)
            for handler in statement.handlers:
                self._scan_body(handler.body, tainted, module, findings)
            self._scan_body(statement.orelse, tainted, module, findings)
            self._scan_body(statement.finalbody, tainted, module, findings)
            return
        # expression statements, raises, etc. neither taint nor sink
