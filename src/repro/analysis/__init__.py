"""Static-analysis suite enforcing the engine's determinism contracts.

PRs 2–5 made the co-search hot path batched, parametrically compiled,
process-sharded and backend-dispatched — an engine whose value proposition
is a *contract*: scores bit-for-bit independent of worker count and backend
choice, shard payloads that pickle cleanly, caches that merge without
shared-state mutation.  The equivalence tests enforce that contract
dynamically; this package enforces it statically (and, for the one property
statics cannot see, with a runtime sanitizer):

* :mod:`~repro.analysis.determinism` — global-state RNG, unpinned
  ``default_rng()``, wall-clock reads feeding computation, unordered set
  iteration (rules ``det-*``);
* :mod:`~repro.analysis.pickle_safety` — the ``_ShardTask`` /
  ``_ShardResult`` payload graphs stay statically picklable
  (rules ``pickle-*``);
* :mod:`~repro.analysis.conformance` — every ``register_backend``
  registrant honors the ``SimulationBackend`` protocol
  (rules ``backend-*``);
* :mod:`~repro.analysis.telemetry` — span/metric/clock values stay
  observation-only: no telemetry-derived value reaches a return outside
  the telemetry/stats modules (rule ``telemetry-flow``);
* :mod:`~repro.analysis.sanitizer` — ``REPRO_SANITIZE=1`` fingerprints
  cache entries at export/adopt time and raises on post-merge mutation.

Run ``python -m repro.analysis --strict`` (the CI lint lane), or see
``README.md`` in this directory for the rule catalogue, the
``# repro: ignore[rule]`` suppression syntax and how to add a checker.
"""

from .findings import Finding, Rule, Severity
from .registry import (
    Checker,
    all_rules,
    available_checkers,
    checker_class,
    register_checker,
    unregister_checker,
)
from .runner import AnalysisReport, analyze, analyze_paths
from .project import ModuleInfo, Project, load_project
from .sanitizer import (
    CacheMutationError,
    install_sanitizer,
    sanitize_requested,
    sanitizer_installed,
    uninstall_sanitizer,
    verify_cache,
)

# Importing the concrete modules registers the in-tree checkers (the same
# idiom as repro.backends).
from . import conformance  # noqa: F401  (registers backend-conformance)
from . import determinism  # noqa: F401  (registers determinism)
from . import pickle_safety  # noqa: F401  (registers pickle-safety)
from . import telemetry  # noqa: F401  (registers telemetry-flow)

__all__ = [
    "Finding",
    "Rule",
    "Severity",
    "Checker",
    "all_rules",
    "available_checkers",
    "checker_class",
    "register_checker",
    "unregister_checker",
    "AnalysisReport",
    "analyze",
    "analyze_paths",
    "ModuleInfo",
    "Project",
    "load_project",
    "CacheMutationError",
    "install_sanitizer",
    "sanitize_requested",
    "sanitizer_installed",
    "uninstall_sanitizer",
    "verify_cache",
]
