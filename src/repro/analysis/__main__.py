"""CLI: ``python -m repro.analysis [paths...] [--strict] [--format ...]``.

With no paths the suite walks the installed ``repro`` package — the CI lint
lane is exactly ``python -m repro.analysis --strict``.

Exit codes: 0 clean (warnings allowed unless ``--strict``), 1 findings,
2 usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .registry import all_rules, available_checkers
from .runner import analyze_paths

__all__ = ["main"]


def _default_paths() -> List[Path]:
    import repro

    return [Path(repro.__file__).parent]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Determinism / pickle-safety / backend-conformance static "
            "analysis for the repro codebase."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to analyze (default: the repro package)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on warnings too (the CI gate)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="finding output format",
    )
    parser.add_argument(
        "--checker",
        action="append",
        dest="checkers",
        metavar="NAME",
        help="run only this checker (repeatable; default: all registered)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to report (others are dropped)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print findings silenced by # repro: ignore[...] comments",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule in all_rules():
            print(f"{rule.id:26s} {rule.severity:8s} {rule.summary}")
        print(f"checkers: {', '.join(available_checkers())}")
        return 0

    paths = options.paths or _default_paths()
    select = (
        [rule.strip() for rule in options.select.split(",") if rule.strip()]
        if options.select
        else None
    )
    try:
        report = analyze_paths(paths, checkers=options.checkers, select=select)
    except (FileNotFoundError, ValueError) as exc:
        print(f"repro.analysis: {exc}", file=sys.stderr)
        return 2

    if options.format == "json":
        print(report.render_json())
    else:
        print(report.render_text(show_suppressed=options.show_suppressed))
    return report.exit_code(strict=options.strict)


if __name__ == "__main__":
    sys.exit(main())
