"""Structured findings emitted by the static-analysis checkers.

A :class:`Finding` is one rule violation at one source location.  Checkers
never print — they return findings; rendering (text or JSON) and exit-code
policy live in :mod:`repro.analysis.runner` so the same findings drive the
CLI, the CI gate and the test assertions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = ["Severity", "Rule", "Finding"]


class Severity:
    """Finding severities (plain strings so findings serialize trivially).

    ``ERROR`` findings always gate the CLI; ``WARNING`` findings gate only
    under ``--strict`` (the CI configuration).
    """

    ERROR = "error"
    WARNING = "warning"

    ORDER = {ERROR: 0, WARNING: 1}


@dataclass(frozen=True)
class Rule:
    """One rule a checker can fire: identity, severity and catalogue text."""

    id: str
    severity: str
    summary: str

    def finding(
        self,
        path: str,
        line: int,
        message: str,
        hint: str = "",
        col: int = 0,
    ) -> "Finding":
        """Build a finding of this rule (checkers' one-liner constructor)."""
        return Finding(
            path=path,
            line=int(line),
            col=int(col),
            rule=self.id,
            severity=self.severity,
            message=message,
            hint=hint,
        )


@dataclass
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    severity: str
    message: str
    hint: str = ""
    #: set by the runner when a ``# repro: ignore[rule]`` comment covers it
    suppressed: bool = field(default=False, compare=False)

    def sort_key(self) -> Tuple:
        return (self.path, self.line, self.col, self.rule)

    def render(self) -> str:
        text = (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} {self.severity}: {self.message}"
        )
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "hint": self.hint,
            "suppressed": self.suppressed,
        }
