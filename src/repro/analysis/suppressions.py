"""``# repro:`` comment directives.

Two directives are recognized, both parsed with :mod:`tokenize` so they are
found only in real comments (never in strings):

``# repro: ignore[rule-id]`` / ``# repro: ignore[rule-a, rule-b]``
    Suppress the named rules.  A trailing comment suppresses findings on its
    own line; a standalone comment line suppresses findings on the next
    code line (so multi-target statements can carry a justification above
    them).  ``ignore[*]`` suppresses every rule.  Everything after the
    closing bracket is free-form justification — the convention is
    ``# repro: ignore[rule] -- why this is intended``.

``# repro: pickle-boundary``
    Marks the class definition on the next line as a root payload that
    crosses the sharded scheduler's process boundary; the pickle-safety
    checker walks its fields (see :mod:`repro.analysis.pickle_safety`).
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, Set, Tuple

__all__ = ["SuppressionTable", "parse_suppressions"]

#: line number -> set of suppressed rule ids ("*" = all)
SuppressionTable = Dict[int, Set[str]]

_IGNORE_RE = re.compile(r"#\s*repro:\s*ignore\[([^\]]*)\]")
_BOUNDARY_RE = re.compile(r"#\s*repro:\s*pickle-boundary\b")


def parse_suppressions(source: str) -> Tuple[SuppressionTable, Set[int]]:
    """Parse one module's directives.

    Returns ``(suppressions, boundary_marker_lines)`` where suppressions map
    *effective* line numbers (the line a finding must sit on to be covered)
    to suppressed rule ids, and the marker lines are the line numbers *after*
    each standalone ``pickle-boundary`` comment.
    """
    suppressions: SuppressionTable = {}
    markers: Set[int] = set()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except tokenize.TokenError:
        return suppressions, markers
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        line_no = token.start[0]
        line_text = token.line
        standalone = line_text[: token.start[1]].strip() == ""
        target = line_no + 1 if standalone else line_no
        match = _IGNORE_RE.search(token.string)
        if match:
            rules = {
                rule.strip() for rule in match.group(1).split(",") if rule.strip()
            }
            if rules:
                suppressions.setdefault(target, set()).update(rules)
        if _BOUNDARY_RE.search(token.string) and standalone:
            markers.add(target)
    return suppressions, markers


def is_suppressed(table: SuppressionTable, line: int, rule: str) -> bool:
    rules = table.get(line)
    if not rules:
        return False
    return rule in rules or "*" in rules
