"""Pickle-safety of the payloads crossing the scheduler's process boundary.

``_ShardTask`` / ``_ShardResult`` (and everything reachable from their
fields) are pickled into worker processes every generation.  A lock, an open
handle, an executor or a lambda smuggled into that graph fails at *dispatch*
time — deep inside a generation, where the scheduler degrades with a warning
and quietly eats the whole speedup.  This checker fails at *lint* time
instead.

Root payloads are discovered two ways:

* a standalone ``# repro: pickle-boundary`` comment on the line above the
  class definition (the explicit, self-documenting marker used in
  :mod:`repro.execution.scheduler`), or
* the scheduler's payload naming convention ``_Shard*`` as a fallback, so
  deleting a marker cannot silently un-check the real payloads.

From each root the checker walks field annotations recursively through
project-local dataclasses.  A class is accepted if it

* defines ``__getstate__`` (it has opted into controlling its pickled form —
  the lean-pickle idiom of ``Device`` / ``CompiledCircuit``), or
* is a dataclass whose fields are all statically picklable: scalars,
  strings, bytes, ``np.ndarray``, containers of picklable things, and other
  conforming project classes.

Known-unpicklable annotations (``threading.Lock``, executors, ``Callable``,
IO handles, generators) fire ``pickle-unsafe-field``.  A reachable plain
class without ``__getstate__`` has its ``__init__`` scanned for assignments
of unpicklable values (``self._lock = threading.Lock()``, ``self.f =
lambda ...``, ``self.fh = open(...)``) — those fire ``pickle-unsafe-attr``.
Unresolvable external types are ignored: the checker is a tripwire for the
known failure modes, not a proof of picklability.
"""

from __future__ import annotations

import ast
import re
from typing import List, Optional, Set, Tuple

from .findings import Finding, Rule, Severity
from .project import ModuleInfo, Project, dotted_name
from .registry import Checker, register_checker

__all__ = ["PickleSafetyChecker"]

UNSAFE_FIELD = Rule(
    "pickle-unsafe-field",
    Severity.ERROR,
    "process-boundary payload field has a statically-unpicklable type",
)
UNSAFE_ATTR = Rule(
    "pickle-unsafe-attr",
    Severity.ERROR,
    "class reachable from a process-boundary payload assigns an "
    "unpicklable attribute and defines no __getstate__",
)

_ROOT_NAME_RE = re.compile(r"^_Shard(Task|Result)$")

#: resolved dotted names that pickle cleanly as annotation atoms
_SAFE_ATOMS = {
    "int", "float", "str", "bool", "bytes", "complex", "object", "None",
    "type(None)",
    "typing.Any", "typing.Hashable", "collections.abc.Hashable",
    "numpy.ndarray", "numpy.dtype",
}

#: container heads whose subscript arguments are analyzed recursively
_CONTAINERS = {
    "list", "dict", "tuple", "set", "frozenset",
    "typing.List", "typing.Dict", "typing.Tuple", "typing.Set",
    "typing.FrozenSet", "typing.Sequence", "typing.Iterable",
    "typing.Mapping", "typing.MutableMapping", "typing.Optional",
    "typing.Union", "collections.OrderedDict", "typing.OrderedDict",
    "List", "Dict", "Tuple", "Set", "FrozenSet", "Sequence", "Iterable",
    "Mapping", "MutableMapping", "Optional", "Union", "OrderedDict",
}

#: resolved dotted names that are known pickle hazards in annotations
_UNSAFE_TYPES = {
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore", "threading.Event",
    "threading.Barrier", "threading.Thread", "threading.local",
    "multiprocessing.Lock", "multiprocessing.RLock", "multiprocessing.Queue",
    "multiprocessing.Pool", "multiprocessing.Process",
    "concurrent.futures.Executor", "concurrent.futures.ProcessPoolExecutor",
    "concurrent.futures.ThreadPoolExecutor", "concurrent.futures.Future",
    "socket.socket",
    "io.IOBase", "io.TextIOWrapper", "io.BufferedReader", "io.BufferedWriter",
    "io.FileIO", "io.BytesIO", "io.StringIO",
    "typing.IO", "typing.TextIO", "typing.BinaryIO",
    "typing.Callable", "collections.abc.Callable", "Callable", "callable",
    "types.FunctionType", "types.LambdaType", "types.GeneratorType",
    "typing.Generator", "typing.Coroutine",
    # live telemetry objects: a Tracer (span stack, writer handle), a
    # metrics registry or an open TraceWriter smuggled into a shard payload
    # drags process-local observation state across the boundary — workers
    # ship flat SpanRecord buffers home instead
    "repro.telemetry.Tracer", "repro.telemetry.spans.Tracer",
    "repro.telemetry.MetricsRegistry", "repro.telemetry.metrics.MetricsRegistry",
    "repro.telemetry.TraceWriter", "repro.telemetry.export.TraceWriter",
}

#: resolved callables whose *result*, assigned to an attribute, is unpicklable
_UNSAFE_CONSTRUCTORS = {
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore", "threading.Event",
    "threading.Barrier", "threading.Thread", "threading.local",
    "multiprocessing.Lock", "multiprocessing.RLock", "multiprocessing.Queue",
    "multiprocessing.Pool", "multiprocessing.Process",
    "concurrent.futures.ProcessPoolExecutor",
    "concurrent.futures.ThreadPoolExecutor",
    "open", "io.open", "socket.socket",
}


def _is_dataclass(node: ast.ClassDef, module: ModuleInfo) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        path = dotted_name(target)
        if path is not None and module.resolve(path) in (
            "dataclasses.dataclass", "dataclass",
        ):
            return True
    return False


def _defines(node: ast.ClassDef, method: str) -> bool:
    return any(
        isinstance(item, ast.FunctionDef) and item.name == method
        for item in node.body
    )


def _marker_lines(node: ast.ClassDef) -> Set[int]:
    """Lines a ``pickle-boundary`` marker may target for this class."""
    lines = {node.lineno}
    if node.decorator_list:
        lines.add(min(d.lineno for d in node.decorator_list))
    return lines


@register_checker
class PickleSafetyChecker(Checker):
    """Walks process-boundary payload dataclasses for pickle hazards."""

    name = "pickle-safety"
    rules = (UNSAFE_FIELD, UNSAFE_ATTR)

    def check_module(self, module: ModuleInfo, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            marked = bool(_marker_lines(node) & module.boundary_markers)
            if marked or _ROOT_NAME_RE.match(node.name):
                self._walk_class(
                    module, node, project, trail=node.name,
                    seen=set(), findings=findings,
                )
        return findings

    # -- class walk -----------------------------------------------------------

    def _walk_class(
        self,
        module: ModuleInfo,
        node: ast.ClassDef,
        project: Project,
        trail: str,
        seen: Set[Tuple[str, str]],
        findings: List[Finding],
    ) -> None:
        key = (module.name, node.name)
        if key in seen:
            return
        seen.add(key)
        if _defines(node, "__getstate__"):
            # the class controls its own pickled form — trusted boundary
            return
        if _is_dataclass(node, module):
            for item in node.body:
                if isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ):
                    self._check_annotation(
                        module, item.annotation, project,
                        field_name=item.target.id, owner=node.name,
                        trail=trail, line=item.lineno,
                        seen=seen, findings=findings,
                    )
        else:
            self._scan_plain_class(module, node, trail, findings)

    def _check_annotation(
        self,
        module: ModuleInfo,
        annotation: ast.expr,
        project: Project,
        field_name: str,
        owner: str,
        trail: str,
        line: int,
        seen: Set[Tuple[str, str]],
        findings: List[Finding],
    ) -> None:
        if isinstance(annotation, ast.Constant):
            # string / None annotation: re-parse forward references
            if annotation.value is None:
                return
            if isinstance(annotation.value, str):
                try:
                    parsed = ast.parse(annotation.value, mode="eval").body
                except SyntaxError:
                    return
                parsed = ast.copy_location(parsed, annotation)
                for child in ast.walk(parsed):
                    if not hasattr(child, "lineno"):
                        continue
                    ast.copy_location(child, annotation)
                self._check_annotation(
                    module, parsed, project, field_name, owner, trail,
                    line, seen, findings,
                )
            return
        if isinstance(annotation, ast.Subscript):
            head = dotted_name(annotation.value)
            if head is not None and (
                module.resolve(head) in _CONTAINERS or head in _CONTAINERS
            ):
                slice_node = annotation.slice
                elements = (
                    slice_node.elts
                    if isinstance(slice_node, ast.Tuple)
                    else [slice_node]
                )
                for element in elements:
                    self._check_annotation(
                        module, element, project, field_name, owner, trail,
                        line, seen, findings,
                    )
                return
            # unknown generic (e.g. Callable[..., x]) — check its head below
            annotation = annotation.value
        path = dotted_name(annotation)
        if path is None:
            return
        resolved = module.resolve(path)
        if resolved in _SAFE_ATOMS or resolved in _CONTAINERS:
            return
        if resolved in _UNSAFE_TYPES or path in _UNSAFE_TYPES:
            findings.append(
                UNSAFE_FIELD.finding(
                    module.display_path,
                    line,
                    f"field {field_name!r} of {owner!r} (process-boundary "
                    f"payload via {trail}) has unpicklable type {path!r}",
                    hint="drop the field, replace it with picklable state, "
                    "or give the class __getstate__/__setstate__",
                    col=annotation.col_offset,
                )
            )
            return
        located = project.find_class(module, path)
        if located is not None:
            owner_module, class_node = located
            self._walk_class(
                owner_module, class_node, project,
                trail=f"{trail}.{field_name}",
                seen=seen, findings=findings,
            )
        # unresolvable external types are accepted (tripwire, not a proof)

    # -- plain (non-dataclass) reachable classes ------------------------------

    def _scan_plain_class(
        self,
        module: ModuleInfo,
        node: ast.ClassDef,
        trail: str,
        findings: List[Finding],
    ) -> None:
        for item in node.body:
            if not (isinstance(item, ast.FunctionDef) and item.name == "__init__"):
                continue
            for statement in ast.walk(item):
                if not isinstance(statement, ast.Assign):
                    continue
                targets = [
                    t for t in statement.targets
                    if isinstance(t, ast.Attribute)
                    and isinstance(t.value, ast.Name)
                    and t.value.id == "self"
                ]
                if not targets:
                    continue
                hazard = self._unpicklable_value(statement.value, module)
                if hazard is None:
                    continue
                names = ", ".join(t.attr for t in targets)
                findings.append(
                    UNSAFE_ATTR.finding(
                        module.display_path,
                        statement.lineno,
                        f"{node.name!r} (reachable from process-boundary "
                        f"payload {trail}) assigns unpicklable {hazard} to "
                        f"attribute(s) {names} and defines no __getstate__",
                        hint="exclude the attribute via __getstate__ (see "
                        "Device/CompiledCircuit) or store picklable state",
                        col=statement.col_offset,
                    )
                )

    @staticmethod
    def _unpicklable_value(value: ast.expr, module: ModuleInfo) -> Optional[str]:
        if isinstance(value, ast.Lambda):
            return "lambda"
        if isinstance(value, ast.Call):
            path = dotted_name(value.func)
            if path is not None:
                resolved = module.resolve(path)
                if resolved in _UNSAFE_CONSTRUCTORS:
                    return f"{resolved}(...)"
        return None
