"""Structured tracing + metrics for the sharded co-search stack.

Two instruments over one contract:

* **Spans** (:mod:`~repro.telemetry.spans`) — nested, monotonic-duration
  windows with attributes, recorded to an in-memory ring buffer and
  (with ``REPRO_TRACE=<path>``) appended to a JSONL trace file.  Worker
  processes record their spans into capture buffers that ride home inside
  the existing ``_ShardResult`` payloads and re-parent under the
  dispatching generation span (:func:`adopt_spans`).
* **Metrics** (:mod:`~repro.telemetry.metrics`) — labelled
  counters/gauges/histograms (per-tenant service accounting, per-backend
  job counts, per-phase engine timings), readable as a plain snapshot or
  Prometheus text via :func:`get_metrics`.

``python -m repro.telemetry summarize <trace.jsonl>`` renders the top
spans, per-tenant / per-shard / per-phase breakdowns and the critical
path per generation.

**The determinism contract** — the hard rule everything here obeys:
telemetry is observation-only.  No span duration, metric value or clock
reading may flow into scores, seeds, shard assignment or any other result
a search returns.  Enforced three ways: the ``telemetry-flow`` analysis
rule (errors on clock/telemetry values reaching a return statement
outside this package), the bitwise on/off x workers 1/2/4 test matrix in
``tests/telemetry/``, and the <5% tracing-overhead gate in
``benchmarks/bench_execution_engine.py``.

Env vars: ``REPRO_TRACE=<path>`` arms JSONL export at import (main
process only — workers ship their spans home instead of writing).
"""

from __future__ import annotations

import multiprocessing
import os
from contextlib import contextmanager
from typing import Iterable, List, Optional

from .spans import DEFAULT_BUFFER_SPANS, SpanRecord, Tracer
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .export import TraceWriter, read_trace

__all__ = [
    "SpanRecord",
    "Tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceWriter",
    "read_trace",
    "DEFAULT_BUFFER_SPANS",
    "get_tracer",
    "get_metrics",
    "span",
    "event",
    "capture",
    "adopt_spans",
    "current_span_id",
    "phase_span",
    "configure",
    "disable",
    "reset",
    "tracing_requested",
]

_TRACER = Tracer()
_METRICS = MetricsRegistry()


def get_tracer() -> Tracer:
    """The process-global tracer all instrumentation records into."""
    return _TRACER


def get_metrics() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _METRICS


# -- thin conveniences over the global tracer --------------------------------

def span(name: str, **attributes):
    """Open a nested span on the global tracer (no-op when inactive)."""
    return _TRACER.span(name, **attributes)


def event(name: str, **attributes) -> None:
    """Record a point event (retry, respawn, deadline...) on the tracer."""
    _TRACER.event(name, **attributes)


def capture():
    """Collect every span finished while open (the worker-side buffer)."""
    return _TRACER.capture()


def adopt_spans(
    records: Iterable[SpanRecord], parent_id: Optional[int] = None
) -> List[SpanRecord]:
    """Re-id worker records into the global tracer under the open span."""
    return _TRACER.adopt(records, parent_id=parent_id)


def current_span_id() -> Optional[int]:
    return _TRACER.current_span_id()


@contextmanager
def phase_span(name: str, phase: str, **attributes):
    """A span that also feeds the ``engine_phase_seconds`` histogram.

    The duration read happens *here*, inside the telemetry package, so
    instrumented engine code never touches a clock value — keeping every
    call site clean under the ``telemetry-flow`` rule.  When the tracer is
    inactive this is a bare yield: no clock reads, no allocation.
    """
    if not _TRACER.active:
        yield
        return
    with _TRACER.span(name, phase=phase, **attributes) as active:
        yield
    _METRICS.histogram("engine_phase_seconds", phase=phase).observe(
        active.record.duration
    )


# -- configuration -----------------------------------------------------------

def tracing_requested() -> Optional[str]:
    """The ``REPRO_TRACE`` trace-file path, or None when unset/empty."""
    return os.environ.get("REPRO_TRACE") or None


def configure(
    trace_path: Optional[str] = None, enabled: bool = True
) -> Tracer:
    """Enable recording, optionally attaching a JSONL writer."""
    if _TRACER.writer is not None:
        _TRACER.writer.close()
    _TRACER.writer = TraceWriter(trace_path) if trace_path else None
    _TRACER.enabled = bool(enabled)
    return _TRACER


def disable() -> None:
    """Stop recording and detach/close any trace writer."""
    if _TRACER.writer is not None:
        _TRACER.writer.close()
    _TRACER.writer = None
    _TRACER.enabled = False


def reset() -> None:
    """Drop recorded spans and metrics (keeps enabled/writer state)."""
    _TRACER.reset()
    _METRICS.reset()


# Arm JSONL export when REPRO_TRACE is set — main process only: worker
# processes (fork or spawn) must never write the parent's trace file; their
# spans ride home inside shard-result payloads instead (export.py documents
# the two PID guards backing this up).
if tracing_requested() and multiprocessing.parent_process() is None:
    configure(trace_path=tracing_requested())
