"""Trace summarizer: ``python -m repro.telemetry summarize <trace.jsonl>``.

Renders a recorded JSONL trace (``REPRO_TRACE=<path>``) as:

* **top spans** — grouped by span name: count, total/mean/max seconds;
* **per-tenant** — ``service.round`` spans grouped by tenant attribute;
* **per-shard** — ``worker.*`` spans grouped by shard index;
* **per-phase** — spans carrying a ``phase`` attribute (schedule /
  simulate / score / ...) grouped by phase;
* **critical path** — for each ``scheduler.generation`` span, the
  longest-duration child chain (where the generation's wall time went).
"""

from __future__ import annotations

import argparse
import sys
from collections import defaultdict
from typing import Dict, List, Optional, Sequence

from ..utils.tables import print_table
from .export import read_trace
from .spans import SpanRecord

__all__ = ["main", "summarize"]

#: span names whose instances represent one worker shard execution
_WORKER_SPAN_NAMES = ("worker.shard", "worker.gradient_shard")


def _by_name(records: Sequence[SpanRecord]) -> Dict[str, List[SpanRecord]]:
    groups: Dict[str, List[SpanRecord]] = defaultdict(list)
    for record in records:
        groups[record.name].append(record)
    return groups


def _grouped_rows(groups: Dict[str, List[SpanRecord]]) -> List[List[object]]:
    rows = []
    for name, spans in groups.items():
        total = sum(s.duration for s in spans)
        rows.append([
            name,
            len(spans),
            total,
            total / len(spans),
            max(s.duration for s in spans),
        ])
    rows.sort(key=lambda row: -row[2])
    return rows


def _critical_path(
    root: SpanRecord, children: Dict[Optional[int], List[SpanRecord]]
) -> List[SpanRecord]:
    path = []
    current = root
    while True:
        kids = children.get(current.span_id)
        if not kids:
            return path
        current = max(kids, key=lambda s: s.duration)
        path.append(current)


def summarize(path: str, top: int = 15, generations: int = 8) -> None:
    records = read_trace(path)
    if not records:
        print(f"{path}: empty trace")
        return
    print(f"{path}: {len(records)} spans")

    groups = _by_name(records)
    print_table(
        ["span", "count", "total s", "mean s", "max s"],
        _grouped_rows(groups)[:top],
        title=f"Top spans by total duration (of {len(groups)} span names)",
    )

    tenants: Dict[str, List[SpanRecord]] = defaultdict(list)
    for record in groups.get("service.round", []):
        tenants[str(record.attributes.get("tenant", "?"))].append(record)
    if tenants:
        print_table(
            ["tenant", "rounds", "total s", "mean round s"],
            [
                [
                    tenant,
                    len(rounds),
                    sum(r.duration for r in rounds),
                    sum(r.duration for r in rounds) / len(rounds),
                ]
                for tenant, rounds in sorted(tenants.items())
            ],
            title="Per-tenant service rounds",
        )

    shards: Dict[str, List[SpanRecord]] = defaultdict(list)
    for name in _WORKER_SPAN_NAMES:
        for record in groups.get(name, []):
            shards[str(record.attributes.get("shard", "?"))].append(record)
    if shards:
        print_table(
            ["shard", "executions", "total s", "mean s"],
            [
                [
                    shard,
                    len(spans),
                    sum(s.duration for s in spans),
                    sum(s.duration for s in spans) / len(spans),
                ]
                for shard, spans in sorted(shards.items())
            ],
            title="Per-shard worker executions",
        )

    phases: Dict[str, List[SpanRecord]] = defaultdict(list)
    for record in records:
        phase = record.attributes.get("phase")
        if phase is not None:
            phases[str(phase)].append(record)
    if phases:
        print_table(
            ["phase", "count", "total s", "mean s"],
            [
                [
                    phase,
                    len(spans),
                    sum(s.duration for s in spans),
                    sum(s.duration for s in spans) / len(spans),
                ]
                for phase, spans in sorted(phases.items())
            ],
            title="Per-phase engine breakdown",
        )

    children: Dict[Optional[int], List[SpanRecord]] = defaultdict(list)
    for record in records:
        children[record.parent_id].append(record)
    generation_spans = groups.get("scheduler.generation", [])
    if generation_spans:
        rows = []
        for record in generation_spans[-generations:]:
            chain = _critical_path(record, children)
            rows.append([
                record.attributes.get("generation", "?"),
                record.duration,
                " > ".join(
                    f"{s.name}[{s.duration:.4f}s]" for s in chain
                ) or "(leaf)",
            ])
        print_table(
            ["generation", "wall s", "critical path (longest child chain)"],
            rows,
            title=f"Critical path per generation (last {len(rows)})",
        )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Summarize a REPRO_TRACE JSONL span trace.",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    cmd = commands.add_parser("summarize", help="render trace breakdowns")
    cmd.add_argument("trace", help="path to the JSONL trace file")
    cmd.add_argument("--top", type=int, default=15,
                     help="span-name rows in the top-spans table")
    cmd.add_argument("--generations", type=int, default=8,
                     help="generations in the critical-path table")
    options = parser.parse_args(argv)
    try:
        summarize(options.trace, top=options.top,
                  generations=options.generations)
    except BrokenPipeError:
        # reading end closed early (e.g. `... | head`); not an error
        sys.stderr.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
