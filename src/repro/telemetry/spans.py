"""Span recording: nested monotonic-duration spans over a ring buffer.

A :class:`SpanRecord` is a flat, picklable dataclass — name, integer span
id, optional parent id, start/end timestamps from the
:mod:`repro.utils.clock` seam, and a plain attribute dict.  Records are
what ride across process boundaries (worker shards return their span
buffers inside ``_ShardResult`` payloads) and what the JSONL trace file
stores, so they carry no object references.

A :class:`Tracer` owns the live state: a bounded ring buffer of finished
records, the stack of currently-open spans (nesting = parent links), and
any number of *capture sinks* — lists that receive every record finished
while the capture is open (how worker processes collect their spans to
ship home).  Span ids come from a plain counter, not entropy: traces of
the same run are comparable, and the ``det-global-rng`` lint stays clean.

Determinism contract: everything here is observation-only.  A disabled
tracer's :meth:`Tracer.span` returns a shared no-op context manager and
touches nothing, so the traced and untraced executions run the same code
path with the same numbers — asserted bitwise by ``tests/telemetry``.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional

from ..utils import clock

__all__ = ["SpanRecord", "Tracer", "DEFAULT_BUFFER_SPANS"]

#: ring-buffer capacity: old records fall off rather than growing unbounded
DEFAULT_BUFFER_SPANS = 65536


@dataclass
class SpanRecord:
    """One finished span: flat, picklable, JSON-serializable."""

    name: str
    span_id: int
    parent_id: Optional[int]
    start: float
    end: float
    attributes: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SpanRecord":
        return cls(
            name=payload["name"],
            span_id=payload["span_id"],
            parent_id=payload["parent_id"],
            start=payload["start"],
            end=payload["end"],
            attributes=dict(payload.get("attributes") or {}),
        )


class _NoopSpan:
    """Shared do-nothing context manager returned when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attributes) -> "_NoopSpan":
        return self

    record = None


_NOOP = _NoopSpan()


class _ActiveSpan:
    """A live span: records its window on the tracer's stack."""

    __slots__ = ("_tracer", "record")

    def __init__(self, tracer: "Tracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self.record = record

    def set(self, **attributes) -> "_ActiveSpan":
        """Attach attributes while the span is open."""
        self.record.attributes.update(attributes)
        return self

    def __enter__(self) -> "_ActiveSpan":
        self.record.start = clock.monotonic()
        self._tracer._stack.append(self.record)
        return self

    def __exit__(self, *exc) -> bool:
        self.record.end = clock.monotonic()
        self._tracer._stack.pop()
        self._tracer._finish(self.record)
        return False


class Tracer:
    """Span recorder: ring buffer, nesting stack, capture sinks, writer."""

    def __init__(self, max_spans: int = DEFAULT_BUFFER_SPANS) -> None:
        self._ids = itertools.count(1)
        self._stack: List[SpanRecord] = []
        self._buffer: Deque[SpanRecord] = deque(maxlen=max_spans)
        self._captures: List[List[SpanRecord]] = []
        self.enabled = False
        #: optional sink with a ``write(record)`` method (a TraceWriter)
        self.writer = None

    # -- state ---------------------------------------------------------------

    @property
    def active(self) -> bool:
        """True when spans are being recorded (enabled or captured)."""
        return self.enabled or bool(self._captures)

    @property
    def records(self) -> List[SpanRecord]:
        """A snapshot of the finished-span ring buffer (oldest first)."""
        return list(self._buffer)

    def current_span_id(self) -> Optional[int]:
        """Id of the innermost open span, or None outside any span."""
        return self._stack[-1].span_id if self._stack else None

    def reset(self) -> None:
        """Drop all recorded and open spans (captures stay registered)."""
        self._ids = itertools.count(1)
        self._stack.clear()
        self._buffer.clear()

    # -- recording -----------------------------------------------------------

    def span(self, name: str, **attributes):
        """Open a nested span; no-op (and allocation-free) when inactive."""
        if not self.active:
            return _NOOP
        record = SpanRecord(
            name=name,
            span_id=next(self._ids),
            parent_id=self.current_span_id(),
            start=0.0,
            end=0.0,
            attributes=dict(attributes),
        )
        return _ActiveSpan(self, record)

    def event(self, name: str, **attributes) -> None:
        """Record a zero-duration span (a point event: retry, respawn...)."""
        if not self.active:
            return
        now = clock.monotonic()
        self._finish(
            SpanRecord(
                name=name,
                span_id=next(self._ids),
                parent_id=self.current_span_id(),
                start=now,
                end=now,
                attributes=dict(attributes),
            )
        )

    def _finish(self, record: SpanRecord) -> None:
        self._buffer.append(record)
        for sink in self._captures:
            sink.append(record)
        if self.writer is not None:
            self.writer.write(record)

    # -- capture + adoption (the worker -> parent span channel) ---------------

    def capture(self) -> "_Capture":
        """Context manager collecting every span finished while open.

        Workers always run their shard under a capture, whether or not
        tracing was requested — same code path either way, so the
        on/off determinism matrix holds by construction.
        """
        return _Capture(self)

    def adopt(
        self,
        records: Iterable[SpanRecord],
        parent_id: Optional[int] = None,
    ) -> List[SpanRecord]:
        """Re-id foreign records into this tracer, re-parenting roots.

        Worker-side span buffers arrive with the *worker's* id sequence;
        adoption assigns fresh ids from this tracer's counter (keeping
        intra-buffer parent links via an old->new map) and hangs records
        whose parent is outside the buffer under ``parent_id`` (default:
        the currently open span — the dispatching generation).  When the
        tracer is inactive the buffer is dropped: adoption returns [].
        """
        if not self.active:
            return []
        if parent_id is None:
            parent_id = self.current_span_id()
        records = list(records)
        mapping: Dict[int, int] = {}
        for record in records:
            mapping[record.span_id] = next(self._ids)
        adopted: List[SpanRecord] = []
        for record in records:
            new = SpanRecord(
                name=record.name,
                span_id=mapping[record.span_id],
                parent_id=mapping.get(record.parent_id, parent_id),
                start=record.start,
                end=record.end,
                attributes=dict(record.attributes),
            )
            adopted.append(new)
            self._finish(new)
        return adopted


class _Capture:
    __slots__ = ("_tracer", "records")

    def __init__(self, tracer: Tracer) -> None:
        self._tracer = tracer
        self.records: List[SpanRecord] = []

    def __enter__(self) -> List[SpanRecord]:
        self._tracer._captures.append(self.records)
        return self.records

    def __exit__(self, *exc) -> bool:
        self._tracer._captures.remove(self.records)
        return False
