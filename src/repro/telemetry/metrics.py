"""Metrics: labelled counters, gauges and histograms with text export.

A :class:`MetricsRegistry` hands out instruments keyed by
``(name, sorted label items)`` — the Prometheus data model, minus the
scrape server: ``snapshot()`` returns a plain nested dict (what
``examples/service_demo.py`` renders its accounting table from) and
``render_prometheus()`` emits the standard text exposition format for
anything that wants to scrape or diff it.

Instruments are deliberately tiny — one dict lookup plus one float op per
update — so the registry can stay always-on (per-tenant service counters,
per-backend job counters) without measurable cost on the hot path; only
the duration *observations* (phase histograms) are gated on the tracer
being active, because they require clock reads.

Observation-only, like everything in :mod:`repro.telemetry`: no metric
value may flow back into scores, seeds or scheduling (the
``telemetry-flow`` analysis rule errors on such flows outside this
package).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

_Key = Tuple[str, Tuple[Tuple[str, str], ...]]


def _key(name: str, labels: Dict[str, object]) -> _Key:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing float."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount


class Gauge:
    """A settable level."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Summary statistics of observed values (count/sum/min/max)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Instrument factory + snapshot/exposition surface."""

    def __init__(self) -> None:
        self._counters: Dict[_Key, Counter] = {}
        self._gauges: Dict[_Key, Gauge] = {}
        self._histograms: Dict[_Key, Histogram] = {}

    # -- instruments ---------------------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        key = _key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels) -> Gauge:
        key = _key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, name: str, **labels) -> Histogram:
        key = _key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram()
        return instrument

    # -- reading -------------------------------------------------------------

    def value(self, name: str, **labels) -> Optional[float]:
        """The current value of a counter or gauge, or None if unknown."""
        key = _key(name, labels)
        if key in self._counters:
            return self._counters[key].value
        if key in self._gauges:
            return self._gauges[key].value
        return None

    def snapshot(self) -> Dict[str, Dict[str, Dict[str, object]]]:
        """Plain-dict view: ``{kind: {name: {label_string: value}}}``."""

        def label_string(labels: Tuple[Tuple[str, str], ...]) -> str:
            return ",".join(f"{k}={v}" for k, v in labels) or ""

        out: Dict[str, Dict[str, Dict[str, object]]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        for (name, labels), counter in sorted(self._counters.items()):
            out["counters"].setdefault(name, {})[label_string(labels)] = (
                counter.value
            )
        for (name, labels), gauge in sorted(self._gauges.items()):
            out["gauges"].setdefault(name, {})[label_string(labels)] = gauge.value
        for (name, labels), histogram in sorted(self._histograms.items()):
            out["histograms"].setdefault(name, {})[label_string(labels)] = {
                "count": histogram.count,
                "sum": histogram.total,
                "min": histogram.min if histogram.count else None,
                "max": histogram.max if histogram.count else None,
                "mean": histogram.mean,
            }
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (sorted, stable)."""

        def fmt(name: str, labels: Tuple[Tuple[str, str], ...],
                suffix: str = "") -> str:
            body = ",".join(f'{k}="{v}"' for k, v in labels)
            return f"{name}{suffix}{{{body}}}" if body else f"{name}{suffix}"

        lines: List[str] = []
        for (name, labels), counter in sorted(self._counters.items()):
            lines.append(f"{fmt(name, labels)} {counter.value}")
        for (name, labels), gauge in sorted(self._gauges.items()):
            lines.append(f"{fmt(name, labels)} {gauge.value}")
        for (name, labels), histogram in sorted(self._histograms.items()):
            lines.append(f"{fmt(name, labels, '_count')} {histogram.count}")
            lines.append(f"{fmt(name, labels, '_sum')} {histogram.total}")
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
