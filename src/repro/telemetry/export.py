"""Trace export: JSONL span files, safe across fork/spawn workers.

:class:`TraceWriter` appends one ``json.dumps(..., sort_keys=True)`` line
per finished span.  Two guards keep multi-process runs from corrupting the
file:

* the file opens lazily on first write, so a forked worker that inherited
  an un-opened writer never opens it;
* every write checks the recording PID, so a forked worker that inherited
  an *open* writer silently drops the write.

Spawned workers never construct a writer at all — the arming code in
:mod:`repro.telemetry` only attaches one in the main process
(``multiprocessing.parent_process() is None``).  Worker spans still reach
the file: they ride home inside ``_ShardResult`` payloads and the parent
writes them after adoption.
"""

from __future__ import annotations

import json
import os
from typing import List

from .spans import SpanRecord

__all__ = ["TraceWriter", "read_trace"]


class TraceWriter:
    """Append-only JSONL span sink, PID-guarded for forked children."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._pid = os.getpid()
        self._handle = None

    def write(self, record: SpanRecord) -> None:
        if os.getpid() != self._pid:
            return  # a forked child inherited this writer: parent's file
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None and os.getpid() == self._pid:
            self._handle.close()
        self._handle = None


def read_trace(path: str) -> List[SpanRecord]:
    """Parse a JSONL trace file back into :class:`SpanRecord` objects."""
    records: List[SpanRecord] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(SpanRecord.from_dict(json.loads(line)))
    return records
