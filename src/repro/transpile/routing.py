"""SWAP-insertion routing onto a device coupling map."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..quantum.circuit import Instruction, QuantumCircuit
from ..devices.library import Device

__all__ = ["RoutedCircuit", "route_circuit"]


@dataclass
class RoutedCircuit:
    """The result of routing a logical circuit onto physical qubits."""

    circuit: QuantumCircuit          # instructions act on physical qubit indices
    initial_layout: Dict[int, int]   # logical -> physical, before routing
    final_layout: Dict[int, int]     # logical -> physical, after routing
    num_swaps: int
    used_qubits: Tuple[int, ...]     # physical qubits touched by the circuit

    @property
    def depth(self) -> int:
        return self.circuit.depth()


def route_circuit(
    circuit: QuantumCircuit, device: Device, initial_layout: Dict[int, int]
) -> RoutedCircuit:
    """Insert SWAPs so every two-qubit gate acts on coupled physical qubits.

    A greedy shortest-path router: when a two-qubit gate addresses physical
    qubits that are not adjacent, SWAPs are inserted along a shortest path to
    bring the first operand next to the second.
    """
    topology = device.topology
    if circuit.n_qubits > device.n_qubits:
        raise ValueError(
            f"circuit with {circuit.n_qubits} qubits does not fit on "
            f"{device.name} ({device.n_qubits} qubits)"
        )
    logical_to_physical = dict(initial_layout)
    for logical in range(circuit.n_qubits):
        if logical not in logical_to_physical:
            raise ValueError(f"initial layout is missing logical qubit {logical}")
    physical_to_logical = {p: l for l, p in logical_to_physical.items()}

    # The routed circuit is built through the input's class so that IR
    # variants (e.g. the parametric transpiler's symbolic circuits, whose
    # parameters are expressions instead of floats) route through the exact
    # same code path as concrete circuits.
    routed = type(circuit)(device.n_qubits)
    num_swaps = 0
    used: set[int] = set(logical_to_physical.values())

    def apply_swap(phys_a: int, phys_b: int) -> None:
        nonlocal num_swaps
        routed.add("swap", (phys_a, phys_b))
        num_swaps += 1
        logical_a = physical_to_logical.get(phys_a)
        logical_b = physical_to_logical.get(phys_b)
        if logical_a is not None:
            logical_to_physical[logical_a] = phys_b
        if logical_b is not None:
            logical_to_physical[logical_b] = phys_a
        physical_to_logical.pop(phys_a, None)
        physical_to_logical.pop(phys_b, None)
        if logical_a is not None:
            physical_to_logical[phys_b] = logical_a
        if logical_b is not None:
            physical_to_logical[phys_a] = logical_b
        used.update((phys_a, phys_b))

    for instruction in circuit.instructions:
        if len(instruction.qubits) == 1:
            physical = logical_to_physical[instruction.qubits[0]]
            routed.add(instruction.gate, (physical,), instruction.params)
            used.add(physical)
            continue
        logical_a, logical_b = instruction.qubits
        phys_a = logical_to_physical[logical_a]
        phys_b = logical_to_physical[logical_b]
        if not topology.are_adjacent(phys_a, phys_b):
            path = topology.shortest_path(phys_a, phys_b)
            # Move the first operand along the path until adjacent to the target.
            for step in range(len(path) - 2):
                apply_swap(path[step], path[step + 1])
            phys_a = logical_to_physical[logical_a]
            phys_b = logical_to_physical[logical_b]
        routed.add(instruction.gate, (phys_a, phys_b), instruction.params)
        used.update((phys_a, phys_b))

    return RoutedCircuit(
        circuit=routed,
        initial_layout=dict(initial_layout),
        final_layout=dict(logical_to_physical),
        num_swaps=num_swaps,
        used_qubits=tuple(sorted(used)),
    )
