"""Qubit-layout (initial mapping) passes.

Three layout strategies are provided, matching the baselines in the paper:

* :func:`trivial_layout` — logical qubit ``i`` on physical qubit ``i`` (the
  "naive mapping").
* :func:`noise_adaptive_layout` — a greedy noise-aware placement in the spirit
  of Murali et al. (the "Human design + noise-adaptive mapping" baseline).
* :func:`sabre_layout` — a randomized routing-cost-driven layout in the spirit
  of SABRE (Li et al.), the "Sabre mapping" baseline.

QuantumNAS itself searches the layout jointly with the circuit; the searched
mapping is handed to the compiler as the "initial layout" just as in the paper.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..quantum.circuit import QuantumCircuit
from ..utils.rng import ensure_rng
from ..devices.library import Device

__all__ = [
    "Layout",
    "trivial_layout",
    "layout_from_sequence",
    "interaction_weights",
    "layout_fidelity_score",
    "noise_adaptive_layout",
    "sabre_layout",
    "random_layout",
]

#: A layout maps logical qubit index -> physical qubit index.
Layout = Dict[int, int]


def trivial_layout(n_logical: int, device: Device) -> Layout:
    """Identity placement of logical onto physical qubits."""
    if n_logical > device.n_qubits:
        raise ValueError("circuit does not fit on the device")
    return {i: i for i in range(n_logical)}


def layout_from_sequence(physical_qubits: Sequence[int], device: Device) -> Layout:
    """Build a layout from an ordered list of physical qubits.

    This is how the qubit-mapping sub-gene of the evolutionary search is
    interpreted: position ``i`` of the gene holds the physical qubit assigned
    to logical qubit ``i``.
    """
    physical = [int(q) for q in physical_qubits]
    if len(set(physical)) != len(physical):
        raise ValueError("layout assigns the same physical qubit twice")
    for qubit in physical:
        if not 0 <= qubit < device.n_qubits:
            raise ValueError(f"physical qubit {qubit} outside device of size {device.n_qubits}")
    return {logical: phys for logical, phys in enumerate(physical)}


def random_layout(
    n_logical: int, device: Device, rng: Optional[np.random.Generator] = None
) -> Layout:
    """A uniformly random injective placement."""
    rng = ensure_rng(rng)
    physical = rng.permutation(device.n_qubits)[:n_logical]
    return {i: int(p) for i, p in enumerate(physical)}


def interaction_weights(circuit: QuantumCircuit) -> Dict[Tuple[int, int], int]:
    """Count two-qubit interactions between logical qubit pairs."""
    weights: Dict[Tuple[int, int], int] = {}
    for instruction in circuit.instructions:
        if len(instruction.qubits) == 2:
            a, b = sorted(instruction.qubits)
            weights[(a, b)] = weights.get((a, b), 0) + 1
    return weights


def layout_fidelity_score(
    circuit: QuantumCircuit, layout: Layout, device: Device
) -> float:
    """Estimated success probability of running ``circuit`` under ``layout``.

    Two-qubit gates between non-adjacent physical qubits are charged the error
    of the SWAP chain required to bring them together (3 CX per SWAP).
    """
    model = device.noise_model()
    topology = device.topology
    score = 1.0
    for instruction in circuit.instructions:
        if len(instruction.qubits) == 1:
            physical = layout[instruction.qubits[0]]
            score *= 1.0 - model.single_qubit_error(physical)
            continue
        phys_a, phys_b = (layout[q] for q in instruction.qubits)
        path = topology.shortest_path(phys_a, phys_b)
        n_swaps = max(len(path) - 2, 0)
        gate_error = model.two_qubit_error(path[-2], path[-1])
        score *= 1.0 - gate_error
        for i in range(n_swaps):
            edge_error = model.two_qubit_error(path[i], path[i + 1])
            score *= (1.0 - edge_error) ** 3
    for logical in range(circuit.n_qubits):
        physical = layout.get(logical)
        if physical is not None:
            score *= 1.0 - model.readout_error(physical)
    return score


def noise_adaptive_layout(circuit: QuantumCircuit, device: Device) -> Layout:
    """Greedy noise-aware placement.

    The most strongly interacting logical pair is placed on the most reliable
    physical edge; remaining logical qubits are attached one at a time to the
    neighbour that minimizes (CX error + readout error), following the greedy
    strategy of noise-adaptive compilers.
    """
    model = device.noise_model()
    topology = device.topology
    weights = interaction_weights(circuit)
    n_logical = circuit.n_qubits

    # Order logical qubits by total interaction strength.
    strength = {q: 0 for q in range(n_logical)}
    for (a, b), count in weights.items():
        strength[a] += count
        strength[b] += count

    # Pick the best physical edge for the strongest logical pair.
    best_edge = min(
        topology.edges,
        key=lambda e: model.two_qubit_error(*e)
        + 0.5 * (model.readout_error(e[0]) + model.readout_error(e[1])),
    )
    if weights:
        first_pair = max(weights, key=weights.get)
    else:
        ordered = sorted(strength, key=strength.get, reverse=True)
        first_pair = (ordered[0], ordered[1 % n_logical]) if n_logical > 1 else (0, 0)

    layout: Layout = {}
    used: set[int] = set()
    if n_logical == 1:
        best_qubit = min(
            range(device.n_qubits), key=lambda q: model.readout_error(q)
        )
        return {0: best_qubit}

    layout[first_pair[0]] = best_edge[0]
    layout[first_pair[1]] = best_edge[1]
    used.update(best_edge)

    remaining = [q for q in sorted(strength, key=strength.get, reverse=True)
                 if q not in layout]
    for logical in remaining:
        # physical candidates adjacent to already-placed partners, else any free
        partner_physicals = []
        for (a, b), count in weights.items():
            if a == logical and b in layout:
                partner_physicals.append((layout[b], count))
            elif b == logical and a in layout:
                partner_physicals.append((layout[a], count))
        candidates: set[int] = set()
        for physical, _count in partner_physicals:
            candidates.update(
                n for n in topology.neighbors(physical) if n not in used
            )
        if not candidates:
            candidates = {q for q in range(device.n_qubits) if q not in used}
        def cost(candidate: int) -> float:
            total = model.readout_error(candidate)
            for physical, count in partner_physicals:
                if topology.are_adjacent(candidate, physical):
                    total += count * model.two_qubit_error(candidate, physical)
                else:
                    total += count * (
                        3 * topology.distance(candidate, physical) * 0.02
                    )
            return total

        chosen = min(candidates, key=cost)
        layout[logical] = chosen
        used.add(chosen)
    return layout


def sabre_layout(
    circuit: QuantumCircuit,
    device: Device,
    n_trials: int = 8,
    rng: Optional[np.random.Generator] = None,
) -> Layout:
    """Randomized routing-cost layout search (simplified SABRE).

    Several random initial layouts are routed; the layout with the fewest
    inserted SWAPs (ties broken by estimated fidelity) wins.
    """
    from .routing import route_circuit  # local import to avoid a cycle

    rng = ensure_rng(rng)
    best_layout: Optional[Layout] = None
    best_key: Optional[Tuple[int, float]] = None
    candidates = [trivial_layout(circuit.n_qubits, device)]
    candidates.extend(
        random_layout(circuit.n_qubits, device, rng) for _ in range(max(n_trials - 1, 0))
    )
    for layout in candidates:
        routed = route_circuit(circuit, device, layout)
        n_swaps = routed.num_swaps
        fidelity = layout_fidelity_score(circuit, layout, device)
        key = (n_swaps, -fidelity)
        if best_key is None or key < best_key:
            best_key = key
            best_layout = layout
    assert best_layout is not None
    return best_layout
