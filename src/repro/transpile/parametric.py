"""Parametric transpilation: compile a circuit *structure* once, bind angles cheaply.

The concrete transpiler (:func:`repro.transpile.compiler.transpile`) is a pure
function of the bound instruction stream — every validation sample of a
candidate re-runs layout, routing, decomposition and the optimization passes
even though only its rotation angles changed.  This module compiles a
:class:`~repro.quantum.circuit.ParameterizedCircuit` *symbolically*: rotation
angles flow through the pipeline as expressions over the logical parameter
vector (trainable weights followed by encoder features), and the result is a
:class:`ParametricCompiledCircuit` whose :meth:`~ParametricCompiledCircuit.bind`
fills a fixed instruction template in ``O(#parametric angles)`` instead of
re-running the pipeline.

Exactness contract
------------------

``bind(values)`` must reproduce ``transpile(circuit.bind(values), ...)``
*instruction for instruction* (angles may differ by multiples of ``2*pi``,
i.e. a global phase — every downstream consumer, including the success-rate
model which charges RZ gates like any other single-qubit gate, sees identical
numbers).  Three mechanisms make this exact rather than approximate:

* **Affine tracking.**  Routing and the CX-cancellation pass never read
  parameter values; basis decomposition and RZ merging are *affine* in the
  angles (sums, halves, constant shifts), so physical RZ angles are recorded
  as affine combinations of logical parameters.

* **Witness-traced branches.**  Value-dependent decisions (dropping an
  identity rotation, the zero-angle special cases of the U3 decomposition,
  which of two SABRE layouts wins at optimization level 3) are taken for a
  *witness* binding and recorded as guards ``is_zero(expr) == verdict``.

* **Replay nodes.**  Steps that are genuinely non-affine — extracting U3
  angles from a gate matrix, re-synthesizing a run of single-qubit gates into
  one U3 — are recorded as *replay nodes* that re-run the identical concrete
  code (a few 2x2 matrix products) at bind time and verify that the emitted
  gate sequence still matches the compiled template.

If a binding would take any branch differently (a guard fails or a replay
node emits a different structure), :meth:`bind` raises
:class:`ParametricBindMismatch` and the caller falls back to a full concrete
transpile — cheap for the rare binding that lands exactly on a branch point,
and always exact.
"""

from __future__ import annotations

import cmath
import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..devices.library import Device
from ..quantum.circuit import Instruction, ParameterizedCircuit, QuantumCircuit
from ..quantum.gates import canonical_name, gate_matrix
from ..utils.rng import ensure_rng
from .compiler import CompiledCircuit, LayoutSpec, _resolve_layout
from .decompose import (
    BASIS_GATES,
    _decompose_single_qubit,
    _is_zero_angle,
    _normalize_angle,
    decompose_instruction,
    decompose_u3,
    u3_angles_from_matrix,
)
from .layout import sabre_layout
from .passes import _last_touching, cancel_adjacent_inverse_cx_run
from .routing import route_circuit

__all__ = [
    "ParametricBindMismatch",
    "ParametricCompiledCircuit",
    "TemplateBatchBinding",
    "parametric_transpile",
    "parametric_fingerprint",
    "num_feature_params",
]

_PI = math.pi


class ParametricBindMismatch(Exception):
    """A binding would take a different compile-time branch than the witness.

    Raised by :meth:`ParametricCompiledCircuit.bind`; callers fall back to a
    full concrete transpile of the bound circuit, which is always exact.
    """


# ---------------------------------------------------------------------------
# Angle expressions
# ---------------------------------------------------------------------------


class _BindContext:
    """Parameter values plus replay-node outputs for one binding."""

    __slots__ = ("values", "node_outputs", "affine")

    def __init__(self, values: np.ndarray, affine: Optional[np.ndarray] = None) -> None:
        self.values = values
        self.node_outputs: Dict[int, Tuple[float, ...]] = {}
        #: pre-evaluated affine expressions (filled by the vectorized bind)
        self.affine = affine


class _Affine:
    """``const + sum(coeff * param[index])`` over the logical parameter vector."""

    __slots__ = ("const", "terms")

    def __init__(self, const: float, terms: Tuple[Tuple[int, float], ...] = ()) -> None:
        self.const = float(const)
        self.terms = terms

    @classmethod
    def constant(cls, value: float) -> "_Affine":
        return cls(value)

    @classmethod
    def parameter(cls, index: int) -> "_Affine":
        return cls(0.0, ((int(index), 1.0),))

    @property
    def is_const(self) -> bool:
        return not self.terms

    def evaluate(self, ctx: _BindContext) -> float:
        total = self.const
        for index, coeff in self.terms:
            total += coeff * ctx.values[index]
        return total

    def shift(self, offset: float) -> "_Affine":
        return _Affine(self.const + offset, self.terms)

    def scale(self, factor: float) -> "_Affine":
        return _Affine(
            self.const * factor,
            tuple((i, c * factor) for i, c in self.terms),
        )


class _NodeAngle:
    """One emitted angle of a replay node (flat index into its parameters)."""

    __slots__ = ("node", "index")

    def __init__(self, node: "_ReplayNode", index: int) -> None:
        self.node = node
        self.index = index

    is_const = False

    def evaluate(self, ctx: _BindContext) -> float:
        return ctx.node_outputs[id(self.node)][self.index]


class _RowExpr:
    """An affine expression resolved through the template's matvec plan.

    When a binding context carries pre-evaluated affine rows (the vectorized
    bind), evaluation is a single array indexing; otherwise (the compile-time
    witness context) it defers to the original expression.
    """

    __slots__ = ("row", "expr")

    def __init__(self, row: int, expr) -> None:
        self.row = row
        self.expr = expr

    is_const = False

    def evaluate(self, ctx: _BindContext) -> float:
        if ctx.affine is not None:
            return ctx.affine[self.row]
        return self.expr.evaluate(ctx)


class _Sum:
    """A flat sum of expressions (produced by RZ merging across kinds)."""

    __slots__ = ("parts",)

    def __init__(self, parts: Tuple) -> None:
        self.parts = parts

    is_const = False

    def evaluate(self, ctx: _BindContext) -> float:
        return sum(part.evaluate(ctx) for part in self.parts)


def _add_exprs(a, b):
    """Sum of two expressions; stays affine when both operands are affine."""
    if isinstance(a, _Affine) and isinstance(b, _Affine):
        combined: Dict[int, float] = {}
        for index, coeff in a.terms + b.terms:
            combined[index] = combined.get(index, 0.0) + coeff
        terms = tuple(
            (i, c) for i, c in sorted(combined.items()) if c != 0.0
        )
        return _Affine(a.const + b.const, terms)
    parts: List = []
    for expr in (a, b):
        parts.extend(expr.parts if isinstance(expr, _Sum) else (expr,))
    return _Sum(tuple(parts))


# ---------------------------------------------------------------------------
# Fast concrete mirrors (bind-time hot path)
#
# These replicate decompose.py / gates.py at the level of python scalars and
# (gate, qubits, params) tuples, avoiding Instruction/ndarray construction.
# They must stay bit-compatible with the concrete implementations — the
# parametric-vs-concrete equivalence tests in tests/transpile/test_parametric
# pin that.
# ---------------------------------------------------------------------------

_INV_SQRT2 = 1.0 / math.sqrt(2.0)


def _fast_1q_scalars(gate: str, params: Sequence[float]):
    """The 2x2 matrix of a single-qubit gate as four python complex scalars.

    Mirrors the matrix constructors in :mod:`repro.quantum.gates` (identical
    formulas, so identical floats) for the gates that occur on the bind hot
    path; anything else falls back to :func:`gate_matrix`.
    """
    if gate == "rz":
        theta = params[0]
        cos, sin = math.cos(theta / 2), math.sin(theta / 2)
        return (complex(cos, -sin), 0j, 0j, complex(cos, sin))
    if gate == "ry":
        theta = params[0]
        cos, sin = math.cos(theta / 2), math.sin(theta / 2)
        return (complex(cos), complex(-sin), complex(sin), complex(cos))
    if gate == "rx":
        theta = params[0]
        cos, sin = math.cos(theta / 2), math.sin(theta / 2)
        return (complex(cos), complex(0, -sin), complex(0, -sin), complex(cos))
    if gate == "u1":
        return (1 + 0j, 0j, 0j, cmath.exp(1j * params[0]))
    if gate == "u3":
        theta, phi, lam = params
        cos, sin = math.cos(theta / 2), math.sin(theta / 2)
        return (
            complex(cos),
            -cmath.exp(1j * lam) * sin,
            cmath.exp(1j * phi) * sin,
            cmath.exp(1j * (phi + lam)) * cos,
        )
    if gate == "u2":
        phi, lam = params
        return (
            complex(_INV_SQRT2),
            -_INV_SQRT2 * cmath.exp(1j * lam),
            _INV_SQRT2 * cmath.exp(1j * phi),
            _INV_SQRT2 * cmath.exp(1j * (phi + lam)),
        )
    if gate == "sx":
        return (0.5 + 0.5j, 0.5 - 0.5j, 0.5 - 0.5j, 0.5 + 0.5j)
    if gate == "x":
        return (0j, 1 + 0j, 1 + 0j, 0j)
    matrix = gate_matrix(gate, params)
    return (
        complex(matrix[0, 0]),
        complex(matrix[0, 1]),
        complex(matrix[1, 0]),
        complex(matrix[1, 1]),
    )


def _fast_u3_angles(m00, m01, m10, m11) -> Tuple[float, float, float]:
    """Scalar mirror of :func:`u3_angles_from_matrix`."""
    abs00 = abs(m00)
    abs10 = abs(m10)
    theta = 2.0 * math.atan2(abs10, abs00)
    if abs10 < 1e-12:
        alpha = cmath.phase(m00)
        lam = cmath.phase(m11) - alpha
        return (0.0, 0.0, _normalize_angle(lam))
    if abs00 < 1e-12:
        alpha = cmath.phase(-m01)
        phi = cmath.phase(m10) - alpha
        return (math.pi, _normalize_angle(phi), 0.0)
    alpha = cmath.phase(m00)
    phi = cmath.phase(m10) - alpha
    lam = cmath.phase(-m01) - alpha
    return (theta, _normalize_angle(phi), _normalize_angle(lam))


def _fast_decompose_u3(qubit: int, theta: float, phi: float, lam: float) -> List[Tuple]:
    """Tuple-level mirror of :func:`decompose_u3`."""
    if _is_zero_angle(theta):
        merged = _normalize_angle(phi + lam)
        if _is_zero_angle(merged):
            return []
        return [("rz", (qubit,), (merged,))]
    sequence: List[Tuple] = []
    if not _is_zero_angle(lam):
        sequence.append(("rz", (qubit,), (_normalize_angle(lam),)))
    sequence.append(("sx", (qubit,), ()))
    sequence.append(("rz", (qubit,), (_normalize_angle(theta + math.pi),)))
    sequence.append(("sx", (qubit,), ()))
    if not _is_zero_angle(phi + math.pi):
        sequence.append(("rz", (qubit,), (_normalize_angle(phi + math.pi),)))
    return sequence


def _fast_decompose_single_qubit(
    gate: str, qubit: int, params: Tuple[float, ...]
) -> List[Tuple]:
    """Tuple-level mirror of :func:`_decompose_single_qubit`."""
    if gate in ("rz", "x", "sx"):
        if gate == "rz" and _is_zero_angle(params[0]):
            return []
        return [(gate, (qubit,), params)]
    if gate == "i":
        return []
    if gate == "u3":
        theta, phi, lam = params
        return _fast_decompose_u3(qubit, theta, phi, lam)
    theta, phi, lam = _fast_u3_angles(*_fast_1q_scalars(gate, params))
    return _fast_decompose_u3(qubit, theta, phi, lam)


def _fast_instruction(gate: str, qubits: Tuple[int, ...], params: Tuple) -> Instruction:
    """Build an :class:`Instruction` without re-validating.

    Template slots were validated when the structure was compiled; re-running
    ``__post_init__`` (gate registry lookups, arity checks) per binding would
    dominate bind time.
    """
    instruction = object.__new__(Instruction)
    object.__setattr__(instruction, "gate", gate)
    object.__setattr__(instruction, "qubits", qubits)
    object.__setattr__(instruction, "params", params)
    return instruction


# ---------------------------------------------------------------------------
# Symbolic IR
# ---------------------------------------------------------------------------


class _SymbolicInstruction:
    """An instruction whose parameters are angle expressions.

    ``sources`` tracks provenance for the run re-synthesis of optimization
    level 2: the original (pre-decomposition) single-qubit gates whose
    unitaries this instruction carries.  Decomposition emits pieces whose
    source is the piece itself; RZ merging concatenates the sources of both
    operands.  A run's product over its deduplicated sources equals the
    concrete pipeline's product over the decomposed pieces up to a global
    phase, which the U3 extraction is invariant to — and unlike the pieces,
    the sources do not reorder when a rotation angle changes sign.
    """

    __slots__ = ("gate", "qubits", "params", "sources")

    def __init__(
        self,
        gate: str,
        qubits: Sequence[int],
        params: Tuple = (),
        sources: Optional[Tuple] = None,
    ) -> None:
        self.gate = canonical_name(gate)
        self.qubits = tuple(int(q) for q in qubits)
        self.params = tuple(params)
        self.sources = (self,) if sources is None else sources

    @property
    def is_two_qubit(self) -> bool:
        return len(self.qubits) == 2

    def is_const(self) -> bool:
        return all(p.is_const for p in self.params)

    def const_params(self) -> Tuple[float, ...]:
        return tuple(p.const for p in self.params)


class _SymbolicCircuit(QuantumCircuit):
    """A :class:`QuantumCircuit` that stores symbolic instructions.

    Routing builds its output through ``type(circuit)``, so handing this class
    to :func:`route_circuit` (and to the layout passes, which only read gate
    names and qubits) reuses the concrete code paths verbatim.
    """

    def add(self, gate, qubits, params=()):  # type: ignore[override]
        return self.append(_SymbolicInstruction(gate, qubits, params))


def _wrap_concrete(instructions: Sequence[Instruction]) -> List[_SymbolicInstruction]:
    """Re-wrap concrete instructions as symbolic ones with constant angles."""
    return [
        _SymbolicInstruction(
            inst.gate, inst.qubits, tuple(_Affine.constant(p) for p in inst.params)
        )
        for inst in instructions
    ]


def _to_concrete(inst: _SymbolicInstruction) -> Instruction:
    return Instruction(inst.gate, inst.qubits, inst.const_params())


# ---------------------------------------------------------------------------
# Replay nodes and trace state
# ---------------------------------------------------------------------------


class _ReplayNode:
    """A value-dependent compile step re-executed concretely at bind time.

    ``kind == "single"`` replays :func:`_decompose_single_qubit` for one
    parametric gate (RX/RY/U1/U2/... go through matrix-based U3 extraction,
    which is not affine in the angle).  ``kind == "run"`` replays the
    single-qubit-run re-synthesis of optimization level 2: multiply the run's
    2x2 matrices, extract U3 angles, re-emit through ``decompose_u3``.
    """

    __slots__ = ("kind", "qubit", "inputs", "signature", "plan")

    def __init__(
        self,
        kind: str,
        qubit: int,
        inputs: Sequence[Tuple[str, Tuple[int, ...], Tuple]],
    ) -> None:
        self.kind = kind
        self.qubit = qubit
        self.inputs = tuple(inputs)
        self.signature: Tuple = ()
        #: bind-time evaluation plan (built by the template finalizer):
        #: constant inputs become precomputed scalar matrices, parametric
        #: inputs stay as (gate, exprs) pairs
        self.plan: Optional[List] = None

    def prepare(self) -> None:
        if self.kind != "run":
            return
        plan: List = []
        for gate, _qubits, exprs in self.inputs:
            if all(isinstance(e, _Affine) and e.is_const for e in exprs):
                plan.append(_fast_1q_scalars(gate, tuple(e.const for e in exprs)))
            else:
                plan.append((gate, exprs))
        self.plan = plan

    def emit(self, ctx: _BindContext) -> List[Tuple]:
        """Emitted ``(gate, qubits, params)`` tuples for one binding."""
        if self.kind == "single":
            gate, qubits, exprs = self.inputs[0]
            params = tuple(expr.evaluate(ctx) for expr in exprs)
            return _fast_decompose_single_qubit(gate, qubits[0], params)
        # run: multiply the sources' 2x2 matrices (last gate leftmost), then
        # re-emit through the U3 extraction — exactly the concrete
        # resynthesize_single_qubit_runs flush, minus a global phase
        plan = self.plan
        if plan is None:
            plan = [
                (gate, exprs)
                for gate, _qubits, exprs in self.inputs
            ]
        m00, m01, m10, m11 = (1 + 0j, 0j, 0j, 1 + 0j)
        for entry in plan:
            if len(entry) == 4:
                g00, g01, g10, g11 = entry
            else:
                gate, exprs = entry
                params = tuple(expr.evaluate(ctx) for expr in exprs)
                g00, g01, g10, g11 = _fast_1q_scalars(gate, params)
            m00, m01, m10, m11 = (
                g00 * m00 + g01 * m10,
                g00 * m01 + g01 * m11,
                g10 * m00 + g11 * m10,
                g10 * m01 + g11 * m11,
            )
        theta, phi, lam = _fast_u3_angles(m00, m01, m10, m11)
        return _fast_decompose_u3(self.qubit, theta, phi, lam)

    def replay(self, ctx: _BindContext) -> None:
        emitted = self.emit(ctx)
        signature = tuple((gate, qubits) for gate, qubits, _params in emitted)
        if signature != self.signature:
            raise ParametricBindMismatch(
                f"replay node ({self.kind}, qubit {self.qubit}) emitted "
                f"{signature}, template recorded {self.signature}"
            )
        ctx.node_outputs[id(self)] = tuple(
            param for _gate, _qubits, params in emitted for param in params
        )


class _Guard:
    """A recorded branch decision: ``is_zero(expr)`` must equal ``zero``."""

    __slots__ = ("expr", "zero")

    def __init__(self, expr, zero: bool) -> None:
        self.expr = expr
        self.zero = zero

    def check(self, ctx: _BindContext) -> None:
        if _is_zero_angle(self.expr.evaluate(ctx)) != self.zero:
            raise ParametricBindMismatch(
                "angle crossed a zero-branch point recorded at compile time"
            )


class _EmissionGuard:
    """Presence guard for a single-qubit gate deferred at optimization >= 2.

    Deferred gates stay undecomposed until run re-synthesis absorbs them, so
    only the *emptiness* of their concrete decomposition is structurally
    load-bearing (it decides whether the gate blocks a CX cancellation).
    Emptiness — unlike the emitted gate order — does not flip when the angle
    changes sign, which is what keeps templates stable across samples.
    """

    __slots__ = ("gate", "qubits", "params", "empty")

    #: an empty emission of these gates requires the (single) angle to be a
    #: multiple of 2*pi — a distance safely above the decomposition tolerances
    #: proves the emission is non-empty without re-running the decomposition
    _PERIODIC_1P = frozenset(("rx", "ry", "rz", "u1"))

    def __init__(self, gate: str, qubits, params, empty: bool) -> None:
        self.gate = gate
        self.qubits = qubits
        self.params = params
        self.empty = empty

    def check(self, ctx: _BindContext) -> None:
        if not self.empty and self.gate in self._PERIODIC_1P:
            angle = self.params[0].evaluate(ctx)
            wrapped = abs(math.fmod(angle, 2.0 * math.pi))
            if 1e-6 < min(wrapped, 2.0 * math.pi - wrapped):
                return
        emitted = _fast_decompose_single_qubit(
            self.gate,
            self.qubits[0],
            tuple(expr.evaluate(ctx) for expr in self.params),
        )
        if (len(emitted) == 0) != self.empty:
            raise ParametricBindMismatch(
                "deferred gate crossed the identity-emission branch"
            )


class _TraceState:
    """Witness context plus the guards/nodes accumulated for one layout."""

    def __init__(self, witness: np.ndarray, defer_single: bool = False) -> None:
        self.ctx = _BindContext(witness)
        self.guards: List = []
        self.nodes: List[_ReplayNode] = []
        #: at optimization >= 2 non-affine 1q gates are deferred (see
        #: :class:`_EmissionGuard`) instead of replayed piece-for-piece
        self.defer_single = defer_single

    def is_zero(self, expr) -> bool:
        verdict = _is_zero_angle(expr.evaluate(self.ctx))
        if not expr.is_const:
            self.guards.append(_Guard(expr, verdict))
        return verdict

    def defer(self, inst: "_SymbolicInstruction") -> List["_SymbolicInstruction"]:
        emitted = _fast_decompose_single_qubit(
            inst.gate,
            inst.qubits[0],
            tuple(expr.evaluate(self.ctx) for expr in inst.params),
        )
        self.guards.append(
            _EmissionGuard(inst.gate, inst.qubits, inst.params, not emitted)
        )
        return [] if not emitted else [inst]

    def _register(self, node: _ReplayNode) -> List[_SymbolicInstruction]:
        emitted = node.emit(self.ctx)
        node.signature = tuple((gate, qubits) for gate, qubits, _params in emitted)
        self.ctx.node_outputs[id(node)] = tuple(
            param for _gate, _qubits, params in emitted for param in params
        )
        self.nodes.append(node)
        out: List[_SymbolicInstruction] = []
        flat = 0
        for gate, qubits, params in emitted:
            exprs = tuple(
                _NodeAngle(node, flat + position)
                for position in range(len(params))
            )
            flat += len(params)
            out.append(_SymbolicInstruction(gate, qubits, exprs))
        return out

    def replay_single(self, inst: _SymbolicInstruction) -> List[_SymbolicInstruction]:
        node = _ReplayNode(
            "single", inst.qubits[0], [(inst.gate, inst.qubits, inst.params)]
        )
        return self._register(node)

    def replay_run(
        self, qubit: int, run: Sequence[_SymbolicInstruction]
    ) -> List[_SymbolicInstruction]:
        node = _ReplayNode(
            "run", qubit, [(i.gate, i.qubits, i.params) for i in run]
        )
        return self._register(node)


# ---------------------------------------------------------------------------
# Symbolic decomposition (mirrors repro.transpile.decompose)
# ---------------------------------------------------------------------------


def _symbolic_decompose_u3(
    trace: _TraceState, qubit: int, theta, phi, lam
) -> List[_SymbolicInstruction]:
    """Mirror of :func:`decompose_u3` over expressions.

    Angle normalization is skipped — the emitted angles may differ from the
    concrete pipeline's by multiples of ``2*pi`` (a global phase); the
    zero-angle predicates wrap modulo ``2*pi`` themselves, so the *branches*
    agree exactly.
    """
    if trace.is_zero(theta):
        merged = _add_exprs(phi, lam)
        if trace.is_zero(merged):
            return []
        return [_SymbolicInstruction("rz", (qubit,), (merged,))]
    sequence: List[_SymbolicInstruction] = []
    if not trace.is_zero(lam):
        sequence.append(_SymbolicInstruction("rz", (qubit,), (lam,)))
    sequence.append(_SymbolicInstruction("sx", (qubit,)))
    sequence.append(_SymbolicInstruction("rz", (qubit,), (theta.shift(_PI),)))
    sequence.append(_SymbolicInstruction("sx", (qubit,)))
    phi_shifted = phi.shift(_PI)
    if not trace.is_zero(phi_shifted):
        sequence.append(_SymbolicInstruction("rz", (qubit,), (phi_shifted,)))
    return sequence


def _symbolic_decompose_single_qubit(
    trace: _TraceState, inst: _SymbolicInstruction
) -> List[_SymbolicInstruction]:
    """Mirror of :func:`_decompose_single_qubit` over expressions."""
    if inst.is_const():
        return _wrap_concrete(_decompose_single_qubit(_to_concrete(inst)))
    if inst.gate == "rz":
        if trace.is_zero(inst.params[0]):
            return []
        return [inst]
    if inst.gate == "u3":
        theta, phi, lam = inst.params
        return _symbolic_decompose_u3(trace, inst.qubits[0], theta, phi, lam)
    # RX/RY/U1/U2/...: the concrete pipeline extracts U3 angles from the gate
    # matrix, which is not affine in the angle.  At optimization >= 2 the gate
    # is deferred whole (run re-synthesis will absorb it into a product over
    # sources); below that, its decomposition is replayed at bind time.
    if trace.defer_single:
        return trace.defer(inst)
    return trace.replay_single(inst)


def _symbolic_two_qubit_rule(
    inst: _SymbolicInstruction,
) -> Optional[List[_SymbolicInstruction]]:
    """Mirror of :func:`_two_qubit_rules` with affine parameter arithmetic."""
    gate = inst.gate
    a, b = inst.qubits
    params = inst.params

    def sym(name: str, qubits: Tuple[int, ...], exprs: Tuple = ()):
        return _SymbolicInstruction(name, qubits, exprs)

    cx = lambda c, t: sym("cx", (c, t))  # noqa: E731
    h = lambda q: sym("h", (q,))  # noqa: E731

    if gate == "cx":
        return [inst]
    if gate == "cz":
        return [h(b), cx(a, b), h(b)]
    if gate == "cy":
        return [sym("sdg", (b,)), cx(a, b), sym("s", (b,))]
    if gate == "swap":
        return [cx(a, b), cx(b, a), cx(a, b)]
    if gate == "rzz":
        (theta,) = params
        return [cx(a, b), sym("rz", (b,), (theta,)), cx(a, b)]
    if gate == "rzx":
        (theta,) = params
        return [h(b), cx(a, b), sym("rz", (b,), (theta,)), cx(a, b), h(b)]
    if gate == "rxx":
        (theta,) = params
        return [
            h(a), h(b), cx(a, b), sym("rz", (b,), (theta,)), cx(a, b), h(a), h(b),
        ]
    if gate == "ryy":
        (theta,) = params
        half_pi = _Affine.constant(_PI / 2)
        neg_half_pi = _Affine.constant(-_PI / 2)
        return [
            sym("rx", (a,), (half_pi,)),
            sym("rx", (b,), (half_pi,)),
            cx(a, b),
            sym("rz", (b,), (theta,)),
            cx(a, b),
            sym("rx", (a,), (neg_half_pi,)),
            sym("rx", (b,), (neg_half_pi,)),
        ]
    if gate == "crz":
        (lam,) = params
        return [
            sym("rz", (b,), (lam.scale(0.5),)),
            cx(a, b),
            sym("rz", (b,), (lam.scale(-0.5),)),
            cx(a, b),
        ]
    if gate == "cry":
        (theta,) = params
        return [
            sym("ry", (b,), (theta.scale(0.5),)),
            cx(a, b),
            sym("ry", (b,), (theta.scale(-0.5),)),
            cx(a, b),
        ]
    if gate == "crx":
        (theta,) = params
        return [
            h(b),
            sym("rz", (b,), (theta.scale(0.5),)),
            cx(a, b),
            sym("rz", (b,), (theta.scale(-0.5),)),
            cx(a, b),
            h(b),
        ]
    if gate == "cu1":
        (lam,) = params
        return [
            sym("u1", (a,), (lam.scale(0.5),)),
            cx(a, b),
            sym("u1", (b,), (lam.scale(-0.5),)),
            cx(a, b),
            sym("u1", (b,), (lam.scale(0.5),)),
        ]
    if gate == "cu3":
        theta, phi, lam = params
        zero = _Affine.constant(0.0)
        return [
            sym("u1", (a,), (_add_exprs(lam, phi).scale(0.5),)),
            sym("u1", (b,), (_add_exprs(lam, phi.scale(-1.0)).scale(0.5),)),
            cx(a, b),
            sym(
                "u3",
                (b,),
                (theta.scale(-0.5), zero, _add_exprs(phi, lam).scale(-0.5)),
            ),
            cx(a, b),
            sym("u3", (b,), (theta.scale(0.5), phi, zero)),
        ]
    return None


def _symbolic_decompose_instruction(
    trace: _TraceState, inst: _SymbolicInstruction
) -> List[_SymbolicInstruction]:
    """Mirror of :func:`decompose_instruction` over expressions."""
    if inst.is_const():
        return _wrap_concrete(decompose_instruction(_to_concrete(inst)))
    if len(inst.qubits) == 1:
        return _symbolic_decompose_single_qubit(trace, inst)
    rule = _symbolic_two_qubit_rule(inst)
    if rule is None:
        return [inst]
    out: List[_SymbolicInstruction] = []
    for item in rule:
        if len(item.qubits) == 1 and item.gate not in BASIS_GATES:
            out.extend(_symbolic_decompose_single_qubit(trace, item))
        elif (
            len(item.qubits) == 1
            and item.gate == "rz"
            and trace.is_zero(item.params[0])
        ):
            continue
        else:
            out.append(item)
    return out


# ---------------------------------------------------------------------------
# Symbolic optimization passes (mirror repro.transpile.passes)
# ---------------------------------------------------------------------------


def _symbolic_merge_adjacent_rz(
    trace: _TraceState, instructions: List[_SymbolicInstruction]
) -> List[_SymbolicInstruction]:
    out: List[_SymbolicInstruction] = []
    for inst in instructions:
        if inst.gate == "rz":
            previous = _last_touching(out, inst.qubits)
            if (
                previous is not None
                and out[previous].gate == "rz"
                and out[previous].qubits == inst.qubits
            ):
                merged = _add_exprs(out[previous].params[0], inst.params[0])
                merged_sources = out[previous].sources + inst.sources
                out.pop(previous)
                if not trace.is_zero(merged):
                    out.append(
                        _SymbolicInstruction(
                            "rz", inst.qubits, (merged,), sources=merged_sources
                        )
                    )
                continue
            if trace.is_zero(inst.params[0]):
                continue
        out.append(inst)
    return out


_ROTATION_GATES = {
    "rx", "ry", "rz", "u1", "rzz", "rxx", "ryy", "rzx",
    "crx", "cry", "crz", "cu1",
}


def _symbolic_drop_identity_rotations(
    trace: _TraceState, instructions: List[_SymbolicInstruction]
) -> List[_SymbolicInstruction]:
    out: List[_SymbolicInstruction] = []
    for inst in instructions:
        if inst.gate in _ROTATION_GATES and all(
            trace.is_zero(p) for p in inst.params
        ):
            continue
        if inst.gate in ("u3", "cu3") and all(
            trace.is_zero(p) for p in inst.params
        ):
            continue
        out.append(inst)
    return out


def _symbolic_resynthesize_single_qubit_runs(
    trace: _TraceState, instructions: List[_SymbolicInstruction]
) -> List[_SymbolicInstruction]:
    pending: Dict[int, List[_SymbolicInstruction]] = {}
    out: List[_SymbolicInstruction] = []

    def flush(qubit: int) -> None:
        run = pending.pop(qubit, None)
        if run is None:
            return
        if all(inst.is_const() for inst in run):
            # constant run: multiply the decomposed pieces exactly like the
            # concrete pass does
            matrix = np.eye(2, dtype=complex)
            for inst in run:
                matrix = gate_matrix(inst.gate, inst.const_params()) @ matrix
            theta, phi, lam = u3_angles_from_matrix(matrix)
            out.extend(_wrap_concrete(decompose_u3(qubit, theta, phi, lam)))
        else:
            # parametric run: replay the product over the run's *sources* (the
            # original pre-decomposition gates, deduplicated in stream order).
            # The product equals the concrete piece product up to a global
            # phase, and its branch structure is stable under sign flips of
            # individual rotation angles — unlike the pieces themselves.
            sources: List[_SymbolicInstruction] = []
            seen: set = set()
            for inst in run:
                for source in inst.sources:
                    if id(source) not in seen:
                        seen.add(id(source))
                        sources.append(source)
            out.extend(trace.replay_run(qubit, sources))

    for inst in instructions:
        if len(inst.qubits) == 1:
            pending.setdefault(inst.qubits[0], []).append(inst)
        else:
            for qubit in inst.qubits:
                flush(qubit)
            out.append(inst)
    for qubit in sorted(pending):
        flush(qubit)
    return out


# ---------------------------------------------------------------------------
# The compiled template
# ---------------------------------------------------------------------------


def _stream_depth(instructions: Sequence, n_qubits: int) -> int:
    frontier = [0] * n_qubits
    for inst in instructions:
        level = max(frontier[q] for q in inst.qubits) + 1
        for qubit in inst.qubits:
            frontier[qubit] = level
    return max(frontier) if frontier else 0


class _LayoutCandidate:
    """One fully traced compilation for one initial layout."""

    __slots__ = ("stream", "trace", "routed")

    def __init__(self, stream, trace, routed) -> None:
        self.stream = stream
        self.trace = trace
        self.routed = routed

    def sort_key(self, n_qubits: int) -> Tuple[int, int]:
        n_two_qubit = sum(1 for inst in self.stream if len(inst.qubits) == 2)
        return (n_two_qubit, _stream_depth(self.stream, n_qubits))


class ParametricCompiledCircuit:
    """A compiled circuit structure awaiting parameter values.

    Produced by :func:`parametric_transpile`; :meth:`bind` yields a
    :class:`CompiledCircuit` identical (up to ``2*pi`` angle wraps) to a fresh
    concrete transpile of the bound circuit, or raises
    :class:`ParametricBindMismatch` when the binding crosses a branch point
    recorded at compile time.
    """

    def __init__(
        self,
        device: Device,
        initial_layout: Dict[int, int],
        final_layout: Dict[int, int],
        used_qubits: Tuple[int, ...],
        num_swaps: int,
        optimization_level: int,
        n_weights: int,
        n_features: int,
        chosen: _LayoutCandidate,
        auxiliary: Optional[_LayoutCandidate] = None,
    ) -> None:
        self.device = device
        self.initial_layout = dict(initial_layout)
        self.final_layout = dict(final_layout)
        self.used_qubits = tuple(used_qubits)
        self.num_swaps = int(num_swaps)
        self.optimization_level = int(optimization_level)
        self.n_weights = int(n_weights)
        self.n_features = int(n_features)
        self._nodes = tuple(chosen.trace.nodes)
        # at optimization level 3 the losing layout's branches must stay
        # stable too, or a different binding could flip the layout choice
        self._aux_nodes = tuple(auxiliary.trace.nodes) if auxiliary else ()

        # -- vectorized affine evaluation plan -------------------------------
        # Every affine expression referenced by a slot, guard or replay-node
        # input becomes one row of a dense (rows x params) matrix; a bind is
        # then one matvec plus scalar work for the few non-affine expressions.
        affine_exprs: List[_Affine] = []
        affine_index: Dict[int, int] = {}

        def row_of(expr: _Affine) -> int:
            position = affine_index.get(id(expr))
            if position is None:
                position = len(affine_exprs)
                affine_index[id(expr)] = position
                affine_exprs.append(expr)
            return position

        def plan_param(expr):
            if isinstance(expr, _Affine):
                return row_of(expr)
            return expr  # _NodeAngle / _Sum, evaluated per binding

        guard_rows: List[int] = []
        guard_expected: List[bool] = []
        self._other_guards: List = []
        for guard in tuple(chosen.trace.guards) + (
            tuple(auxiliary.trace.guards) if auxiliary else ()
        ):
            if isinstance(guard, _Guard) and isinstance(guard.expr, _Affine):
                guard_rows.append(row_of(guard.expr))
                guard_expected.append(guard.zero)
            else:
                self._other_guards.append(guard)

        def wrap_node_expr(expr):
            if isinstance(expr, _Affine) and not expr.is_const:
                return _RowExpr(row_of(expr), expr)
            return expr

        for node in self._nodes + self._aux_nodes:
            node.inputs = tuple(
                (gate, qubits, tuple(wrap_node_expr(expr) for expr in exprs))
                for gate, qubits, exprs in node.inputs
            )
            node.prepare()

        self._slots: List = []
        self._reduced_slots: List = []
        index = {phys: i for i, phys in enumerate(self.used_qubits)}
        for inst in chosen.stream:
            reduced_qubits = tuple(index[q] for q in inst.qubits)
            if inst.is_const():
                params = inst.const_params()
                self._slots.append(Instruction(inst.gate, inst.qubits, params))
                self._reduced_slots.append(
                    Instruction(inst.gate, reduced_qubits, params)
                )
            else:
                plan = tuple(plan_param(expr) for expr in inst.params)
                self._slots.append((inst.gate, inst.qubits, plan))
                self._reduced_slots.append((inst.gate, reduced_qubits, plan))

        width = self.n_weights + self.n_features
        self._width = width
        if affine_exprs:
            matrix = np.zeros((len(affine_exprs), width))
            const = np.empty(len(affine_exprs))
            for position, expr in enumerate(affine_exprs):
                const[position] = expr.const
                for param_index, coeff in expr.terms:
                    matrix[position, param_index] += coeff
            self._affine_matrix: Optional[np.ndarray] = matrix
            self._affine_const: Optional[np.ndarray] = const
        else:
            self._affine_matrix = None
            self._affine_const = None
        self._guard_rows = np.asarray(guard_rows, dtype=np.intp)
        self._guard_expected = np.asarray(guard_expected, dtype=bool)

    # -- inspection ----------------------------------------------------------

    @property
    def num_instructions(self) -> int:
        return len(self._slots)

    @property
    def num_parametric_slots(self) -> int:
        return sum(1 for slot in self._slots if not isinstance(slot, Instruction))

    @property
    def num_guards(self) -> int:
        return int(self._guard_rows.size) + len(self._other_guards)

    @property
    def num_replay_nodes(self) -> int:
        return len(self._nodes) + len(self._aux_nodes)

    def expected_params(self) -> int:
        """Minimum length of the ``values`` vector accepted by :meth:`bind`."""
        return self.n_weights + self.n_features

    # -- binding -------------------------------------------------------------

    def bind(self, values: np.ndarray) -> CompiledCircuit:
        """Fill the template with parameter values (weights then features)."""
        values = np.asarray(values, dtype=float).ravel()
        if values.shape[0] < self._width:
            raise ValueError(
                f"expected at least {self._width} parameter values "
                f"(got {values.shape[0]})"
            )
        if self._affine_matrix is not None:
            affine = self._affine_matrix @ values[: self._width]
            affine += self._affine_const
        else:
            affine = None
        ctx = _BindContext(values, affine)
        for node in self._nodes:
            node.replay(ctx)
        for node in self._aux_nodes:
            node.replay(ctx)
        if self._guard_rows.size:
            # vectorized mirror of _is_zero_angle: distance to the nearest
            # multiple of 2*pi below the shared 1e-9 tolerance
            wrapped = np.abs(
                np.mod(affine[self._guard_rows] + math.pi, 2.0 * math.pi)
                - math.pi
            )
            if not np.array_equal(wrapped < 1e-9, self._guard_expected):
                raise ParametricBindMismatch(
                    "angle crossed a zero-branch point recorded at compile time"
                )
        for guard in self._other_guards:
            guard.check(ctx)

        instructions: List[Instruction] = []
        reduced_instructions: List[Instruction] = []
        append = instructions.append
        reduced_append = reduced_instructions.append
        for slot, reduced_slot in zip(self._slots, self._reduced_slots):
            if type(slot) is Instruction:
                append(slot)
                reduced_append(reduced_slot)
            else:
                gate, qubits, plan = slot
                params = tuple(
                    affine[item] if type(item) is int else item.evaluate(ctx)
                    for item in plan
                )
                append(_fast_instruction(gate, qubits, params))
                reduced_append(_fast_instruction(gate, reduced_slot[1], params))

        physical = QuantumCircuit(self.device.n_qubits)
        physical.instructions = instructions
        reduced = QuantumCircuit(max(len(self.used_qubits), 1))
        reduced.instructions = reduced_instructions
        compiled = CompiledCircuit(
            circuit=physical,
            device=self.device,
            initial_layout=dict(self.initial_layout),
            final_layout=dict(self.final_layout),
            used_qubits=self.used_qubits,
            num_swaps=self.num_swaps,
        )
        compiled._reduced = (reduced, self.used_qubits)
        return compiled

    def try_bind(self, values: np.ndarray) -> Optional[CompiledCircuit]:
        """Like :meth:`bind`, but returns ``None`` on a branch mismatch."""
        try:
            return self.bind(values)
        except ParametricBindMismatch:
            return None

    # -- vectorized binding ---------------------------------------------------

    def bind_batch(
        self, values: np.ndarray
    ) -> Tuple[np.ndarray, Optional["TemplateBatchBinding"]]:
        """Bind many parameter rows at once, without per-row circuit objects.

        ``values`` is a ``(n_rows, >= expected_params())`` matrix; every
        affine angle of every row comes from *one* matmul against the
        template's affine plan (where :meth:`bind` runs one matvec per row),
        the zero-branch guards are checked vectorized across rows, and only
        replay nodes / non-affine guards fall back to per-row scalar work.

        Returns ``(ok, binding)``: ``ok[i]`` is whether row ``i`` takes the
        template's compile-time branches, and ``binding`` covers exactly the
        ``ok`` rows (``None`` when no row binds).  Rows with ``ok[i] False``
        must be served by a scalar :meth:`bind` of another variant or a full
        concrete transpile — the same fallback contract as :meth:`bind`.

        The angles a row receives are numerically the one-matvec evaluation
        of the same affine expressions :meth:`bind` evaluates row-wise; any
        difference is below the 1e-9 equivalence tolerance the execution
        engine is pinned to (BLAS may round a matmul and a matvec
        differently in the last ulp).
        """
        values = np.asarray(values, dtype=float)
        if values.ndim != 2:
            raise ValueError("bind_batch expects a 2-D (rows, params) matrix")
        if values.shape[1] < self._width:
            raise ValueError(
                f"expected at least {self._width} parameter values per row "
                f"(got {values.shape[1]})"
            )
        n_rows = values.shape[0]
        if self._affine_matrix is not None:
            affine_all = values[:, : self._width] @ self._affine_matrix.T
            affine_all += self._affine_const
        else:
            affine_all = None
        ok = np.ones(n_rows, dtype=bool)
        if self._guard_rows.size:
            wrapped = np.abs(
                np.mod(affine_all[:, self._guard_rows] + math.pi, 2.0 * math.pi)
                - math.pi
            )
            ok &= ((wrapped < 1e-9) == self._guard_expected).all(axis=1)

        # Replay nodes and non-affine guards are inherently scalar; they are
        # rare (a few 1q-run re-syntheses per circuit) and the expensive
        # parts — the matvec and the instruction materialization — stay
        # vectorized regardless.
        contexts: Dict[int, _BindContext] = {}

        def context_for(row: int) -> _BindContext:
            ctx = contexts.get(row)
            if ctx is None:
                ctx = _BindContext(
                    values[row],
                    affine_all[row] if affine_all is not None else None,
                )
                contexts[row] = ctx
            return ctx

        if self._nodes or self._aux_nodes or self._other_guards:
            for row in np.flatnonzero(ok):
                ctx = context_for(int(row))
                try:
                    for node in self._nodes:
                        node.replay(ctx)
                    for node in self._aux_nodes:
                        node.replay(ctx)
                    for guard in self._other_guards:
                        guard.check(ctx)
                except ParametricBindMismatch:
                    ok[row] = False

        kept = np.flatnonzero(ok)
        if kept.size == 0:
            return ok, None

        slots: List = []
        for reduced_slot in self._reduced_slots:
            if type(reduced_slot) is Instruction:
                slots.append(reduced_slot)
                continue
            gate, qubits, plan = reduced_slot
            params = np.empty((kept.size, len(plan)))
            for column, item in enumerate(plan):
                if type(item) is int:
                    params[:, column] = affine_all[kept, item]
                else:
                    for position, row in enumerate(kept):
                        params[position, column] = item.evaluate(
                            context_for(int(row))
                        )
            slots.append((gate, qubits, params))
        return ok, TemplateBatchBinding(self, kept, slots)


class TemplateBatchBinding:
    """One template vectorized over many parameter rows.

    Produced by :meth:`ParametricCompiledCircuit.bind_batch`.  Instead of one
    :class:`CompiledCircuit` (and its per-sample ``Instruction`` stream) per
    row, the binding holds the shared reduced-register instruction skeleton
    once, with each parametric slot's angles as a dense ``(n_rows, k)`` array
    — the form the batched density-matrix backend consumes directly, so the
    ``noise_sim`` hot loop never constructs per-sample instructions at all.

    ``slots`` aligns with the template's reduced instruction stream: a slot is
    either a shared :class:`Instruction` (constant across rows) or a
    ``(gate, reduced_qubits, angles)`` triple.  ``rows`` maps batch positions
    back to row indices of the matrix handed to ``bind_batch``.
    """

    __slots__ = ("template", "rows", "slots")

    def __init__(
        self,
        template: ParametricCompiledCircuit,
        rows: np.ndarray,
        slots: List,
    ) -> None:
        self.template = template
        self.rows = rows
        self.slots = slots

    @property
    def n_rows(self) -> int:
        return int(len(self.rows))

    @property
    def n_reduced(self) -> int:
        return max(len(self.template.used_qubits), 1)

    @property
    def used_qubits(self) -> Tuple[int, ...]:
        return self.template.used_qubits

    @property
    def final_layout(self) -> Dict[int, int]:
        return self.template.final_layout


# ---------------------------------------------------------------------------
# Fingerprints and entry points
# ---------------------------------------------------------------------------


def parametric_fingerprint(circuit: ParameterizedCircuit) -> Tuple:
    """Hashable fingerprint of a circuit *structure* (values left unbound)."""
    return (
        circuit.n_qubits,
        circuit.num_weights,
        tuple(
            (
                op.gate,
                op.qubits,
                tuple((slot.kind, slot.value) for slot in op.slots),
            )
            for op in circuit.ops
        ),
    )


def num_feature_params(circuit: ParameterizedCircuit) -> int:
    """Size of the feature block of the parameter vector (0 if no encoder)."""
    highest = -1
    for op in circuit.ops:
        for slot in op.slots:
            if slot.kind == "input":
                highest = max(highest, int(slot.value))
    return highest + 1


def _symbolic_logical_circuit(circuit: ParameterizedCircuit) -> _SymbolicCircuit:
    """The logical circuit with parameter slots lifted to affine expressions.

    The parameter vector is the concatenation of the trainable weight vector
    and the per-sample feature vector, in that order.
    """
    n_weights = circuit.num_weights
    symbolic = _SymbolicCircuit(circuit.n_qubits)
    for op in circuit.ops:
        exprs: List[_Affine] = []
        for slot in op.slots:
            if slot.kind == "const":
                exprs.append(_Affine.constant(slot.value))
            elif slot.kind == "weight":
                exprs.append(_Affine.parameter(int(slot.value)))
            else:  # input feature
                exprs.append(_Affine.parameter(n_weights + int(slot.value)))
        symbolic.append(_SymbolicInstruction(op.gate, op.qubits, tuple(exprs)))
    return symbolic


def _default_witness(n_params: int, seed: Optional[int]) -> np.ndarray:
    """Generic (nowhere-zero, irrational-looking) witness angles."""
    rng = np.random.default_rng(0x5EED if seed is None else seed)
    return rng.uniform(0.3, 2.8, size=max(n_params, 1))


def parametric_transpile(
    circuit: ParameterizedCircuit,
    device: Device,
    initial_layout: LayoutSpec = None,
    optimization_level: int = 2,
    seed: Optional[int] = None,
    witness_values: Optional[np.ndarray] = None,
) -> ParametricCompiledCircuit:
    """Compile a circuit structure once; re-bind angles in O(params).

    Mirrors :func:`repro.transpile.compiler.transpile` stage for stage (same
    layout resolution, routing, decomposition and optimization passes, and —
    given the same ``seed`` — the same SABRE draws at level 3), but runs them
    over symbolic angles.  ``witness_values`` selects the compile-time
    branches; bindings that take the same branches (the overwhelmingly common
    case for generic angles) bind exactly, the rest raise
    :class:`ParametricBindMismatch` from :meth:`ParametricCompiledCircuit.bind`.
    """
    if not 0 <= optimization_level <= 3:
        raise ValueError("optimization_level must be between 0 and 3")
    rng = ensure_rng(seed)
    n_weights = circuit.num_weights
    n_features = num_feature_params(circuit)
    if witness_values is None:
        witness = _default_witness(n_weights + n_features, seed)
    else:
        witness = np.asarray(witness_values, dtype=float).ravel()
        if witness.shape[0] < n_weights + n_features:
            raise ValueError(
                f"witness needs at least {n_weights + n_features} values"
            )
    symbolic = _symbolic_logical_circuit(circuit)

    def compile_with_layout(layout) -> _LayoutCandidate:
        trace = _TraceState(witness, defer_single=optimization_level >= 2)
        routed = route_circuit(symbolic, device, layout)
        stream: List[_SymbolicInstruction] = []
        for inst in routed.circuit.instructions:
            stream.extend(_symbolic_decompose_instruction(trace, inst))
        if optimization_level >= 1:
            stream = cancel_adjacent_inverse_cx_run(stream)
            stream = _symbolic_merge_adjacent_rz(trace, stream)
            stream = _symbolic_drop_identity_rotations(trace, stream)
        if optimization_level >= 2:
            stream = _symbolic_resynthesize_single_qubit_runs(trace, stream)
            stream = cancel_adjacent_inverse_cx_run(stream)
            stream = _symbolic_merge_adjacent_rz(trace, stream)
        return _LayoutCandidate(stream, trace, routed)

    base_layout = _resolve_layout(symbolic, device, initial_layout, rng)
    chosen = compile_with_layout(base_layout)
    auxiliary: Optional[_LayoutCandidate] = None

    if optimization_level >= 3:
        alternative_layout = sabre_layout(symbolic, device, n_trials=4, rng=rng)
        alternative = compile_with_layout(alternative_layout)
        # ``min`` keeps the first candidate on ties, exactly like transpile()
        if alternative.sort_key(device.n_qubits) < chosen.sort_key(device.n_qubits):
            chosen, auxiliary = alternative, chosen
        else:
            auxiliary = alternative

    return ParametricCompiledCircuit(
        device=device,
        initial_layout=dict(chosen.routed.initial_layout),
        final_layout=dict(chosen.routed.final_layout),
        used_qubits=chosen.routed.used_qubits,
        num_swaps=chosen.routed.num_swaps,
        optimization_level=optimization_level,
        n_weights=n_weights,
        n_features=n_features,
        chosen=chosen,
        auxiliary=auxiliary,
    )
