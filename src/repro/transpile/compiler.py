"""The transpiler front-end: layout + routing + decomposition + optimization.

``transpile`` mirrors the Qiskit flow the paper configures (optimization level
2 by default, level 3 for the Sabre / noise-adaptive baselines): the searched
qubit mapping is passed as the *initial layout*, SWAPs are inserted for the
device's coupling map, everything is lowered to the CX/SX/RZ/X basis and then
cleaned up by the optimization passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from ..devices.library import Device
from ..quantum.circuit import QuantumCircuit
from ..utils.rng import ensure_rng
from .decompose import decompose_circuit
from .layout import (
    Layout,
    layout_from_sequence,
    noise_adaptive_layout,
    sabre_layout,
    trivial_layout,
)
from .passes import (
    cancel_adjacent_inverse_cx,
    drop_identity_rotations,
    merge_adjacent_rz,
    resynthesize_single_qubit_runs,
)
from .routing import RoutedCircuit, route_circuit

__all__ = ["CompiledCircuit", "transpile"]

LayoutSpec = Union[str, Layout, Sequence[int], None]


@dataclass
class CompiledCircuit:
    """A compiled circuit plus the statistics the paper reports (Table II)."""

    circuit: QuantumCircuit            # physical circuit over device.n_qubits wires
    device: Device
    initial_layout: Layout
    final_layout: Layout
    used_qubits: Tuple[int, ...]
    num_swaps: int
    # memoized derived artifacts — compiled circuits are immutable shared
    # state (the execution engine's caches hand one instance to many
    # callers), so both are computed at most once per compilation
    _success_rate: Optional[float] = field(
        default=None, init=False, repr=False, compare=False
    )
    _reduced: Optional[Tuple[QuantumCircuit, Tuple[int, ...]]] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def depth(self) -> int:
        return self.circuit.depth()

    @property
    def num_gates(self) -> int:
        return len(self.circuit)

    @property
    def num_single_qubit_gates(self) -> int:
        return self.circuit.num_single_qubit_gates()

    @property
    def num_two_qubit_gates(self) -> int:
        return self.circuit.num_two_qubit_gates()

    def gate_counts(self) -> Dict[str, int]:
        return self.circuit.count_ops()

    def success_rate(self) -> float:
        """Estimated success probability under the device's noise model."""
        if self._success_rate is None:
            model = self.device.noise_model()
            rate = 1.0
            for instruction in self.circuit.instructions:
                rate *= 1.0 - model.instruction_error(instruction)
            for qubit in self.used_qubits:
                rate *= 1.0 - model.readout_error(qubit)
            self._success_rate = max(rate, 1e-12)
        return self._success_rate

    def reduced_circuit(self) -> Tuple[QuantumCircuit, Tuple[int, ...]]:
        """Re-index the physical circuit onto only the qubits it uses.

        Returns the reduced circuit and the physical qubits (in order) that
        its wires correspond to — this keeps noisy simulation of circuits on
        large devices tractable.  The result is memoized (and must therefore
        be treated as read-only, like the compilation itself).
        """
        if self._reduced is None:
            used = self.used_qubits
            index = {phys: i for i, phys in enumerate(used)}
            reduced = QuantumCircuit(max(len(used), 1))
            for instruction in self.circuit.instructions:
                reduced.add(
                    instruction.gate,
                    tuple(index[q] for q in instruction.qubits),
                    instruction.params,
                )
            self._reduced = (reduced, used)
        return self._reduced

    def __getstate__(self) -> dict:
        # Both memos are derived deterministically from the compilation, so
        # cache entries shipped between sharded-scheduler processes drop them
        # — the pickle stays lean and the receiver re-derives on first use.
        state = self.__dict__.copy()
        state["_success_rate"] = None
        state["_reduced"] = None
        return state

    def summary(self) -> Dict[str, float]:
        return {
            "depth": self.depth,
            "n_gates": self.num_gates,
            "n_1q": self.num_single_qubit_gates,
            "n_2q": self.num_two_qubit_gates,
            "n_swaps_inserted": self.num_swaps,
            "success_rate": self.success_rate(),
        }


def _resolve_layout(
    circuit: QuantumCircuit,
    device: Device,
    initial_layout: LayoutSpec,
    rng: np.random.Generator,
) -> Layout:
    if initial_layout is None or initial_layout == "trivial":
        return trivial_layout(circuit.n_qubits, device)
    if isinstance(initial_layout, str):
        if initial_layout == "noise_adaptive":
            return noise_adaptive_layout(circuit, device)
        if initial_layout == "sabre":
            return sabre_layout(circuit, device, rng=rng)
        raise ValueError(f"unknown layout strategy '{initial_layout}'")
    if isinstance(initial_layout, dict):
        return dict(initial_layout)
    return layout_from_sequence(list(initial_layout), device)


def transpile(
    circuit: QuantumCircuit,
    device: Device,
    initial_layout: LayoutSpec = None,
    optimization_level: int = 2,
    seed: Optional[int] = None,
) -> CompiledCircuit:
    """Compile a logical circuit for a device.

    Parameters
    ----------
    initial_layout:
        ``None``/``"trivial"``, ``"noise_adaptive"``, ``"sabre"``, an explicit
        ``{logical: physical}`` dict, or a sequence of physical qubits (the
        encoding used by the QuantumNAS qubit-mapping gene).
    optimization_level:
        0 — decompose only; 1 — cancel adjacent CX and merge RZ; 2 — also
        re-synthesize single-qubit runs; 3 — additionally try SABRE layouts
        and keep the compilation with the fewest two-qubit gates.
    """
    if not 0 <= optimization_level <= 3:
        raise ValueError("optimization_level must be between 0 and 3")
    rng = ensure_rng(seed)

    def compile_with_layout(layout: Layout) -> CompiledCircuit:
        routed: RoutedCircuit = route_circuit(circuit, device, layout)
        lowered = decompose_circuit(routed.circuit)
        if optimization_level >= 1:
            lowered = cancel_adjacent_inverse_cx(lowered)
            lowered = merge_adjacent_rz(lowered)
            lowered = drop_identity_rotations(lowered)
        if optimization_level >= 2:
            lowered = resynthesize_single_qubit_runs(lowered)
            lowered = cancel_adjacent_inverse_cx(lowered)
            lowered = merge_adjacent_rz(lowered)
        return CompiledCircuit(
            circuit=lowered,
            device=device,
            initial_layout=dict(layout),
            final_layout=routed.final_layout,
            used_qubits=routed.used_qubits,
            num_swaps=routed.num_swaps,
        )

    base_layout = _resolve_layout(circuit, device, initial_layout, rng)
    compiled = compile_with_layout(base_layout)

    if optimization_level >= 3:
        candidates = [compiled]
        alternative = sabre_layout(circuit, device, n_trials=4, rng=rng)
        candidates.append(compile_with_layout(alternative))
        compiled = min(
            candidates, key=lambda c: (c.num_two_qubit_gates, c.depth)
        )
    return compiled
