"""Transpiler: layout, routing, basis decomposition and optimization passes.

Two compilation pipelines share one set of passes:

**Concrete pipeline** (:func:`transpile`).  A bound :class:`~repro.quantum.
circuit.QuantumCircuit` (float angles) flows through layout resolution
(:mod:`.layout`: trivial / noise-adaptive / SABRE / explicit mappings), SWAP
routing onto the device coupling map (:mod:`.routing`), lowering to the
CX/SX/RZ/X basis (:mod:`.decompose`) and the optimization passes
(:mod:`.passes`: CX-pair cancellation, RZ merging, identity-rotation dropping,
single-qubit-run re-synthesis), producing a :class:`CompiledCircuit`.  The
result is a pure function of (circuit, device, layout, level, seed); the
execution layer memoizes it by bound-circuit fingerprint.

**Parametric pipeline** (:func:`parametric_transpile`, :mod:`.parametric`).
The same stages run once over a :class:`~repro.quantum.circuit.
ParameterizedCircuit` whose rotation angles are symbolic expressions: routing
and CX cancellation never read values, decomposition and RZ merging are
affine in the angles, and the value-dependent steps are traced against a
witness binding — branch decisions become guards, non-affine steps (matrix
U3 extraction, run re-synthesis) become replay nodes re-executed per binding.
The compiled :class:`ParametricCompiledCircuit` then turns every parameter
binding into an O(params) template fill that reproduces the concrete
pipeline's output exactly (angles up to global-phase ``2*pi`` wraps), or
refuses with :class:`ParametricBindMismatch` when a binding crosses a traced
branch so callers can fall back to a concrete compile.  This is what lets the
population execution engine transpile once per (genome, mapping) structure
and re-bind per validation sample.
"""

from .compiler import CompiledCircuit, transpile
from .decompose import (
    BASIS_GATES,
    compiled_gate_count_u3,
    decompose_circuit,
    decompose_instruction,
    decompose_u3,
    u3_angles_from_matrix,
)
from .layout import (
    Layout,
    layout_fidelity_score,
    layout_from_sequence,
    noise_adaptive_layout,
    random_layout,
    sabre_layout,
    trivial_layout,
)
from .parametric import (
    ParametricBindMismatch,
    ParametricCompiledCircuit,
    num_feature_params,
    parametric_fingerprint,
    parametric_transpile,
)
from .passes import (
    cancel_adjacent_inverse_cx,
    cancel_adjacent_inverse_cx_run,
    drop_identity_rotations,
    merge_adjacent_rz,
    resynthesize_single_qubit_runs,
)
from .routing import RoutedCircuit, route_circuit

__all__ = [
    "CompiledCircuit",
    "transpile",
    "BASIS_GATES",
    "compiled_gate_count_u3",
    "decompose_circuit",
    "decompose_instruction",
    "decompose_u3",
    "u3_angles_from_matrix",
    "Layout",
    "layout_fidelity_score",
    "layout_from_sequence",
    "noise_adaptive_layout",
    "random_layout",
    "sabre_layout",
    "trivial_layout",
    "ParametricBindMismatch",
    "ParametricCompiledCircuit",
    "num_feature_params",
    "parametric_fingerprint",
    "parametric_transpile",
    "cancel_adjacent_inverse_cx",
    "cancel_adjacent_inverse_cx_run",
    "drop_identity_rotations",
    "merge_adjacent_rz",
    "resynthesize_single_qubit_runs",
    "RoutedCircuit",
    "route_circuit",
]
