"""Transpiler: layout, routing, basis decomposition and optimization passes."""

from .compiler import CompiledCircuit, transpile
from .decompose import (
    BASIS_GATES,
    compiled_gate_count_u3,
    decompose_circuit,
    decompose_instruction,
    decompose_u3,
    u3_angles_from_matrix,
)
from .layout import (
    Layout,
    layout_fidelity_score,
    layout_from_sequence,
    noise_adaptive_layout,
    random_layout,
    sabre_layout,
    trivial_layout,
)
from .passes import (
    cancel_adjacent_inverse_cx,
    drop_identity_rotations,
    merge_adjacent_rz,
    resynthesize_single_qubit_runs,
)
from .routing import RoutedCircuit, route_circuit

__all__ = [
    "CompiledCircuit",
    "transpile",
    "BASIS_GATES",
    "compiled_gate_count_u3",
    "decompose_circuit",
    "decompose_instruction",
    "decompose_u3",
    "u3_angles_from_matrix",
    "Layout",
    "layout_fidelity_score",
    "layout_from_sequence",
    "noise_adaptive_layout",
    "random_layout",
    "sabre_layout",
    "trivial_layout",
    "cancel_adjacent_inverse_cx",
    "drop_identity_rotations",
    "merge_adjacent_rz",
    "resynthesize_single_qubit_runs",
    "RoutedCircuit",
    "route_circuit",
]
