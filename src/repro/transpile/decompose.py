"""Decomposition of circuits into the IBMQ basis gate set (CX, SX, RZ, X).

The gate-count bookkeeping here drives the pruning analysis in the paper:
``U3(theta, phi, lambda)`` compiles to 5 basis gates, while zeroing one or two
of its angles reduces the compiled count to 4 or 1 — which is exactly why
fine-grained (per-angle) pruning reduces noise.
"""

from __future__ import annotations

import cmath
import math
from typing import List, Sequence, Tuple

import numpy as np

from ..quantum.circuit import Instruction, QuantumCircuit

__all__ = [
    "BASIS_GATES",
    "u3_angles_from_matrix",
    "decompose_u3",
    "decompose_instruction",
    "decompose_circuit",
    "compiled_gate_count_u3",
]

BASIS_GATES = ("cx", "sx", "rz", "x")

_TWO_PI = 2.0 * math.pi


def _normalize_angle(angle: float) -> float:
    """Wrap an angle into ``(-pi, pi]``."""
    wrapped = math.fmod(angle, _TWO_PI)
    if wrapped > math.pi:
        wrapped -= _TWO_PI
    elif wrapped <= -math.pi:
        wrapped += _TWO_PI
    return wrapped


def _is_zero_angle(angle: float, atol: float = 1e-9) -> bool:
    return abs(_normalize_angle(angle)) < atol


def u3_angles_from_matrix(matrix: np.ndarray) -> Tuple[float, float, float]:
    """Extract ``(theta, phi, lam)`` such that ``U = e^{i alpha} U3(theta, phi, lam)``."""
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.shape != (2, 2):
        raise ValueError("u3 extraction needs a 2x2 matrix")
    abs00 = abs(matrix[0, 0])
    abs10 = abs(matrix[1, 0])
    theta = 2.0 * math.atan2(abs10, abs00)
    if abs10 < 1e-12:  # diagonal: theta ~ 0
        alpha = cmath.phase(matrix[0, 0])
        lam = cmath.phase(matrix[1, 1]) - alpha
        return (0.0, 0.0, _normalize_angle(lam))
    if abs00 < 1e-12:  # anti-diagonal: theta ~ pi
        alpha = cmath.phase(-matrix[0, 1])
        phi = cmath.phase(matrix[1, 0]) - alpha
        return (math.pi, _normalize_angle(phi), 0.0)
    alpha = cmath.phase(matrix[0, 0])
    phi = cmath.phase(matrix[1, 0]) - alpha
    lam = cmath.phase(-matrix[0, 1]) - alpha
    return (theta, _normalize_angle(phi), _normalize_angle(lam))


def decompose_u3(
    qubit: int, theta: float, phi: float, lam: float
) -> List[Instruction]:
    """Compile ``U3`` to the ``RZ/SX`` basis with the zero-angle special cases."""
    if _is_zero_angle(theta):
        merged = _normalize_angle(phi + lam)
        if _is_zero_angle(merged):
            return []
        return [Instruction("rz", (qubit,), (merged,))]
    sequence: List[Instruction] = []
    if not _is_zero_angle(lam):
        sequence.append(Instruction("rz", (qubit,), (_normalize_angle(lam),)))
    sequence.append(Instruction("sx", (qubit,)))
    sequence.append(Instruction("rz", (qubit,), (_normalize_angle(theta + math.pi),)))
    sequence.append(Instruction("sx", (qubit,)))
    if not _is_zero_angle(phi + math.pi):
        sequence.append(
            Instruction("rz", (qubit,), (_normalize_angle(phi + math.pi),))
        )
    return sequence


def compiled_gate_count_u3(theta: float, phi: float, lam: float) -> int:
    """Number of basis gates a U3 with the given angles compiles to."""
    return len(decompose_u3(0, theta, phi, lam))


def _decompose_single_qubit(instruction: Instruction) -> List[Instruction]:
    if instruction.gate in ("rz", "x", "sx"):
        if instruction.gate == "rz" and _is_zero_angle(instruction.params[0]):
            return []
        return [instruction]
    if instruction.gate == "i":
        return []
    if instruction.gate == "u3":
        theta, phi, lam = instruction.params
        return decompose_u3(instruction.qubits[0], theta, phi, lam)
    theta, phi, lam = u3_angles_from_matrix(instruction.matrix())
    return decompose_u3(instruction.qubits[0], theta, phi, lam)


def _u3(qubit: int, theta: float, phi: float, lam: float) -> Instruction:
    return Instruction("u3", (qubit,), (theta, phi, lam))


def _two_qubit_rules(instruction: Instruction) -> List[Instruction] | None:
    """Known exact decompositions of two-qubit gates into CX + 1q gates."""
    gate = instruction.gate
    a, b = instruction.qubits
    params = instruction.params
    cx = lambda c, t: Instruction("cx", (c, t))  # noqa: E731

    if gate == "cx":
        return [instruction]
    if gate == "cz":
        return [Instruction("h", (b,)), cx(a, b), Instruction("h", (b,))]
    if gate == "cy":
        return [Instruction("sdg", (b,)), cx(a, b), Instruction("s", (b,))]
    if gate == "swap":
        return [cx(a, b), cx(b, a), cx(a, b)]
    if gate == "rzz":
        (theta,) = params
        return [cx(a, b), Instruction("rz", (b,), (theta,)), cx(a, b)]
    if gate == "rzx":
        (theta,) = params
        return [
            Instruction("h", (b,)),
            cx(a, b),
            Instruction("rz", (b,), (theta,)),
            cx(a, b),
            Instruction("h", (b,)),
        ]
    if gate == "rxx":
        (theta,) = params
        return [
            Instruction("h", (a,)),
            Instruction("h", (b,)),
            cx(a, b),
            Instruction("rz", (b,), (theta,)),
            cx(a, b),
            Instruction("h", (a,)),
            Instruction("h", (b,)),
        ]
    if gate == "ryy":
        (theta,) = params
        return [
            Instruction("rx", (a,), (math.pi / 2,)),
            Instruction("rx", (b,), (math.pi / 2,)),
            cx(a, b),
            Instruction("rz", (b,), (theta,)),
            cx(a, b),
            Instruction("rx", (a,), (-math.pi / 2,)),
            Instruction("rx", (b,), (-math.pi / 2,)),
        ]
    if gate == "crz":
        (lam,) = params
        return [
            Instruction("rz", (b,), (lam / 2,)),
            cx(a, b),
            Instruction("rz", (b,), (-lam / 2,)),
            cx(a, b),
        ]
    if gate == "cry":
        (theta,) = params
        return [
            Instruction("ry", (b,), (theta / 2,)),
            cx(a, b),
            Instruction("ry", (b,), (-theta / 2,)),
            cx(a, b),
        ]
    if gate == "crx":
        (theta,) = params
        return [
            Instruction("h", (b,)),
            Instruction("rz", (b,), (theta / 2,)),
            cx(a, b),
            Instruction("rz", (b,), (-theta / 2,)),
            cx(a, b),
            Instruction("h", (b,)),
        ]
    if gate == "cu1":
        (lam,) = params
        return [
            Instruction("u1", (a,), (lam / 2,)),
            cx(a, b),
            Instruction("u1", (b,), (-lam / 2,)),
            cx(a, b),
            Instruction("u1", (b,), (lam / 2,)),
        ]
    if gate == "cu3":
        theta, phi, lam = params
        return [
            Instruction("u1", (a,), ((lam + phi) / 2,)),
            Instruction("u1", (b,), ((lam - phi) / 2,)),
            cx(a, b),
            _u3(b, -theta / 2, 0.0, -(phi + lam) / 2),
            cx(a, b),
            _u3(b, theta / 2, phi, 0.0),
        ]
    return None


def decompose_instruction(instruction: Instruction) -> List[Instruction]:
    """Decompose one instruction into the basis gate set.

    Two-qubit gates without a registered rule (e.g. ``sqswap``) are kept as
    opaque hardware-calibrated gates; they still receive two-qubit noise and
    count as two-qubit operations.
    """
    if len(instruction.qubits) == 1:
        return _decompose_single_qubit(instruction)
    rule = _two_qubit_rules(instruction)
    if rule is None:
        return [instruction]
    out: List[Instruction] = []
    for item in rule:
        if len(item.qubits) == 1 and item.gate not in BASIS_GATES:
            out.extend(_decompose_single_qubit(item))
        elif len(item.qubits) == 1 and item.gate == "rz" and _is_zero_angle(item.params[0]):
            continue
        else:
            out.append(item)
    return out


def decompose_circuit(circuit: QuantumCircuit) -> QuantumCircuit:
    """Decompose every instruction of a circuit into the basis gate set."""
    out = QuantumCircuit(circuit.n_qubits)
    for instruction in circuit.instructions:
        out.extend(decompose_instruction(instruction))
    return out
