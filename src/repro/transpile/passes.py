"""Circuit optimization passes (the compiler's optimization levels 1-3)."""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from ..quantum.circuit import Instruction, QuantumCircuit
from .decompose import decompose_u3, u3_angles_from_matrix

__all__ = [
    "cancel_adjacent_inverse_cx",
    "cancel_adjacent_inverse_cx_run",
    "merge_adjacent_rz",
    "drop_identity_rotations",
    "resynthesize_single_qubit_runs",
]

_TWO_PI = 2.0 * math.pi


def _is_zero_angle(angle: float, atol: float = 1e-9) -> bool:
    wrapped = math.fmod(angle, _TWO_PI)
    return min(abs(wrapped), abs(abs(wrapped) - _TWO_PI)) < atol


def _last_touching(instructions: List[Instruction], qubits) -> Optional[int]:
    """Index of the most recent instruction that touches any of ``qubits``."""
    target = set(qubits)
    for index in range(len(instructions) - 1, -1, -1):
        if target & set(instructions[index].qubits):
            return index
    return None


def cancel_adjacent_inverse_cx_run(instructions: List) -> List:
    """List-level core of :func:`cancel_adjacent_inverse_cx`.

    Operates on anything instruction-shaped (``.gate``/``.qubits``), which is
    how the parametric transpiler reuses this pass verbatim on symbolic
    instruction streams — the pass never reads parameter values.
    """
    self_inverse_2q = {"cx", "cz", "swap"}
    out: List = []
    for instruction in instructions:
        if instruction.gate in self_inverse_2q:
            previous = _last_touching(out, instruction.qubits)
            if previous is not None:
                candidate = out[previous]
                same = (
                    candidate.gate == instruction.gate
                    and candidate.qubits == instruction.qubits
                )
                # the candidate must be the latest op on *both* qubits
                blocking = _last_touching(out[previous + 1 :], instruction.qubits)
                if same and blocking is None:
                    out.pop(previous)
                    continue
        out.append(instruction)
    return out


def cancel_adjacent_inverse_cx(circuit: QuantumCircuit) -> QuantumCircuit:
    """Remove back-to-back identical CX (and CZ/SWAP) pairs."""
    result = QuantumCircuit(circuit.n_qubits)
    result.extend(cancel_adjacent_inverse_cx_run(circuit.instructions))
    return result


def merge_adjacent_rz(circuit: QuantumCircuit) -> QuantumCircuit:
    """Fuse consecutive RZ rotations on the same qubit; drop zero rotations."""
    out: List[Instruction] = []
    for instruction in circuit.instructions:
        if instruction.gate == "rz":
            previous = _last_touching(out, instruction.qubits)
            if previous is not None and out[previous].gate == "rz" and out[
                previous
            ].qubits == instruction.qubits:
                merged = out[previous].params[0] + instruction.params[0]
                out.pop(previous)
                if not _is_zero_angle(merged):
                    out.append(Instruction("rz", instruction.qubits, (merged,)))
                continue
            if _is_zero_angle(instruction.params[0]):
                continue
        out.append(instruction)
    result = QuantumCircuit(circuit.n_qubits)
    result.extend(out)
    return result


def drop_identity_rotations(circuit: QuantumCircuit, atol: float = 1e-9):
    """Remove rotations whose angles are all ~0 (they compile to identity)."""
    rotation_gates = {"rx", "ry", "rz", "u1", "rzz", "rxx", "ryy", "rzx",
                      "crx", "cry", "crz", "cu1"}
    out = QuantumCircuit(circuit.n_qubits)
    for instruction in circuit.instructions:
        if instruction.gate in rotation_gates and all(
            _is_zero_angle(p, atol) for p in instruction.params
        ):
            continue
        if instruction.gate in ("u3", "cu3") and all(
            _is_zero_angle(p, atol) for p in instruction.params
        ):
            continue
        out.append(instruction)
    return out


def resynthesize_single_qubit_runs(circuit: QuantumCircuit) -> QuantumCircuit:
    """Collapse runs of consecutive single-qubit gates into one U3 each.

    Each maximal run of single-qubit gates on a wire is multiplied into a
    single 2x2 unitary and re-emitted through the U3 -> RZ/SX decomposition,
    which both shortens the circuit and restores the zero-angle special cases
    after pruning.
    """
    pending: Dict[int, np.ndarray] = {}
    out: List[Instruction] = []

    def flush(qubit: int) -> None:
        matrix = pending.pop(qubit, None)
        if matrix is None:
            return
        theta, phi, lam = u3_angles_from_matrix(matrix)
        out.extend(decompose_u3(qubit, theta, phi, lam))

    for instruction in circuit.instructions:
        if len(instruction.qubits) == 1:
            qubit = instruction.qubits[0]
            matrix = instruction.matrix()
            pending[qubit] = matrix @ pending.get(qubit, np.eye(2, dtype=complex))
        else:
            for qubit in instruction.qubits:
                flush(qubit)
            out.append(instruction)
    for qubit in sorted(pending):
        flush(qubit)

    result = QuantumCircuit(circuit.n_qubits)
    result.extend(out)
    return result
