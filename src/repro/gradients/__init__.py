"""Batched and sharded parameter-shift gradient engines.

The hardware-compatible training mode (Table V) evaluates ``2 * num_weights
+ 1`` circuits per gradient — one structure under many weight vectors, which
is exactly the workload :mod:`repro.backends` batches for population
evaluation.  This package routes the full shift-rule gradient through the
backend dispatcher (:class:`BatchedGradientEngine`) and shards its
evaluation rows across persistent worker processes
(:class:`ShardedGradientEngine`) under the same bit-for-bit determinism
contract as the population scheduler.
"""

from .engine import (
    BatchedGradientEngine,
    GradientEngineConfig,
    GradientEngineStats,
)
from .sharded import GradientShardStats, ShardedGradientEngine

__all__ = [
    "BatchedGradientEngine",
    "GradientEngineConfig",
    "GradientEngineStats",
    "GradientShardStats",
    "ShardedGradientEngine",
]
