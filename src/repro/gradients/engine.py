"""Batched parameter-shift gradient evaluation through backend dispatch.

A parameter-shift gradient evaluates one circuit structure under
``2 * num_weights`` shifted weight vectors (plus the unshifted center) — the
exact workload the population machinery already batches: one structure, many
parameter rows.  :class:`BatchedGradientEngine` routes those rows through the
:class:`~repro.backends.dispatch.BackendDispatcher` as the same job shapes
the execution engine produces, so every gradient mode reuses the code path
(and the caches) its forward pass runs on:

``noise_free``
    the whole ``(rows, num_weights)`` matrix joins the statevector batch
    dimension (one :class:`~repro.backends.base.SimulationJob` carrying a
    2-D weight matrix);
``noise_sim``
    the rows go through :meth:`~repro.execution.cache.ParametricTranspileCache.
    bind_rows` into one :class:`~repro.transpile.parametric.
    TemplateBatchBinding` per structure — one vectorized template fill, one
    batched density evolution — with branch-crossing and oversized rows
    served by per-row compiled jobs;
``real_qc``
    QML readout runs through the shot backend with one pinned
    ``seed_key`` per (row, sample) job; VQE energies take the sequential
    measured loop in :meth:`BatchedGradientEngine._vqe_rows_measured`
    (the registered shot backend samples Z-basis readout only, not
    Pauli-sum observables), reseeded per row so the loop shards cleanly.

Determinism contract (the gradient sibling of the scheduler's)
--------------------------------------------------------------
The unit of evaluation is **one weight row** — all samples of one shifted
weight vector.  ``engine="sequential"`` evaluates rows one engine call at a
time, which is the unit the sharded wrapper (:class:`~repro.gradients.
sharded.ShardedGradientEngine`) moves between worker processes: a row
produces bit-for-bit the same floats inside any worker, inside the parent,
and under any worker count.  ``engine="batched"`` fuses all rows of one call
into a single evolution — faster, and equal to the sequential path to
floating-point batching tolerance (last-ulp contraction-order differences),
not bitwise.

Every randomness sink is pinned by content, never by scheduling order:
shot jobs carry ``seed_key`` tuples built from *global* row labels, and the
measured VQE loop reseeds per row from ``stable_seed((seed, "vqe-pshift",
label))``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..backends.base import SimulationJob
from ..backends.dispatch import BackendDispatcher, DispatchRequest
from ..devices.backend import QuantumBackend, logical_probabilities
from ..execution.cache import ParametricTranspileCache, TranspileCache
from ..execution.stats import MergeableStats
from ..quantum.autodiff import ShiftRulePlan, build_shift_plan
from ..quantum.circuit import ParameterizedCircuit
from ..utils.rng import stable_seed

__all__ = [
    "GradientEngineConfig",
    "GradientEngineStats",
    "BatchedGradientEngine",
]


# repro: pickle-boundary
@dataclass(frozen=True)
class GradientEngineConfig:
    """Everything a gradient engine (or one of its workers) needs to know.

    Quacks like :class:`~repro.core.estimator.EstimatorConfig` for the
    simulation backends (``shots``, ``seed``, ``optimization_level``,
    ``max_density_qubits``, ``fusion``, ``max_fused_qubits``, ``backend``)
    and ships to sharded gradient workers by pickle, so worker engines
    rebuild an identical dispatcher from the config alone.
    """

    shots: int = 0
    seed: int = 0
    optimization_level: int = 2
    max_density_qubits: int = 10
    fusion: bool = True
    max_fused_qubits: int = 3
    #: backend override, applied where capable (see BackendDispatcher policy)
    backend: Optional[str] = field(
        default_factory=lambda: os.environ.get("REPRO_BACKEND") or None
    )
    # -- shard resilience policy (see repro.execution.resilience) -------------
    shard_deadline_seconds: Optional[float] = 600.0
    shard_retries: int = 2
    shard_backoff_seconds: float = 0.05
    shard_backoff_max_seconds: float = 2.0


@dataclass
class GradientEngineStats(MergeableStats):
    """Counters describing what one gradient engine evaluated."""

    gradient_calls: int = 0
    rows_evaluated: int = 0
    template_rows: int = 0
    fallback_rows: int = 0
    shot_jobs: int = 0
    measured_rows: int = 0


class _GroupEntry:
    """The structure-group context handed to ``run_group``.

    Gradient jobs always carry their own weight rows, so ``weights`` here is
    only the witness (center) vector; ``fusion_plan`` stays unused because
    weight-carrying jobs bypass the statevector fusion plan.
    """

    __slots__ = ("circuit", "weights", "fusion_plan")

    def __init__(self, circuit, weights) -> None:
        self.circuit = circuit
        self.weights = weights
        self.fusion_plan = None


class BatchedGradientEngine:
    """Evaluates shift-rule row matrices through the backend dispatcher.

    Estimator shim: exposes ``device``, ``config``, ``transpile_cache`` and
    ``parametric_transpile_cache`` exactly like
    :class:`~repro.core.estimator.PerformanceEstimator`, so the registered
    simulation backends construct against it unchanged.
    """

    def __init__(
        self,
        device=None,
        config: Optional[GradientEngineConfig] = None,
        *,
        initial_layout=None,
        transpile_cache: Optional[TranspileCache] = None,
        parametric_cache: Optional[ParametricTranspileCache] = None,
        engine: str = "batched",
    ) -> None:
        if engine not in ("batched", "sequential"):
            raise ValueError(
                f"unknown gradient engine mode {engine!r} "
                "(expected 'batched' or 'sequential')"
            )
        self.device = device
        self.config = config if config is not None else GradientEngineConfig()
        self.initial_layout = initial_layout
        self.engine_mode = engine
        self.transpile_cache = (
            transpile_cache if transpile_cache is not None else TranspileCache()
        )
        self.parametric_transpile_cache = (
            parametric_cache
            if parametric_cache is not None
            else ParametricTranspileCache(fallback=self.transpile_cache)
        )
        self.dispatcher = BackendDispatcher(self)
        self.stats = GradientEngineStats()
        #: id(circuit) -> (circuit, plan); the circuit reference keeps the
        #: id stable for the memo's lifetime
        self._plans: Dict[int, Tuple[ParameterizedCircuit, ShiftRulePlan]] = {}
        #: (id(ansatz), id(plan)) -> (ansatz, plan, per-group structures)
        self._vqe_structures: Dict[Tuple[int, int], Tuple] = {}
        self._measure_backend: Optional[QuantumBackend] = None

    # -- lifecycle / introspection --------------------------------------------

    def close(self) -> None:
        """Release per-engine resources (idempotent; nothing pooled here)."""

    def __enter__(self) -> "BatchedGradientEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def resolve_mode(self) -> str:
        """The estimator mode gradients run in: ``noise_free`` without a
        device, ``noise_sim`` with a device and exact (``shots == 0``)
        simulation, ``real_qc`` for finite shots."""
        if self.device is None:
            return "noise_free"
        if int(self.config.shots) == 0:
            return "noise_sim"
        return "real_qc"

    def shift_plan(self, circuit: ParameterizedCircuit) -> ShiftRulePlan:
        """The (memoized) shift-rule plan of one circuit structure."""
        cached = self._plans.get(id(circuit))
        if cached is not None:
            return cached[1]
        plan = build_shift_plan(circuit)
        self._plans[id(circuit)] = (circuit, plan)
        return plan

    # -- QML readout rows -----------------------------------------------------

    def qml_expectations_rows(
        self,
        circuit: ParameterizedCircuit,
        rows: np.ndarray,
        features: np.ndarray,
        row_labels: Optional[np.ndarray] = None,
        witness_weights: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Per-qubit Z expectations of every (weight row, sample) pair.

        ``rows`` is a ``(n_rows, num_weights)`` matrix (typically the center
        row followed by :meth:`ShiftRulePlan.shifted_weight_rows`); the
        result has shape ``(n_rows, batch, n_qubits)``.

        ``row_labels`` are the *global* row indices of this gradient step —
        sharded callers pass the slice they were assigned so shot-job seed
        keys stay a pure function of step content, not of sharding.
        ``witness_weights`` (the step's center weights) seeds the parametric
        template witness; every worker must pass the same vector so cold
        caches compile identical first variants.
        """
        rows = np.asarray(rows, dtype=float)
        if rows.ndim != 2:
            raise ValueError("qml_expectations_rows expects a 2-D row matrix")
        features = np.asarray(features, dtype=float)
        if features.ndim == 1:
            features = features[None, :]
        labels = self._labels(rows.shape[0], row_labels)
        witness = self._witness(rows, witness_weights)
        mode = self.resolve_mode()
        self.stats.gradient_calls += 1
        self.stats.rows_evaluated += rows.shape[0]
        if self.engine_mode == "sequential" and rows.shape[0] > 1:
            return np.stack(
                [
                    self._qml_rows_once(
                        circuit, rows[i : i + 1], features,
                        labels[i : i + 1], mode, witness,
                    )[0]
                    for i in range(rows.shape[0])
                ]
            )
        return self._qml_rows_once(circuit, rows, features, labels, mode, witness)

    def _qml_rows_once(
        self,
        circuit: ParameterizedCircuit,
        rows: np.ndarray,
        features: np.ndarray,
        labels: np.ndarray,
        mode: str,
        witness: np.ndarray,
    ) -> np.ndarray:
        """One engine call over ``rows`` — the sharding unit is one row."""
        n_rows, batch = rows.shape[0], features.shape[0]
        n_qubits = circuit.n_qubits
        backend = self.dispatcher.backend_for(
            DispatchRequest(mode=mode, n_qubits=n_qubits)
        )
        entry = _GroupEntry(circuit, witness)

        if not backend.capabilities.noisy:
            # statevector: the rows join the batch dimension of one job
            weights = rows if n_rows > 1 else rows[0]
            handles = backend.run_group(
                entry,
                [SimulationJob(circuit=circuit, weights=weights, features=features)],
            )
            backend.synchronize()
            expectations = handles[0].logical_z_expectations(n_qubits)
            return np.asarray(expectations).reshape(n_rows, batch, n_qubits)

        if backend.capabilities.shot_based:
            jobs = [
                SimulationJob(
                    circuit=circuit,
                    weights=rows[r],
                    features=features[b],
                    initial_layout=self.initial_layout,
                    seed_key=("pshift", int(labels[r]), int(b)),
                )
                for r in range(n_rows)
                for b in range(batch)
            ]
            handles = backend.run_group(entry, jobs)
            backend.synchronize()
            self.stats.shot_jobs += len(jobs)
            flat = np.stack(
                [handle.logical_z_expectations(n_qubits) for handle in handles]
            )
            return flat.reshape(n_rows, batch, n_qubits)

        # density: one values matrix over every (row, sample) pair, row-major
        values = np.concatenate(
            [np.repeat(rows, batch, axis=0), np.tile(features, (n_rows, 1))],
            axis=1,
        )
        binding, fallback = self._bind_rows(circuit, values, witness)
        jobs: List[SimulationJob] = []
        if binding is not None:
            jobs.append(SimulationJob(template_batch=binding))
        fallback_rows = sorted(fallback)
        jobs.extend(SimulationJob(compiled=fallback[row]) for row in fallback_rows)
        handles = backend.run_group(entry, jobs)
        backend.synchronize()
        flat = np.empty((n_rows * batch, n_qubits))
        position = 0
        if binding is not None:
            for offset, row in enumerate(binding.rows):
                flat[int(row)] = handles[offset].logical_z_expectations(n_qubits)
            position = binding.n_rows
            self.stats.template_rows += binding.n_rows
        for offset, row in enumerate(fallback_rows):
            flat[row] = handles[position + offset].logical_z_expectations(n_qubits)
        self.stats.fallback_rows += len(fallback_rows)
        return flat.reshape(n_rows, batch, n_qubits)

    # -- VQE energy rows ------------------------------------------------------

    def vqe_energy_rows(
        self,
        ansatz: ParameterizedCircuit,
        plan,
        rows: np.ndarray,
        row_labels: Optional[np.ndarray] = None,
        witness_weights: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """``<H>`` of one ansatz under every weight row; shape ``(n_rows,)``.

        ``plan`` is the :class:`~repro.quantum.measurement.MeasurementPlan`
        of the molecular Hamiltonian.  ``noise_free`` reads the observable
        from statevectors; ``noise_sim`` measures each commuting group on
        the hoisted per-group circuit structures (ansatz + basis change,
        built once per plan); ``real_qc`` runs the measured loop with
        per-row pinned sampling seeds.
        """
        rows = np.asarray(rows, dtype=float)
        if rows.ndim != 2:
            raise ValueError("vqe_energy_rows expects a 2-D row matrix")
        labels = self._labels(rows.shape[0], row_labels)
        witness = self._witness(rows, witness_weights)
        mode = self.resolve_mode()
        self.stats.gradient_calls += 1
        self.stats.rows_evaluated += rows.shape[0]
        if mode == "real_qc":
            return self._vqe_rows_measured(ansatz, plan, rows, labels)
        if self.engine_mode == "sequential" and rows.shape[0] > 1:
            return np.concatenate(
                [
                    self._vqe_rows_once(
                        ansatz, plan, rows[i : i + 1],
                        labels[i : i + 1], mode, witness,
                    )
                    for i in range(rows.shape[0])
                ]
            )
        return self._vqe_rows_once(ansatz, plan, rows, labels, mode, witness)

    def _vqe_rows_once(
        self,
        ansatz: ParameterizedCircuit,
        plan,
        rows: np.ndarray,
        labels: np.ndarray,
        mode: str,
        witness: np.ndarray,
    ) -> np.ndarray:
        n_rows = rows.shape[0]
        n_qubits = ansatz.n_qubits

        if mode == "noise_free":
            backend = self.dispatcher.backend_for(
                DispatchRequest(
                    mode=mode, n_qubits=n_qubits, needs_observables=True
                )
            )
            entry = _GroupEntry(ansatz, witness)
            weights = rows if n_rows > 1 else rows[0]
            handles = backend.run_group(
                entry, [SimulationJob(circuit=ansatz, weights=weights)]
            )
            backend.synchronize()
            energies = handles[0].pauli_expectations(plan.observable)
            return np.asarray(energies, dtype=float).reshape(n_rows)

        # noise_sim: one measured setting per commuting group, hoisted into
        # per-group circuit structures so the parametric cache compiles each
        # (ansatz + basis change) once per plan, not once per shifted row
        structures = self._vqe_group_structures(ansatz, plan)
        backend = self.dispatcher.backend_for(
            DispatchRequest(mode=mode, n_qubits=n_qubits)
        )
        group_probs: List[List[np.ndarray]] = []
        if backend.capabilities.shot_based:
            # REPRO_BACKEND=shots override: per-(group, row) jobs with
            # content-pinned seeds (shots == 0 here, so no sampling noise)
            for group_index, structure in enumerate(structures):
                entry = _GroupEntry(structure, witness)
                jobs = [
                    SimulationJob(
                        circuit=structure,
                        weights=rows[r],
                        initial_layout=self.initial_layout,
                        seed_key=(
                            "vqe-pshift", int(labels[r]), int(group_index)
                        ),
                    )
                    for r in range(n_rows)
                ]
                handles = backend.run_group(entry, jobs)
                backend.synchronize()
                self.stats.shot_jobs += len(jobs)
                group_probs.append([handle.probabilities() for handle in handles])
        else:
            for structure in structures:
                entry = _GroupEntry(structure, witness)
                binding, fallback = self._bind_rows(structure, rows, witness)
                jobs = []
                if binding is not None:
                    jobs.append(SimulationJob(template_batch=binding))
                fallback_rows = sorted(fallback)
                jobs.extend(
                    SimulationJob(compiled=fallback[row]) for row in fallback_rows
                )
                handles = backend.run_group(entry, jobs)
                backend.synchronize()
                probs: List[Optional[np.ndarray]] = [None] * n_rows
                position = 0
                if binding is not None:
                    for offset, row in enumerate(binding.rows):
                        probs[int(row)] = logical_probabilities(
                            handles[offset].probabilities(),
                            binding.final_layout,
                            binding.used_qubits,
                            n_qubits,
                        )
                    position = binding.n_rows
                    self.stats.template_rows += binding.n_rows
                for offset, row in enumerate(fallback_rows):
                    handle = handles[position + offset]
                    probs[row] = logical_probabilities(
                        handle.probabilities(),
                        handle.compiled,
                        handle.used_physical,
                        n_qubits,
                    )
                self.stats.fallback_rows += len(fallback_rows)
                group_probs.append(probs)

        energies = np.zeros(n_rows)
        for r in range(n_rows):
            energies[r] = plan.expectation_from_group_probabilities(
                [probs[r] for probs in group_probs]
            )
        return energies

    def _vqe_rows_measured(
        self, ansatz: ParameterizedCircuit, plan, rows: np.ndarray,
        labels: np.ndarray,
    ) -> np.ndarray:
        """Finite-shot energies, one measured setting loop per row.

        The registered shot backend samples Z-basis readout only, so the
        ``real_qc`` energy path keeps the device-backend measured loop —
        but reseeded per *row* from its global label, making each row a
        pure function of step content (and therefore shardable).
        """
        backend = self._measure_backend
        if backend is None:
            backend = QuantumBackend(
                self.device,
                shots=int(self.config.shots),
                seed=int(self.config.seed),
                max_density_qubits=int(self.config.max_density_qubits),
                transpile_cache=self.transpile_cache,
                parametric_cache=self.parametric_transpile_cache,
            )
            self._measure_backend = backend
        energies = np.zeros(rows.shape[0])
        for index in range(rows.shape[0]):
            backend.reseed(
                stable_seed(
                    (int(self.config.seed), "vqe-pshift", int(labels[index]))
                )
            )
            prepared = ansatz.bind(rows[index])
            probs = []
            for basis_change, _group in plan.settings():
                result = backend.run(
                    prepared.compose(basis_change),
                    initial_layout=self.initial_layout,
                    optimization_level=int(self.config.optimization_level),
                    shots=int(self.config.shots),
                )
                probs.append(result.probabilities)
            energies[index] = plan.expectation_from_group_probabilities(probs)
            self.stats.measured_rows += 1
        return energies

    # -- helpers --------------------------------------------------------------

    def _labels(
        self, n_rows: int, row_labels: Optional[np.ndarray]
    ) -> np.ndarray:
        if row_labels is None:
            return np.arange(n_rows)
        labels = np.asarray(row_labels, dtype=int).ravel()
        if labels.shape[0] != n_rows:
            raise ValueError("row_labels must align with the row matrix")
        return labels

    @staticmethod
    def _witness(
        rows: np.ndarray, witness_weights: Optional[np.ndarray]
    ) -> np.ndarray:
        if witness_weights is None:
            return np.asarray(rows[0], dtype=float)
        return np.asarray(witness_weights, dtype=float).ravel()

    def _bind_rows(self, circuit, values: np.ndarray, witness: np.ndarray):
        """Template-bind a values matrix; oversized registers fall back.

        Rows whose reduced register exceeds ``max_density_qubits`` cannot
        run as a template batch (the density runner's approximation needs
        concrete reduced circuits), so the whole binding converts to
        per-row compiled jobs — a pure function of the structure, hence
        identical under any row partition.
        """
        binding, fallback = self.parametric_transpile_cache.bind_rows(
            circuit,
            values,
            witness,
            device=self.device,
            initial_layout=self.initial_layout,
            optimization_level=int(self.config.optimization_level),
        )
        if binding is not None and binding.n_rows == 0:
            binding = None
        if (
            binding is not None
            and binding.n_reduced > int(self.config.max_density_qubits)
        ):
            for row in binding.rows:
                row = int(row)
                fallback[row] = binding.template.bind(values[row])
            binding = None
        return binding, fallback

    def _vqe_group_structures(self, ansatz, plan) -> List[ParameterizedCircuit]:
        """One parametric structure per measurement group: ansatz ops shared,
        basis-change instructions appended as constant slots (hoisted — built
        once per (ansatz, plan), reused by every shifted evaluation)."""
        key = (id(ansatz), id(plan))
        cached = self._vqe_structures.get(key)
        if cached is not None:
            return cached[2]
        structures: List[ParameterizedCircuit] = []
        for basis_change, _group in plan.settings():
            structure = ParameterizedCircuit(ansatz.n_qubits)
            for op in ansatz.ops:
                structure.add_op(op)
            for instruction in basis_change.instructions:
                structure.add_fixed(
                    instruction.gate, instruction.qubits, instruction.params
                )
            structures.append(structure)
        self._vqe_structures[key] = (ansatz, plan, structures)
        return structures
