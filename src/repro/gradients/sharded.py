"""Sharded multi-process parameter-shift gradient evaluation.

:class:`ShardedGradientEngine` partitions one gradient step's evaluation
rows (shifted weight vectors) across a persistent pool of worker processes,
the way :class:`~repro.execution.scheduler.ShardedExecutionEngine` shards a
population's structure groups across generations.  Each worker owns a full
sequential-mode :class:`~repro.gradients.engine.BatchedGradientEngine` —
including its own transpile/parametric caches, which stay warm across
training epochs — and after every step each worker's *new* cache entries
and counter deltas are merged back into the parent engine through the
explicit :class:`~repro.execution.stats.MergeableStats` protocol.

Determinism contract
--------------------
Gradients are bit-for-bit independent of the worker count.  Three rules make
that hold (mirroring the scheduler's contract):

1. **The unit of evaluation is one weight row, everywhere.**  A row (one
   shifted weight vector, all samples) is always evaluated through one
   sequential-mode engine call — inside a worker, inside the parent when
   ``workers <= 1``, and inside the parent again when a step degrades — so
   the simulation batches, template binds and cache-state evolution a row
   sees are identical no matter where it runs.
2. **Shard assignment is a pure function of the row count** —
   ``np.array_split`` over the global row indices, never pool state.
3. **Randomness is pinned by content.**  Shot-job seed keys and measured
   VQE reseeds derive from *global* row labels shipped with each task, so
   a row samples identically under any partition.  Both parent and worker
   engines start from fresh caches with the step's center weights as the
   template witness, so cold-compiled template variants match bit-for-bit
   across processes.

Graceful degradation: any worker failure (including a broken pool) emits a
``RuntimeWarning`` and re-evaluates the step's rows in-process — row-at-a-
time, exactly like rule 1 — so a fault can delay a step but never change a
gradient.  Cache entries already returned by healthy shards are adopted
first, so the retry is warm.
"""

from __future__ import annotations

import multiprocessing
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..execution.cache import ParametricCacheStats, TranspileCacheStats
from ..execution.stats import MergeableStats
from ..utils.rng import stable_seed
from .engine import BatchedGradientEngine, GradientEngineConfig

__all__ = ["GradientShardStats", "ShardedGradientEngine"]


@dataclass
class GradientShardStats(MergeableStats):
    """Counters describing what the sharded gradient scheduler did."""

    steps: int = 0
    sharded_steps: int = 0
    in_process_steps: int = 0
    degraded_steps: int = 0
    shards_dispatched: int = 0
    worker_failures: int = 0
    adopted_bound_entries: int = 0
    adopted_structures: int = 0
    adopted_parametric_bound: int = 0


# ---------------------------------------------------------------------------
# Task / result payloads crossing the process boundary
# ---------------------------------------------------------------------------


# repro: pickle-boundary
@dataclass
class _GradientShardTask:
    """One shard's slice of a gradient step's evaluation rows."""

    shard_index: int
    #: shard-stable seed (defensive, like the scheduler's rule 3: no sharded
    #: gradient path consumes an unpinned stream today)
    seed: int
    kind: str                         # "qml" | "vqe"
    circuit: object                   # the QML circuit / VQE ansatz
    rows: np.ndarray                  # this shard's weight rows
    row_labels: np.ndarray            # global row indices of ``rows``
    witness_weights: np.ndarray       # the step's center weight vector
    features: Optional[np.ndarray]    # QML feature batch (None for VQE)
    plan: Optional[object]            # VQE MeasurementPlan (None for QML)
    fail: bool = False                # fault-injection test seam


# repro: pickle-boundary
@dataclass
class _GradientShardResult:
    """Row values plus the accounting deltas one shard produced."""

    shard_index: int
    values: np.ndarray
    engine_stats: object
    bound_stats: TranspileCacheStats
    parametric_stats: ParametricCacheStats
    bound_entries: list
    parametric_entries: dict
    elapsed_seconds: float


class _GradientShardFailure(Exception):
    """Raised in the parent when any shard of a step failed."""

    def __init__(
        self, results: List[_GradientShardResult], cause: BaseException
    ) -> None:
        super().__init__(str(cause))
        self.results = results
        self.cause = cause


# ---------------------------------------------------------------------------
# Worker-process side
# ---------------------------------------------------------------------------


class _GradientWorkerContext:
    """Per-process sequential gradient engine plus export bookkeeping."""

    def __init__(self, device, config, initial_layout) -> None:
        self.engine = BatchedGradientEngine(
            device, config, initial_layout=initial_layout, engine="sequential"
        )
        self.exported_bound: set = set()
        self.exported_structures: set = set()
        self.exported_parametric_bound: set = set()

    def run(self, task: _GradientShardTask) -> _GradientShardResult:
        if task.fail:
            raise RuntimeError(
                f"injected worker fault in gradient shard {task.shard_index} "
                "(test seam)"
            )
        start = time.perf_counter()
        engine = self.engine
        engine_before = engine.stats.copy()
        bound_before = engine.transpile_cache.stats.copy()
        parametric_before = engine.parametric_transpile_cache.stats.copy()

        if task.kind == "qml":
            values = engine.qml_expectations_rows(
                task.circuit,
                task.rows,
                task.features,
                row_labels=task.row_labels,
                witness_weights=task.witness_weights,
            )
        else:
            values = engine.vqe_energy_rows(
                task.circuit,
                task.plan,
                task.rows,
                row_labels=task.row_labels,
                witness_weights=task.witness_weights,
            )

        bound_entries = engine.transpile_cache.export_entries(self.exported_bound)
        parametric_entries = engine.parametric_transpile_cache.export_entries(
            self.exported_structures, self.exported_parametric_bound
        )
        # Exclusion sets are refreshed from the caches (not accumulated): an
        # entry evicted worker-side and recompiled later must ship again, and
        # the sets must stay bounded by the cache sizes.
        self.exported_bound = engine.transpile_cache.export_keys()
        self.exported_structures, self.exported_parametric_bound = (
            engine.parametric_transpile_cache.export_keys()
        )
        return _GradientShardResult(
            shard_index=task.shard_index,
            values=values,
            engine_stats=engine.stats.diff(engine_before),
            bound_stats=engine.transpile_cache.stats.diff(bound_before),
            parametric_stats=engine.parametric_transpile_cache.stats.diff(
                parametric_before
            ),
            bound_entries=bound_entries,
            parametric_entries=parametric_entries,
            # repro: ignore[det-monotonic-flow] -- per-shard timing report only
            elapsed_seconds=time.perf_counter() - start,
        )


_GRADIENT_WORKER_CONTEXT: Optional[_GradientWorkerContext] = None


def _init_gradient_worker(device, config, initial_layout) -> None:
    global _GRADIENT_WORKER_CONTEXT
    _GRADIENT_WORKER_CONTEXT = _GradientWorkerContext(
        device, config, initial_layout
    )


def _run_gradient_shard(task: _GradientShardTask) -> _GradientShardResult:
    if _GRADIENT_WORKER_CONTEXT is None:
        raise RuntimeError("gradient worker used before _init_gradient_worker")
    return _GRADIENT_WORKER_CONTEXT.run(task)


def _ping(value: int) -> int:
    """No-op task used by :meth:`ShardedGradientEngine.warm_up`."""
    return value


# ---------------------------------------------------------------------------
# Parent-process scheduler
# ---------------------------------------------------------------------------


class ShardedGradientEngine:
    """A gradient engine that fans evaluation rows out to worker processes.

    Drop-in for the sequential-mode :class:`BatchedGradientEngine` (it owns
    one for the in-process and degraded paths): ``shift_plan``,
    ``qml_expectations_rows`` and ``vqe_energy_rows`` have identical
    signatures and — by the determinism contract above — produce identical
    floats.  Both the parent engine and every worker start from *fresh*
    caches, so warm state never depends on what ran before the engine was
    constructed.

    Call :meth:`close` (or use the context-manager protocol) to shut the
    worker pools down.
    """

    def __init__(
        self,
        device=None,
        config: Optional[GradientEngineConfig] = None,
        *,
        initial_layout=None,
        workers: int = 1,
    ) -> None:
        self.device = device
        self.config = config if config is not None else GradientEngineConfig()
        self.initial_layout = initial_layout
        self.workers = int(workers)
        self.engine = BatchedGradientEngine(
            device, self.config, initial_layout=initial_layout,
            engine="sequential",
        )
        self.scheduler_stats = GradientShardStats()
        self.last_shard_reports: List[dict] = []
        # One single-process pool per shard slot, so shard i always runs in
        # the same worker process and its caches stay warm across steps.
        self._executors: List[Optional[ProcessPoolExecutor]] = [None] * max(
            0, self.workers
        )
        #: shard indices that raise instead of evaluating — fault-injection
        #: seam for the degradation tests; never set in production code
        self._fault_shards: frozenset = frozenset()

    # -- delegation -----------------------------------------------------------

    @property
    def stats(self):
        return self.engine.stats

    @property
    def transpile_cache(self):
        return self.engine.transpile_cache

    @property
    def parametric_transpile_cache(self):
        return self.engine.parametric_transpile_cache

    @property
    def engine_mode(self) -> str:
        return "sharded"

    def resolve_mode(self) -> str:
        return self.engine.resolve_mode()

    def shift_plan(self, circuit):
        return self.engine.shift_plan(circuit)

    # -- lifecycle -----------------------------------------------------------

    def warm_up(self) -> None:
        """Start the worker pools ahead of time (overlapping startups)."""
        if self.workers > 1:
            futures = [
                self._ensure_executor(shard_index).submit(_ping, shard_index)
                for shard_index in range(self.workers)
            ]
            for future in futures:
                future.result()

    def close(self) -> None:
        """Shut every worker pool down (idempotent, safe on partial init)."""
        executors = getattr(self, "_executors", None)
        if not executors:
            return
        for shard_index, executor in enumerate(executors):
            if executor is not None:
                executor.shutdown(wait=True, cancel_futures=True)
                executors[shard_index] = None

    def __enter__(self) -> "ShardedGradientEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort; close()/__exit__ is the real API
        try:
            self.close()
        except Exception:
            pass

    def _ensure_executor(self, shard_index: int) -> ProcessPoolExecutor:
        if self._executors[shard_index] is None:
            method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else None
            )
            self._executors[shard_index] = ProcessPoolExecutor(
                max_workers=1,
                mp_context=multiprocessing.get_context(method),
                initializer=_init_gradient_worker,
                initargs=(self.device, self.config, self.initial_layout),
            )
        return self._executors[shard_index]

    # -- evaluation -----------------------------------------------------------

    def qml_expectations_rows(
        self,
        circuit,
        rows: np.ndarray,
        features: np.ndarray,
        row_labels: Optional[np.ndarray] = None,
        witness_weights: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        rows = np.asarray(rows, dtype=float)
        features = np.asarray(features, dtype=float)
        if features.ndim == 1:
            features = features[None, :]
        return self._evaluate(
            "qml", circuit, rows, row_labels, witness_weights,
            features=features, plan=None,
        )

    def vqe_energy_rows(
        self,
        ansatz,
        plan,
        rows: np.ndarray,
        row_labels: Optional[np.ndarray] = None,
        witness_weights: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        rows = np.asarray(rows, dtype=float)
        return self._evaluate(
            "vqe", ansatz, rows, row_labels, witness_weights,
            features=None, plan=plan,
        )

    def _evaluate(
        self, kind, circuit, rows, row_labels, witness_weights, features, plan
    ) -> np.ndarray:
        if rows.ndim != 2:
            raise ValueError("gradient engines expect a 2-D row matrix")
        n_rows = rows.shape[0]
        labels = (
            np.arange(n_rows)
            if row_labels is None
            else np.asarray(row_labels, dtype=int).ravel()
        )
        witness = (
            np.asarray(rows[0], dtype=float)
            if witness_weights is None
            else np.asarray(witness_weights, dtype=float).ravel()
        )
        self.scheduler_stats.steps += 1
        shard_count = min(self.workers, n_rows)

        def in_process() -> np.ndarray:
            if kind == "qml":
                return self.engine.qml_expectations_rows(
                    circuit, rows, features,
                    row_labels=labels, witness_weights=witness,
                )
            return self.engine.vqe_energy_rows(
                circuit, plan, rows,
                row_labels=labels, witness_weights=witness,
            )

        if shard_count <= 1:
            self.scheduler_stats.in_process_steps += 1
            self.last_shard_reports = []
            return in_process()

        splits = np.array_split(np.arange(n_rows), shard_count)
        try:
            results = self._run_sharded(
                kind, circuit, rows, labels, witness, features, plan, splits
            )
        except Exception as exc:  # noqa: BLE001 — degrade on any fault
            self._degrade(exc)
            return in_process()
        self.scheduler_stats.sharded_steps += 1
        return self._merge_results(results, splits, rows.shape, kind)

    def _run_sharded(
        self, kind, circuit, rows, labels, witness, features, plan, splits
    ) -> List[_GradientShardResult]:
        seed = int(self.config.seed)
        futures = []
        for shard_index, split in enumerate(splits):
            task = _GradientShardTask(
                shard_index=shard_index,
                seed=stable_seed((seed, "gradient-shard", shard_index)),
                kind=kind,
                circuit=circuit,
                rows=rows[split],
                row_labels=labels[split],
                witness_weights=witness,
                features=features,
                plan=plan,
                fail=shard_index in self._fault_shards,
            )
            futures.append(
                self._ensure_executor(shard_index).submit(
                    _run_gradient_shard, task
                )
            )
        self.scheduler_stats.shards_dispatched += len(futures)
        results: List[_GradientShardResult] = []
        failures: List[BaseException] = []
        for future in futures:
            try:
                results.append(future.result())
            except Exception as exc:  # noqa: BLE001 — collected, then degrade
                failures.append(exc)
        if failures:
            self.scheduler_stats.worker_failures += len(failures)
            raise _GradientShardFailure(results, failures[0])
        return results

    # -- merging -------------------------------------------------------------

    def _merge_results(
        self, results, splits, rows_shape, kind
    ) -> np.ndarray:
        by_shard = sorted(results, key=lambda r: r.shard_index)
        first = np.asarray(by_shard[0].values)
        out_shape = (rows_shape[0],) + first.shape[1:]
        out = np.empty(out_shape, dtype=first.dtype)
        reports: List[dict] = []
        for result in by_shard:
            out[splits[result.shard_index]] = result.values
            self._merge_shard(result, reports)
        self.last_shard_reports = reports
        return out

    def _merge_shard(
        self, result: _GradientShardResult, reports: List[dict]
    ) -> None:
        self.engine.stats.merge(result.engine_stats)
        self.transpile_cache.stats.merge(result.bound_stats)
        self.parametric_transpile_cache.stats.merge(result.parametric_stats)
        self._adopt_entries(result)
        reports.append(
            {
                "shard": result.shard_index,
                "rows": int(result.engine_stats.rows_evaluated),
                "elapsed_seconds": result.elapsed_seconds,
            }
        )

    def _adopt_entries(self, result: _GradientShardResult) -> None:
        stats = self.scheduler_stats
        stats.adopted_bound_entries += self.transpile_cache.adopt_entries(
            result.bound_entries
        )
        structures, bound = self.parametric_transpile_cache.adopt_entries(
            result.parametric_entries
        )
        stats.adopted_structures += structures
        stats.adopted_parametric_bound += bound

    # -- degradation ----------------------------------------------------------

    def _degrade(self, exc: Exception) -> None:
        """Account a failed step and prepare the in-process retry."""
        if isinstance(exc, _GradientShardFailure):
            # adopt what the healthy shards compiled so the retry is warm;
            # their stats/values are dropped — the retry recounts everything
            for result in sorted(exc.results, key=lambda r: r.shard_index):
                self._adopt_entries(result)
            cause: BaseException = exc.cause
        else:
            cause = exc
        if isinstance(cause, BrokenProcessPool):
            # at least one pool is unusable; drop them all so the next step
            # restarts from fresh workers
            try:
                self.close()
            except Exception:
                self._executors = [None] * max(0, self.workers)
        self.scheduler_stats.degraded_steps += 1
        self.last_shard_reports = []
        warnings.warn(
            "sharded gradient evaluation degraded to the in-process path: "
            f"{cause!r}",
            RuntimeWarning,
            stacklevel=3,
        )
