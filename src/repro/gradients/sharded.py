"""Sharded multi-process parameter-shift gradient evaluation.

:class:`ShardedGradientEngine` partitions one gradient step's evaluation
rows (shifted weight vectors) across a persistent pool of worker processes,
the way :class:`~repro.execution.scheduler.ShardedExecutionEngine` shards a
population's structure groups across generations.  Each worker owns a full
sequential-mode :class:`~repro.gradients.engine.BatchedGradientEngine` —
including its own transpile/parametric caches, which stay warm across
training epochs — and after every step each worker's *new* cache entries
and counter deltas are merged back into the parent engine through the
explicit :class:`~repro.execution.stats.MergeableStats` protocol.

Determinism contract
--------------------
Gradients are bit-for-bit independent of the worker count.  Three rules make
that hold (mirroring the scheduler's contract):

1. **The unit of evaluation is one weight row, everywhere.**  A row (one
   shifted weight vector, all samples) is always evaluated through one
   sequential-mode engine call — inside a worker, inside the parent when
   ``workers <= 1``, and inside the parent again when a step degrades — so
   the simulation batches, template binds and cache-state evolution a row
   sees are identical no matter where it runs.  The same hermeticity makes
   retrying a failed shard on a different pool bitwise safe.
2. **Shard assignment is a pure function of the row count** —
   ``np.array_split`` over the global row indices, never pool state.
3. **Randomness is pinned by content.**  Shot-job seed keys and measured
   VQE reseeds derive from *global* row labels shipped with each task, so
   a row samples identically under any partition.  Both parent and worker
   engines start from fresh caches with the step's center weights as the
   template witness, so cold-compiled template variants match bit-for-bit
   across processes.

Resilience (see :mod:`repro.execution.resilience`)
--------------------------------------------------
Shard failures are classified and handled exactly like the execution
scheduler's: infrastructure faults (broken pool, deadline timeout flagged
by the watchdog) are retried with capped backoff, rebalancing the failed
shard's rows onto surviving workers while healthy shards' values are kept,
and killed pools respawn in the background.  Worker task errors get one
in-process confirmation run of the failed rows — transient errors recover
with a warning, reproducing errors re-raise.  Whole-step in-process
degradation (``degraded_steps``) remains only as the last resort when
retries are exhausted.  ``REPRO_FAULTS`` (:mod:`repro.execution.faults`)
injects deterministic faults for all of the above; a fault can delay a
step but never change a gradient.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .. import telemetry
from ..telemetry.spans import SpanRecord
from ..execution.cache import ParametricCacheStats, TranspileCacheStats
from ..execution.faults import FaultInjector, FaultPlan
from ..execution.resilience import (
    ResilientDispatcher,
    RetriesExhausted,
    RetryPolicy,
    WorkerPoolGroup,
)
from ..execution.stats import MergeableStats
from ..utils.rng import stable_seed
from .engine import BatchedGradientEngine, GradientEngineConfig

__all__ = ["GradientShardStats", "ShardedGradientEngine"]


@dataclass
class GradientShardStats(MergeableStats):
    """Counters describing what the sharded gradient scheduler did."""

    steps: int = 0
    sharded_steps: int = 0
    in_process_steps: int = 0
    #: whole-step in-process fallbacks only — the genuine last resort
    degraded_steps: int = 0
    shards_dispatched: int = 0
    worker_failures: int = 0
    #: infrastructure-failed shard tasks re-dispatched (retry rounds)
    retried_shards: int = 0
    #: retried tasks that ran on a pool other than their home pool
    rebalanced_shards: int = 0
    #: dead pools brought back in the background after a step
    respawned_pools: int = 0
    #: shards the watchdog declared hung past their deadline
    deadline_timeouts: int = 0
    #: wall time the watchdog spent gathering deadline-bounded rounds
    watchdog_wait_seconds: float = 0.0
    #: worker task errors re-run once in-process for confirmation
    task_error_confirmations: int = 0
    #: confirmations that succeeded — transient faults recovered in place
    flaky_recoveries: int = 0
    adopted_bound_entries: int = 0
    adopted_structures: int = 0
    adopted_parametric_bound: int = 0


# ---------------------------------------------------------------------------
# Task / result payloads crossing the process boundary
# ---------------------------------------------------------------------------


# repro: pickle-boundary
@dataclass
class _GradientShardTask:
    """One shard's slice of a gradient step's evaluation rows."""

    shard_index: int
    #: shard-stable seed (defensive, like the scheduler's rule 3: no sharded
    #: gradient path consumes an unpinned stream today)
    seed: int
    kind: str                         # "qml" | "vqe"
    circuit: object                   # the QML circuit / VQE ansatz
    rows: np.ndarray                  # this shard's weight rows
    row_labels: np.ndarray            # global row indices of ``rows``
    witness_weights: np.ndarray       # the step's center weight vector
    features: Optional[np.ndarray]    # QML feature batch (None for VQE)
    plan: Optional[object]            # VQE MeasurementPlan (None for QML)
    #: 0-based step index, the ``gen`` coordinate for fault scoping
    generation: int = 0
    #: dispatch attempt of this task (0 = first dispatch, +1 per retry)
    attempt: int = 0
    #: deterministic fault-injection trigger (None outside chaos runs)
    injector: Optional[FaultInjector] = None


# repro: pickle-boundary
@dataclass
class _GradientShardResult:
    """Row values plus the accounting deltas one shard produced."""

    shard_index: int
    values: np.ndarray
    engine_stats: object
    bound_stats: TranspileCacheStats
    parametric_stats: ParametricCacheStats
    bound_entries: list
    parametric_entries: dict
    elapsed_seconds: float = 0.0
    attempt: int = 0
    #: the worker-side telemetry spans for this shard (always captured —
    #: the parent re-ids them into its tracer when tracing is active and
    #: drops them otherwise; see ``_GradientWorkerContext.run``)
    spans: List[SpanRecord] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Worker-process side
# ---------------------------------------------------------------------------


class _GradientWorkerContext:
    """Per-process sequential gradient engine plus export bookkeeping."""

    def __init__(self, device, config, initial_layout) -> None:
        self.engine = BatchedGradientEngine(
            device, config, initial_layout=initial_layout, engine="sequential"
        )
        self.exported_bound: set = set()
        self.exported_structures: set = set()
        self.exported_parametric_bound: set = set()

    def _fire(self, task: _GradientShardTask, point: str) -> None:
        if task.injector is not None:
            task.injector.fire(
                point, task.shard_index, task.generation, task.attempt
            )

    def _rows(self, task: _GradientShardTask, rows, labels) -> np.ndarray:
        if task.kind == "qml":
            return self.engine.qml_expectations_rows(
                task.circuit,
                rows,
                task.features,
                row_labels=labels,
                witness_weights=task.witness_weights,
            )
        return self.engine.vqe_energy_rows(
            task.circuit,
            task.plan,
            rows,
            row_labels=labels,
            witness_weights=task.witness_weights,
        )

    def run(self, task: _GradientShardTask) -> _GradientShardResult:
        """Evaluate one shard task, always under a telemetry capture.

        Mirrors ``_WorkerContext.run``: the capture runs whether or not
        tracing was requested, and the root ``worker.gradient_shard``
        span's duration doubles as the shard's ``elapsed_seconds`` report.
        """
        self._fire(task, "task_receive")
        tracer = telemetry.get_tracer()
        with tracer.capture() as spans:
            with tracer.span(
                "worker.gradient_shard",
                shard=task.shard_index,
                step=task.generation,
                attempt=task.attempt,
            ):
                result = self._execute(task)
        # observation-only payload riding home on the result — nothing here
        # feeds gradient values, seeds or scheduling
        result.spans = spans
        result.elapsed_seconds = spans[-1].duration
        self._fire(task, "result_send")
        return result  # repro: ignore[telemetry-flow] -- span buffer + root-span elapsed ride the shard result as its observational timing report

    def _execute(self, task: _GradientShardTask) -> _GradientShardResult:
        engine = self.engine
        engine_before = engine.stats.copy()
        bound_before = engine.transpile_cache.stats.copy()
        parametric_before = engine.parametric_transpile_cache.stats.copy()

        if task.injector is not None and len(task.rows) > 1:
            # split after the first row so mid_evaluation faults discard
            # partially completed work; rows are hermetic (contract rule 1),
            # so the split never changes a value — and it only happens under
            # an active fault plan, so fault-free stats stay comparable
            head = self._rows(task, task.rows[:1], task.row_labels[:1])
            self._fire(task, "mid_evaluation")
            tail = self._rows(task, task.rows[1:], task.row_labels[1:])
            values = np.concatenate([head, tail], axis=0)
        else:
            values = self._rows(task, task.rows, task.row_labels)
            self._fire(task, "mid_evaluation")

        bound_entries = engine.transpile_cache.export_entries(self.exported_bound)
        parametric_entries = engine.parametric_transpile_cache.export_entries(
            self.exported_structures, self.exported_parametric_bound
        )
        # Exclusion sets are refreshed from the caches (not accumulated): an
        # entry evicted worker-side and recompiled later must ship again, and
        # the sets must stay bounded by the cache sizes.
        self.exported_bound = engine.transpile_cache.export_keys()
        self.exported_structures, self.exported_parametric_bound = (
            engine.parametric_transpile_cache.export_keys()
        )
        return _GradientShardResult(
            shard_index=task.shard_index,
            values=values,
            engine_stats=engine.stats.diff(engine_before),
            bound_stats=engine.transpile_cache.stats.diff(bound_before),
            parametric_stats=engine.parametric_transpile_cache.stats.diff(
                parametric_before
            ),
            bound_entries=bound_entries,
            parametric_entries=parametric_entries,
            attempt=task.attempt,
        )


_GRADIENT_WORKER_CONTEXT: Optional[_GradientWorkerContext] = None


def _init_gradient_worker(device, config, initial_layout, spawn_probe=None) -> None:
    if spawn_probe is not None:
        injector, shard_index, generation, attempt = spawn_probe
        injector.fire("pool_spawn", shard_index, generation, attempt)
    global _GRADIENT_WORKER_CONTEXT
    _GRADIENT_WORKER_CONTEXT = _GradientWorkerContext(
        device, config, initial_layout
    )


def _run_gradient_shard(task: _GradientShardTask) -> _GradientShardResult:
    if _GRADIENT_WORKER_CONTEXT is None:
        raise RuntimeError("gradient worker used before _init_gradient_worker")
    return _GRADIENT_WORKER_CONTEXT.run(task)


def _ping(value: int) -> int:
    """No-op task used by warm-up pings and background pool respawns."""
    return value


# ---------------------------------------------------------------------------
# Parent-process scheduler
# ---------------------------------------------------------------------------


class ShardedGradientEngine:
    """A gradient engine that fans evaluation rows out to worker processes.

    Drop-in for the sequential-mode :class:`BatchedGradientEngine` (it owns
    one for the in-process, confirmation and degraded paths):
    ``shift_plan``, ``qml_expectations_rows`` and ``vqe_energy_rows`` have
    identical signatures and — by the determinism contract above — produce
    identical floats.  Both the parent engine and every worker start from
    *fresh* caches, so warm state never depends on what ran before the
    engine was constructed.

    The retry/deadline policy reads the ``shard_*`` fields off the gradient
    config (:class:`~repro.gradients.engine.GradientEngineConfig`);
    ``fault_plan`` (default: parsed from ``REPRO_FAULTS``) drives the
    deterministic chaos harness.

    Call :meth:`close` (or use the context-manager protocol) to shut the
    worker pools down.
    """

    def __init__(
        self,
        device=None,
        config: Optional[GradientEngineConfig] = None,
        *,
        initial_layout=None,
        workers: int = 1,
        fault_plan: Optional[FaultPlan] = None,
        pools: Optional[WorkerPoolGroup] = None,
    ) -> None:
        self.device = device
        self.config = config if config is not None else GradientEngineConfig()
        self.initial_layout = initial_layout
        self.workers = int(workers)
        self.engine = BatchedGradientEngine(
            device, self.config, initial_layout=initial_layout,
            engine="sequential",
        )
        self.scheduler_stats = GradientShardStats()
        self.last_shard_reports: List[dict] = []
        self.retry_policy = RetryPolicy.from_config(self.config)
        self.fault_plan = (
            FaultPlan.from_env() if fault_plan is None else fault_plan
        )
        self._current_step = 0
        if pools is not None:
            # Externally-owned pool group: the caller controls the pool
            # lifecycle (close() leaves it running) and must have spawned it
            # with this engine's gradient worker initializer — gradient
            # worker contexts are built entirely from initargs, so a shared
            # group serves exactly one (device, config, layout) triple.
            self._owns_pools = False
            self._pools = pools
            self.workers = min(self.workers, pools.size)
        else:
            self._owns_pools = True
            # One single-process pool per shard slot, so shard i always runs
            # in the same worker process and its caches stay warm across
            # steps.
            self._pools = WorkerPoolGroup(
                max(0, self.workers), _init_gradient_worker, self._spawn_initargs
            )

    def _spawn_initargs(self, shard_index: int, spawn_attempt: int) -> tuple:
        injector = self.fault_plan.injector("gradient")
        probe = (
            (injector, shard_index, self._current_step, spawn_attempt)
            if injector is not None
            else None
        )
        return (self.device, self.config, self.initial_layout, probe)

    # -- delegation -----------------------------------------------------------

    @property
    def stats(self):
        return self.engine.stats

    @property
    def transpile_cache(self):
        return self.engine.transpile_cache

    @property
    def parametric_transpile_cache(self):
        return self.engine.parametric_transpile_cache

    @property
    def engine_mode(self) -> str:
        return "sharded"

    def resolve_mode(self) -> str:
        return self.engine.resolve_mode()

    def shift_plan(self, circuit):
        return self.engine.shift_plan(circuit)

    # -- lifecycle -----------------------------------------------------------

    @property
    def _executors(self):
        """The per-shard pool slots (None = not spawned / killed)."""
        return self._pools.slots

    def warm_up(self) -> None:
        """Start the worker pools ahead of time (overlapping startups)."""
        if self.workers > 1:
            futures = [
                self._pools.ensure(shard_index).submit(_ping, shard_index)
                for shard_index in range(self.workers)
            ]
            for future in futures:
                future.result()

    def close(self) -> None:
        """Shut every worker pool down (idempotent, safe on partial init).

        Externally-owned pool groups are left running for their owner.
        """
        pools = getattr(self, "_pools", None)
        if pools is not None and getattr(self, "_owns_pools", True):
            pools.close()

    def __enter__(self) -> "ShardedGradientEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort; close()/__exit__ is the real API
        try:
            self.close()
        except Exception:
            pass

    # -- evaluation -----------------------------------------------------------

    def qml_expectations_rows(
        self,
        circuit,
        rows: np.ndarray,
        features: np.ndarray,
        row_labels: Optional[np.ndarray] = None,
        witness_weights: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        rows = np.asarray(rows, dtype=float)
        features = np.asarray(features, dtype=float)
        if features.ndim == 1:
            features = features[None, :]
        return self._evaluate(
            "qml", circuit, rows, row_labels, witness_weights,
            features=features, plan=None,
        )

    def vqe_energy_rows(
        self,
        ansatz,
        plan,
        rows: np.ndarray,
        row_labels: Optional[np.ndarray] = None,
        witness_weights: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        rows = np.asarray(rows, dtype=float)
        return self._evaluate(
            "vqe", ansatz, rows, row_labels, witness_weights,
            features=None, plan=plan,
        )

    def _evaluate(
        self, kind, circuit, rows, row_labels, witness_weights, features, plan
    ) -> np.ndarray:
        if rows.ndim != 2:
            raise ValueError("gradient engines expect a 2-D row matrix")
        n_rows = rows.shape[0]
        labels = (
            np.arange(n_rows)
            if row_labels is None
            else np.asarray(row_labels, dtype=int).ravel()
        )
        witness = (
            np.asarray(rows[0], dtype=float)
            if witness_weights is None
            else np.asarray(witness_weights, dtype=float).ravel()
        )
        step = self.scheduler_stats.steps
        self.scheduler_stats.steps += 1
        self._current_step = step
        shard_count = min(self.workers, n_rows)

        def in_process(split: np.ndarray) -> np.ndarray:
            if kind == "qml":
                return self.engine.qml_expectations_rows(
                    circuit, rows[split], features,
                    row_labels=labels[split], witness_weights=witness,
                )
            return self.engine.vqe_energy_rows(
                circuit, plan, rows[split],
                row_labels=labels[split], witness_weights=witness,
            )

        all_rows = np.arange(n_rows)
        if shard_count <= 1:
            self.scheduler_stats.in_process_steps += 1
            self.last_shard_reports = []
            return in_process(all_rows)

        splits = np.array_split(all_rows, shard_count)
        with telemetry.span(
            "gradient.step",
            step=step, kind=kind, shards=shard_count, rows=int(n_rows),
        ):
            try:
                results, confirmed = self._run_resilient(
                    kind, circuit, rows, labels, witness, features, plan,
                    splits, step, in_process,
                )
            except RetriesExhausted as exc:
                self._degrade(exc)
                return in_process(all_rows)
            self.scheduler_stats.sharded_steps += 1
            return self._merge_results(results, confirmed, splits, rows.shape)

    def _run_resilient(
        self, kind, circuit, rows, labels, witness, features, plan,
        splits, step, in_process_fn,
    ):
        """Dispatch one step under the retry/deadline policy.

        Returns ``(shard results, confirmed values)`` where confirmed values
        are shard-index→row-values recovered from worker task errors by the
        one-shot in-process confirmation run.  A task error that reproduces
        in-process is re-raised: it is a real bug, not a fault.
        """
        seed = int(self.config.seed)
        injector = self.fault_plan.injector("gradient")
        tasks: Dict[int, _GradientShardTask] = {}
        for shard_index, split in enumerate(splits):
            tasks[shard_index] = _GradientShardTask(
                shard_index=shard_index,
                seed=stable_seed((seed, "gradient-shard", shard_index)),
                kind=kind,
                circuit=circuit,
                rows=rows[split],
                row_labels=labels[split],
                witness_weights=witness,
                features=features,
                plan=plan,
                generation=step,
                injector=injector,
            )
        self.scheduler_stats.shards_dispatched += len(tasks)
        stats = self.scheduler_stats
        retried_before = stats.retried_shards
        dispatcher = ResilientDispatcher(
            self._pools, self.retry_policy, _run_gradient_shard, _ping, stats
        )
        results, task_errors = dispatcher.run(tasks)

        confirmed: Dict[int, np.ndarray] = {}
        for shard_index in sorted(task_errors):
            cause = task_errors[shard_index]
            stats.task_error_confirmations += 1
            try:
                confirmed[shard_index] = in_process_fn(splits[shard_index])
            except Exception as confirmed_exc:
                # the error reproduces without the worker machinery: a
                # deterministic task bug — surface it, never retry it away
                raise confirmed_exc from cause
            stats.flaky_recoveries += 1
        recovered = stats.retried_shards - retried_before
        if recovered or task_errors:
            warnings.warn(
                f"sharded gradient step recovered from worker faults "
                f"(retried_shards={recovered}, "
                f"confirmed_task_errors={len(task_errors)}); values unchanged",
                RuntimeWarning,
                stacklevel=5,
            )
        return results, confirmed

    # -- merging -------------------------------------------------------------

    def _merge_results(
        self, results: Dict[int, _GradientShardResult], confirmed, splits,
        rows_shape,
    ) -> np.ndarray:
        first = np.asarray(
            next(iter(results.values())).values
            if results
            else confirmed[min(confirmed)]
        )
        out_shape = (rows_shape[0],) + first.shape[1:]
        out = np.empty(out_shape, dtype=first.dtype)
        reports: List[dict] = []
        for shard_index in sorted(results):
            result = results[shard_index]
            out[splits[shard_index]] = result.values
            self._merge_shard(result, reports)
        for shard_index in sorted(confirmed):
            out[splits[shard_index]] = confirmed[shard_index]
        self.last_shard_reports = reports
        return out

    def _merge_shard(
        self, result: _GradientShardResult, reports: List[dict]
    ) -> None:
        if result.spans:
            # re-parent the worker's spans under the open gradient.step
            # span; a no-op (dropped buffer) when tracing is inactive
            telemetry.adopt_spans(result.spans)
        self.engine.stats.merge(result.engine_stats)
        self.transpile_cache.stats.merge(result.bound_stats)
        self.parametric_transpile_cache.stats.merge(result.parametric_stats)
        self._adopt_entries(result)
        reports.append(
            {
                "shard": result.shard_index,
                "rows": int(result.engine_stats.rows_evaluated),
                "attempts": result.attempt + 1,
                "elapsed_seconds": result.elapsed_seconds,
            }
        )

    def _adopt_entries(self, result: _GradientShardResult) -> None:
        stats = self.scheduler_stats
        stats.adopted_bound_entries += self.transpile_cache.adopt_entries(
            result.bound_entries
        )
        structures, bound = self.parametric_transpile_cache.adopt_entries(
            result.parametric_entries
        )
        stats.adopted_structures += structures
        stats.adopted_parametric_bound += bound

    # -- degradation ----------------------------------------------------------

    def _degrade(self, exc: RetriesExhausted) -> None:
        """Account a failed step and prepare the in-process retry.

        Reached only when the resilient dispatcher exhausted every retry
        round — the last resort, not the first response to a fault.
        """
        # adopt what the healthy shards compiled so the retry is warm;
        # their stats/values are dropped — the retry recounts everything
        for shard_index in sorted(exc.results):
            self._adopt_entries(exc.results[shard_index])
        self.scheduler_stats.degraded_steps += 1
        self.last_shard_reports = []
        warnings.warn(
            "sharded gradient evaluation degraded to the in-process path "
            f"after exhausting shard retries: {exc.cause!r}",
            RuntimeWarning,
            stacklevel=4,
        )
