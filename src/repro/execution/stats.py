"""Explicit aggregation for the execution layer's counter dataclasses.

Every stats object in :mod:`repro.execution` (engine counters, transpile-cache
counters, parametric-cache counters, scheduler counters) is a flat dataclass
of numeric fields.  Before the sharded scheduler existed they were mutated ad
hoc wherever work happened; once the same counters live in several worker
processes, ad-hoc mutation silently double-counts (a worker's counter and the
parent's copy of it both grow) or silently drops fields (a hand-written merge
forgets a newly added counter).

This module makes aggregation a first-class, tested operation:

* :meth:`MergeableStats.copy` — an independent snapshot;
* :meth:`MergeableStats.diff` — the field-wise delta since a snapshot (what a
  worker did during one task);
* :meth:`MergeableStats.merge` — field-wise accumulation of a delta into a
  parent counter.

``diff``/``merge`` iterate :func:`dataclasses.fields`, so a counter added to
any stats dataclass participates in sharded accounting automatically — there
is no per-field merge code to forget to update.  The invariant the sharded
tests pin: *parent counters after merging every shard's delta equal the
counters a single in-process evaluation of the same population would have
produced* (for every partition-independent field).
"""

from __future__ import annotations

import dataclasses

__all__ = ["MergeableStats"]


class MergeableStats:
    """Mixin for flat numeric counter dataclasses.

    Subclasses must be dataclasses whose fields are all ``int`` or ``float``
    counters (properties such as hit rates are derived, not fields, and are
    therefore never aggregated — they are recomputed from the merged
    counters).  The per-backend counters the execution engine harvests from
    :mod:`repro.backends` engines follow the same rule: backends report flat
    deltas (:meth:`~repro.backends.base.SimulationBackend.stats_delta`) that
    are added into ``ExecutionStats`` fields, so they shard, diff and merge
    like every other counter with no special cases.
    """

    def copy(self):
        """An independent snapshot of the current counters."""
        return dataclasses.replace(self)

    def to_dict(self) -> dict:
        """Field name → value, for JSON reports (benchmarks, shard logs)."""
        return {
            field.name: getattr(self, field.name)
            for field in dataclasses.fields(self)
        }

    def diff(self, baseline: "MergeableStats"):
        """The field-wise delta accumulated since ``baseline``.

        ``baseline`` must be an earlier :meth:`copy` of the same stats type;
        the result is a new instance holding ``self - baseline`` per field.
        """
        self._check(baseline)
        delta = {
            field.name: getattr(self, field.name) - getattr(baseline, field.name)
            for field in dataclasses.fields(self)
        }
        return type(self)(**delta)

    def merge(self, other: "MergeableStats"):
        """Accumulate ``other`` (typically a :meth:`diff` delta) in place."""
        self._check(other)
        for field in dataclasses.fields(self):
            setattr(
                self, field.name, getattr(self, field.name) + getattr(other, field.name)
            )
        return self

    def _check(self, other: "MergeableStats") -> None:
        if type(other) is not type(self):
            raise TypeError(
                f"cannot aggregate {type(other).__name__} into {type(self).__name__}"
            )
