"""Population execution engine for the evolutionary co-search hot path.

The co-search evaluates hundreds of (SubCircuit, qubit-mapping) candidates per
generation.  Evaluating them one at a time wastes most of the wall clock on
work that is shared across the population.  This package batches that work
along four axes:

**Genome grouping.**  Candidates are grouped by SubCircuit genome
(``config.as_gene()``).  The standalone circuit, the inherited SuperCircuit
weights and the gate-fusion plan are built once per unique genome — a
mapping-only or late-generation population collapses to a handful of circuit
builds.  Everything that does not depend on the qubit mapping (the noise-free
forward pass, QML validation losses, VQE energies) is computed once per group
and shared by every candidate in it.

**Batched statevector evaluation.**  Noise-free forwards run over the whole
validation set at once in the ``(batch,) + (2,) * n_qubits`` state layout
(the paper's Fig. 12 batched execution mode), with consecutive concrete
(weight-bound) gate segments fused into dense ≤ ``max_fused_qubits`` unitaries
via :mod:`repro.quantum.fusion` — TorchQuantum's static mode — so the hot
loop applies fewer, larger contractions.  Per-sample encoder gates stay
dynamic and are applied with batched matrices.

**Parametric transpilation.**  In ``noise_sim`` mode every (genome, mapping)
structure is compiled *once* into a :class:`repro.transpile.parametric.
ParametricCompiledCircuit` — layout, routing, decomposition and the
value-agnostic optimization passes run per structure, and each validation
sample's angles are filled into the compiled template in O(params) through
the :class:`ParametricTranspileCache` (structure-keyed, with a short list of
witness variants and the bound-key cache as exact fallback for bindings that
cross a compile-time branch).  ``EstimatorConfig.parametric_transpile=False``
replays the PR-2 bound-key path exactly.

**LRU transpilation cache.**  Compilations are memoized by (bound-circuit
fingerprint, device, initial layout, optimization level, pinned seed).
Duplicated candidates, surviving parents and repeated (genome, mapping)
pairs across generations reuse the exact compiled object instead of
re-running layout, routing, decomposition and the optimization passes.
Compiled circuits are treated as immutable shared state.  Both caches are
owned by the :class:`~repro.core.estimator.PerformanceEstimator`, so they
persist across co-search restarts and into the deploy/evaluate backend.

**Pluggable simulation backends.**  The engine contains no simulation code of
its own: every group's bindings are dispatched to a
:mod:`repro.backends` engine selected by the deterministic
:class:`~repro.backends.dispatch.BackendDispatcher` policy (estimator mode,
qubit count, capability flags, with the ``EstimatorConfig(backend=...)`` /
``REPRO_BACKEND`` override applied wherever capable).  ``noise_sim``
candidates go to the batched density-matrix backend, which groups
structurally aligned circuits (same gates and qubits at every position) and
evolves each group as one ``(batch,) + (2,) * 2n`` density-matrix stack —
fed, on the parametric path, straight from vectorized template bindings (one
affine matmul per structure, no per-sample ``Instruction`` construction).
Noise-free terms run on the batched statevector backend, and shot-based
(real-QC-style) searches on the pinned-seed shot sampler.

**Sharded multi-process scheduling.**  ``EstimatorConfig(workers=N)`` routes
whole-population evaluation through :class:`ShardedExecutionEngine`
(:mod:`repro.execution.scheduler`): structure groups are deterministically
partitioned across a persistent ``ProcessPoolExecutor``, worker-local caches
stay warm across generations, and every worker's new cache entries and
counter deltas are merged back into the parent estimator's caches after each
generation.  The scheduler's determinism contract (see its module docstring)
keeps scores bit-for-bit independent of the worker count.

**Resilience & fault injection.**  Shard failures are classified
(:mod:`repro.execution.resilience`): infrastructure faults (broken pools,
watchdog-detected deadline timeouts) are retried with capped backoff onto
surviving workers — healthy shards' results are kept — while worker task
errors are confirmed once in-process and re-raised if they reproduce.
Whole-generation degradation is the last resort only.  A deterministic
fault-injection harness (:mod:`repro.execution.faults`, ``REPRO_FAULTS``)
drives the chaos tests that prove a fault can delay a generation but never
change a score.  See ``src/repro/execution/README.md``.

``EstimatorConfig(engine="sequential")`` routes every candidate through the
original per-candidate estimator calls, bit-for-bit identical to the seed
implementation; the equivalence tests in ``tests/execution`` pin the batched
mode against it to 1e-9 on expectations, losses and evolution rankings.
"""

from .cache import (
    ParametricCacheStats,
    ParametricTranspileCache,
    TranspileCache,
    TranspileCacheStats,
)
from .engine import ExecutionEngine, ExecutionStats
from .faults import FaultInjector, FaultPlan, FaultSpec, InjectedFault
from .resilience import (
    RetriesExhausted,
    RetryPolicy,
    ShardDeadlineExceeded,
    classify_failure,
)
from .scheduler import SchedulerStats, ShardedExecutionEngine
from .stats import MergeableStats

# REPRO_SANITIZE=1 arms the runtime cache-mutation sanitizer: every cache
# entry is fingerprinted the moment it is shared across the scheduler's
# process boundary (export_entries/adopt_entries) and re-verified at every
# later share point — post-merge mutation of shared compilations raises
# repro.analysis.CacheMutationError instead of silently eroding the
# determinism contract.  The CI sanitizer lane runs tier-1 this way.
from ..analysis.sanitizer import install_sanitizer, sanitize_requested

if sanitize_requested():
    install_sanitizer()

__all__ = [
    "ParametricCacheStats",
    "ParametricTranspileCache",
    "TranspileCache",
    "TranspileCacheStats",
    "ExecutionEngine",
    "ExecutionStats",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "MergeableStats",
    "RetriesExhausted",
    "RetryPolicy",
    "SchedulerStats",
    "ShardDeadlineExceeded",
    "ShardedExecutionEngine",
    "classify_failure",
]
