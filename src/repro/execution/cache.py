"""LRU transpilation cache for the population execution engine.

During the evolutionary co-search the same (SubCircuit genome, qubit mapping)
pair is compiled over and over: duplicated candidates inside a population,
parents that survive across generations, and — in ``noise_sim`` mode — every
validation sample of a candidate that another candidate with the same genome
and mapping already executed.  Compilation is pure (layout, routing,
decomposition and the optimization passes are deterministic functions of the
circuit, device, layout and optimization level), so compiled circuits can be
shared freely as long as nobody mutates them.

The cache key is the full fingerprint of the *bound* logical circuit (gate
names, qubits and parameter values) plus the device, the normalized initial
layout and the optimization level.  Keying on the bound instruction stream
rather than the genome alone keeps the cache exact: two candidates only share
a compilation when their compiled circuits would be identical object-for-
object.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, List, Optional, Tuple

import numpy as np

from ..devices.library import Device
from ..quantum.circuit import ParameterizedCircuit, QuantumCircuit
from ..transpile.compiler import CompiledCircuit, transpile
from ..transpile.parametric import (
    ParametricCompiledCircuit,
    TemplateBatchBinding,
    _default_witness,
    parametric_fingerprint,
    parametric_transpile,
)
# Re-exported here for backwards compatibility: stable_seed grew users outside
# the execution layer (repro.backends pins shot seeds with it) and now lives
# with the other determinism helpers in repro.utils.rng.
from ..utils.rng import stable_seed  # noqa: F401
from ..utils import clock
from .. import telemetry
from .stats import MergeableStats

__all__ = [
    "TranspileCacheStats",
    "TranspileCache",
    "ParametricCacheStats",
    "ParametricTranspileCache",
    "stable_seed",
]


@dataclass
class TranspileCacheStats(MergeableStats):
    """Hit/miss counters of a :class:`TranspileCache`.

    Aggregation (sharded workers merging their deltas into the parent
    estimator's counters) goes through the explicit
    :class:`~repro.execution.stats.MergeableStats` protocol, never ad-hoc
    field mutation.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    compile_seconds: float = 0.0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


def _normalize_layout(initial_layout) -> Hashable:
    """A hashable, order-insensitive representation of a layout spec."""
    if initial_layout is None or isinstance(initial_layout, str):
        return initial_layout
    if isinstance(initial_layout, dict):
        return ("dict",) + tuple(sorted(
            (int(k), int(v)) for k, v in initial_layout.items()
        ))
    return ("seq",) + tuple(int(q) for q in initial_layout)


def circuit_fingerprint(circuit: QuantumCircuit) -> Tuple:
    """Hashable fingerprint of a concrete circuit (structure and parameters)."""
    return (
        circuit.n_qubits,
        tuple(
            (inst.gate, inst.qubits, inst.params) for inst in circuit.instructions
        ),
    )


class TranspileCache:
    """An LRU cache mapping logical circuits to their compiled form.

    ``get`` returns the *same* :class:`CompiledCircuit` object for every hit —
    callers must treat compiled circuits as immutable.  The engine's
    regression tests verify that population evaluation never mutates a cached
    compilation.
    """

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize < 1:
            raise ValueError("cache maxsize must be positive")
        self.maxsize = int(maxsize)
        self.stats = TranspileCacheStats()
        self._entries: "OrderedDict[Tuple, CompiledCircuit]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def key_for(
        self,
        circuit: QuantumCircuit,
        device: Device,
        initial_layout,
        optimization_level: int,
        seed: Optional[int] = None,
    ) -> Tuple:
        base = (
            device.name,
            int(optimization_level),
            _normalize_layout(initial_layout),
            circuit_fingerprint(circuit),
        )
        # The transpile seed is pinned per key: ``optimization_level=3`` runs
        # randomized SABRE trials, and an unseeded compile would make cache
        # entries depend on insertion order (first caller wins).  Deriving the
        # seed from the key keeps compilations a pure function of their
        # inputs; an explicit ``seed`` (e.g. a parametric structure's pinned
        # seed, so template binds and exact fallbacks share one compilation
        # stream) overrides the derived one and is part of the key.
        return base + (stable_seed(base) if seed is None else int(seed),)

    def get(
        self,
        circuit: QuantumCircuit,
        device: Device,
        initial_layout=None,
        optimization_level: int = 2,
        seed: Optional[int] = None,
    ) -> CompiledCircuit:
        """Compile ``circuit`` (or return the cached compilation)."""
        key = self.key_for(circuit, device, initial_layout, optimization_level, seed)
        entry = self._entries.get(key)
        if entry is not None:
            self.stats.hits += 1
            self._entries.move_to_end(key)
            return entry
        self.stats.misses += 1
        start = clock.monotonic()
        with telemetry.span("cache.compile", kind="bound"):
            compiled = transpile(
                circuit,
                device,
                initial_layout=initial_layout,
                optimization_level=optimization_level,
                seed=key[-1],
            )
        self.stats.compile_seconds += clock.monotonic() - start
        self._entries[key] = compiled
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return compiled

    # -- sharded-worker entry exchange --------------------------------------

    def export_entries(self, exclude=()) -> list:
        """``(key, compiled)`` pairs not in ``exclude``, in LRU order.

        Workers call this after each shard task with the set of keys they
        already shipped, so only entries compiled *during* the task cross the
        process boundary.
        """
        exclude = set(exclude)
        return [(key, entry) for key, entry in self._entries.items()
                if key not in exclude]

    def export_keys(self) -> set:
        """Current entry keys — a worker's exclusion set for the next export.

        Taken *after* each export (not accumulated across exports): an entry
        evicted and later recompiled must be shipped again, and the exclusion
        set must stay bounded by the cache size.
        """
        return set(self._entries)

    def adopt_entries(self, entries) -> int:
        """Insert compiled circuits produced elsewhere (absent keys only).

        Returns the number adopted.  Adoption is not a lookup: hit/miss
        counters are untouched (the work was already counted by the process
        that compiled the entry), only evictions are recorded when adoption
        pushes the cache over ``maxsize``.  When a key is already present the
        local entry wins, preserving object identity for callers that already
        hold it.
        """
        adopted = 0
        for key, entry in entries:
            if key in self._entries:
                continue
            self._entries[key] = entry
            adopted += 1
            if len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        return adopted

    def clear(self) -> None:
        self._entries.clear()
        self.stats = TranspileCacheStats()


# ---------------------------------------------------------------------------
# Structure-keyed parametric cache
# ---------------------------------------------------------------------------


@dataclass
class ParametricCacheStats(MergeableStats):
    """Counters of a :class:`ParametricTranspileCache`.

    ``structure_*`` counts lookups of compiled circuit *structures* (one per
    (circuit structure, device, layout, optimization level)); ``bind_*``
    counts bound-circuit lookups (one per parameter binding).  ``fallbacks``
    counts bindings that crossed a compile-time branch of every cached
    template variant and were served by a full concrete transpile instead —
    the result is still exact, just not amortized.
    """

    structure_hits: int = 0
    structure_misses: int = 0
    structure_evictions: int = 0
    bind_hits: int = 0
    bind_misses: int = 0
    bind_evictions: int = 0
    fallbacks: int = 0
    variants_compiled: int = 0
    #: vectorized :meth:`ParametricTranspileCache.get_bound_batch` calls and
    #: the rows they served straight from the template (rows that crossed a
    #: branch are re-served by ``get_bound`` and counted there)
    batch_binds: int = 0
    batch_rows: int = 0
    #: :meth:`ParametricTranspileCache.bind_rows` calls (parameter-shift
    #: evaluation matrices) and the rows the first variant served; rows that
    #: crossed a branch go to the bound-key fallback and count in
    #: ``bind_misses``/``fallbacks``
    gradient_binds: int = 0
    gradient_rows: int = 0
    compile_seconds: float = 0.0
    bind_seconds: float = 0.0

    @property
    def structure_requests(self) -> int:
        return self.structure_hits + self.structure_misses

    @property
    def structure_hit_rate(self) -> float:
        requests = self.structure_requests
        return self.structure_hits / requests if requests else 0.0

    @property
    def bind_requests(self) -> int:
        return self.bind_hits + self.bind_misses

    @property
    def bind_hit_rate(self) -> float:
        requests = self.bind_requests
        return self.bind_hits / requests if requests else 0.0

    @property
    def fallback_rate(self) -> float:
        requests = self.bind_requests
        return self.fallbacks / requests if requests else 0.0


class _StructureState:
    """Template variants plus the adaptive-variant miss counter."""

    __slots__ = ("variants", "template_misses")

    def __init__(self) -> None:
        self.variants: list = []
        self.template_misses = 0


class ParametricTranspileCache:
    """An LRU cache of parametric compilations, keyed by circuit *structure*.

    Where :class:`TranspileCache` keys on the bound instruction stream (every
    parameter binding is its own entry compiled by a full pipeline run), this
    cache keys on the unbound structure — gate/qubit/parameter-slot layout,
    device, normalized initial layout, optimization level and the pinned
    transpile seed — and serves each binding by filling the compiled
    template's angle slots.

    Each structure holds a short list of template *variants*: a parametric
    template is traced against a witness binding (a generic, nowhere-zero one
    for the first variant), and a binding that crosses a compile-time branch
    (e.g. a rotation angle that is exactly zero for one sample) cannot reuse
    that witness's template.  Such bindings are served by ``fallback`` — the
    exact bound-key cache — and once a structure has accumulated
    ``variant_threshold`` template misses, the next missing binding compiles
    a new variant with itself as witness (up to ``max_variants``).  A one-off
    pathological sample therefore costs one concrete transpile, while a
    *recurring* branch pattern gets its own amortized template; results are
    identical either way.

    Bound results are memoized in a second LRU so duplicated candidates and
    repeated samples receive the *same* :class:`CompiledCircuit` object,
    which downstream consumers (the batched density runner) rely on for
    deduplication.
    """

    def __init__(
        self,
        maxsize: int = 256,
        bound_maxsize: int = 1024,
        max_variants: int = 4,
        variant_threshold: int = 2,
        fallback: Optional[TranspileCache] = None,
    ) -> None:
        if maxsize < 1 or bound_maxsize < 1:
            raise ValueError("cache maxsize must be positive")
        if max_variants < 1:
            raise ValueError("max_variants must be positive")
        self.maxsize = int(maxsize)
        self.bound_maxsize = int(bound_maxsize)
        self.max_variants = int(max_variants)
        self.variant_threshold = int(variant_threshold)
        self.fallback = fallback if fallback is not None else TranspileCache(bound_maxsize)
        self.stats = ParametricCacheStats()
        self._structures: "OrderedDict[Tuple, _StructureState]" = OrderedDict()
        self._bound: "OrderedDict[Tuple, CompiledCircuit]" = OrderedDict()
        # ParameterizedCircuit objects are long-lived (one per genome group);
        # fingerprinting — and deriving the seed-carrying full key, which
        # serializes the whole fingerprint — per sample would dominate bind
        # time, so both are memoized per (circuit object, device, layout,
        # level).  LRU-bounded: the strong circuit references (needed so
        # CPython cannot recycle the id) must not pin every circuit a
        # long-lived estimator ever saw.
        self._keys: "OrderedDict[int, Tuple[ParameterizedCircuit, dict]]" = (
            OrderedDict()
        )
        self._keys_maxsize = 4 * self.maxsize

    def __len__(self) -> int:
        return len(self._structures)

    # -- keys ---------------------------------------------------------------

    def key_for(
        self,
        circuit: ParameterizedCircuit,
        device: Device,
        initial_layout,
        optimization_level: int,
    ) -> Tuple:
        entry = self._keys.get(id(circuit))
        if entry is None or entry[0] is not circuit:
            entry = (circuit, {})
            self._keys[id(circuit)] = entry
            if len(self._keys) > self._keys_maxsize:
                self._keys.popitem(last=False)
        else:
            self._keys.move_to_end(id(circuit))
        variant = (device.name, int(optimization_level), _normalize_layout(initial_layout))
        key = entry[1].get(variant)
        if key is None:
            base = variant + (parametric_fingerprint(circuit),)
            key = base + (stable_seed(base),)
            entry[1][variant] = key
        return key

    # -- structure lookups ----------------------------------------------------

    def get_structure(
        self,
        circuit: ParameterizedCircuit,
        device: Device,
        initial_layout=None,
        optimization_level: int = 2,
        witness_values: Optional[np.ndarray] = None,
    ) -> ParametricCompiledCircuit:
        """The first template variant for a structure (compiling on miss)."""
        key = self.key_for(circuit, device, initial_layout, optimization_level)
        state = self._structure_state(key)
        if state is None:
            state = self._insert_structure(key)
        if not state.variants:
            state.variants.append(
                self._compile(
                    circuit, device, initial_layout, optimization_level,
                    key[-1], witness_values,
                )
            )
        return state.variants[0]

    def _structure_state(self, key) -> Optional["_StructureState"]:
        state = self._structures.get(key)
        if state is not None:
            self.stats.structure_hits += 1
            self._structures.move_to_end(key)
        return state

    def _insert_structure(self, key) -> "_StructureState":
        self.stats.structure_misses += 1
        state = _StructureState()
        self._structures[key] = state
        if len(self._structures) > self.maxsize:
            self._structures.popitem(last=False)
            self.stats.structure_evictions += 1
        return state

    def _compile(
        self, circuit, device, initial_layout, optimization_level, seed,
        witness_values,
    ) -> ParametricCompiledCircuit:
        start = clock.monotonic()
        with telemetry.span("cache.compile", kind="parametric"):
            compiled = parametric_transpile(
                circuit,
                device,
                initial_layout=initial_layout,
                optimization_level=optimization_level,
                seed=seed,
                witness_values=witness_values,
            )
        self.stats.compile_seconds += clock.monotonic() - start
        self.stats.variants_compiled += 1
        return compiled

    # -- bound lookups --------------------------------------------------------

    def get_bound(
        self,
        circuit: ParameterizedCircuit,
        weights: np.ndarray,
        features_row: Optional[np.ndarray] = None,
        device: Optional[Device] = None,
        initial_layout=None,
        optimization_level: int = 2,
    ) -> CompiledCircuit:
        """The compiled circuit for one parameter binding.

        Identical bindings return the identical object.  Exactness contract:
        the result always matches ``transpile(circuit.bind(weights, row))``
        with this cache's pinned seed — via a template bind when a variant's
        compile-time branches cover the binding, via the bound-key fallback
        cache otherwise.
        """
        if device is None:
            raise ValueError("device is required")
        weights = np.asarray(weights, dtype=float).ravel()
        if features_row is not None:
            features_row = np.asarray(features_row, dtype=float).ravel()
            values = np.concatenate([weights, features_row])
        else:
            values = weights
        key = self.key_for(circuit, device, initial_layout, optimization_level)
        bound_key = (key, values.tobytes())
        bound = self._bound.get(bound_key)
        if bound is not None:
            self.stats.bind_hits += 1
            self._bound.move_to_end(bound_key)
            return bound
        self.stats.bind_misses += 1

        state = self._structure_state(key)
        if state is None:
            state = self._insert_structure(key)
        if not state.variants:
            # The first variant is traced against a hybrid witness: the *real*
            # weights (weight-dependent branch signs are shared by every
            # sample of this structure) joined with generic nowhere-zero
            # feature values — a pathological first sample (e.g. a blank
            # image pixel encoding an exact-zero rotation) must not poison
            # the template every other sample will use.
            if features_row is not None and len(features_row):
                generic = _default_witness(len(features_row), None)
                witness = np.concatenate([weights, generic])
            else:
                witness = values
            state.variants.append(
                self._compile(
                    circuit, device, initial_layout, optimization_level,
                    key[-1], witness,
                )
            )
        compiled: Optional[CompiledCircuit] = None
        start = clock.monotonic()
        for variant in state.variants:
            compiled = variant.try_bind(values)
            if compiled is not None:
                break
        self.stats.bind_seconds += clock.monotonic() - start
        if compiled is None:
            state.template_misses += 1
            if (
                state.template_misses >= self.variant_threshold
                and len(state.variants) < self.max_variants
            ):
                # this branch pattern keeps recurring: give it its own
                # variant, traced against this binding (whose own bind is
                # then guaranteed to succeed)
                variant = self._compile(
                    circuit, device, initial_layout, optimization_level,
                    key[-1], values,
                )
                state.variants.append(variant)
                state.template_misses = 0
                start = clock.monotonic()
                compiled = variant.bind(values)
                self.stats.bind_seconds += clock.monotonic() - start
            else:
                self.stats.fallbacks += 1
                bound_circuit = (
                    circuit.bind(weights, features_row)
                    if features_row is not None
                    else circuit.bind(weights)
                )
                # the structure's pinned seed rides along so SABRE draws (and
                # therefore the compiled result) match what a successful
                # template bind of this structure would have produced
                compiled = self.fallback.get(
                    bound_circuit,
                    device,
                    initial_layout=initial_layout,
                    optimization_level=optimization_level,
                    seed=key[-1],
                )
        self._bound[bound_key] = compiled
        if len(self._bound) > self.bound_maxsize:
            self._bound.popitem(last=False)
            self.stats.bind_evictions += 1
        return compiled

    def get_bound_batch(
        self,
        circuit: ParameterizedCircuit,
        weights: np.ndarray,
        features: np.ndarray,
        device: Optional[Device] = None,
        initial_layout=None,
        optimization_level: int = 2,
    ) -> Tuple[Optional[TemplateBatchBinding], dict]:
        """Bind every row of ``features`` in one vectorized template fill.

        The batched sibling of :meth:`get_bound` for the ``noise_sim`` hot
        loop: one structure lookup, one affine matmul for *all* rows, no
        per-row :class:`CompiledCircuit` construction.  Returns
        ``(binding, fallback)`` — a
        :class:`~repro.transpile.parametric.TemplateBatchBinding` covering
        the rows the first template variant binds (``None`` when it binds
        none) and a ``{row_index: CompiledCircuit}`` dict for the rows that
        crossed a compile-time branch, each served exactly by
        :meth:`get_bound` (variant retries, adaptive variants and the
        bound-key fallback included).

        Exactness contract: a row's angles are the same affine expressions
        :meth:`get_bound` would evaluate, so every downstream consumer sees
        the 1e-9-identical numbers; determinism is preserved because the
        batch is a pure function of ``(weights, features, structure)``.
        """
        if device is None:
            raise ValueError("device is required")
        weights = np.asarray(weights, dtype=float).ravel()
        features = np.asarray(features, dtype=float)
        if features.ndim != 2:
            raise ValueError("get_bound_batch expects a 2-D feature matrix")
        n_rows = features.shape[0]
        values = np.concatenate(
            [np.broadcast_to(weights, (n_rows, weights.shape[0])), features],
            axis=1,
        )
        key = self.key_for(circuit, device, initial_layout, optimization_level)
        state = self._structure_state(key)
        if state is None:
            state = self._insert_structure(key)
        if not state.variants:
            # same hybrid witness as get_bound: real weights joined with
            # generic nowhere-zero feature values, so a pathological first
            # sample cannot poison the template every other sample will use
            generic = _default_witness(features.shape[1], None)
            state.variants.append(
                self._compile(
                    circuit, device, initial_layout, optimization_level,
                    key[-1], np.concatenate([weights, generic]),
                )
            )
        start = clock.monotonic()
        ok, binding = state.variants[0].bind_batch(values)
        self.stats.bind_seconds += clock.monotonic() - start
        self.stats.batch_binds += 1
        self.stats.batch_rows += int(ok.sum())
        fallback = {}
        for row in np.flatnonzero(~ok):
            fallback[int(row)] = self.get_bound(
                circuit,
                weights,
                features[int(row)],
                device,
                initial_layout=initial_layout,
                optimization_level=optimization_level,
            )
        return binding, fallback

    def bind_rows(
        self,
        circuit: ParameterizedCircuit,
        values: np.ndarray,
        witness_weights: np.ndarray,
        device: Optional[Device] = None,
        initial_layout=None,
        optimization_level: int = 2,
    ) -> Tuple[Optional[TemplateBatchBinding], dict]:
        """Bind a full ``(rows, n_weights + n_features)`` values matrix.

        The gradient sibling of :meth:`get_bound_batch`: parameter-shift
        evaluation rows differ in their *weight* blocks too (every row is
        the same structure under a shifted weight vector), so the whole
        matrix goes through one vectorized template fill.  Returns
        ``(binding, {row: CompiledCircuit})`` with the same alignment
        contract as :meth:`get_bound_batch`.

        Deterministic-path contract: a row is served by the structure's
        *first* template variant, or — when it crosses that variant's
        compile-time branches — directly by the exact bound-key fallback.
        Unlike :meth:`get_bound`, a miss never advances the adaptive-variant
        miss counter and never compiles a new variant, so each row's
        template-vs-fallback path is a pure function of (row values, first
        variant): sharded gradient workers serving different row subsets of
        the same step produce bit-for-bit the circuits any other worker
        split would.

        The first variant (compiled here on a cold structure) is traced
        against the same hybrid witness convention as :meth:`get_bound` —
        ``witness_weights`` (the unshifted center weights) joined with
        generic nowhere-zero feature values — so gradient evaluation and the
        forward-pass paths share one template per structure.
        """
        if device is None:
            raise ValueError("device is required")
        values = np.asarray(values, dtype=float)
        if values.ndim != 2:
            raise ValueError("bind_rows expects a 2-D values matrix")
        witness_weights = np.asarray(witness_weights, dtype=float).ravel()
        n_weights = witness_weights.shape[0]
        n_features = values.shape[1] - n_weights
        if n_features < 0:
            raise ValueError("values matrix narrower than the weight vector")
        key = self.key_for(circuit, device, initial_layout, optimization_level)
        state = self._structure_state(key)
        if state is None:
            state = self._insert_structure(key)
        if not state.variants:
            if n_features > 0:
                generic = _default_witness(n_features, None)
                witness = np.concatenate([witness_weights, generic])
            else:
                witness = witness_weights
            state.variants.append(
                self._compile(
                    circuit, device, initial_layout, optimization_level,
                    key[-1], witness,
                )
            )
        start = clock.monotonic()
        ok, binding = state.variants[0].bind_batch(values)
        self.stats.bind_seconds += clock.monotonic() - start
        self.stats.gradient_binds += 1
        self.stats.gradient_rows += int(ok.sum())
        fallback = {}
        for row in np.flatnonzero(~ok):
            row = int(row)
            fallback[row] = self._bound_row_fallback(
                circuit, key, values[row], n_weights,
                device, initial_layout, optimization_level,
            )
        return binding, fallback

    def _bound_row_fallback(
        self, circuit, key, row_values, n_weights,
        device, initial_layout, optimization_level,
    ) -> CompiledCircuit:
        """Exact bound-key service of one branch-crossing row.

        Shares the bound LRU with :meth:`get_bound` (same ``(key, values)``
        convention), but never touches the adaptive-variant machinery — see
        the :meth:`bind_rows` determinism contract.
        """
        row_values = np.ascontiguousarray(row_values, dtype=float)
        bound_key = (key, row_values.tobytes())
        bound = self._bound.get(bound_key)
        if bound is not None:
            self.stats.bind_hits += 1
            self._bound.move_to_end(bound_key)
            return bound
        self.stats.bind_misses += 1
        self.stats.fallbacks += 1
        weights = row_values[:n_weights]
        features_row = row_values[n_weights:]
        bound_circuit = (
            circuit.bind(weights, features_row)
            if features_row.size
            else circuit.bind(weights)
        )
        # the structure's pinned seed rides along, exactly as in get_bound
        compiled = self.fallback.get(
            bound_circuit,
            device,
            initial_layout=initial_layout,
            optimization_level=optimization_level,
            seed=key[-1],
        )
        self._bound[bound_key] = compiled
        if len(self._bound) > self.bound_maxsize:
            self._bound.popitem(last=False)
            self.stats.bind_evictions += 1
        return compiled

    # -- sharded-worker entry exchange --------------------------------------

    def export_entries(self, exclude_structures=(), exclude_bound=()) -> dict:
        """Structure variants and bound compilations not yet exported.

        Returns ``{"structures": [(key, (variant, ...)), ...],
        "bound": [(key, compiled), ...]}`` — everything a worker compiled
        during one shard task (given the exclusion sets of what it shipped
        before).  Pickled as one payload, so a bound entry produced by a
        variant bind keeps sharing objects with that variant.
        """
        exclude_structures = set(exclude_structures)
        exclude_bound = set(exclude_bound)
        structures = [
            (key, tuple(state.variants))
            for key, state in self._structures.items()
            if key not in exclude_structures and state.variants
        ]
        bound = [(key, entry) for key, entry in self._bound.items()
                 if key not in exclude_bound]
        return {"structures": structures, "bound": bound}

    def adopt_entries(self, payload: dict) -> Tuple[int, int]:
        """Insert structures/bound compilations produced elsewhere.

        Returns ``(structures_adopted, bound_adopted)``.  Mirrors
        :meth:`TranspileCache.adopt_entries`: absent keys only, no hit/miss
        accounting (adoption is not a lookup), evictions recorded.  A
        structure key already present keeps its local variants — duplicate
        variants would only slow ``try_bind`` down, never change a result.
        """
        structures_adopted = 0
        for key, variants in payload.get("structures", ()):
            if key in self._structures or not variants:
                continue
            state = _StructureState()
            state.variants = list(variants)
            self._structures[key] = state
            structures_adopted += 1
            if len(self._structures) > self.maxsize:
                self._structures.popitem(last=False)
                self.stats.structure_evictions += 1
        bound_adopted = 0
        for key, entry in payload.get("bound", ()):
            if key in self._bound:
                continue
            self._bound[key] = entry
            bound_adopted += 1
            if len(self._bound) > self.bound_maxsize:
                self._bound.popitem(last=False)
                self.stats.bind_evictions += 1
        return structures_adopted, bound_adopted

    def export_keys(self) -> Tuple[set, set]:
        """Current (structure keys, bound keys) — a worker's exclusion sets.

        Same contract as :meth:`TranspileCache.export_keys`: refreshed after
        every export so evicted-then-recompiled entries ship again and the
        sets stay bounded by the cache sizes.
        """
        return set(self._structures), set(self._bound)

    def clear(self) -> None:
        self._structures.clear()
        self._bound.clear()
        self._keys.clear()
        self.stats = ParametricCacheStats()
