"""LRU transpilation cache for the population execution engine.

During the evolutionary co-search the same (SubCircuit genome, qubit mapping)
pair is compiled over and over: duplicated candidates inside a population,
parents that survive across generations, and — in ``noise_sim`` mode — every
validation sample of a candidate that another candidate with the same genome
and mapping already executed.  Compilation is pure (layout, routing,
decomposition and the optimization passes are deterministic functions of the
circuit, device, layout and optimization level), so compiled circuits can be
shared freely as long as nobody mutates them.

The cache key is the full fingerprint of the *bound* logical circuit (gate
names, qubits and parameter values) plus the device, the normalized initial
layout and the optimization level.  Keying on the bound instruction stream
rather than the genome alone keeps the cache exact: two candidates only share
a compilation when their compiled circuits would be identical object-for-
object.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Tuple

from ..devices.library import Device
from ..quantum.circuit import QuantumCircuit
from ..transpile.compiler import CompiledCircuit, transpile

__all__ = ["TranspileCacheStats", "TranspileCache"]


@dataclass
class TranspileCacheStats:
    """Hit/miss counters of a :class:`TranspileCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


def _normalize_layout(initial_layout) -> Hashable:
    """A hashable, order-insensitive representation of a layout spec."""
    if initial_layout is None or isinstance(initial_layout, str):
        return initial_layout
    if isinstance(initial_layout, dict):
        return ("dict",) + tuple(sorted(
            (int(k), int(v)) for k, v in initial_layout.items()
        ))
    return ("seq",) + tuple(int(q) for q in initial_layout)


def circuit_fingerprint(circuit: QuantumCircuit) -> Tuple:
    """Hashable fingerprint of a concrete circuit (structure and parameters)."""
    return (
        circuit.n_qubits,
        tuple(
            (inst.gate, inst.qubits, inst.params) for inst in circuit.instructions
        ),
    )


class TranspileCache:
    """An LRU cache mapping logical circuits to their compiled form.

    ``get`` returns the *same* :class:`CompiledCircuit` object for every hit —
    callers must treat compiled circuits as immutable.  The engine's
    regression tests verify that population evaluation never mutates a cached
    compilation.
    """

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize < 1:
            raise ValueError("cache maxsize must be positive")
        self.maxsize = int(maxsize)
        self.stats = TranspileCacheStats()
        self._entries: "OrderedDict[Tuple, CompiledCircuit]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def key_for(
        self,
        circuit: QuantumCircuit,
        device: Device,
        initial_layout,
        optimization_level: int,
    ) -> Tuple:
        return (
            device.name,
            int(optimization_level),
            _normalize_layout(initial_layout),
            circuit_fingerprint(circuit),
        )

    def get(
        self,
        circuit: QuantumCircuit,
        device: Device,
        initial_layout=None,
        optimization_level: int = 2,
    ) -> CompiledCircuit:
        """Compile ``circuit`` (or return the cached compilation)."""
        key = self.key_for(circuit, device, initial_layout, optimization_level)
        entry = self._entries.get(key)
        if entry is not None:
            self.stats.hits += 1
            self._entries.move_to_end(key)
            return entry
        self.stats.misses += 1
        compiled = transpile(
            circuit,
            device,
            initial_layout=initial_layout,
            optimization_level=optimization_level,
        )
        self._entries[key] = compiled
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return compiled

    def clear(self) -> None:
        self._entries.clear()
        self.stats = TranspileCacheStats()
