"""Batched population-evaluation engine for the evolutionary co-search.

See the package docstring (:mod:`repro.execution`) for the grouping/batching
strategy.  The short version:

1.  Candidates are grouped by SubCircuit genome; the standalone circuit,
    inherited weights and gate-fusion plan are built once per unique genome
    instead of once per candidate.
2.  Every simulation flows through a :mod:`repro.backends` engine selected
    per structure group by the deterministic
    :class:`~repro.backends.dispatch.BackendDispatcher` policy: noise-free
    terms run on the batched statevector backend, ``noise_sim`` terms on the
    batched density-matrix backend, and shot-based (real-QC-style) searches
    on the pinned-seed shot sampler.  The engine itself contains no
    simulation code — it organizes groups, transpilations and score
    formulas.
3.  Transpilations are memoized in the estimator-owned caches; on the
    parametric path each (genome, mapping) structure is compiled once and
    every validation sample's angles come out of a single vectorized
    template bind (one affine matmul per structure — see
    :meth:`~repro.execution.cache.ParametricTranspileCache.get_bound_batch`)
    consumed directly by the density backend.

``mode="sequential"`` reproduces the seed per-candidate estimator calls
bit-for-bit and is the reference the equivalence tests pin the batched mode
against.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..backends import BackendDispatcher, DispatchRequest, SimulationJob
from ..qml.qnn import readout_matrix
from ..quantum.circuit import ParameterizedCircuit
from ..utils.stats import nll_loss, softmax
from .. import telemetry
from .cache import (
    ParametricTranspileCache,
    TranspileCache,
    _normalize_layout,
)
from .stats import MergeableStats

__all__ = ["ExecutionStats", "ExecutionEngine"]


@dataclass
class ExecutionStats(MergeableStats):
    """Counters describing what the engine amortized.

    ``populations`` and ``candidates`` are *population-level* counters — in a
    sharded evaluation the parent scheduler counts them exactly once per
    generation and workers report them as zero deltas (see
    :meth:`repro.execution.scheduler.ShardedExecutionEngine`); the remaining
    fields are sub-population work counters that sum across shards.
    Aggregation goes through :class:`~repro.execution.stats.MergeableStats`.

    The ``density_* / statevector_* / template_* / shot_*`` fields are the
    per-backend counters harvested from the :mod:`repro.backends` engines
    after every population (each backend's
    :meth:`~repro.backends.base.SimulationBackend.stats_delta`).
    """

    populations: int = 0
    candidates: int = 0
    config_groups: int = 0
    fused_segments: int = 0
    density_batches: int = 0
    density_circuits: int = 0
    #: density batches fed straight from vectorized template bindings (no
    #: per-sample Instruction construction)
    template_batches: int = 0
    #: whole-batch noise-free forward passes on the statevector backend
    statevector_batches: int = 0
    #: circuits executed through the pinned-seed shot-sampler backend
    shot_circuits: int = 0
    sequential_fallbacks: int = 0


# ---------------------------------------------------------------------------
# Per-genome structure cache
# ---------------------------------------------------------------------------


@dataclass
class _StructureEntry:
    """Standalone circuit + inherited weights for one SubCircuit genome.

    This is the group context handed to simulation backends: ``circuit`` and
    ``weights`` define the structure, ``fusion_plan`` is a memoization slot
    the statevector backend fills (see :mod:`repro.backends.base`).
    """

    circuit: ParameterizedCircuit
    weights: np.ndarray
    fusion_plan: Optional[List[Tuple[str, object]]] = None


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


class ExecutionEngine:
    """Evaluates whole co-search populations through the performance estimator.

    Parameters default to the estimator's :class:`EstimatorConfig` fields
    (``engine``, ``fusion``, ``max_fused_qubits``, ``transpile_cache_size``),
    so pipelines only need ``ExecutionEngine(estimator, supercircuit)``.
    Engines are context managers: ``with estimator.population_engine(sc) as
    engine: ...`` releases any scheduler resources on exit.
    """

    _STRUCTURE_CACHE_SIZE = 256

    def __init__(
        self,
        estimator,
        supercircuit,
        mode: Optional[str] = None,
        fusion: Optional[bool] = None,
        max_fused_qubits: Optional[int] = None,
        transpile_cache_size: Optional[int] = None,
        parametric_transpile: Optional[bool] = None,
    ) -> None:
        config = estimator.config
        self.estimator = estimator
        self.supercircuit = supercircuit
        self.mode = mode if mode is not None else getattr(config, "engine", "batched")
        if self.mode not in ("batched", "sequential"):
            raise ValueError("mode must be 'batched' or 'sequential'")
        self.fusion = bool(
            getattr(config, "fusion", True) if fusion is None else fusion
        )
        self.max_fused_qubits = int(
            getattr(config, "max_fused_qubits", 3)
            if max_fused_qubits is None
            else max_fused_qubits
        )
        # Caches are owned by the estimator when it provides them (the default
        # since the warm-start work), so engines created for successive
        # co-searches — and the deploy/evaluate stage — share one instance.
        # An explicit transpile_cache_size opts out into private caches.
        shared_cache = getattr(estimator, "transpile_cache", None)
        if transpile_cache_size is None and shared_cache is not None:
            self.transpile_cache = shared_cache
        else:
            self.transpile_cache = TranspileCache(
                int(
                    getattr(config, "transpile_cache_size", 1024)
                    if transpile_cache_size is None
                    else transpile_cache_size
                )
            )
        shared_parametric = getattr(estimator, "parametric_transpile_cache", None)
        if transpile_cache_size is None and shared_parametric is not None:
            self.parametric_cache = shared_parametric
        else:
            self.parametric_cache = ParametricTranspileCache(
                bound_maxsize=self.transpile_cache.maxsize,
                fallback=self.transpile_cache,
            )
        self.parametric_transpile = bool(
            getattr(config, "parametric_transpile", True)
            if parametric_transpile is None
            else parametric_transpile
        )
        #: per-group backend selection policy; rebuilt identically inside
        #: every sharded worker from the pickled estimator config
        self.dispatcher = BackendDispatcher(estimator)
        self.stats = ExecutionStats()
        self._qml_structures: "OrderedDict[Tuple, _StructureEntry]" = OrderedDict()
        self._vqe_structures: "OrderedDict[Tuple, _StructureEntry]" = OrderedDict()
        self._readouts: Dict[Tuple[int, int], np.ndarray] = {}
        self._params_snapshot: Optional[bytes] = None

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Release scheduler resources (idempotent; a no-op in-process).

        Exists so pipelines can close any population engine uniformly — the
        sharded subclass shuts its worker pool down here.
        """

    def __enter__(self) -> "ExecutionEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- scorer factories (what the evolution engine consumes) -----------------

    def qml_population_scorer(
        self, dataset, n_classes: int
    ) -> Callable[[Sequence], List[float]]:
        """A population-scoring callable for :meth:`EvolutionEngine.search`."""

        def scorer(candidates: Sequence) -> List[float]:
            return self.evaluate_qml_population(candidates, dataset, n_classes)

        return scorer

    def vqe_population_scorer(self, molecule) -> Callable[[Sequence], List[float]]:
        """A population-scoring callable for the VQE co-search."""

        def scorer(candidates: Sequence) -> List[float]:
            return self.evaluate_vqe_population(candidates, molecule)

        return scorer

    # -- backend plumbing -------------------------------------------------------

    def _shot_dispatch_opt_in(self) -> bool:
        """Whether a backend override opts real_qc into batched dispatch.

        Only a *shot-capable* override (e.g. ``backend="shots"``) changes the
        real_qc path — its scores are intentionally different (pinned-seed
        draws instead of the population-order stream).  An incapable
        override is ignored, matching the dispatcher's contract that ignored
        overrides never change a score.
        """
        override = self.dispatcher.override
        if override is None:
            return False
        from ..backends import backend_class

        return backend_class(override).capabilities.shot_based

    def _backend_instance(self, backends: Dict[str, object], name: str):
        """One backend instance per name per population evaluation."""
        backend = backends.get(name)
        if backend is None:
            backend = self.dispatcher.create(name)
            if name == "statevector":
                # the engine's fusion settings may override the config's
                # (the fusion=False regression seam)
                backend.fusion = self.fusion
                backend.max_fused_qubits = self.max_fused_qubits
            backends[name] = backend
        return backend

    def _synchronize(self, backends: Dict[str, object]) -> None:
        for name, backend in backends.items():
            with telemetry.span("backend.synchronize", backend=name):
                backend.synchronize()

    def _merge_backend_stats(self, backends: Dict[str, object]) -> None:
        """Fold every backend's counters into :attr:`stats`.

        The same deltas feed the always-on per-backend telemetry counters
        (``backend_stat_total{backend=..., field=...}``) — observation-only,
        alongside (never instead of) the mergeable stats.
        """
        metrics = telemetry.get_metrics()
        for name, backend in backends.items():
            for field, delta in backend.stats_delta().items():
                if hasattr(self.stats, field):
                    setattr(self.stats, field, getattr(self.stats, field) + delta)
                if delta:
                    metrics.counter(
                        "backend_stat_total", backend=name, field=field
                    ).inc(delta)

    def _statevector(self, backends: Dict[str, object], mode: str, n_qubits: int,
                     needs_observables: bool = False):
        """The noise-free backend for this population (usually statevector).

        The dispatch request's mode is the group's resolved estimator mode
        when that mode is itself noise-free, and ``"noise_free"`` for the
        noise-free probes the noisy modes embed (success-rate numerators,
        VQE energy probes).
        """
        request = DispatchRequest(
            mode=mode if mode in ("noise_free", "success_rate") else "noise_free",
            n_qubits=n_qubits,
            needs_observables=needs_observables,
        )
        return self._backend_instance(backends, self.dispatcher.select(request))

    # -- population evaluation: QML ---------------------------------------------

    def evaluate_qml_population(
        self, candidates: Sequence, dataset, n_classes: int
    ) -> List[float]:
        """Predicted validation losses for every candidate (lower is better)."""
        candidates = list(candidates)
        if not candidates:
            return []
        with telemetry.span(
            "engine.population", kind="qml", candidates=len(candidates)
        ):
            return self._evaluate_qml(candidates, dataset, n_classes)

    def _evaluate_qml(
        self, candidates: List, dataset, n_classes: int
    ) -> List[float]:
        estimator = self.estimator
        if self.mode == "sequential":
            return [
                self._sequential_qml(candidate, dataset, n_classes)
                for candidate in candidates
            ]

        self._maybe_invalidate_structures()
        n_qubits = self.supercircuit.n_qubits
        mode = estimator.resolve_mode(n_qubits)
        if mode == "real_qc" and not self._shot_dispatch_opt_in():
            # the historical real_qc path consumes the backend rng stream per
            # candidate in population order; batching would reorder the
            # draws.  Explicitly overriding to a shot-capable backend (the
            # pinned-seed shot sampler) opts into the deterministic batched
            # protocol instead; any other override is ignored here exactly
            # like dispatch ignores incapable overrides — scores must stay
            # identical to the default lanes.
            self.stats.sequential_fallbacks += len(candidates)
            return [
                self._sequential_qml(candidate, dataset, n_classes)
                for candidate in candidates
            ]

        estimator.num_queries += len(candidates)
        self.stats.populations += 1
        self.stats.candidates += len(candidates)
        features, labels = estimator.validation_subset(dataset)
        groups = self._group(candidates, include_encoder=True)
        self.stats.config_groups += len(groups)
        scores = [0.0] * len(candidates)
        backends: Dict[str, object] = {}

        if mode == "noise_free":
            for entry, indices in groups:
                loss = self._qml_noise_free_loss(
                    backends, mode, entry, features, labels, n_classes
                )
                for index in indices:
                    scores[index] = loss
            self._merge_backend_stats(backends)
            return scores

        if mode == "success_rate":
            # one binding per candidate — there is nothing for a parametric
            # template to amortize inside a population, so this path stays on
            # the bound-key cache (itself sped up by the memoized noise model
            # behind success_rate()); warm populations hit the cache as before
            optimization_level = estimator.config.optimization_level
            for entry, indices in groups:
                loss = self._qml_noise_free_loss(
                    backends, mode, entry, features, labels, n_classes
                )
                bound = entry.circuit.bind(entry.weights, features[0])
                for index in indices:
                    compiled = self.transpile_cache.get(
                        bound,
                        estimator.device,
                        initial_layout=candidates[index].mapping,
                        optimization_level=optimization_level,
                    )
                    scores[index] = loss / compiled.success_rate()
            self._merge_backend_stats(backends)
            return scores

        # noise_sim (or an overridden real_qc): per-sample expectations from
        # the dispatched backend — density matrices batched per structure and
        # fed from vectorized template bindings on the parametric path, or
        # pinned-seed shot sampling when dispatch selects the shot backend
        handles_by_candidate: Dict[int, List[object]] = {}
        density_rows = 0
        with telemetry.phase_span("engine.phase", phase="schedule"):
            for entry, indices in groups:
                request = DispatchRequest(
                    mode=mode, n_qubits=entry.circuit.n_qubits
                )
                backend = self._backend_instance(
                    backends, self.dispatcher.select(request)
                )
                if not backend.capabilities.shot_based:
                    density_rows += len(indices) * len(features)
                gene_key = tuple(candidates[indices[0]].config.as_gene())
                handles_by_mapping: Dict[object, List[object]] = {}
                bound_rows: Optional[list] = None
                for index in indices:
                    mapping = candidates[index].mapping
                    mapping_key = _normalize_layout(mapping)
                    handles = handles_by_mapping.get(mapping_key)
                    if handles is None:
                        if backend.capabilities.shot_based:
                            handles = self._schedule_shot_rows(
                                backend, entry, gene_key, mapping, features
                            )
                        else:
                            if (
                                bound_rows is None
                                and not self.parametric_transpile
                            ):
                                bound_rows = [
                                    entry.circuit.bind(entry.weights, row)
                                    for row in features
                                ]
                            handles = self._schedule_density_rows(
                                backend, entry, mapping, features, bound_rows
                            )
                        handles_by_mapping[mapping_key] = handles
                    handles_by_candidate[index] = handles
        with telemetry.phase_span("engine.phase", phase="simulate"):
            self._synchronize(backends)
        self.stats.density_circuits += density_rows
        estimator._backend.record_executions(len(candidates) * len(features))

        with telemetry.phase_span("engine.phase", phase="score"):
            readout = self._readout_matrix(n_qubits, n_classes)
            for index, handles in handles_by_candidate.items():
                expectations = np.stack(
                    [handle.logical_z_expectations(n_qubits) for handle in handles]
                )
                logits = expectations @ readout.T
                scores[index] = nll_loss(softmax(logits), labels)
        self._merge_backend_stats(backends)
        return scores

    def _schedule_shot_rows(
        self, backend, entry: _StructureEntry, gene_key, mapping, features
    ) -> List[object]:
        """Per-sample shot jobs with seeds pinned to (genome, mapping, row)."""
        mapping_key = _normalize_layout(mapping)
        jobs = [
            SimulationJob(
                circuit=entry.circuit,
                weights=entry.weights,
                features=row,
                initial_layout=mapping,
                seed_key=(gene_key, mapping_key, row_index),
            )
            for row_index, row in enumerate(features)
        ]
        return backend.run_group(entry, jobs)

    def _schedule_density_rows(
        self,
        backend,
        entry: _StructureEntry,
        mapping,
        features,
        bound_rows: Optional[list],
    ) -> List[object]:
        """Density jobs for every validation sample of one (genome, mapping).

        On the parametric path the whole sample batch binds through one
        vectorized template fill; rows that cross a compile-time branch —
        and structures whose reduced register exceeds the density limit,
        whose large-circuit approximation needs concrete reduced circuits —
        fall back to per-row compiled jobs, exactly as before.
        """
        estimator = self.estimator
        optimization_level = estimator.config.optimization_level
        if bound_rows is not None:
            jobs = [
                SimulationJob(
                    compiled=self.transpile_cache.get(
                        bound,
                        estimator.device,
                        initial_layout=mapping,
                        optimization_level=optimization_level,
                    )
                )
                for bound in bound_rows
            ]
            return backend.run_group(entry, jobs)

        binding, fallback = self.parametric_cache.get_bound_batch(
            entry.circuit,
            entry.weights,
            features,
            estimator.device,
            initial_layout=mapping,
            optimization_level=optimization_level,
        )
        max_density = estimator.config.max_density_qubits
        if binding is None or binding.n_reduced > max_density:
            compiled_by_row = dict(fallback)
            for row in range(len(features)):
                if row not in compiled_by_row:
                    compiled_by_row[row] = self._compile_parametric(
                        entry, mapping, features[row]
                    )
            return backend.run_group(
                entry,
                [
                    SimulationJob(compiled=compiled_by_row[row])
                    for row in range(len(features))
                ],
            )
        handles: List[object] = [None] * len(features)
        batch_handles = backend.run_group(
            entry, [SimulationJob(template_batch=binding)]
        )
        for handle, row in zip(batch_handles, binding.rows):
            handles[int(row)] = handle
        if fallback:
            fallback_handles = backend.run_group(
                entry,
                [SimulationJob(compiled=compiled) for compiled in fallback.values()],
            )
            for row, handle in zip(fallback.keys(), fallback_handles):
                handles[int(row)] = handle
        return handles

    # -- population evaluation: VQE ---------------------------------------------

    def evaluate_vqe_population(self, candidates: Sequence, molecule) -> List[float]:
        """Predicted measured energies for every candidate (lower is better)."""
        candidates = list(candidates)
        if not candidates:
            return []
        with telemetry.span(
            "engine.population", kind="vqe", candidates=len(candidates)
        ):
            return self._evaluate_vqe(candidates, molecule)

    def _evaluate_vqe(self, candidates: List, molecule) -> List[float]:
        estimator = self.estimator
        if self.mode == "sequential":
            return [
                self._sequential_vqe(candidate, molecule) for candidate in candidates
            ]

        self._maybe_invalidate_structures()
        n_qubits = self.supercircuit.n_qubits
        mode = estimator.resolve_mode(n_qubits)
        if mode == "real_qc":
            # the shot backend cannot measure Pauli-sum observables; VQE
            # real_qc always takes the sequential measurement-plan path
            self.stats.sequential_fallbacks += len(candidates)
            return [
                self._sequential_vqe(candidate, molecule) for candidate in candidates
            ]

        estimator.num_queries += len(candidates)
        self.stats.populations += 1
        self.stats.candidates += len(candidates)
        hamiltonian = estimator.observable_for(molecule)
        groups = self._group(candidates, include_encoder=False)
        self.stats.config_groups += len(groups)
        scores = [0.0] * len(candidates)
        backends: Dict[str, object] = {}

        noise_free: Dict[int, float] = {}
        for group_index, (entry, indices) in enumerate(groups):
            statevector = self._statevector(
                backends, mode, entry.circuit.n_qubits, needs_observables=True
            )
            handle = statevector.run_group(entry, [SimulationJob()])[0]
            noise_free[group_index] = float(
                handle.pauli_expectations(hamiltonian)[0]
            )

        if mode == "noise_free":
            for group_index, (entry, indices) in enumerate(groups):
                for index in indices:
                    scores[index] = noise_free[group_index]
            self._merge_backend_stats(backends)
            return scores

        optimization_level = estimator.config.optimization_level
        max_density = estimator.config.max_density_qubits
        mixed_energy = hamiltonian.constant
        #: ``(population index, compiled, used_physical, handle)`` per noisy job
        density_jobs: List[Tuple[int, object, Tuple[int, ...], object]] = []

        use_parametric = self.parametric_transpile and mode == "noise_sim"
        with telemetry.phase_span("engine.phase", phase="schedule"):
            for group_index, (entry, indices) in enumerate(groups):
                energy = noise_free[group_index]
                bound = (
                    None if use_parametric else entry.circuit.bind(entry.weights)
                )
                if mode == "noise_sim":
                    request = DispatchRequest(
                        mode=mode,
                        n_qubits=entry.circuit.n_qubits,
                        needs_observables=True,
                    )
                    backend = self._backend_instance(
                        backends, self.dispatcher.select(request)
                    )
                else:
                    backend = None
                group_jobs: List[Tuple[int, object, Tuple[int, ...]]] = []
                for index in indices:
                    if bound is None:
                        compiled = self._compile_parametric(
                            entry, candidates[index].mapping, None
                        )
                    else:
                        compiled = self.transpile_cache.get(
                            bound,
                            estimator.device,
                            initial_layout=candidates[index].mapping,
                            optimization_level=optimization_level,
                        )
                    if mode == "success_rate":
                        rate = compiled.success_rate()
                        scores[index] = (
                            rate * energy + (1.0 - rate) * mixed_energy
                        )
                        continue
                    # noise_sim: the reduced register is compile metadata
                    # (memoized on the compiled circuit), so the oversized
                    # check stays in the engine and only simulatable circuits
                    # reach the backend
                    _reduced, used_physical = compiled.reduced_circuit()
                    if len(used_physical) > max_density:
                        rate = compiled.success_rate()
                        scores[index] = (
                            rate * energy + (1.0 - rate) * mixed_energy
                        )
                    else:
                        group_jobs.append((index, compiled, used_physical))
                if group_jobs:
                    handles = backend.run_group(
                        entry,
                        [
                            SimulationJob(compiled=compiled)
                            for _index, compiled, _used in group_jobs
                        ],
                    )
                    density_jobs.extend(
                        (index, compiled, used_physical, handle)
                        for (index, compiled, used_physical), handle in zip(
                            group_jobs, handles
                        )
                    )

        if density_jobs:
            with telemetry.phase_span("engine.phase", phase="simulate"):
                self._synchronize(backends)
            self.stats.density_circuits += len(density_jobs)
            # unlike the QML path, the sequential VQE estimator simulates
            # density matrices itself without charging the backend, so no
            # record_executions here — the #QC-runs metric must match
            with telemetry.phase_span("engine.phase", phase="score"):
                remapped_cache: Dict[int, object] = {}
                for index, compiled, used_physical, handle in density_jobs:
                    key = id(compiled)
                    if key not in remapped_cache:
                        remapped_cache[key] = estimator.remap_hamiltonian(
                            hamiltonian, compiled, used_physical
                        )
                    scores[index] = handle.pauli_expectation(remapped_cache[key])
        self._merge_backend_stats(backends)
        return scores

    # -- noisy expectations (public so tests can pin the batched path) ----------

    def noisy_expectations(
        self,
        circuit: ParameterizedCircuit,
        weights: np.ndarray,
        mapping,
        features: np.ndarray,
    ) -> np.ndarray:
        """Per-sample logical Z expectations under the device noise model.

        Matches ``QuantumBackend.run(circuit.bind(weights, row), ...)`` with
        ``shots=0``, sample by sample, but runs every sample through one
        batched density-matrix evolution.  Always the density backend — this
        is the simulator-exact path the deploy/evaluate helpers pin against.
        """
        estimator = self.estimator
        backend = self.dispatcher.create("density")
        jobs = []
        for row in np.atleast_2d(features):
            if self.parametric_transpile:
                compiled = self.parametric_cache.get_bound(
                    circuit,
                    weights,
                    row,
                    estimator.device,
                    initial_layout=mapping,
                    optimization_level=estimator.config.optimization_level,
                )
            else:
                compiled = self.transpile_cache.get(
                    circuit.bind(weights, row),
                    estimator.device,
                    initial_layout=mapping,
                    optimization_level=estimator.config.optimization_level,
                )
            jobs.append(SimulationJob(compiled=compiled))
        handles = backend.run_group(None, jobs)
        backend.synchronize()
        return np.stack(
            [handle.logical_z_expectations(circuit.n_qubits) for handle in handles]
        )

    # -- sequential reference paths ---------------------------------------------

    def _sequential_qml(self, candidate, dataset, n_classes: int) -> float:
        circuit, _ = self.supercircuit.build_standalone_circuit(candidate.config)
        weights = self.supercircuit.inherited_weights(candidate.config)
        return self.estimator.estimate_qml(
            circuit, weights, dataset, n_classes, layout=candidate.mapping
        )

    def _sequential_vqe(self, candidate, molecule) -> float:
        circuit, _ = self.supercircuit.build_standalone_circuit(
            candidate.config, include_encoder=False
        )
        weights = self.supercircuit.inherited_weights(candidate.config)
        return self.estimator.estimate_vqe(
            circuit, weights, molecule, layout=candidate.mapping
        )

    # -- internals ----------------------------------------------------------------

    def _compile_parametric(
        self, entry: "_StructureEntry", mapping, features_row
    ) -> object:
        """Compiled circuit for one binding via the structure-keyed cache.

        One parametric compilation per (genome, mapping) structure; every
        (weights, sample) binding is an O(params) template fill, with the
        bound-key cache as exact fallback for bindings that cross a
        compile-time branch.
        """
        return self.parametric_cache.get_bound(
            entry.circuit,
            entry.weights,
            features_row,
            self.estimator.device,
            initial_layout=mapping,
            optimization_level=self.estimator.config.optimization_level,
        )

    def _maybe_invalidate_structures(self) -> None:
        """Drop cached circuits when the SuperCircuit parameters change."""
        snapshot = self.supercircuit.parameters.tobytes()
        if snapshot != self._params_snapshot:
            self._qml_structures.clear()
            self._vqe_structures.clear()
            self._params_snapshot = snapshot

    def _group(
        self, candidates: Sequence, include_encoder: bool
    ) -> List[Tuple[_StructureEntry, List[int]]]:
        """Group candidate indices by SubCircuit genome, building each once."""
        cache = self._qml_structures if include_encoder else self._vqe_structures
        groups: "OrderedDict[Tuple, Tuple[_StructureEntry, List[int]]]" = OrderedDict()
        for index, candidate in enumerate(candidates):
            key = tuple(candidate.config.as_gene())
            bucket = groups.get(key)
            if bucket is None:
                entry = cache.get(key)
                if entry is None:
                    circuit, weight_map = self.supercircuit.build_standalone_circuit(
                        candidate.config, include_encoder=include_encoder
                    )
                    weights = self.supercircuit.parameters[weight_map].copy()
                    entry = _StructureEntry(circuit, weights)
                    cache[key] = entry
                    if len(cache) > self._STRUCTURE_CACHE_SIZE:
                        cache.popitem(last=False)
                else:
                    cache.move_to_end(key)
                bucket = (entry, [])
                groups[key] = bucket
            bucket[1].append(index)
        return list(groups.values())

    def _readout_matrix(self, n_qubits: int, n_classes: int) -> np.ndarray:
        key = (n_qubits, n_classes)
        if key not in self._readouts:
            self._readouts[key] = readout_matrix(n_qubits, n_classes)
        return self._readouts[key]

    def _qml_noise_free_loss(
        self,
        backends: Dict[str, object],
        mode: str,
        entry: _StructureEntry,
        features: np.ndarray,
        labels: np.ndarray,
        n_classes: int,
    ) -> float:
        statevector = self._statevector(backends, mode, entry.circuit.n_qubits)
        handle = statevector.run_group(entry, [SimulationJob(features=features)])[0]
        expectations = handle.logical_z_expectations(entry.circuit.n_qubits)
        logits = expectations @ self._readout_matrix(
            entry.circuit.n_qubits, n_classes
        ).T
        return nll_loss(softmax(logits), labels)
