"""Batched population-evaluation engine for the evolutionary co-search.

See the package docstring (:mod:`repro.execution`) for the grouping/batching
strategy.  The short version:

1.  Candidates are grouped by SubCircuit genome; the standalone circuit,
    inherited weights and gate-fusion plan are built once per unique genome
    instead of once per candidate.
2.  The noise-free forward pass runs once per genome group with concrete gate
    segments fused into dense ≤ ``max_fused_qubits`` unitaries (TorchQuantum
    static mode), batched over validation samples in the
    ``(batch,) + (2,) * n`` state layout.
3.  Transpilations are memoized in an LRU cache keyed by the bound circuit
    fingerprint, device, layout and optimization level.
4.  ``noise_sim`` candidates submit their compiled circuits to a batched
    density-matrix runner that stacks structurally aligned circuits and
    evolves them through one sequence of (shared-noise) contractions.

``mode="sequential"`` reproduces the seed per-candidate estimator calls
bit-for-bit and is the reference the equivalence tests pin the batched mode
against.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..devices.backend import approximate_probabilities, logical_probabilities
from ..qml.qnn import readout_matrix
from ..quantum.circuit import Instruction, ParameterizedCircuit, QuantumCircuit
from ..quantum.density_matrix import (
    apply_kraus_batch,
    apply_unitary_batch,
    density_probabilities,
    expectation_pauli_sum_dm,
    zero_density_matrices,
)
from ..quantum.fusion import fuse_circuit
from ..quantum.statevector import (
    apply_matrix,
    expectation_pauli_sum,
    expectation_z_all,
    op_matrix,
    zero_state,
)
from ..utils.stats import nll_loss, softmax
from .cache import ParametricTranspileCache, TranspileCache
from .stats import MergeableStats

__all__ = ["ExecutionStats", "ExecutionEngine"]


@dataclass
class ExecutionStats(MergeableStats):
    """Counters describing what the engine amortized.

    ``populations`` and ``candidates`` are *population-level* counters — in a
    sharded evaluation the parent scheduler counts them exactly once per
    generation and workers report them as zero deltas (see
    :meth:`repro.execution.scheduler.ShardedExecutionEngine`); the remaining
    fields are sub-population work counters that sum across shards.
    Aggregation goes through :class:`~repro.execution.stats.MergeableStats`.
    """

    populations: int = 0
    candidates: int = 0
    config_groups: int = 0
    fused_segments: int = 0
    density_batches: int = 0
    density_circuits: int = 0
    sequential_fallbacks: int = 0


# ---------------------------------------------------------------------------
# Per-genome structure cache
# ---------------------------------------------------------------------------


@dataclass
class _StructureEntry:
    """Standalone circuit + inherited weights for one SubCircuit genome."""

    circuit: ParameterizedCircuit
    weights: np.ndarray
    fusion_plan: Optional[List[Tuple[str, object]]] = None


# ---------------------------------------------------------------------------
# Batched density-matrix runner
# ---------------------------------------------------------------------------


class _DensityJob:
    """One unique compiled circuit awaiting noisy simulation."""

    __slots__ = (
        "compiled", "reduced", "used_physical", "noise_model", "rho",
        "reduced_probs", "_probs_with_readout", "_logical_expectations",
    )

    def __init__(self, compiled) -> None:
        self.compiled = compiled
        self.reduced, self.used_physical = compiled.reduced_circuit()
        self.noise_model = None
        self.rho: Optional[np.ndarray] = None
        self.reduced_probs: Optional[np.ndarray] = None
        self._probs_with_readout: Optional[np.ndarray] = None
        self._logical_expectations: Dict[int, np.ndarray] = {}

    @property
    def n_reduced(self) -> int:
        return self.reduced.n_qubits

    def probabilities(self) -> np.ndarray:
        """Reduced-register probabilities, matching the shot-based backend."""
        if self._probs_with_readout is None:
            if self.reduced_probs is not None:
                # large-circuit approximation — no readout confusion, exactly
                # like QuantumBackend._approximate_probabilities
                self._probs_with_readout = self.reduced_probs
            else:
                probs = density_probabilities(self.rho)
                if self.noise_model is not None:
                    probs = self.noise_model.apply_readout_error(
                        probs, self.n_reduced
                    )
                self._probs_with_readout = probs
        return self._probs_with_readout

    def logical_z_expectations(self, n_logical: int) -> np.ndarray:
        """Per-logical-qubit Z expectations, matching ``BackendResult``."""
        n_logical = int(n_logical)
        if n_logical not in self._logical_expectations:
            probs = logical_probabilities(
                self.probabilities(), self.compiled, self.used_physical, n_logical
            ).reshape((2,) * n_logical)
            out = np.zeros(n_logical)
            for qubit in range(n_logical):
                axes = tuple(a for a in range(n_logical) if a != qubit)
                marginal = probs.sum(axis=axes)
                out[qubit] = marginal[0] - marginal[1]
            self._logical_expectations[n_logical] = out
        return self._logical_expectations[n_logical]


class _BatchedDensityRunner:
    """Groups compiled circuits by structure and simulates each group batched.

    Equivalence contract: every job's result is produced by the same sequence
    of unitary/Kraus applications that :class:`DensityMatrixSimulator` would
    perform sample-by-sample — the batch dimension only stacks them.  Noise
    channels depend on gate arity and qubits (never parameters), so within a
    structurally aligned group they are derived once per position instead of
    once per circuit.
    """

    #: soft cap on (batch * 4**n) elements of one density-matrix stack
    MAX_STACK_ELEMENTS = 1 << 21

    def __init__(self, device, max_density_qubits: int) -> None:
        self.device = device
        self.max_density_qubits = int(max_density_qubits)
        self._noise_model = None
        self._jobs: Dict[int, _DensityJob] = {}       # id(compiled) -> job
        self._pending: "OrderedDict[int, _DensityJob]" = OrderedDict()
        self.batches_run = 0

    def job_for(self, compiled) -> _DensityJob:
        """The (deduplicated) job for a compiled circuit."""
        job = self._jobs.get(id(compiled))
        if job is None:
            job = _DensityJob(compiled)
            self._jobs[id(compiled)] = job
        return job

    def enqueue(self, job: _DensityJob) -> _DensityJob:
        self._pending.setdefault(id(job.compiled), job)
        return job

    def submit(self, compiled) -> _DensityJob:
        return self.enqueue(self.job_for(compiled))

    # -- execution -----------------------------------------------------------

    def _device_noise_model(self):
        if self._noise_model is None:
            self._noise_model = self.device.noise_model()
        return self._noise_model

    def run(self) -> None:
        """Simulate all pending jobs, batched by reduced-circuit structure."""
        groups: "OrderedDict[Tuple, List[_DensityJob]]" = OrderedDict()
        for job in self._pending.values():
            if job.rho is not None or job.reduced_probs is not None:
                continue
            key = (
                tuple(job.used_physical),
                tuple(
                    (inst.gate, inst.qubits) for inst in job.reduced.instructions
                ),
            )
            groups.setdefault(key, []).append(job)
        self._pending.clear()

        for (used_physical, _structure), jobs in groups.items():
            noise_model = self._device_noise_model().reduced(used_physical)
            n_reduced = jobs[0].n_reduced
            if n_reduced > self.max_density_qubits:
                # success-rate (global depolarizing) approximation, exactly as
                # QuantumBackend falls back for large circuits
                for job in jobs:
                    job.noise_model = noise_model
                    job.reduced_probs = approximate_probabilities(
                        job.reduced, noise_model
                    )
                continue
            max_batch = max(1, self.MAX_STACK_ELEMENTS // 4**n_reduced)
            for start in range(0, len(jobs), max_batch):
                self._run_group(jobs[start: start + max_batch], noise_model)

    def _run_group(self, jobs: Sequence[_DensityJob], noise_model) -> None:
        self.batches_run += 1
        n = jobs[0].n_reduced
        rhos = zero_density_matrices(n, len(jobs))
        n_instructions = len(jobs[0].reduced.instructions)
        for position in range(n_instructions):
            instructions = [job.reduced.instructions[position] for job in jobs]
            first = instructions[0]
            if all(inst.params == first.params for inst in instructions):
                matrix = first.matrix()
            else:
                matrix = np.stack([inst.matrix() for inst in instructions])
            rhos = apply_unitary_batch(rhos, matrix, first.qubits)
            for kraus_ops, qubits in noise_model.channels_for(first):
                rhos = apply_kraus_batch(rhos, kraus_ops, qubits)
        for index, job in enumerate(jobs):
            job.noise_model = noise_model
            job.rho = rhos[index]

# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


class ExecutionEngine:
    """Evaluates whole co-search populations through the performance estimator.

    Parameters default to the estimator's :class:`EstimatorConfig` fields
    (``engine``, ``fusion``, ``max_fused_qubits``, ``transpile_cache_size``),
    so pipelines only need ``ExecutionEngine(estimator, supercircuit)``.
    """

    _STRUCTURE_CACHE_SIZE = 256

    def __init__(
        self,
        estimator,
        supercircuit,
        mode: Optional[str] = None,
        fusion: Optional[bool] = None,
        max_fused_qubits: Optional[int] = None,
        transpile_cache_size: Optional[int] = None,
        parametric_transpile: Optional[bool] = None,
    ) -> None:
        config = estimator.config
        self.estimator = estimator
        self.supercircuit = supercircuit
        self.mode = mode if mode is not None else getattr(config, "engine", "batched")
        if self.mode not in ("batched", "sequential"):
            raise ValueError("mode must be 'batched' or 'sequential'")
        self.fusion = bool(
            getattr(config, "fusion", True) if fusion is None else fusion
        )
        self.max_fused_qubits = int(
            getattr(config, "max_fused_qubits", 3)
            if max_fused_qubits is None
            else max_fused_qubits
        )
        # Caches are owned by the estimator when it provides them (the default
        # since the warm-start work), so engines created for successive
        # co-searches — and the deploy/evaluate stage — share one instance.
        # An explicit transpile_cache_size opts out into private caches.
        shared_cache = getattr(estimator, "transpile_cache", None)
        if transpile_cache_size is None and shared_cache is not None:
            self.transpile_cache = shared_cache
        else:
            self.transpile_cache = TranspileCache(
                int(
                    getattr(config, "transpile_cache_size", 1024)
                    if transpile_cache_size is None
                    else transpile_cache_size
                )
            )
        shared_parametric = getattr(estimator, "parametric_transpile_cache", None)
        if transpile_cache_size is None and shared_parametric is not None:
            self.parametric_cache = shared_parametric
        else:
            self.parametric_cache = ParametricTranspileCache(
                bound_maxsize=self.transpile_cache.maxsize,
                fallback=self.transpile_cache,
            )
        self.parametric_transpile = bool(
            getattr(config, "parametric_transpile", True)
            if parametric_transpile is None
            else parametric_transpile
        )
        self.stats = ExecutionStats()
        self._qml_structures: "OrderedDict[Tuple, _StructureEntry]" = OrderedDict()
        self._vqe_structures: "OrderedDict[Tuple, _StructureEntry]" = OrderedDict()
        self._readouts: Dict[Tuple[int, int], np.ndarray] = {}
        self._params_snapshot: Optional[bytes] = None

    def close(self) -> None:
        """Release scheduler resources (a no-op for the in-process engine).

        Exists so pipelines can close any population engine uniformly — the
        sharded subclass shuts its worker pool down here.
        """

    # -- scorer factories (what the evolution engine consumes) -----------------

    def qml_population_scorer(
        self, dataset, n_classes: int
    ) -> Callable[[Sequence], List[float]]:
        """A population-scoring callable for :meth:`EvolutionEngine.search`."""

        def scorer(candidates: Sequence) -> List[float]:
            return self.evaluate_qml_population(candidates, dataset, n_classes)

        return scorer

    def vqe_population_scorer(self, molecule) -> Callable[[Sequence], List[float]]:
        """A population-scoring callable for the VQE co-search."""

        def scorer(candidates: Sequence) -> List[float]:
            return self.evaluate_vqe_population(candidates, molecule)

        return scorer

    # -- population evaluation: QML ---------------------------------------------

    def evaluate_qml_population(
        self, candidates: Sequence, dataset, n_classes: int
    ) -> List[float]:
        """Predicted validation losses for every candidate (lower is better)."""
        candidates = list(candidates)
        if not candidates:
            return []
        estimator = self.estimator
        if self.mode == "sequential":
            return [
                self._sequential_qml(candidate, dataset, n_classes)
                for candidate in candidates
            ]

        self._maybe_invalidate_structures()
        n_qubits = self.supercircuit.n_qubits
        mode = estimator.resolve_mode(n_qubits)
        if mode == "real_qc":
            # shot sampling consumes the backend rng stream per candidate, in
            # population order; batching would reorder the draws
            self.stats.sequential_fallbacks += len(candidates)
            return [
                self._sequential_qml(candidate, dataset, n_classes)
                for candidate in candidates
            ]

        estimator.num_queries += len(candidates)
        self.stats.populations += 1
        self.stats.candidates += len(candidates)
        features, labels = estimator.validation_subset(dataset)
        groups = self._group(candidates, include_encoder=True)
        self.stats.config_groups += len(groups)
        scores = [0.0] * len(candidates)

        if mode == "noise_free":
            for entry, indices in groups:
                loss = self._qml_noise_free_loss(entry, features, labels, n_classes)
                for index in indices:
                    scores[index] = loss
            return scores

        if mode == "success_rate":
            # one binding per candidate — there is nothing for a parametric
            # template to amortize inside a population, so this path stays on
            # the bound-key cache (itself sped up by the memoized noise model
            # behind success_rate()); warm populations hit the cache as before
            optimization_level = estimator.config.optimization_level
            for entry, indices in groups:
                loss = self._qml_noise_free_loss(entry, features, labels, n_classes)
                bound = entry.circuit.bind(entry.weights, features[0])
                for index in indices:
                    compiled = self.transpile_cache.get(
                        bound,
                        estimator.device,
                        initial_layout=candidates[index].mapping,
                        optimization_level=optimization_level,
                    )
                    scores[index] = loss / compiled.success_rate()
            return scores

        # noise_sim: batched density-matrix simulation over every validation
        # sample of every candidate — transpiled once per (genome, mapping)
        # structure and re-bound per sample on the parametric path
        runner = _BatchedDensityRunner(
            estimator.device, estimator.config.max_density_qubits
        )
        optimization_level = estimator.config.optimization_level
        jobs_by_candidate: Dict[int, List[_DensityJob]] = {}
        for entry, indices in groups:
            if self.parametric_transpile:
                for index in indices:
                    mapping = candidates[index].mapping
                    jobs_by_candidate[index] = [
                        runner.submit(self._compile_parametric(entry, mapping, row))
                        for row in features
                    ]
                continue
            bound_rows = [
                entry.circuit.bind(entry.weights, row) for row in features
            ]
            for index in indices:
                mapping = candidates[index].mapping
                jobs_by_candidate[index] = [
                    runner.submit(
                        self.transpile_cache.get(
                            bound,
                            estimator.device,
                            initial_layout=mapping,
                            optimization_level=optimization_level,
                        )
                    )
                    for bound in bound_rows
                ]
        runner.run()
        self.stats.density_batches += runner.batches_run
        self.stats.density_circuits += len(candidates) * len(features)
        estimator._backend.record_executions(len(candidates) * len(features))

        readout = self._readout_matrix(n_qubits, n_classes)
        for index, jobs in jobs_by_candidate.items():
            expectations = np.stack(
                [job.logical_z_expectations(n_qubits) for job in jobs]
            )
            logits = expectations @ readout.T
            scores[index] = nll_loss(softmax(logits), labels)
        return scores

    # -- population evaluation: VQE ---------------------------------------------

    def evaluate_vqe_population(self, candidates: Sequence, molecule) -> List[float]:
        """Predicted measured energies for every candidate (lower is better)."""
        candidates = list(candidates)
        if not candidates:
            return []
        estimator = self.estimator
        if self.mode == "sequential":
            return [
                self._sequential_vqe(candidate, molecule) for candidate in candidates
            ]

        self._maybe_invalidate_structures()
        n_qubits = self.supercircuit.n_qubits
        mode = estimator.resolve_mode(n_qubits)
        if mode == "real_qc":
            self.stats.sequential_fallbacks += len(candidates)
            return [
                self._sequential_vqe(candidate, molecule) for candidate in candidates
            ]

        estimator.num_queries += len(candidates)
        self.stats.populations += 1
        self.stats.candidates += len(candidates)
        hamiltonian = estimator.observable_for(molecule)
        groups = self._group(candidates, include_encoder=False)
        self.stats.config_groups += len(groups)
        scores = [0.0] * len(candidates)

        noise_free: Dict[int, float] = {}
        for group_index, (entry, indices) in enumerate(groups):
            states = self._forward_states(entry, features=None, batch=1)
            noise_free[group_index] = float(
                expectation_pauli_sum(states, hamiltonian)[0]
            )

        if mode == "noise_free":
            for group_index, (entry, indices) in enumerate(groups):
                for index in indices:
                    scores[index] = noise_free[group_index]
            return scores

        optimization_level = estimator.config.optimization_level
        max_density = estimator.config.max_density_qubits
        mixed_energy = hamiltonian.constant
        runner = _BatchedDensityRunner(estimator.device, max_density)
        density_jobs: List[Tuple[int, _DensityJob]] = []

        use_parametric = self.parametric_transpile and mode == "noise_sim"
        for group_index, (entry, indices) in enumerate(groups):
            energy = noise_free[group_index]
            bound = None if use_parametric else entry.circuit.bind(entry.weights)
            for index in indices:
                if bound is None:
                    compiled = self._compile_parametric(
                        entry, candidates[index].mapping, None
                    )
                else:
                    compiled = self.transpile_cache.get(
                        bound,
                        estimator.device,
                        initial_layout=candidates[index].mapping,
                        optimization_level=optimization_level,
                    )
                if mode == "success_rate":
                    rate = compiled.success_rate()
                    scores[index] = rate * energy + (1.0 - rate) * mixed_energy
                    continue
                # noise_sim
                job = runner.job_for(compiled)
                if job.n_reduced > max_density:
                    rate = compiled.success_rate()
                    scores[index] = rate * energy + (1.0 - rate) * mixed_energy
                else:
                    runner.enqueue(job)
                    density_jobs.append((index, job))

        if density_jobs:
            runner.run()
            self.stats.density_batches += runner.batches_run
            self.stats.density_circuits += len(density_jobs)
            # unlike the QML path, the sequential VQE estimator simulates
            # density matrices itself without charging the backend, so no
            # record_executions here — the #QC-runs metric must match
            remapped_cache: Dict[int, object] = {}
            for index, job in density_jobs:
                key = id(job)
                if key not in remapped_cache:
                    remapped_cache[key] = estimator.remap_hamiltonian(
                        hamiltonian, job.compiled, job.used_physical
                    )
                scores[index] = expectation_pauli_sum_dm(
                    job.rho, remapped_cache[key]
                )
        return scores

    # -- noisy expectations (public so tests can pin the batched path) ----------

    def noisy_expectations(
        self,
        circuit: ParameterizedCircuit,
        weights: np.ndarray,
        mapping,
        features: np.ndarray,
    ) -> np.ndarray:
        """Per-sample logical Z expectations under the device noise model.

        Matches ``QuantumBackend.run(circuit.bind(weights, row), ...)`` with
        ``shots=0``, sample by sample, but runs every sample through one
        batched density-matrix evolution.
        """
        estimator = self.estimator
        runner = _BatchedDensityRunner(
            estimator.device, estimator.config.max_density_qubits
        )
        jobs = []
        for row in np.atleast_2d(features):
            if self.parametric_transpile:
                compiled = self.parametric_cache.get_bound(
                    circuit,
                    weights,
                    row,
                    estimator.device,
                    initial_layout=mapping,
                    optimization_level=estimator.config.optimization_level,
                )
            else:
                compiled = self.transpile_cache.get(
                    circuit.bind(weights, row),
                    estimator.device,
                    initial_layout=mapping,
                    optimization_level=estimator.config.optimization_level,
                )
            jobs.append(runner.submit(compiled))
        runner.run()
        return np.stack(
            [job.logical_z_expectations(circuit.n_qubits) for job in jobs]
        )

    # -- sequential reference paths ---------------------------------------------

    def _sequential_qml(self, candidate, dataset, n_classes: int) -> float:
        circuit, _ = self.supercircuit.build_standalone_circuit(candidate.config)
        weights = self.supercircuit.inherited_weights(candidate.config)
        return self.estimator.estimate_qml(
            circuit, weights, dataset, n_classes, layout=candidate.mapping
        )

    def _sequential_vqe(self, candidate, molecule) -> float:
        circuit, _ = self.supercircuit.build_standalone_circuit(
            candidate.config, include_encoder=False
        )
        weights = self.supercircuit.inherited_weights(candidate.config)
        return self.estimator.estimate_vqe(
            circuit, weights, molecule, layout=candidate.mapping
        )

    # -- internals ----------------------------------------------------------------

    def _compile_parametric(
        self, entry: "_StructureEntry", mapping, features_row
    ) -> object:
        """Compiled circuit for one binding via the structure-keyed cache.

        One parametric compilation per (genome, mapping) structure; every
        (weights, sample) binding is an O(params) template fill, with the
        bound-key cache as exact fallback for bindings that cross a
        compile-time branch.
        """
        return self.parametric_cache.get_bound(
            entry.circuit,
            entry.weights,
            features_row,
            self.estimator.device,
            initial_layout=mapping,
            optimization_level=self.estimator.config.optimization_level,
        )

    def _maybe_invalidate_structures(self) -> None:
        """Drop cached circuits when the SuperCircuit parameters change."""
        snapshot = self.supercircuit.parameters.tobytes()
        if snapshot != self._params_snapshot:
            self._qml_structures.clear()
            self._vqe_structures.clear()
            self._params_snapshot = snapshot

    def _group(
        self, candidates: Sequence, include_encoder: bool
    ) -> List[Tuple[_StructureEntry, List[int]]]:
        """Group candidate indices by SubCircuit genome, building each once."""
        cache = self._qml_structures if include_encoder else self._vqe_structures
        groups: "OrderedDict[Tuple, Tuple[_StructureEntry, List[int]]]" = OrderedDict()
        for index, candidate in enumerate(candidates):
            key = tuple(candidate.config.as_gene())
            bucket = groups.get(key)
            if bucket is None:
                entry = cache.get(key)
                if entry is None:
                    circuit, weight_map = self.supercircuit.build_standalone_circuit(
                        candidate.config, include_encoder=include_encoder
                    )
                    weights = self.supercircuit.parameters[weight_map].copy()
                    entry = _StructureEntry(circuit, weights)
                    cache[key] = entry
                    if len(cache) > self._STRUCTURE_CACHE_SIZE:
                        cache.popitem(last=False)
                else:
                    cache.move_to_end(key)
                bucket = (entry, [])
                groups[key] = bucket
            bucket[1].append(index)
        return list(groups.values())

    def _readout_matrix(self, n_qubits: int, n_classes: int) -> np.ndarray:
        key = (n_qubits, n_classes)
        if key not in self._readouts:
            self._readouts[key] = readout_matrix(n_qubits, n_classes)
        return self._readouts[key]

    def _qml_noise_free_loss(
        self,
        entry: _StructureEntry,
        features: np.ndarray,
        labels: np.ndarray,
        n_classes: int,
    ) -> float:
        states = self._forward_states(entry, features=features)
        expectations = expectation_z_all(states)
        logits = expectations @ self._readout_matrix(
            entry.circuit.n_qubits, n_classes
        ).T
        return nll_loss(softmax(logits), labels)

    # -- fused forward pass -------------------------------------------------------

    def _fusion_plan(self, entry: _StructureEntry) -> List[Tuple[str, object]]:
        """Fuse concrete (weight/const) segments; keep encoder ops dynamic."""
        if entry.fusion_plan is not None:
            return entry.fusion_plan
        circuit, weights = entry.circuit, entry.weights
        plan: List[Tuple[str, object]] = []
        segment: List[Instruction] = []

        def flush() -> None:
            if not segment:
                return
            concrete = QuantumCircuit(circuit.n_qubits, list(segment))
            for block in fuse_circuit(concrete, self.max_fused_qubits):
                plan.append(("fused", block))
            self.stats.fused_segments += 1
            segment.clear()

        for op in circuit.ops:
            if op.uses_input:
                flush()
                plan.append(("dynamic", op))
            else:
                params = circuit.resolve_params(op, weights)
                segment.append(Instruction(op.gate, op.qubits, tuple(params)))
        flush()
        entry.fusion_plan = plan
        return plan

    def _forward_states(
        self,
        entry: _StructureEntry,
        features: Optional[np.ndarray] = None,
        batch: int = 1,
    ) -> np.ndarray:
        """Statevector forward pass with static-mode fusion when enabled."""
        circuit, weights = entry.circuit, entry.weights
        if features is not None:
            features = np.asarray(features, dtype=float)
            if features.ndim == 1:
                features = features[None, :]
            batch = features.shape[0]
        if not self.fusion:
            from ..quantum.statevector import run_parameterized

            return run_parameterized(circuit, weights, features, batch=batch)
        states = zero_state(circuit.n_qubits, batch)
        for kind, payload in self._fusion_plan(entry):
            if kind == "fused":
                states = apply_matrix(states, payload.matrix, payload.qubits)
            else:
                params = circuit.resolve_params(payload, weights, features)
                states = apply_matrix(
                    states, op_matrix(payload.gate, params), payload.qubits
                )
        return states
