"""Deterministic fault injection for the sharded runtimes.

The sharded engines promise that worker faults can delay a generation but
never change a score.  Proving that needs a way to *cause* faults — in
chosen shards, at chosen points of the worker lifecycle, in chosen
generations — that is reproducible run-to-run.  This module is that seam:
a :class:`FaultPlan` is a declarative list of :class:`FaultSpec` entries,
each a pure predicate over ``(engine, point, shard, generation, attempt)``
plus an action, and a :class:`FaultInjector` ships inside every shard task
so the worker side can ask "does anything fire here?" at the four
instrumented points:

``pool_spawn``
    inside the worker-pool initializer, before the worker estimator/engine
    stack is built;
``task_receive``
    at task entry, before any evaluation;
``mid_evaluation``
    between evaluation units (after the first structure group / weight
    row), so partially completed work is discarded;
``result_send``
    after evaluation, before the result payload is returned — the whole
    shard's work is lost in flight.

Four fault kinds cover the failure taxonomy the resilience layer
classifies (:mod:`repro.execution.resilience`):

``crash``
    the worker process exits immediately (``os._exit``) — the parent sees
    a broken pool, an *infrastructure* fault;
``hang``
    the worker sleeps far past any deadline — detected only by the
    parent's watchdog, also infrastructure;
``slow``
    the worker sleeps ``seconds`` and then completes normally — exercises
    deadline headroom without failing;
``flaky``
    the worker raises :class:`InjectedFault` — a *task error* that does
    not reproduce when the parent re-runs the unit in-process, the
    transient-error recovery path.

Determinism: every decision is a pure function of the spec list and the
``(engine, point, shard, generation, attempt)`` coordinates the schedulers
stamp into each task, so a faulty run is exactly reproducible and the
chaos tests can assert bitwise score equality against fault-free runs.

``REPRO_FAULTS`` grammar (parsed by :meth:`FaultPlan.parse`)::

    REPRO_FAULTS="crash@task_receive[shard=0,gen=1];slow@mid_evaluation[seconds=0.1]"

Specs are separated by ``;``.  Each is ``kind@point`` plus optional
``[key=value,...]`` qualifiers: ``shard`` (int or ``*``), ``gen`` (int or
``*``), ``engine`` (``execution`` | ``gradient`` | ``*``), ``times`` (the
fault fires while ``attempt < times``; default 1, so a retried unit
succeeds), ``seconds`` (sleep length for slow/hang).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = [
    "FAULT_KINDS",
    "FAULT_POINTS",
    "FAULT_ENGINES",
    "InjectedFault",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
]

FAULT_KINDS = ("crash", "hang", "slow", "flaky")
FAULT_POINTS = ("pool_spawn", "task_receive", "mid_evaluation", "result_send")
FAULT_ENGINES = ("execution", "gradient", "*")

#: how long a ``hang`` sleeps when no ``seconds`` qualifier is given — far
#: past any sane deadline, bounded so an unwatched test cannot block forever
DEFAULT_HANG_SECONDS = 600.0
DEFAULT_SLOW_SECONDS = 0.25

ENV_VAR = "REPRO_FAULTS"


class InjectedFault(RuntimeError):
    """The transient task error raised by ``flaky`` fault specs.

    Raised worker-side only: when the parent re-runs the failed unit
    in-process as a confirmation, the injector is not consulted, so the
    error does not reproduce — the signature of a transient fault.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: a match predicate plus an action."""

    kind: str
    point: str
    shard: Optional[int] = None        # None = every shard
    generation: Optional[int] = None   # None = every generation / step
    engine: str = "*"                  # execution | gradient | *
    times: int = 1                     # fires while attempt < times
    seconds: Optional[float] = None    # sleep length for slow / hang

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        if self.point not in FAULT_POINTS:
            raise ValueError(f"fault point must be one of {FAULT_POINTS}, got {self.point!r}")
        if self.engine not in FAULT_ENGINES:
            raise ValueError(f"fault engine must be one of {FAULT_ENGINES}, got {self.engine!r}")
        if self.times < 1:
            raise ValueError("times must be >= 1")

    def matches(
        self, engine: str, point: str, shard: int, generation: int, attempt: int
    ) -> bool:
        if self.point != point:
            return False
        if self.engine != "*" and self.engine != engine:
            return False
        if self.shard is not None and self.shard != shard:
            return False
        if self.generation is not None and self.generation != generation:
            return False
        return attempt < self.times

    def describe(self) -> str:
        parts = []
        if self.shard is not None:
            parts.append(f"shard={self.shard}")
        if self.generation is not None:
            parts.append(f"gen={self.generation}")
        if self.engine != "*":
            parts.append(f"engine={self.engine}")
        if self.times != 1:
            parts.append(f"times={self.times}")
        if self.seconds is not None:
            parts.append(f"seconds={self.seconds:g}")
        suffix = f"[{','.join(parts)}]" if parts else ""
        return f"{self.kind}@{self.point}{suffix}"


def _parse_spec(text: str) -> FaultSpec:
    spec = text.strip()
    qualifiers = {}
    if "[" in spec:
        head, _, rest = spec.partition("[")
        body = rest.rstrip()
        if not body.endswith("]"):
            raise ValueError(f"unterminated qualifier list in fault spec {text!r}")
        for item in body[:-1].split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ValueError(f"qualifier {item!r} in fault spec {text!r} needs key=value")
            key, _, value = item.partition("=")
            qualifiers[key.strip()] = value.strip()
        spec = head.strip()
    if "@" not in spec:
        raise ValueError(f"fault spec {text!r} must look like kind@point[...]")
    kind, _, point = spec.partition("@")

    def int_or_any(value: str, name: str) -> Optional[int]:
        if value == "*":
            return None
        try:
            return int(value)
        except ValueError:
            raise ValueError(f"{name} must be an int or '*' in fault spec {text!r}") from None

    known = {"shard", "gen", "engine", "times", "seconds"}
    unknown = set(qualifiers) - known
    if unknown:
        raise ValueError(
            f"unknown qualifier(s) {sorted(unknown)} in fault spec {text!r}; "
            f"known: {sorted(known)}"
        )
    return FaultSpec(
        kind=kind.strip(),
        point=point.strip(),
        shard=int_or_any(qualifiers["shard"], "shard") if "shard" in qualifiers else None,
        generation=int_or_any(qualifiers["gen"], "gen") if "gen" in qualifiers else None,
        engine=qualifiers.get("engine", "*"),
        times=int(qualifiers["times"]) if "times" in qualifiers else 1,
        seconds=float(qualifiers["seconds"]) if "seconds" in qualifiers else None,
    )


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, immutable list of fault specs."""

    specs: Tuple[FaultSpec, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.specs)

    @classmethod
    def parse(cls, text: Optional[str]) -> "FaultPlan":
        """Parse a ``REPRO_FAULTS``-style string (empty/None → empty plan)."""
        if not text or not text.strip():
            return cls()
        specs = tuple(
            _parse_spec(part) for part in text.split(";") if part.strip()
        )
        return cls(specs)

    @classmethod
    def from_env(cls, environ=None) -> "FaultPlan":
        """The plan named by the ``REPRO_FAULTS`` environment variable."""
        env = os.environ if environ is None else environ
        return cls.parse(env.get(ENV_VAR))

    def scoped(self, engine: str) -> "FaultPlan":
        """The subset of specs that can ever fire for ``engine``."""
        return FaultPlan(
            tuple(s for s in self.specs if s.engine in ("*", engine))
        )

    def injector(self, engine: str) -> Optional["FaultInjector"]:
        """A picklable injector for ``engine``, or None when nothing applies."""
        scoped = self.scoped(engine)
        if not scoped:
            return None
        return FaultInjector(plan=scoped, engine=engine)

    def describe(self) -> str:
        return ";".join(spec.describe() for spec in self.specs)


# repro: pickle-boundary
@dataclass(frozen=True)
class FaultInjector:
    """The worker-side trigger, shipped inside every shard task.

    ``fire`` is called at each instrumented point with the task's stamped
    coordinates; matching specs act in plan order.  ``crash`` never
    returns, ``flaky`` raises, ``hang``/``slow`` sleep and fall through —
    so one call can both slow a shard and then crash it if the plan says
    so.
    """

    plan: FaultPlan
    engine: str

    def fire(self, point: str, shard: int, generation: int, attempt: int) -> None:
        for spec in self.plan.specs:
            if not spec.matches(self.engine, point, shard, generation, attempt):
                continue
            where = (
                f"{spec.kind}@{point} shard={shard} gen={generation} "
                f"attempt={attempt} ({self.engine})"
            )
            if spec.kind == "crash":
                # a hard process death, not an exception: the parent must
                # observe a broken pool, exactly like a real worker crash
                os._exit(1)
            elif spec.kind == "hang":
                time.sleep(
                    DEFAULT_HANG_SECONDS if spec.seconds is None else spec.seconds
                )
            elif spec.kind == "slow":
                time.sleep(
                    DEFAULT_SLOW_SECONDS if spec.seconds is None else spec.seconds
                )
            elif spec.kind == "flaky":
                raise InjectedFault(f"injected transient fault: {where}")
