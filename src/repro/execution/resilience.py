"""Worker liveness, failure classification and per-shard retry.

Before this layer existed, any single worker fault in a sharded engine
discarded every healthy shard's scores and re-ran the whole generation in
the parent process, and a hung worker blocked ``future.result()`` forever.
This module gives both sharded engines (:class:`~repro.execution.scheduler.
ShardedExecutionEngine`, :class:`~repro.gradients.sharded.
ShardedGradientEngine`) a common liveness/retry substrate:

**Failure classification.**  A shard failure is either an *infrastructure*
fault — a broken/dead pool, or a deadline timeout — or a *task error*, an
exception the task function itself raised.  Infrastructure faults are
retried (the unit of work is hermetic, so a re-run is bitwise identical);
task errors are **not** retried blindly: the owning engine re-runs the unit
in-process once, and an error that reproduces is re-raised as a real bug
instead of being degraded into a slow retry loop.

**Per-shard deadlines.**  :meth:`ResilientDispatcher.run` gathers shard
futures through a watchdog: any shard still running past
``deadline_seconds`` (scaled by how many tasks share its pool, so
rebalanced rounds are not penalized) is declared hung, its worker pool is
killed outright, and the shard is retried like any other infrastructure
fault.

**Retry with rebalancing.**  Failed shard tasks are retried with capped
exponential backoff, each task resubmitted to its own pool if that pool is
still alive and otherwise *rebalanced* onto the least-loaded surviving
pool — healthy shards' results are kept, and determinism is unaffected
because tasks carry their own pinned seeds and the unit of evaluation is
hermetic with respect to which process runs it.  Pools killed during a
generation are respawned in the background after the generation completes,
so later generations return to full width.

**Last resort.**  Only when every retry round is exhausted does
:class:`RetriesExhausted` reach the engine, which then (and only then)
degrades the whole generation to the in-process path.

The dispatcher mutates a stats object through the
:class:`ResilienceCounters` field names, which both engines' scheduler
stats dataclasses carry; counters merge through the usual
:class:`~repro.execution.stats.MergeableStats` protocol.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..utils import clock
from .. import telemetry

__all__ = [
    "INFRASTRUCTURE",
    "TASK_ERROR",
    "classify_failure",
    "ShardDeadlineExceeded",
    "RetriesExhausted",
    "RetryPolicy",
    "WorkerPoolGroup",
    "ResilientDispatcher",
]

#: failure classes (see module docstring)
INFRASTRUCTURE = "infrastructure"
TASK_ERROR = "task_error"


class ShardDeadlineExceeded(Exception):
    """A shard ran past its deadline; its pool was killed by the watchdog."""


class RetriesExhausted(Exception):
    """Every retry round failed; the generation must degrade in-process.

    Carries the results healthy shards produced before exhaustion so the
    engine can still adopt their cache entries and start the degraded
    retry warm.
    """

    def __init__(self, results: Dict[int, object], cause: BaseException) -> None:
        super().__init__(str(cause))
        self.results = results
        self.cause = cause


def classify_failure(exc: BaseException) -> str:
    """``INFRASTRUCTURE`` (retry) or ``TASK_ERROR`` (confirm in-process).

    Broken pools (worker process died), deadline timeouts and OS-level
    process failures are infrastructure: the work unit never misbehaved,
    only the machinery around it, and a re-run elsewhere is bitwise
    identical.  Everything else travelled back from the task function as a
    real exception and must not be retried blindly.
    """
    if isinstance(exc, (BrokenProcessPool, BrokenExecutor, ShardDeadlineExceeded)):
        return INFRASTRUCTURE
    if isinstance(exc, OSError):
        return INFRASTRUCTURE
    return TASK_ERROR


@dataclass(frozen=True)
class RetryPolicy:
    """The per-shard retry/deadline knobs (see ``EstimatorConfig``)."""

    deadline_seconds: Optional[float] = 600.0
    max_retries: int = 2
    backoff_seconds: float = 0.05
    backoff_max_seconds: float = 2.0

    @classmethod
    def from_config(cls, config) -> "RetryPolicy":
        """Read the ``shard_*`` fields off an estimator/gradient config."""
        defaults = cls()
        return cls(
            deadline_seconds=getattr(
                config, "shard_deadline_seconds", defaults.deadline_seconds
            ),
            max_retries=int(
                getattr(config, "shard_retries", defaults.max_retries)
            ),
            backoff_seconds=float(
                getattr(config, "shard_backoff_seconds", defaults.backoff_seconds)
            ),
            backoff_max_seconds=float(
                getattr(
                    config,
                    "shard_backoff_max_seconds",
                    defaults.backoff_max_seconds,
                )
            ),
        )

    def backoff(self, round_index: int) -> float:
        """Capped exponential backoff before retry round ``round_index``."""
        if self.backoff_seconds <= 0:
            return 0.0
        return min(
            self.backoff_seconds * (2.0 ** round_index), self.backoff_max_seconds
        )


def kill_executor(executor: ProcessPoolExecutor) -> None:
    """Kill a pool outright, including workers stuck in a hung task.

    ``shutdown`` alone would join a hung worker forever, so the worker
    processes are terminated first (``_processes`` is private API, but it
    is the only handle the executor exposes; a terminated worker makes the
    subsequent ``shutdown`` return promptly).
    """
    processes = getattr(executor, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:
            pass
    try:
        executor.shutdown(wait=True, cancel_futures=True)
    except Exception:
        pass


class WorkerPoolGroup:
    """The per-shard single-process pools one sharded engine owns.

    Shard ``i`` always runs in pool ``i`` when that pool is healthy, so
    worker caches stay warm across generations; the dispatcher only moves
    a task elsewhere after pool ``i`` dies.  ``initargs_fn(shard_index,
    spawn_attempt)`` builds the initializer arguments per spawn, so the
    fault harness can target ``pool_spawn`` and a respawn (attempt > 0)
    can come up clean.
    """

    def __init__(
        self,
        size: int,
        initializer: Callable,
        initargs_fn: Callable[[int, int], tuple],
    ) -> None:
        self.size = max(0, int(size))
        self._initializer = initializer
        self._initargs_fn = initargs_fn
        self._slots: List[Optional[ProcessPoolExecutor]] = [None] * self.size
        self.spawn_counts: List[int] = [0] * self.size
        #: slots whose pool was killed and not yet respawned.  Distinct from
        #: "not yet spawned" (slot None, dead False): a lazy slot is usable —
        #: ensure() will spawn it — while a dead one must not be assigned
        #: work until it is respawned.
        self.dead: List[bool] = [False] * self.size

    @property
    def slots(self) -> List[Optional[ProcessPoolExecutor]]:
        return self._slots

    def alive_indices(self) -> List[int]:
        return [i for i, slot in enumerate(self._slots) if slot is not None]

    def usable_indices(self) -> List[int]:
        """Slots that may take work: spawned-and-healthy or lazily unspawned."""
        return [i for i in range(self.size) if not self.dead[i]]

    def ensure(self, index: int) -> ProcessPoolExecutor:
        """The pool for slot ``index``, spawning a fresh one if needed."""
        if self._slots[index] is None:
            self.dead[index] = False
            # fork (where available) shares the parent's loaded modules and
            # the initargs copy-on-write instead of re-importing numpy and
            # re-pickling the payloads per worker
            method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else None
            )
            attempt = self.spawn_counts[index]
            self.spawn_counts[index] += 1
            self._slots[index] = ProcessPoolExecutor(
                max_workers=1,
                mp_context=multiprocessing.get_context(method),
                initializer=self._initializer,
                initargs=self._initargs_fn(index, attempt),
            )
        return self._slots[index]

    def kill(self, index: int) -> None:
        """Terminate slot ``index``'s pool (hung workers included)."""
        executor = self._slots[index]
        self._slots[index] = None
        self.dead[index] = True
        if executor is not None:
            kill_executor(executor)

    def respawn_in_background(self, index: int, ping_fn: Callable) -> bool:
        """Bring a dead slot back without blocking the caller.

        Creates a fresh pool and submits one no-op ``ping_fn`` task so the
        worker process starts (and runs its initializer) concurrently with
        the parent's continued work; nobody waits on the future.  Returns
        False when the slot is already alive.
        """
        if self._slots[index] is not None:
            return False
        try:
            executor = self.ensure(index)
            executor.submit(ping_fn, index)
        except Exception:
            # the respawn itself failed; the slot stays dead and a later
            # round's ensure() will try again.  ensure() may already have
            # constructed a pool (and forked its worker) before the ping
            # submit blew up — kill it, or the worker process leaks.
            executor = self._slots[index]
            self._slots[index] = None
            self.dead[index] = True
            if executor is not None:
                kill_executor(executor)
            return False
        return True

    def close(self) -> None:
        """Tear every pool down, hung workers included.

        Routed through :func:`kill_executor` rather than a bare
        ``shutdown(wait=True)``: shutdown joins the worker, so closing an
        engine whose worker is stuck mid-task would block forever.
        Terminating first makes close bounded regardless of worker state.
        """
        for index, executor in enumerate(self._slots):
            if executor is not None:
                self._slots[index] = None
                kill_executor(executor)


class ResilienceCounters:
    """The stats field names :class:`ResilientDispatcher` increments.

    Both scheduler stats dataclasses define these as ordinary ``int``
    fields (plus ``watchdog_wait_seconds`` as a float), so resilience
    accounting merges across processes like every other counter.
    """

    FIELDS = (
        "worker_failures",
        "retried_shards",
        "rebalanced_shards",
        "respawned_pools",
        "deadline_timeouts",
        "watchdog_wait_seconds",
    )


class ResilientDispatcher:
    """Runs one generation's shard tasks under the retry/deadline policy.

    Engine-agnostic: tasks are opaque beyond two mutable attributes the
    schedulers stamp (``shard_index``, ``attempt``) and a picklable form
    ``submit`` can ship.  :meth:`run` returns ``(results, task_errors)``;
    infrastructure faults never appear in ``task_errors`` — they are
    consumed by retries or surface as :class:`RetriesExhausted`.
    """

    def __init__(
        self,
        pools: WorkerPoolGroup,
        policy: RetryPolicy,
        run_fn: Callable,
        ping_fn: Callable,
        stats,
    ) -> None:
        self.pools = pools
        self.policy = policy
        self.run_fn = run_fn
        self.ping_fn = ping_fn
        self.stats = stats

    # -- public entry ---------------------------------------------------------

    def run(
        self, tasks: Dict[int, object]
    ) -> Tuple[Dict[int, object], Dict[int, BaseException]]:
        results: Dict[int, object] = {}
        task_errors: Dict[int, BaseException] = {}
        pending = dict(tasks)
        killed: List[int] = []
        round_index = 0
        last_cause: Optional[BaseException] = None
        while pending:
            if round_index > self.policy.max_retries:
                self._respawn_killed(killed)
                raise RetriesExhausted(
                    results, last_cause or RuntimeError("shard retries exhausted")
                )
            if round_index > 0:
                delay = self.policy.backoff(round_index - 1)
                if delay > 0:
                    time.sleep(delay)
                self.stats.retried_shards += len(pending)
                telemetry.event(
                    "resilience.retry_round",
                    round=round_index,
                    shards=len(pending),
                )
                for shard_index in sorted(pending):
                    pending[shard_index].attempt += 1
            assignments = self._assign(sorted(pending))
            futures = self._submit_round(pending, assignments)
            outcomes = self._gather(futures, assignments)
            for shard_index in sorted(outcomes):
                status, value = outcomes[shard_index]
                if status == "ok":
                    results[shard_index] = value
                    pending.pop(shard_index)
                    continue
                self.stats.worker_failures += 1
                last_cause = value
                telemetry.event(
                    "resilience.failure",
                    shard=shard_index,
                    classified=classify_failure(value),
                    error=type(value).__name__,
                )
                if classify_failure(value) == INFRASTRUCTURE:
                    if isinstance(value, ShardDeadlineExceeded):
                        self.stats.deadline_timeouts += 1
                    pool_index = assignments[shard_index]
                    if self.pools.slots[pool_index] is not None:
                        self.pools.kill(pool_index)
                    if pool_index not in killed:
                        killed.append(pool_index)
                    # stays pending: retried (possibly rebalanced) next round
                else:
                    task_errors[shard_index] = value
                    pending.pop(shard_index)
            round_index += 1
        self._respawn_killed(killed)
        return results, task_errors

    # -- scheduling internals -------------------------------------------------

    def _assign(self, shard_indices: List[int]) -> Dict[int, int]:
        """Deterministic shard→pool assignment for one round.

        Home pool when usable (healthy, or lazily unspawned — ``ensure``
        spawns it on submit); otherwise the least-loaded surviving pool
        (lowest index as tie-break).  When *every* pool is dead, home pools
        are respawned in place, so whole-generation degradation stays the
        genuine last resort.
        """
        loads: Dict[int, int] = {
            index: 0 for index in self.pools.usable_indices()
        }
        assignments: Dict[int, int] = {}
        for shard_index in shard_indices:
            if shard_index in loads:
                target = shard_index
            elif loads:
                target = min(loads, key=lambda pool: (loads[pool], pool))
                self.stats.rebalanced_shards += 1
            else:
                target = shard_index  # every pool is dead: respawn in place
                loads[target] = 0
            loads[target] = loads.get(target, 0) + 1
            assignments[shard_index] = target
        return assignments

    def _submit_round(
        self, pending: Dict[int, object], assignments: Dict[int, int]
    ) -> Dict[int, "Future | BaseException"]:
        futures: Dict[int, "Future | BaseException"] = {}
        for shard_index in sorted(pending):
            pool_index = assignments[shard_index]
            try:
                executor = self.pools.ensure(pool_index)
                futures[shard_index] = executor.submit(
                    self.run_fn, pending[shard_index]
                )
            except Exception as exc:
                # submit-time failures (pool broken before/while submitting)
                # are infrastructure faults of this shard's round
                futures[shard_index] = exc
        return futures

    def _gather(
        self,
        futures: Dict[int, "Future | BaseException"],
        assignments: Dict[int, int],
    ) -> Dict[int, Tuple[str, object]]:
        outcomes: Dict[int, Tuple[str, object]] = {}
        real: Dict[int, Future] = {}
        for shard_index in sorted(futures):
            value = futures[shard_index]
            if isinstance(value, BaseException):
                outcomes[shard_index] = ("error", value)
            else:
                real[shard_index] = value
        if not real:
            return outcomes
        deadline = self.policy.deadline_seconds
        if deadline is None:
            for shard_index in sorted(real):
                outcomes[shard_index] = self._outcome(real[shard_index])
            return outcomes
        # the watchdog: one bounded wait for the round.  Tasks sharing one
        # pool run serially (max_workers=1), so the budget scales with the
        # busiest pool's queue length instead of punishing rebalanced
        # rounds.
        busiest = max(
            sum(1 for s in real if assignments[s] == pool)
            for pool in sorted(set(assignments[s] for s in real))
        )
        effective = deadline * max(1, busiest)
        started = clock.monotonic()
        done, not_done = wait(list(real.values()), timeout=effective)
        self.stats.watchdog_wait_seconds += clock.monotonic() - started
        for shard_index in sorted(real):
            future = real[shard_index]
            if future in not_done:
                future.cancel()
                telemetry.event(
                    "resilience.deadline_timeout",
                    shard=shard_index,
                    budget_seconds=effective,
                )
                outcomes[shard_index] = (
                    "error",
                    ShardDeadlineExceeded(
                        f"shard {shard_index} exceeded its "
                        f"{deadline:g}s deadline (round budget {effective:g}s); "
                        "killing its worker pool"
                    ),
                )
            else:
                outcomes[shard_index] = self._outcome(future)
        return outcomes

    @staticmethod
    def _outcome(future: Future) -> Tuple[str, object]:
        try:
            return ("ok", future.result())
        except Exception as exc:
            return ("error", exc)

    def _respawn_killed(self, killed: List[int]) -> None:
        for pool_index in killed:
            if self.pools.respawn_in_background(pool_index, self.ping_fn):
                self.stats.respawned_pools += 1
                telemetry.event("resilience.respawn", pool=pool_index)
