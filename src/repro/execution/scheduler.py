"""Sharded multi-process population evaluation for the co-search hot path.

:class:`ShardedExecutionEngine` partitions a population's structure groups
(candidates sharing one SubCircuit genome) across a persistent
``concurrent.futures.ProcessPoolExecutor``.  Each worker owns a full
:class:`~repro.core.estimator.PerformanceEstimator` +
:class:`~repro.execution.engine.ExecutionEngine` stack — including its own
transpile/parametric caches, which stay warm across generations — and after
every generation each worker's *new* cache entries and counter deltas are
merged back into the parent estimator's caches through the explicit
:class:`~repro.execution.stats.MergeableStats` protocol, so the
deploy/evaluate stage (and any degraded generation) starts from everything
the fleet compiled.

Determinism contract
--------------------
Results are bit-for-bit independent of the worker count.  Three rules make
that hold:

1. **The unit of evaluation is the structure group, everywhere.**  A group's
   candidates are always evaluated together through one in-process
   ``ExecutionEngine`` call — inside a worker, inside the parent when
   ``workers <= 1``, and inside the parent again when a generation degrades —
   so the batched density-matrix stacks, transpile requests and cache-state
   evolution a group sees are identical no matter where (or alongside what)
   it runs.  Changing the worker count only moves groups between processes;
   it never changes the numbers any group produces.  The same hermeticity is
   what makes *retrying* a failed shard on a different pool bitwise safe.
2. **Shard assignment is a pure function of the population.**  Group keys are
   ordered stably (sorted genome genes) and assigned greedily
   (largest-candidate-count first, key as tie-break) to the least-loaded
   shard — never by pool state, population order or prior generations.
3. **Per-shard seeds are pinned.**  Every shard task re-seeds its worker's
   estimator/backend rng streams from ``stable_seed((seed, "shard", i))``.
   The seed travels *with the task*, so a task retried on a surviving pool
   samples exactly what its home pool would have.  No sharded mode consumes
   these streams today (``real_qc`` — the only rng-consuming estimator mode
   — always takes the sequential parent path), so this is defensive.

Resilience (see :mod:`repro.execution.resilience`)
--------------------------------------------------
Shard failures are classified.  *Infrastructure* faults — a broken pool, a
worker crash, a deadline timeout flagged by the watchdog — are retried with
capped exponential backoff, rebalancing the failed shard's groups onto
surviving workers while every healthy shard's scores are kept; killed pools
respawn in the background so later generations return to full width.  *Task
errors* (the evaluation itself raised) are confirmed by one in-process
re-run of the shard's groups: a transient error recovers with a warning, a
reproducing error is re-raised as the real bug it is.  Whole-generation
in-process degradation (``degraded_generations``) remains only as the last
resort when retries are exhausted — and even then cache entries already
returned by healthy shards are adopted first, so the retry is warm, and a
fault can delay a generation but never change a score.

Fault injection for all of the above is first-class and deterministic:
``REPRO_FAULTS`` (see :mod:`repro.execution.faults`) injects crash / hang /
slow / flaky behavior at named worker lifecycle points in chosen shards and
generations.
"""

from __future__ import annotations

import dataclasses
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..utils.rng import ensure_rng
from .. import telemetry
from ..telemetry.spans import SpanRecord
from .cache import ParametricCacheStats, TranspileCacheStats, stable_seed
from .engine import ExecutionEngine, ExecutionStats
from .faults import FaultInjector, FaultPlan
from .resilience import (
    ResilientDispatcher,
    RetriesExhausted,
    RetryPolicy,
    WorkerPoolGroup,
)
from .stats import MergeableStats

__all__ = ["SchedulerStats", "ShardedExecutionEngine"]


@dataclass
class SchedulerStats(MergeableStats):
    """Counters describing what the sharded scheduler did."""

    generations: int = 0
    sharded_generations: int = 0
    in_process_generations: int = 0
    #: whole-generation in-process fallbacks only — the genuine last resort
    degraded_generations: int = 0
    shards_dispatched: int = 0
    worker_failures: int = 0
    #: infrastructure-failed shard tasks re-dispatched (retry rounds)
    retried_shards: int = 0
    #: retried tasks that ran on a pool other than their home pool
    rebalanced_shards: int = 0
    #: dead pools brought back in the background after a generation
    respawned_pools: int = 0
    #: shards the watchdog declared hung past their deadline
    deadline_timeouts: int = 0
    #: wall time the watchdog spent gathering deadline-bounded rounds
    watchdog_wait_seconds: float = 0.0
    #: worker task errors re-run once in-process for confirmation
    task_error_confirmations: int = 0
    #: confirmations that succeeded — transient faults recovered in place
    flaky_recoveries: int = 0
    adopted_bound_entries: int = 0
    adopted_structures: int = 0
    adopted_parametric_bound: int = 0


# ---------------------------------------------------------------------------
# Task / result payloads crossing the process boundary
# ---------------------------------------------------------------------------


# repro: pickle-boundary
@dataclass
class _ValidationView:
    """The validation rows a QML generation scores against.

    Ships only the subset the estimator would select (not the whole dataset)
    and quacks enough like :class:`~repro.qml.datasets.Dataset` for
    ``PerformanceEstimator.validation_subset``.
    """

    x_valid: np.ndarray
    y_valid: np.ndarray


# repro: pickle-boundary
@dataclass
class _ShardTask:
    """One shard's slice of a generation."""

    shard_index: int
    seed: int
    parameters: np.ndarray
    #: ``(group key, population indices, candidates)`` per structure group
    groups: List[Tuple[Tuple, List[int], list]]
    payload: dict
    #: 0-based index of the evaluate call, for deterministic fault scoping
    generation: int = 0
    #: dispatch attempt of this task (0 = first dispatch, +1 per retry)
    attempt: int = 0
    #: deterministic fault-injection trigger (None outside chaos runs)
    injector: Optional[FaultInjector] = None
    #: owning tenant name when dispatched through a service-shared pool
    #: (None for engine-owned pools, whose workers hold a single context)
    tenant: Optional[str] = None
    #: ``(device, config, supercircuit)`` for lazily building this tenant's
    #: worker-side context.  Ships with every tenant task so a retried or
    #: rebalanced task can rebuild the context on whichever pool it lands on.
    context_spec: Optional[tuple] = None


# repro: pickle-boundary
@dataclass
class _ShardResult:
    """Scores plus the accounting deltas one shard produced."""

    shard_index: int
    n_groups: int
    n_candidates: int
    scores: List[Tuple[int, float]]
    engine_stats: ExecutionStats
    num_queries: int
    backend_executions: int
    bound_stats: TranspileCacheStats
    parametric_stats: ParametricCacheStats
    bound_entries: list
    parametric_entries: dict
    elapsed_seconds: float = 0.0
    attempt: int = 0
    #: the worker-side telemetry spans for this shard (always captured —
    #: the parent re-ids them into its tracer when tracing is active and
    #: drops them otherwise; see ``_WorkerContext.run``)
    spans: List[SpanRecord] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Worker-process side
# ---------------------------------------------------------------------------


class _WorkerContext:
    """Per-process estimator/engine stack plus export bookkeeping."""

    def __init__(self, device, config, supercircuit) -> None:
        # Imported here, not at module top: repro.execution must stay
        # importable without pulling the whole repro.core package in.
        from ..core.estimator import PerformanceEstimator

        self.supercircuit = supercircuit
        # Workers never shard further — a worker is the leaf of the tree.
        worker_config = dataclasses.replace(config, workers=1)
        self.estimator = PerformanceEstimator(device, worker_config)
        self.engine = ExecutionEngine(self.estimator, supercircuit)
        self.exported_bound: set = set()
        self.exported_structures: set = set()
        self.exported_parametric_bound: set = set()

    def _fire(self, task: _ShardTask, point: str) -> None:
        if task.injector is not None:
            task.injector.fire(
                point, task.shard_index, task.generation, task.attempt
            )

    def run(self, task: _ShardTask) -> _ShardResult:
        """Evaluate one shard task, always under a telemetry capture.

        The capture runs whether or not tracing was requested — the traced
        and untraced paths are the same code, which is what makes the
        on/off bitwise determinism matrix hold by construction.  The root
        ``worker.shard`` span's duration doubles as the shard's
        ``elapsed_seconds`` report.
        """
        self._fire(task, "task_receive")
        tracer = telemetry.get_tracer()
        with tracer.capture() as spans:
            with tracer.span(
                "worker.shard",
                shard=task.shard_index,
                generation=task.generation,
                attempt=task.attempt,
                tenant=task.tenant,
            ):
                result = self._evaluate(task)
        # observation-only payload riding home on the result: the parent
        # adopts the spans (or drops them) and reports elapsed_seconds —
        # nothing here feeds scores, seeds or scheduling
        result.spans = spans
        result.elapsed_seconds = spans[-1].duration
        self._fire(task, "result_send")
        return result  # repro: ignore[telemetry-flow] -- span buffer + root-span elapsed ride the shard result as its observational timing report

    def _evaluate(self, task: _ShardTask) -> _ShardResult:
        if not np.array_equal(self.supercircuit.parameters, task.parameters):
            self.supercircuit.parameters = np.array(task.parameters, dtype=float)
        estimator = self.estimator
        estimator.rng = ensure_rng(task.seed)
        estimator._backend.reseed(task.seed)

        engine_before = self.engine.stats.copy()
        bound_before = estimator.transpile_cache.stats.copy()
        parametric_before = estimator.parametric_transpile_cache.stats.copy()
        queries_before = estimator.num_queries
        executions_before = estimator._backend.executions

        scores: List[Tuple[int, float]] = []
        n_candidates = 0
        for group_index, (_key, indices, candidates) in enumerate(task.groups):
            if group_index == 1:
                # after the first unit of work, so a crash/hang here
                # discards partially completed evaluation
                self._fire(task, "mid_evaluation")
            n_candidates += len(candidates)
            if task.payload["kind"] == "qml":
                group_scores = self.engine.evaluate_qml_population(
                    candidates, task.payload["dataset"], task.payload["n_classes"]
                )
            else:
                group_scores = self.engine.evaluate_vqe_population(
                    candidates, task.payload["molecule"]
                )
            scores.extend(
                (int(index), float(score))
                for index, score in zip(indices, group_scores)
            )
        if len(task.groups) == 1:
            self._fire(task, "mid_evaluation")

        # populations/candidates are generation-level counters owned by the
        # parent — report them as zero deltas so merging cannot double-count.
        engine_delta = self.engine.stats.diff(engine_before)
        engine_delta.populations = 0
        engine_delta.candidates = 0

        bound_entries = estimator.transpile_cache.export_entries(self.exported_bound)
        parametric_entries = estimator.parametric_transpile_cache.export_entries(
            self.exported_structures, self.exported_parametric_bound
        )
        # Exclusion sets are refreshed from the caches (not accumulated): an
        # entry evicted worker-side and recompiled later must ship again, and
        # the sets must stay bounded by the cache sizes.
        self.exported_bound = estimator.transpile_cache.export_keys()
        self.exported_structures, self.exported_parametric_bound = (
            estimator.parametric_transpile_cache.export_keys()
        )
        return _ShardResult(
            shard_index=task.shard_index,
            n_groups=len(task.groups),
            n_candidates=n_candidates,
            scores=scores,
            engine_stats=engine_delta,
            num_queries=estimator.num_queries - queries_before,
            backend_executions=estimator._backend.executions - executions_before,
            bound_stats=estimator.transpile_cache.stats.diff(bound_before),
            parametric_stats=estimator.parametric_transpile_cache.stats.diff(
                parametric_before
            ),
            bound_entries=bound_entries,
            parametric_entries=parametric_entries,
            attempt=task.attempt,
        )


_WORKER_CONTEXT: Optional[_WorkerContext] = None

#: per-tenant contexts inside a service-shared worker (see
#: :func:`_init_service_worker`); tenant caches never mix because each
#: tenant's tasks resolve to its own estimator/engine stack
_SERVICE_CONTEXTS: Dict[str, _WorkerContext] = {}


def _init_worker(device, config, supercircuit, spawn_probe=None) -> None:
    if spawn_probe is not None:
        injector, shard_index, generation, attempt = spawn_probe
        injector.fire("pool_spawn", shard_index, generation, attempt)
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = _WorkerContext(device, config, supercircuit)


def _init_service_worker(spawn_probe=None) -> None:
    """Initializer for pools shared by many tenants (:mod:`repro.service`).

    Unlike :func:`_init_worker`, no single context can be built up front —
    the worker serves whichever tenants' shard tasks land on it.  Contexts
    are built lazily from each task's ``context_spec`` and kept per tenant,
    so a tenant's caches stay warm across generations on its home shard
    exactly like a private pool, while tenants sharing the pool stay
    isolated from each other's estimator state.
    """
    if spawn_probe is not None:
        injector, shard_index, generation, attempt = spawn_probe
        injector.fire("pool_spawn", shard_index, generation, attempt)
    global _SERVICE_CONTEXTS
    _SERVICE_CONTEXTS = {}


def _run_shard(task: _ShardTask) -> _ShardResult:
    if task.tenant is not None:
        context = _SERVICE_CONTEXTS.get(task.tenant)
        if context is None:
            if task.context_spec is None:
                raise RuntimeError(
                    f"tenant task {task.tenant!r} arrived without a "
                    "context_spec to build its worker context from"
                )
            device, config, supercircuit = task.context_spec
            context = _WorkerContext(device, config, supercircuit)
            _SERVICE_CONTEXTS[task.tenant] = context
        return context.run(task)
    if _WORKER_CONTEXT is None:
        raise RuntimeError("shard worker used before _init_worker ran")
    return _WORKER_CONTEXT.run(task)


def _ping(value: int) -> int:
    """No-op task used by warm-up pings and background pool respawns."""
    return value


# ---------------------------------------------------------------------------
# Parent-process scheduler
# ---------------------------------------------------------------------------


class ShardedExecutionEngine(ExecutionEngine):
    """A population engine that fans structure groups out to worker processes.

    Drop-in for :class:`ExecutionEngine` (it *is* one): the scorer factories,
    sequential/real_qc fallbacks and ``noisy_expectations`` are inherited,
    only whole-population evaluation is sharded.  Construction defaults to
    :class:`~repro.core.estimator.EstimatorConfig` fields ``workers`` and
    ``shard_min_group_size`` (plus the ``shard_deadline_seconds`` /
    ``shard_retries`` / ``shard_backoff_*`` resilience knobs);
    ``workers <= 1`` never creates a pool.

    ``pools`` + ``tenant`` switch the engine into shared-pool mode for the
    multi-tenant service (:mod:`repro.service`): shard tasks are dispatched
    onto an externally-owned :class:`~repro.execution.resilience.
    WorkerPoolGroup` (spawned with ``_init_service_worker``) and carry the
    tenant name so shared workers keep one lazily-built context per tenant.
    Scores are unchanged by the sharing — the determinism contract above
    makes every unit of evaluation hermetic with respect to which process
    (and alongside which tenants) it runs.

    Simulation-backend dispatch (:mod:`repro.backends`) composes with
    sharding without any payload changes: backend selection is a pure
    function of the estimator config that ships to workers anyway, so every
    worker's engine rebuilds an identical dispatcher and ``_ShardTask``
    carries no backend state.

    ``fault_plan`` (default: parsed from ``REPRO_FAULTS``) drives the
    deterministic chaos harness; assign a :class:`~repro.execution.faults.
    FaultPlan` before evaluating to inject faults programmatically.

    Call :meth:`close` (pipelines do, via the context-manager protocol) to
    shut the worker pool down.
    """

    def __init__(
        self,
        estimator,
        supercircuit,
        workers: Optional[int] = None,
        shard_min_group_size: Optional[int] = None,
        fault_plan: Optional[FaultPlan] = None,
        pools: Optional[WorkerPoolGroup] = None,
        tenant: Optional[str] = None,
        **engine_kwargs,
    ) -> None:
        super().__init__(estimator, supercircuit, **engine_kwargs)
        config = estimator.config
        self.workers = int(
            getattr(config, "workers", 1) if workers is None else workers
        )
        self.shard_min_group_size = max(
            1,
            int(
                getattr(config, "shard_min_group_size", 4)
                if shard_min_group_size is None
                else shard_min_group_size
            ),
        )
        self.scheduler_stats = SchedulerStats()
        self.last_shard_reports: List[dict] = []
        self.retry_policy = RetryPolicy.from_config(config)
        self.fault_plan = (
            FaultPlan.from_env() if fault_plan is None else fault_plan
        )
        self._current_generation = 0
        if pools is not None:
            # Externally-owned pool group (the multi-tenant service): shard
            # tasks carry the tenant name + context spec so the shared
            # workers (spawned with _init_service_worker) resolve them to
            # this engine's per-tenant worker context.  The owner closes the
            # pools; this engine never does.
            if tenant is None:
                raise ValueError(
                    "an externally-owned pool group needs a tenant name so "
                    "shared workers can keep this engine's context separate"
                )
            self.tenant = str(tenant)
            self._owns_pools = False
            self._pools = pools
            # never plan more shards than the shared group has slots;
            # size 0 keeps every generation on the in-process path
            self.workers = min(self.workers, pools.size)
        else:
            self.tenant = None
            self._owns_pools = True
            # One single-process pool per shard slot, so shard i always runs
            # in the same worker process: its caches stay warm across
            # generations (ProcessPoolExecutor's shared task queue would hand
            # a shard to whichever process grabbed it first, leaving warm
            # caches behind).
            self._pools = WorkerPoolGroup(
                max(0, self.workers), _init_worker, self._spawn_initargs
            )

    def _spawn_initargs(self, shard_index: int, spawn_attempt: int) -> tuple:
        injector = self.fault_plan.injector("execution")
        probe = (
            (injector, shard_index, self._current_generation, spawn_attempt)
            if injector is not None
            else None
        )
        return (
            self.estimator.device,
            self.estimator.config,
            self.supercircuit,
            probe,
        )

    # -- lifecycle -----------------------------------------------------------

    @property
    def _executors(self):
        """The per-shard pool slots (None = not spawned / killed)."""
        return self._pools.slots

    def warm_up(self) -> None:
        """Start the worker pool ahead of time.

        Benchmarks call this before timing a cold generation so process
        startup and worker-estimator construction are not mistaken for
        population-evaluation cost.
        """
        if self.workers > 1:
            # submit every ping before gathering so the worker startups (and
            # their estimator construction) overlap instead of serializing
            futures = [
                self._pools.ensure(shard_index).submit(_ping, shard_index)
                for shard_index in range(self.workers)
            ]
            for future in futures:
                future.result()

    def close(self) -> None:
        """Shut every worker pool down (idempotent).

        Safe to call repeatedly, from ``__exit__`` (engines are context
        managers) and from ``__del__`` — including on a partially
        constructed instance whose ``__init__`` raised before the pool
        group existed — so interrupted benchmarks and aborted searches never
        leak worker processes.  Externally-owned (service-shared) pool
        groups are left running: their owner closes them.
        """
        pools = getattr(self, "_pools", None)
        if pools is not None and getattr(self, "_owns_pools", True):
            pools.close()
        super().close()

    def __del__(self) -> None:  # best-effort; close()/__exit__ is the real API
        try:
            self.close()
        except Exception:
            pass

    # -- population evaluation ----------------------------------------------

    def evaluate_qml_population(
        self, candidates: Sequence, dataset, n_classes: int
    ) -> List[float]:
        candidates = list(candidates)
        if not candidates or not self._shardable():
            return super().evaluate_qml_population(candidates, dataset, n_classes)
        features, labels = self.estimator.validation_subset(dataset)
        payload = {
            "kind": "qml",
            "dataset": _ValidationView(features, labels),
            "n_classes": int(n_classes),
        }

        def in_process(subset: list) -> List[float]:
            return ExecutionEngine.evaluate_qml_population(
                self, subset, dataset, n_classes
            )

        return self._evaluate_population(candidates, payload, in_process)

    def evaluate_vqe_population(self, candidates: Sequence, molecule) -> List[float]:
        candidates = list(candidates)
        if not candidates or not self._shardable():
            return super().evaluate_vqe_population(candidates, molecule)
        payload = {"kind": "vqe", "molecule": molecule}

        def in_process(subset: list) -> List[float]:
            return ExecutionEngine.evaluate_vqe_population(self, subset, molecule)

        return self._evaluate_population(candidates, payload, in_process)

    def _shardable(self) -> bool:
        """Whether population evaluation may leave the parent process.

        ``sequential`` replays the seed path and ``real_qc`` consumes the
        backend's rng stream in population order; both stay on the inherited
        in-process implementations.
        """
        if self.mode != "batched":
            return False
        return self.estimator.resolve_mode(self.supercircuit.n_qubits) != "real_qc"

    # -- scheduling ----------------------------------------------------------

    def _evaluate_population(
        self,
        candidates: list,
        payload: dict,
        in_process_fn: Callable[[list], List[float]],
    ) -> List[float]:
        groups = self._plan_groups(candidates)
        shards = self._plan_shards(groups)
        generation = self.scheduler_stats.generations
        self.scheduler_stats.generations += 1
        self._current_generation = generation
        with telemetry.span(
            "scheduler.generation",
            generation=generation,
            shards=len(shards),
            candidates=len(candidates),
            tenant=self.tenant,
        ):
            if len(shards) <= 1:
                self.scheduler_stats.in_process_generations += 1
                self.last_shard_reports = []
                return self._evaluate_in_process(
                    candidates, groups, in_process_fn
                )
            populations_before = self.stats.populations
            candidates_before = self.stats.candidates
            try:
                results, confirmed = self._run_resilient(
                    candidates, shards, payload, generation, in_process_fn
                )
            except RetriesExhausted as exc:
                self._degrade(exc)
                return self._evaluate_in_process(
                    candidates, groups, in_process_fn
                )
            self.scheduler_stats.sharded_generations += 1
            return self._merge_generation(
                candidates, results, confirmed,
                populations_before, candidates_before,
            )

    def _plan_groups(self, candidates: list) -> "OrderedDict[Tuple, List[int]]":
        """Population indices per structure group (genome gene), stably keyed."""
        groups: "OrderedDict[Tuple, List[int]]" = OrderedDict()
        for index, candidate in enumerate(candidates):
            groups.setdefault(tuple(candidate.config.as_gene()), []).append(index)
        return groups

    def _plan_shards(
        self, groups: "OrderedDict[Tuple, List[int]]"
    ) -> List[List[Tuple[Tuple, List[int]]]]:
        """Deterministic group→shard assignment (contract rule 2).

        Largest groups are placed first (sorted key as tie-break) onto the
        least-loaded shard.  ``shard_min_group_size`` caps the shard count so
        a tiny population is not spread thinner than one process dispatch is
        worth; one shard means "stay in-process".
        """
        n_candidates = sum(len(indices) for indices in groups.values())
        shard_count = min(
            self.workers,
            len(groups),
            max(1, n_candidates // self.shard_min_group_size),
        )
        if shard_count <= 1:
            return [list(groups.items())]
        ordered = sorted(groups.items(), key=lambda item: (-len(item[1]), item[0]))
        shards: List[List[Tuple[Tuple, List[int]]]] = [[] for _ in range(shard_count)]
        loads = [0] * shard_count
        for key, indices in ordered:
            target = min(range(shard_count), key=lambda s: (loads[s], s))
            shards[target].append((key, indices))
            loads[target] += len(indices)
        for shard in shards:
            shard.sort(key=lambda item: item[0])
        return shards

    def _run_resilient(
        self,
        candidates: list,
        shards: List[List[Tuple[Tuple, List[int]]]],
        payload: dict,
        generation: int,
        in_process_fn: Callable[[list], List[float]],
    ) -> Tuple[Dict[int, _ShardResult], Dict[int, float]]:
        """Dispatch one generation under the retry/deadline policy.

        Returns ``(shard results, confirmed scores)`` where confirmed scores
        are population-index→score pairs recovered from worker task errors
        by the one-shot in-process confirmation run.  A task error that
        reproduces in-process is re-raised: it is a real bug, not a fault.
        """
        parameters = np.array(self.supercircuit.parameters, dtype=float)
        seed = getattr(self.estimator.config, "seed", 0)
        injector = self.fault_plan.injector("execution")
        context_spec = (
            (self.estimator.device, self.estimator.config, self.supercircuit)
            if self.tenant is not None
            else None
        )
        tasks: Dict[int, _ShardTask] = {}
        for shard_index, shard in enumerate(shards):
            tasks[shard_index] = _ShardTask(
                shard_index=shard_index,
                seed=stable_seed((seed, "shard", shard_index)),
                parameters=parameters,
                groups=[
                    (key, indices, [candidates[i] for i in indices])
                    for key, indices in shard
                ],
                payload=payload,
                generation=generation,
                injector=injector,
                tenant=self.tenant,
                context_spec=context_spec,
            )
        self.scheduler_stats.shards_dispatched += len(tasks)
        stats = self.scheduler_stats
        retried_before = stats.retried_shards
        dispatcher = ResilientDispatcher(
            self._pools, self.retry_policy, _run_shard, _ping, stats
        )
        results, task_errors = dispatcher.run(tasks)

        confirmed: Dict[int, float] = {}
        for shard_index in sorted(task_errors):
            cause = task_errors[shard_index]
            stats.task_error_confirmations += 1
            try:
                for _key, indices, subset in tasks[shard_index].groups:
                    for index, score in zip(indices, in_process_fn(subset)):
                        confirmed[int(index)] = float(score)
            except Exception as confirmed_exc:
                # the error reproduces without the worker machinery: a
                # deterministic task bug — surface it, never retry it away
                raise confirmed_exc from cause
            stats.flaky_recoveries += 1
        recovered = stats.retried_shards - retried_before
        if recovered or task_errors:
            warnings.warn(
                f"sharded generation recovered from worker faults "
                f"(retried_shards={recovered}, "
                f"confirmed_task_errors={len(task_errors)}); scores unchanged",
                RuntimeWarning,
                stacklevel=4,
            )
        return results, confirmed

    # -- merging -------------------------------------------------------------

    def _merge_generation(
        self,
        candidates: list,
        results: Dict[int, _ShardResult],
        confirmed: Dict[int, float],
        populations_before: int,
        candidates_before: int,
    ) -> List[float]:
        scores = [0.0] * len(candidates)
        reports: List[dict] = []
        for shard_index in sorted(results):
            result = results[shard_index]
            for index, score in result.scores:
                scores[index] = score
            self._merge_shard(result, reports)
        for index in sorted(confirmed):
            scores[index] = confirmed[index]
        self.last_shard_reports = reports
        # one generation counts exactly once, however the work was split
        # between shard merges and in-process confirmation runs
        self.stats.populations = populations_before + 1
        self.stats.candidates = candidates_before + len(candidates)
        return scores

    def _merge_shard(self, result: _ShardResult, reports: List[dict]) -> None:
        estimator = self.estimator
        if result.spans:
            # re-id the worker's span buffer into the parent tracer, hanging
            # its roots under the open scheduler.generation span (a no-op
            # when tracing is inactive — the buffer is simply dropped)
            telemetry.adopt_spans(result.spans)
        self.stats.merge(result.engine_stats)
        estimator.num_queries += result.num_queries
        estimator._backend.record_executions(result.backend_executions)
        self.transpile_cache.stats.merge(result.bound_stats)
        self.parametric_cache.stats.merge(result.parametric_stats)
        self._adopt_entries(result)
        reports.append(
            {
                "shard": result.shard_index,
                "groups": result.n_groups,
                "candidates": result.n_candidates,
                "attempts": result.attempt + 1,
                "elapsed_seconds": result.elapsed_seconds,
                "transpile_seconds": (
                    result.bound_stats.compile_seconds
                    + result.parametric_stats.compile_seconds
                    + result.parametric_stats.bind_seconds
                ),
            }
        )

    def _adopt_entries(self, result: _ShardResult) -> None:
        stats = self.scheduler_stats
        stats.adopted_bound_entries += self.transpile_cache.adopt_entries(
            result.bound_entries
        )
        structures, bound = self.parametric_cache.adopt_entries(
            result.parametric_entries
        )
        stats.adopted_structures += structures
        stats.adopted_parametric_bound += bound

    # -- degradation ----------------------------------------------------------

    def _degrade(self, exc: RetriesExhausted) -> None:
        """Account a failed generation and prepare the in-process retry.

        Reached only when the resilient dispatcher exhausted every retry
        round — the last resort, not the first response to a fault.
        """
        # adopt what the healthy shards compiled so the retry is warm;
        # their stats/scores are dropped — the retry recounts everything
        for shard_index in sorted(exc.results):
            self._adopt_entries(exc.results[shard_index])
        self.scheduler_stats.degraded_generations += 1
        self.last_shard_reports = []
        warnings.warn(
            "sharded population evaluation degraded to the in-process path "
            f"after exhausting shard retries: {exc.cause!r}",
            RuntimeWarning,
            stacklevel=4,
        )

    def _evaluate_in_process(
        self,
        candidates: list,
        groups: "OrderedDict[Tuple, List[int]]",
        in_process_fn: Callable[[list], List[float]],
    ) -> List[float]:
        """Group-at-a-time evaluation in the parent (contract rule 1).

        Used when sharding is not worth a dispatch (``workers <= 1``, tiny
        populations) and when a generation degrades after a worker fault —
        producing exactly the floats the sharded path would have.
        """
        scores = [0.0] * len(candidates)
        populations_before = self.stats.populations
        for indices in groups.values():
            subset = [candidates[i] for i in indices]
            for index, score in zip(indices, in_process_fn(subset)):
                scores[index] = score
        # every per-group engine call counted itself as one population; this
        # was one generation — collapse the counter explicitly
        self.stats.populations = populations_before + 1
        return scores
