"""Device noise models.

A :class:`NoiseModel` plays the role of the Qiskit noise model built from IBMQ
calibration data: it attaches depolarizing + thermal-relaxation channels to
every instruction, applies readout confusion at measurement time, and can also
produce the cheap "success rate" estimate the paper uses for circuits that are
too large for noisy classical simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..quantum.circuit import Instruction, QuantumCircuit
from .channels import (
    depolarizing_kraus,
    readout_confusion_matrix,
    thermal_relaxation_kraus,
)

__all__ = ["QubitNoiseParameters", "NoiseModel"]


@dataclass(frozen=True)
class QubitNoiseParameters:
    """Calibration values for a single physical qubit.

    Times are in microseconds; error values are probabilities.
    """

    t1: float
    t2: float
    readout_p01: float  # P(read 1 | prepared 0)
    readout_p10: float  # P(read 0 | prepared 1)
    single_qubit_error: float

    @property
    def readout_error(self) -> float:
        return 0.5 * (self.readout_p01 + self.readout_p10)


@dataclass
class NoiseModel:
    """Per-qubit and per-edge noise description of a device.

    ``two_qubit_errors`` is keyed by sorted physical-qubit pairs.  Durations
    are in microseconds and follow typical IBMQ transmon values.
    """

    qubits: Dict[int, QubitNoiseParameters]
    two_qubit_errors: Dict[Tuple[int, int], float]
    single_qubit_duration: float = 0.035
    two_qubit_duration: float = 0.30
    readout_duration: float = 1.0
    default_two_qubit_error: float = 0.02

    # -- construction ------------------------------------------------------

    @classmethod
    def ideal(cls, n_qubits: int) -> "NoiseModel":
        """A noiseless model (useful for noise-unaware baselines)."""
        qubits = {
            q: QubitNoiseParameters(
                t1=1e9, t2=1e9, readout_p01=0.0, readout_p10=0.0, single_qubit_error=0.0
            )
            for q in range(n_qubits)
        }
        return cls(qubits=qubits, two_qubit_errors={}, default_two_qubit_error=0.0)

    @classmethod
    def uniform(
        cls,
        n_qubits: int,
        single_qubit_error: float = 5e-4,
        two_qubit_error: float = 1e-2,
        readout_error: float = 2e-2,
        t1: float = 80.0,
        t2: float = 70.0,
        edges: Optional[Iterable[Tuple[int, int]]] = None,
    ) -> "NoiseModel":
        """A homogeneous model — handy for tests and controlled sweeps."""
        qubits = {
            q: QubitNoiseParameters(
                t1=t1,
                t2=t2,
                readout_p01=readout_error,
                readout_p10=readout_error,
                single_qubit_error=single_qubit_error,
            )
            for q in range(n_qubits)
        }
        edge_errors: Dict[Tuple[int, int], float] = {}
        if edges is not None:
            for a, b in edges:
                edge_errors[_edge_key(a, b)] = two_qubit_error
        model = cls(qubits=qubits, two_qubit_errors=edge_errors)
        model.default_two_qubit_error = two_qubit_error
        return model

    # -- error lookup ------------------------------------------------------

    def n_qubits(self) -> int:
        return max(self.qubits) + 1 if self.qubits else 0

    def single_qubit_error(self, qubit: int) -> float:
        return self.qubits[qubit].single_qubit_error

    def two_qubit_error(self, qubit_a: int, qubit_b: int) -> float:
        return self.two_qubit_errors.get(
            _edge_key(qubit_a, qubit_b), self.default_two_qubit_error
        )

    def readout_error(self, qubit: int) -> float:
        return self.qubits[qubit].readout_error

    def instruction_error(self, instruction: Instruction) -> float:
        """Total error probability attributed to one instruction."""
        if len(instruction.qubits) == 1:
            return self.single_qubit_error(instruction.qubits[0])
        return self.two_qubit_error(*instruction.qubits[:2])

    # -- density-matrix channels -------------------------------------------

    def channels_for(
        self, instruction: Instruction
    ) -> List[Tuple[List[np.ndarray], Tuple[int, ...]]]:
        """Kraus channels to apply after ``instruction``."""
        channels: List[Tuple[List[np.ndarray], Tuple[int, ...]]] = []
        qubits = instruction.qubits
        if len(qubits) == 1:
            error = self.single_qubit_error(qubits[0])
            duration = self.single_qubit_duration
        else:
            error = self.two_qubit_error(*qubits[:2])
            duration = self.two_qubit_duration
        if error > 0:
            channels.append((depolarizing_kraus(error, len(qubits)), qubits))
        for qubit in qubits:
            params = self.qubits.get(qubit)
            if params is None:
                continue
            if params.t1 < 1e6:
                channels.append(
                    (
                        thermal_relaxation_kraus(params.t1, params.t2, duration),
                        (qubit,),
                    )
                )
        return channels

    # -- readout -------------------------------------------------------------

    def apply_readout_error(self, probabilities: np.ndarray, n_qubits: int):
        """Apply per-qubit confusion matrices to a probability vector."""
        probs = np.asarray(probabilities, dtype=float).reshape((2,) * n_qubits)
        for qubit in range(n_qubits):
            params = self.qubits.get(qubit)
            if params is None:
                continue
            confusion = readout_confusion_matrix(params.readout_p01, params.readout_p10)
            probs = np.tensordot(confusion, probs, axes=([1], [qubit]))
            probs = np.moveaxis(probs, 0, qubit)
        flat = probs.reshape(-1)
        flat = np.clip(flat, 0.0, None)
        return flat / flat.sum()

    # -- success-rate estimation ---------------------------------------------

    def circuit_success_rate(
        self, circuit: QuantumCircuit, include_readout: bool = True
    ) -> float:
        """Product of per-gate success probabilities (the paper's ``r_overall``).

        This is the fast estimator used for circuits too large to simulate
        with the full noise model: ``l_augmented = l_noise_free / r_overall``.
        """
        rate = 1.0
        for instruction in circuit.instructions:
            rate *= 1.0 - self.instruction_error(instruction)
        if include_readout:
            for qubit in range(circuit.n_qubits):
                params = self.qubits.get(qubit)
                if params is not None:
                    rate *= 1.0 - params.readout_error
        return max(rate, 1e-12)

    # -- reductions ----------------------------------------------------------

    def reduced(self, physical_qubits: Sequence[int]) -> "NoiseModel":
        """Restrict the model to a subset of physical qubits.

        The returned model is re-indexed to ``0..k-1`` following the order of
        ``physical_qubits`` — this is how large-device noise is applied to the
        small register actually touched by a compiled circuit.
        """
        index = {phys: i for i, phys in enumerate(physical_qubits)}
        qubits = {
            index[phys]: self.qubits[phys]
            for phys in physical_qubits
            if phys in self.qubits
        }
        edges: Dict[Tuple[int, int], float] = {}
        for (a, b), error in self.two_qubit_errors.items():
            if a in index and b in index:
                edges[_edge_key(index[a], index[b])] = error
        model = NoiseModel(
            qubits=qubits,
            two_qubit_errors=edges,
            single_qubit_duration=self.single_qubit_duration,
            two_qubit_duration=self.two_qubit_duration,
            readout_duration=self.readout_duration,
            default_two_qubit_error=self.default_two_qubit_error,
        )
        return model

    def average_error_summary(self) -> Dict[str, float]:
        """Average single-qubit, two-qubit and readout error (Fig. 21 rows)."""
        single = float(
            np.mean([q.single_qubit_error for q in self.qubits.values()])
        )
        readout = float(np.mean([q.readout_error for q in self.qubits.values()]))
        if self.two_qubit_errors:
            two = float(np.mean(list(self.two_qubit_errors.values())))
        else:
            two = self.default_two_qubit_error
        return {
            "single_qubit_error": single,
            "two_qubit_error": two,
            "readout_error": readout,
        }


def _edge_key(a: int, b: int) -> Tuple[int, int]:
    return (a, b) if a <= b else (b, a)
