"""Noise channels, device noise models and success-rate estimation."""

from .channels import (
    amplitude_damping_kraus,
    depolarizing_kraus,
    is_cptp,
    phase_damping_kraus,
    readout_confusion_matrix,
    thermal_relaxation_kraus,
)
from .models import NoiseModel, QubitNoiseParameters

__all__ = [
    "amplitude_damping_kraus",
    "depolarizing_kraus",
    "is_cptp",
    "phase_damping_kraus",
    "readout_confusion_matrix",
    "thermal_relaxation_kraus",
    "NoiseModel",
    "QubitNoiseParameters",
]
