"""Kraus-operator noise channels.

The three error families the paper's estimator uses ("coherent (depolarizing),
decoherence (thermal relaxation), and SPAM (readout) errors") are implemented
as Kraus channels consumed by :class:`repro.quantum.density_matrix.
DensityMatrixSimulator`.
"""

from __future__ import annotations

import itertools
import math
from functools import lru_cache
from typing import List, Sequence, Tuple

import numpy as np

from ..quantum.gates import PAULI_I, PAULI_X, PAULI_Y, PAULI_Z

__all__ = [
    "depolarizing_kraus",
    "amplitude_damping_kraus",
    "phase_damping_kraus",
    "thermal_relaxation_kraus",
    "readout_confusion_matrix",
    "is_cptp",
]

_PAULIS = [PAULI_I, PAULI_X, PAULI_Y, PAULI_Z]


@lru_cache(maxsize=512)
def depolarizing_kraus(probability: float, n_qubits: int = 1) -> Tuple[np.ndarray, ...]:
    """Depolarizing channel on ``n_qubits`` with error probability ``p``.

    With probability ``p`` the state is replaced by a uniformly random Pauli
    error (excluding identity); with probability ``1 - p`` it is untouched.

    Memoized: a device has a handful of distinct error rates but the noisy
    simulation hot loop requests the channel once per gate position, so the
    operators (an ``n_qubits``-fold Kronecker sweep) are built once per
    ``(probability, n_qubits)`` and shared read-only.
    """
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be in [0, 1]")
    dim_terms = 4**n_qubits
    kraus: List[np.ndarray] = []
    for index, paulis in enumerate(itertools.product(_PAULIS, repeat=n_qubits)):
        op = np.array([[1.0 + 0.0j]])
        for pauli in paulis:
            op = np.kron(op, pauli)
        if index == 0:
            kraus.append(math.sqrt(1.0 - probability) * op)
        else:
            kraus.append(math.sqrt(probability / (dim_terms - 1)) * op)
    for op in kraus:
        op.flags.writeable = False
    return tuple(kraus)


def amplitude_damping_kraus(gamma: float) -> List[np.ndarray]:
    """T1 relaxation toward ``|0>`` with decay probability ``gamma``."""
    if not 0.0 <= gamma <= 1.0:
        raise ValueError("gamma must be in [0, 1]")
    k0 = np.array([[1.0, 0.0], [0.0, math.sqrt(1.0 - gamma)]], dtype=complex)
    k1 = np.array([[0.0, math.sqrt(gamma)], [0.0, 0.0]], dtype=complex)
    return [k0, k1]


def phase_damping_kraus(lam: float) -> List[np.ndarray]:
    """Pure dephasing with phase-flip-equivalent probability ``lam``."""
    if not 0.0 <= lam <= 1.0:
        raise ValueError("lambda must be in [0, 1]")
    k0 = np.array([[1.0, 0.0], [0.0, math.sqrt(1.0 - lam)]], dtype=complex)
    k1 = np.array([[0.0, 0.0], [0.0, math.sqrt(lam)]], dtype=complex)
    return [k0, k1]


def _compose_single_qubit(
    first: Sequence[np.ndarray], second: Sequence[np.ndarray]
) -> List[np.ndarray]:
    """Kraus operators of channel ``second ∘ first`` on one qubit."""
    return [b @ a for a in first for b in second]


@lru_cache(maxsize=4096)
def thermal_relaxation_kraus(
    t1: float, t2: float, duration: float
) -> Tuple[np.ndarray, ...]:
    """Thermal relaxation during ``duration`` given T1/T2 times.

    Modelled as amplitude damping (rate ``1/T1``) followed by pure dephasing at
    the excess rate ``1/T_phi = 1/T2 - 1/(2 T1)`` — the standard decomposition
    for ``T2 <= 2 T1`` superconducting qubits.

    Memoized per ``(t1, t2, duration)`` — the simulation hot loop requests the
    same per-qubit channel once per gate position.  Operators are read-only.
    """
    if t1 <= 0 or t2 <= 0:
        raise ValueError("T1 and T2 must be positive")
    if duration < 0:
        raise ValueError("duration must be non-negative")
    t2 = min(t2, 2.0 * t1)
    gamma = 1.0 - math.exp(-duration / t1)
    rate_phi = max(1.0 / t2 - 0.5 / t1, 0.0)
    lam = 1.0 - math.exp(-2.0 * duration * rate_phi)
    kraus = _compose_single_qubit(
        amplitude_damping_kraus(gamma), phase_damping_kraus(lam)
    )
    for op in kraus:
        op.flags.writeable = False
    return tuple(kraus)


def readout_confusion_matrix(p_meas1_given0: float, p_meas0_given1: float):
    """Single-qubit readout confusion matrix ``M[i, j] = P(read i | true j)``."""
    for value in (p_meas1_given0, p_meas0_given1):
        if not 0.0 <= value <= 1.0:
            raise ValueError("readout error probabilities must be in [0, 1]")
    return np.array(
        [
            [1.0 - p_meas1_given0, p_meas0_given1],
            [p_meas1_given0, 1.0 - p_meas0_given1],
        ]
    )


def is_cptp(kraus_operators: Sequence[np.ndarray], atol: float = 1e-9) -> bool:
    """Check the completeness relation ``sum_i K_i† K_i = I``."""
    dim = kraus_operators[0].shape[1]
    total = np.zeros((dim, dim), dtype=complex)
    for kraus in kraus_operators:
        total += kraus.conj().T @ kraus
    return bool(np.allclose(total, np.eye(dim), atol=atol))
