"""Noise-unaware search baseline.

Identical to the QuantumNAS co-search except that the performance estimator
ignores device noise (noise-free simulation only), so the search happily picks
deep, high-capacity circuits that fall apart on hardware — the paper's
"Noise-Unaware Searched" baseline.
"""

from __future__ import annotations

from typing import Optional

from ..core.estimator import EstimatorConfig
from ..core.pipeline import (
    QMLPipelineConfig,
    QuantumNASQMLPipeline,
    QuantumNASVQEPipeline,
    VQEPipelineConfig,
)

__all__ = ["noise_unaware_qml_pipeline", "noise_unaware_vqe_pipeline"]


def _noise_free_estimator(config: EstimatorConfig) -> EstimatorConfig:
    return EstimatorConfig(
        mode="noise_free",
        optimization_level=config.optimization_level,
        max_density_qubits=config.max_density_qubits,
        n_valid_samples=config.n_valid_samples,
        shots=config.shots,
        seed=config.seed,
    )


def noise_unaware_qml_pipeline(
    space, dataset, n_classes, device, encoder, config: Optional[QMLPipelineConfig] = None
) -> QuantumNASQMLPipeline:
    """A QML pipeline whose search is blind to noise."""
    config = config or QMLPipelineConfig()
    config.estimator = _noise_free_estimator(config.estimator)
    return QuantumNASQMLPipeline(
        space, dataset, n_classes, device, encoder, config=config
    )


def noise_unaware_vqe_pipeline(
    space, molecule, device, config: Optional[VQEPipelineConfig] = None
) -> QuantumNASVQEPipeline:
    """A VQE pipeline whose search is blind to noise."""
    config = config or VQEPipelineConfig()
    config.estimator = _noise_free_estimator(config.estimator)
    return QuantumNASVQEPipeline(space, molecule, device, config=config)
