"""Randomly generated baseline circuits.

The paper's "random generation" baseline draws random circuits from the same
gate set, constrained to the same number of parameters as the QuantumNAS
searched circuit; three random circuits are generated and the best is kept.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..core.design_space import DesignSpace
from ..core.subcircuit import SubCircuitConfig
from ..core.supercircuit import SuperCircuit
from ..qml.encoders import EncoderSpec
from ..quantum.circuit import ParameterizedCircuit
from ..utils.rng import ensure_rng

__all__ = ["random_design_config", "build_random_circuit"]


def random_design_config(
    space: DesignSpace,
    n_qubits: int,
    n_parameters: int,
    rng=None,
    max_attempts: int = 200,
    tolerance: int = 2,
) -> SubCircuitConfig:
    """A random configuration whose parameter count is close to the target.

    Configurations are sampled uniformly; the one whose parameter count is
    closest to ``n_parameters`` (within ``tolerance`` if possible) is returned.
    """
    rng = ensure_rng(rng)
    max_widths = space.max_widths(n_qubits)
    best: Optional[SubCircuitConfig] = None
    best_gap = float("inf")
    for _attempt in range(max_attempts):
        n_blocks = int(rng.integers(1, space.max_blocks + 1))
        widths = tuple(
            tuple(
                int(rng.integers(space.min_width, w + 1)) for w in max_widths
            )
            for _ in range(space.max_blocks)
        )
        config = SubCircuitConfig(n_blocks, widths)
        gap = abs(config.num_parameters(space) - n_parameters)
        if gap < best_gap:
            best, best_gap = config, gap
        if gap <= tolerance:
            break
    assert best is not None
    return best


def build_random_circuit(
    space: DesignSpace,
    n_qubits: int,
    n_parameters: int,
    encoder: Optional[EncoderSpec] = None,
    seed: int = 0,
) -> Tuple[ParameterizedCircuit, SubCircuitConfig]:
    """Build a random baseline circuit with roughly ``n_parameters`` parameters."""
    rng = ensure_rng(seed)
    supercircuit = SuperCircuit(space, n_qubits, encoder=encoder, seed=seed)
    config = random_design_config(space, n_qubits, n_parameters, rng=rng)
    circuit, _mapping = supercircuit.build_standalone_circuit(config)
    return circuit, config
