"""Baseline circuit designs and search strategies from the paper's evaluation."""

from .human import build_human_circuit, human_design_config
from .noise_unaware import noise_unaware_qml_pipeline, noise_unaware_vqe_pipeline
from .random_circuit import build_random_circuit, random_design_config

__all__ = [
    "build_human_circuit",
    "human_design_config",
    "noise_unaware_qml_pipeline",
    "noise_unaware_vqe_pipeline",
    "build_random_circuit",
    "random_design_config",
]
