"""Human-designed baseline circuits.

The paper's "human design" baselines stack full-width blocks from the front of
each design space; the last layer may be partially filled so the total number
of parameters matches the QuantumNAS-searched circuit (Section IV,
"Baselines").
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.design_space import DesignSpace
from ..core.subcircuit import SubCircuitConfig
from ..core.supercircuit import SuperCircuit
from ..qml.encoders import EncoderSpec
from ..quantum.circuit import ParameterizedCircuit

__all__ = ["human_design_config", "build_human_circuit"]


def human_design_config(
    space: DesignSpace, n_qubits: int, n_parameters: int
) -> SubCircuitConfig:
    """The human-design configuration with (approximately) ``n_parameters``.

    Blocks are filled front-to-back at full width; inside the last partially
    filled block, layers are filled front-to-front until the parameter budget
    is reached.
    """
    if n_parameters < 1:
        raise ValueError("n_parameters must be positive")
    max_widths = space.max_widths(n_qubits)
    widths: List[List[int]] = [
        [space.min_width] * space.n_layers for _ in range(space.max_blocks)
    ]
    remaining = n_parameters
    n_blocks = 1
    # Start from an all-minimum configuration and account for its parameters.
    for block in range(space.max_blocks):
        for layer_index, layer in enumerate(space.layers):
            if block == 0:
                remaining -= space.min_width * layer.params_per_gate

    for block in range(space.max_blocks):
        if block > 0 and remaining > 0:
            # opening a new block costs its minimum-width parameters
            base_cost = sum(
                space.min_width * layer.params_per_gate for layer in space.layers
            )
            if remaining < max(base_cost, 1):
                break
            remaining -= base_cost
            n_blocks = block + 1
        for layer_index, layer in enumerate(space.layers):
            per_gate = layer.params_per_gate
            while (
                widths[block][layer_index] < max_widths[layer_index]
                and (per_gate == 0 or remaining >= per_gate)
            ):
                widths[block][layer_index] += 1
                remaining -= per_gate
                if per_gate == 0 and widths[block][layer_index] >= max_widths[layer_index]:
                    break
            if per_gate == 0:
                widths[block][layer_index] = max_widths[layer_index]
        if remaining <= 0:
            n_blocks = block + 1
            break
        n_blocks = block + 1
    return SubCircuitConfig(n_blocks, tuple(tuple(row) for row in widths))


def build_human_circuit(
    space: DesignSpace,
    n_qubits: int,
    n_parameters: int,
    encoder: Optional[EncoderSpec] = None,
    seed: int = 0,
) -> Tuple[ParameterizedCircuit, SubCircuitConfig]:
    """Build the human baseline circuit as a standalone parameterized circuit."""
    supercircuit = SuperCircuit(space, n_qubits, encoder=encoder, seed=seed)
    config = human_design_config(space, n_qubits, n_parameters)
    circuit, _mapping = supercircuit.build_standalone_circuit(config)
    return circuit, config
