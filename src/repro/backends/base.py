"""The simulation-backend protocol behind population evaluation.

The execution engine (:mod:`repro.execution`) organizes *what* to evaluate —
genome groups, inherited weights, transpilations, score formulas.  *How* a
compiled binding is actually simulated is a backend concern: density matrices
with the device noise model, batched noise-free statevector trajectories, or
finite-shot sampling on the shot-based device backend.  This module defines
the contract the engine programs against; concrete backends live next to it
and register themselves in :mod:`repro.backends.registry`, and the per-group
choice is made by :class:`repro.backends.dispatch.BackendDispatcher`.

Protocol
--------
A backend declares :class:`BackendCapabilities` and implements
``run_group(entry, jobs)``:

* ``entry`` is the structure-group context — an object with ``circuit`` (the
  standalone :class:`~repro.quantum.circuit.ParameterizedCircuit`),
  ``weights`` (the inherited weight vector) and a writable ``fusion_plan``
  slot backends may use to memoize per-structure artifacts.
* ``jobs`` is a list of :class:`SimulationJob` — each one binding (or one
  vectorized batch of bindings) awaiting execution.
* the return value is one :class:`JobResult` handle per scheduled binding.

``run_group`` may *defer* the actual simulation: callers must invoke
:meth:`SimulationBackend.synchronize` before reading any handle, which lets
the density backend stack structurally aligned circuits from many submissions
into single batched evolutions.  One backend instance serves one population
evaluation; its counters are harvested by the engine afterwards
(:meth:`SimulationBackend.stats_delta`).

Determinism contract: given the same group (entry, jobs, seeds), a backend
must produce bit-for-bit identical results regardless of what other groups
run before, after or concurrently — this is what lets the sharded scheduler
move groups between worker processes without changing a single score.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "BackendCapabilities",
    "BackendCapabilityError",
    "SimulationJob",
    "JobResult",
    "SimulationBackend",
]


class BackendCapabilityError(RuntimeError):
    """A backend was asked for a result kind it cannot produce."""


@dataclass(frozen=True)
class BackendCapabilities:
    """What a simulation backend can do — the dispatcher's decision inputs.

    ``noisy``
        simulates the device noise model (density channels or shot noise);
    ``noise_free``
        produces ideal (noiseless, infinite-shot) trajectories;
    ``shot_based``
        samples a finite number of shots (results carry sampling noise and
        require a pinned seed to be deterministic);
    ``observables``
        can return expectations of arbitrary Pauli-sum observables (the VQE
        energy path), not just Z-basis readout;
    ``batched``
        stacks structurally aligned bindings into one evolution;
    ``max_qubits``
        densest register the backend simulates exactly (``None`` when the
        backend handles arbitrary sizes, possibly via an internal
        approximation such as the density backend's success-rate fallback).
    """

    noisy: bool = False
    noise_free: bool = False
    shot_based: bool = False
    observables: bool = False
    batched: bool = False
    max_qubits: Optional[int] = None


@dataclass
class SimulationJob:
    """One binding (or one vectorized batch of bindings) awaiting simulation.

    Exactly one of the three payload shapes is populated:

    * ``compiled`` — an already-transpiled
      :class:`~repro.transpile.compiler.CompiledCircuit` (density backend;
      identical objects are deduplicated, so duplicated candidates simulate
      once);
    * ``template_batch`` — a
      :class:`~repro.transpile.parametric.TemplateBatchBinding`, i.e. one
      compiled structure with per-slot angle arrays covering many rows
      (density backend fast path; yields one result handle per row);
    * ``circuit`` + ``weights`` [+ ``features``] + ``initial_layout`` — a
      logical binding the backend compiles/executes itself (shot backend via
      ``QuantumBackend.run_parameterized``; statevector backend, where
      ``features`` may be a whole ``(batch, k)`` matrix).

    ``seed_key`` is a hashable tuple pinning any randomness the job consumes
    (shot sampling).  It must be a pure function of the job's *content* —
    never of scheduling order — so results stay independent of sharding.
    """

    compiled: Optional[object] = None
    template_batch: Optional[object] = None
    circuit: Optional[object] = None
    weights: Optional[np.ndarray] = None
    features: Optional[np.ndarray] = None
    initial_layout: object = None
    seed_key: Optional[Tuple] = None


class JobResult(abc.ABC):
    """Handle to one scheduled binding's results.

    Valid only after the owning backend's :meth:`~SimulationBackend.
    synchronize` ran.  Backends implement the result kinds their
    capabilities advertise and raise :class:`BackendCapabilityError`
    otherwise.
    """

    def logical_z_expectations(self, n_logical: int) -> np.ndarray:
        """Per-logical-qubit Z expectations (QML readout)."""
        raise BackendCapabilityError(
            f"{type(self).__name__} does not produce Z expectations"
        )

    def probabilities(self) -> np.ndarray:
        """Measurement probabilities over the backend's native register."""
        raise BackendCapabilityError(
            f"{type(self).__name__} does not produce probabilities"
        )

    def pauli_expectation(self, observable) -> float:
        """Expectation of a Pauli-sum observable (VQE energies).

        The observable must already live on the backend's native register
        (the engine remaps logical Hamiltonians onto the compiled layout
        before asking).
        """
        raise BackendCapabilityError(
            f"{type(self).__name__} does not measure observables"
        )

    def pauli_expectations(self, observable) -> np.ndarray:
        """Batched observable expectations, one per covered binding.

        Backends whose handles cover a whole batch (the statevector forward
        pass) override this; the default wraps the scalar
        :meth:`pauli_expectation`, so an ``observables``-capable backend
        only has to implement one of the two.
        """
        return np.asarray([self.pauli_expectation(observable)])


class SimulationBackend(abc.ABC):
    """Abstract base of every simulation backend.

    Subclasses define ``name`` (the registry key), ``capabilities`` and
    :meth:`run_group`; they are constructed per population evaluation with
    the owning :class:`~repro.core.estimator.PerformanceEstimator` as sole
    argument (everything a backend needs — device, config, shared transpile
    caches, the shot-based device backend — hangs off it).
    """

    #: registry key; subclasses must override
    name: str = ""
    capabilities: BackendCapabilities = BackendCapabilities()

    def __init__(self, estimator) -> None:
        self.estimator = estimator
        self.groups_run = 0
        self.jobs_run = 0

    @abc.abstractmethod
    def run_group(self, entry, jobs: List[SimulationJob]) -> List[JobResult]:
        """Schedule one structure group's jobs; one handle per binding.

        Implementations may defer the simulation until :meth:`synchronize`.
        A ``template_batch`` job expands into one handle per covered row.
        """

    def synchronize(self) -> None:
        """Execute everything scheduled since the last synchronize (no-op
        for backends that run eagerly)."""

    def stats_delta(self) -> Dict[str, int]:
        """Counter increments to fold into the engine's ``ExecutionStats``.

        Keys must name ``ExecutionStats`` fields; unknown keys are ignored,
        so third-party backends can expose extra counters harmlessly.
        """
        return {}
