"""Batched density-matrix simulation backend (the ``noise_sim`` engine).

This is the in-repo noisy simulator that used to live inside
``repro.execution.engine``, refactored behind the
:class:`~repro.backends.base.SimulationBackend` protocol with zero numeric
change: every job's result is produced by the same sequence of unitary/Kraus
applications that :class:`~repro.quantum.density_matrix.
DensityMatrixSimulator` would perform sample-by-sample — the batch dimension
only stacks them.

Two job shapes are supported:

* ``compiled`` jobs — one :class:`CompiledCircuit` each, deduplicated by
  object identity and grouped by reduced-circuit structure (same gates and
  qubits at every position) so a whole group evolves as one
  ``(batch,) + (2,) * 2n`` stack.  Noise channels depend only on gate arity
  and qubits, never on parameters, so they are derived once per position
  instead of once per circuit.

* ``template_batch`` jobs — one
  :class:`~repro.transpile.parametric.TemplateBatchBinding` covering many
  parameter rows of one compiled structure.  The rows are already
  structurally aligned by construction, each parametric slot's angles arrive
  as a dense ``(rows, k)`` array out of the template's single affine matmul,
  and the per-position batched RZ matrices are built straight from those
  angle columns — the ``noise_sim`` hot loop never constructs per-sample
  ``Instruction`` objects at all.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..devices.backend import approximate_probabilities, logical_probabilities
from ..quantum.circuit import Instruction
from ..quantum.density_matrix import (
    apply_kraus_batch,
    apply_unitary_batch,
    density_probabilities,
    expectation_pauli_sum_dm,
    zero_density_matrices,
)
from ..quantum.gates import gate_matrix
from .base import (
    BackendCapabilities,
    JobResult,
    SimulationBackend,
    SimulationJob,
)
from .registry import register_backend

__all__ = [
    "DensityJob",
    "TemplateBatchJob",
    "BatchedDensityRunner",
    "DensityMatrixBackend",
]


def _z_expectations_from_logical_probs(
    probs: np.ndarray, n_logical: int
) -> np.ndarray:
    """Per-qubit ``<Z>`` from logical-register probabilities.

    One implementation for both result paths (compiled jobs and template
    batches), matching ``BackendResult.expectation_z_all``.
    """
    probs = probs.reshape((2,) * n_logical)
    out = np.zeros(n_logical)
    for qubit in range(n_logical):
        axes = tuple(a for a in range(n_logical) if a != qubit)
        marginal = probs.sum(axis=axes)
        out[qubit] = marginal[0] - marginal[1]
    return out


def _batched_gate_matrices(gate: str, params: np.ndarray) -> np.ndarray:
    """``(rows, 2**k, 2**k)`` gate matrices from per-row parameter columns.

    RZ — the only parametric gate of the physical basis — is built fully
    vectorized with the same ``cos(theta/2) I - i sin(theta/2) Z`` formula as
    :func:`repro.quantum.gates.gate_matrix`; anything else falls back to
    stacking the registry constructor per row.
    """
    if gate == "rz":
        half = 0.5 * params[:, 0]
        cos, sin = np.cos(half), np.sin(half)
        matrices = np.zeros((params.shape[0], 2, 2), dtype=complex)
        matrices[:, 0, 0] = cos - 1j * sin
        matrices[:, 1, 1] = cos + 1j * sin
        return matrices
    return np.stack([gate_matrix(gate, tuple(row)) for row in params])


class DensityJob(JobResult):
    """One unique compiled circuit awaiting noisy simulation."""

    __slots__ = (
        "compiled", "reduced", "used_physical", "noise_model", "rho",
        "reduced_probs", "_probs_with_readout", "_logical_expectations",
    )

    def __init__(self, compiled) -> None:
        self.compiled = compiled
        self.reduced, self.used_physical = compiled.reduced_circuit()
        self.noise_model = None
        self.rho: Optional[np.ndarray] = None
        self.reduced_probs: Optional[np.ndarray] = None
        self._probs_with_readout: Optional[np.ndarray] = None
        self._logical_expectations: Dict[int, np.ndarray] = {}

    @property
    def n_reduced(self) -> int:
        return self.reduced.n_qubits

    def probabilities(self) -> np.ndarray:
        """Reduced-register probabilities, matching the shot-based backend."""
        if self._probs_with_readout is None:
            if self.reduced_probs is not None:
                # large-circuit approximation — no readout confusion, exactly
                # like QuantumBackend._approximate_probabilities
                self._probs_with_readout = self.reduced_probs
            else:
                probs = density_probabilities(self.rho)
                if self.noise_model is not None:
                    probs = self.noise_model.apply_readout_error(
                        probs, self.n_reduced
                    )
                self._probs_with_readout = probs
        return self._probs_with_readout

    def logical_z_expectations(self, n_logical: int) -> np.ndarray:
        """Per-logical-qubit Z expectations, matching ``BackendResult``."""
        n_logical = int(n_logical)
        if n_logical not in self._logical_expectations:
            probs = logical_probabilities(
                self.probabilities(), self.compiled, self.used_physical, n_logical
            )
            self._logical_expectations[n_logical] = (
                _z_expectations_from_logical_probs(probs, n_logical)
            )
        return self._logical_expectations[n_logical]

    def pauli_expectation(self, observable) -> float:
        """Expectation of an observable already remapped onto the reduced
        register (see ``PerformanceEstimator.remap_hamiltonian``)."""
        return expectation_pauli_sum_dm(self.rho, observable)


class _TemplateRowResult(JobResult):
    """One row of a simulated template batch."""

    __slots__ = ("batch", "position")

    def __init__(self, batch: "TemplateBatchJob", position: int) -> None:
        self.batch = batch
        self.position = position

    def probabilities(self) -> np.ndarray:
        return self.batch.row_probabilities(self.position)

    def logical_z_expectations(self, n_logical: int) -> np.ndarray:
        return self.batch.row_logical_z_expectations(self.position, n_logical)

    def pauli_expectation(self, observable) -> float:
        return expectation_pauli_sum_dm(
            self.batch.rhos[self.position], observable
        )


class TemplateBatchJob:
    """One vectorized template binding awaiting batched noisy simulation."""

    def __init__(self, binding) -> None:
        self.binding = binding
        self.noise_model = None
        self.rhos: Optional[np.ndarray] = None
        self._probs: Dict[int, np.ndarray] = {}
        self._expectations: Dict[Tuple[int, int], np.ndarray] = {}

    @property
    def n_reduced(self) -> int:
        return self.binding.n_reduced

    def handles(self) -> List[_TemplateRowResult]:
        return [_TemplateRowResult(self, i) for i in range(self.binding.n_rows)]

    def row_probabilities(self, position: int) -> np.ndarray:
        if position not in self._probs:
            probs = density_probabilities(self.rhos[position])
            if self.noise_model is not None:
                probs = self.noise_model.apply_readout_error(
                    probs, self.n_reduced
                )
            self._probs[position] = probs
        return self._probs[position]

    def row_logical_z_expectations(
        self, position: int, n_logical: int
    ) -> np.ndarray:
        key = (position, int(n_logical))
        if key not in self._expectations:
            probs = logical_probabilities(
                self.row_probabilities(position),
                self.binding.final_layout,
                self.binding.used_qubits,
                n_logical,
            )
            self._expectations[key] = _z_expectations_from_logical_probs(
                probs, int(n_logical)
            )
        return self._expectations[key]


class BatchedDensityRunner:
    """Groups compiled circuits by structure and simulates each group batched.

    Equivalence contract: every job's result is produced by the same sequence
    of unitary/Kraus applications that :class:`DensityMatrixSimulator` would
    perform sample-by-sample — the batch dimension only stacks them.  Noise
    channels depend on gate arity and qubits (never parameters), so within a
    structurally aligned group they are derived once per position instead of
    once per circuit.
    """

    #: soft cap on (batch * 4**n) elements of one density-matrix stack
    MAX_STACK_ELEMENTS = 1 << 21

    def __init__(self, device, max_density_qubits: int) -> None:
        self.device = device
        self.max_density_qubits = int(max_density_qubits)
        self._noise_model = None
        self._jobs: Dict[int, DensityJob] = {}       # id(compiled) -> job
        self._pending: "OrderedDict[int, DensityJob]" = OrderedDict()
        self._pending_templates: List[TemplateBatchJob] = []
        self.batches_run = 0
        self.template_batches_run = 0

    def job_for(self, compiled) -> DensityJob:
        """The (deduplicated) job for a compiled circuit."""
        job = self._jobs.get(id(compiled))
        if job is None:
            job = DensityJob(compiled)
            self._jobs[id(compiled)] = job
        return job

    def enqueue(self, job: DensityJob) -> DensityJob:
        self._pending.setdefault(id(job.compiled), job)
        return job

    def submit(self, compiled) -> DensityJob:
        return self.enqueue(self.job_for(compiled))

    def submit_template(self, binding) -> TemplateBatchJob:
        """Schedule a vectorized template binding (rows already aligned)."""
        if binding.n_reduced > self.max_density_qubits:
            # callers route oversized structures through per-row compiled
            # jobs, whose large-circuit approximation needs the concrete
            # reduced circuits a template batch deliberately never builds
            raise ValueError(
                "template batch exceeds max_density_qubits "
                f"({binding.n_reduced} > {self.max_density_qubits})"
            )
        job = TemplateBatchJob(binding)
        self._pending_templates.append(job)
        return job

    # -- execution -----------------------------------------------------------

    def _device_noise_model(self):
        if self._noise_model is None:
            self._noise_model = self.device.noise_model()
        return self._noise_model

    def run(self) -> None:
        """Simulate all pending jobs, batched by reduced-circuit structure."""
        groups: "OrderedDict[Tuple, List[DensityJob]]" = OrderedDict()
        for job in self._pending.values():
            if job.rho is not None or job.reduced_probs is not None:
                continue
            key = (
                tuple(job.used_physical),
                tuple(
                    (inst.gate, inst.qubits) for inst in job.reduced.instructions
                ),
            )
            groups.setdefault(key, []).append(job)
        self._pending.clear()

        for (used_physical, _structure), jobs in groups.items():
            noise_model = self._device_noise_model().reduced(used_physical)
            n_reduced = jobs[0].n_reduced
            if n_reduced > self.max_density_qubits:
                # success-rate (global depolarizing) approximation, exactly as
                # QuantumBackend falls back for large circuits
                for job in jobs:
                    job.noise_model = noise_model
                    job.reduced_probs = approximate_probabilities(
                        job.reduced, noise_model
                    )
                continue
            max_batch = max(1, self.MAX_STACK_ELEMENTS // 4**n_reduced)
            for start in range(0, len(jobs), max_batch):
                self._run_group(jobs[start: start + max_batch], noise_model)

        templates, self._pending_templates = self._pending_templates, []
        for job in templates:
            if job.rhos is None:
                self._run_template(job)

    def _run_group(self, jobs: Sequence[DensityJob], noise_model) -> None:
        self.batches_run += 1
        n = jobs[0].n_reduced
        rhos = zero_density_matrices(n, len(jobs))
        n_instructions = len(jobs[0].reduced.instructions)
        for position in range(n_instructions):
            instructions = [job.reduced.instructions[position] for job in jobs]
            first = instructions[0]
            if all(inst.params == first.params for inst in instructions):
                matrix = first.matrix()
            else:
                matrix = np.stack([inst.matrix() for inst in instructions])
            rhos = apply_unitary_batch(rhos, matrix, first.qubits)
            for kraus_ops, qubits in noise_model.channels_for(first):
                rhos = apply_kraus_batch(rhos, kraus_ops, qubits)
        for index, job in enumerate(jobs):
            job.noise_model = noise_model
            job.rho = rhos[index]

    def _run_template(self, job: TemplateBatchJob) -> None:
        """Evolve one template batch: shared skeleton, per-slot angle arrays."""
        binding = job.binding
        noise_model = self._device_noise_model().reduced(binding.used_qubits)
        job.noise_model = noise_model
        n = job.n_reduced
        n_rows = binding.n_rows
        max_batch = max(1, self.MAX_STACK_ELEMENTS // 4**n)
        chunks: List[np.ndarray] = []
        for start in range(0, n_rows, max_batch):
            stop = min(start + max_batch, n_rows)
            self.batches_run += 1
            self.template_batches_run += 1
            rhos = zero_density_matrices(n, stop - start)
            for slot in binding.slots:
                if type(slot) is Instruction:
                    representative = slot
                    matrix = slot.matrix()
                else:
                    gate, qubits, params = slot
                    # the noise channels only read gate arity and qubits, so
                    # one representative instruction serves the whole slot
                    representative = Instruction(gate, qubits, tuple(params[0]))
                    matrix = _batched_gate_matrices(gate, params[start:stop])
                rhos = apply_unitary_batch(rhos, matrix, representative.qubits)
                for kraus_ops, qubits in noise_model.channels_for(representative):
                    rhos = apply_kraus_batch(rhos, kraus_ops, qubits)
            chunks.append(rhos)
        job.rhos = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)


@register_backend
class DensityMatrixBackend(SimulationBackend):
    """The default ``noise_sim`` backend: batched density matrices."""

    name = "density"
    capabilities = BackendCapabilities(
        noisy=True,
        noise_free=False,
        shot_based=False,
        observables=True,
        batched=True,
        max_qubits=None,  # oversized registers use the success-rate fallback
    )

    def __init__(self, estimator) -> None:
        super().__init__(estimator)
        self.runner = BatchedDensityRunner(
            estimator.device, estimator.config.max_density_qubits
        )

    def run_group(self, entry, jobs: List[SimulationJob]) -> List[JobResult]:
        self.groups_run += 1
        handles: List[JobResult] = []
        for job in jobs:
            if job.template_batch is not None:
                batch = self.runner.submit_template(job.template_batch)
                handles.extend(batch.handles())
                self.jobs_run += batch.binding.n_rows
            else:
                handles.append(self.runner.submit(job.compiled))
                self.jobs_run += 1
        return handles

    def synchronize(self) -> None:
        self.runner.run()

    def stats_delta(self) -> Dict[str, int]:
        return {
            "density_batches": self.runner.batches_run,
            "template_batches": self.runner.template_batches_run,
        }
