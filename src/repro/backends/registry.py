"""Entry-point-style registration of simulation backends.

The registry maps backend names to :class:`~repro.backends.base.
SimulationBackend` subclasses.  The three in-tree backends register
themselves on import; third-party backends (a GPU kernel engine, a Qiskit
Aer adapter) register the same way:

    from repro.backends import SimulationBackend, register_backend

    @register_backend
    class AerBackend(SimulationBackend):
        name = "aer"
        capabilities = BackendCapabilities(noisy=True, batched=True, ...)
        def run_group(self, entry, jobs): ...

and become selectable via ``EstimatorConfig(backend="aer")`` or
``REPRO_BACKEND=aer`` with no further wiring — the dispatcher only talks to
the registry.
"""

from __future__ import annotations

from typing import Dict, List, Type

from .base import SimulationBackend

__all__ = [
    "register_backend",
    "unregister_backend",
    "backend_class",
    "available_backends",
    "create_backend",
]

_REGISTRY: Dict[str, Type[SimulationBackend]] = {}


def register_backend(cls: Type[SimulationBackend]) -> Type[SimulationBackend]:
    """Class decorator: register ``cls`` under its ``name`` attribute."""
    name = getattr(cls, "name", "")
    if not name:
        raise ValueError(f"{cls.__name__} must define a non-empty name")
    if not issubclass(cls, SimulationBackend):
        raise TypeError(f"{cls.__name__} must subclass SimulationBackend")
    _REGISTRY[name] = cls
    return cls


def unregister_backend(name: str) -> None:
    """Remove a registered backend (primarily for tests of third-party
    registration)."""
    _REGISTRY.pop(name, None)


def backend_class(name: str) -> Type[SimulationBackend]:
    """The registered class for ``name``; raises with the known names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown simulation backend {name!r}; "
            f"registered backends: {available_backends()}"
        ) from None


def available_backends() -> List[str]:
    """Registered backend names, sorted for stable messages."""
    return sorted(_REGISTRY)


def create_backend(name: str, estimator) -> SimulationBackend:
    """Instantiate a fresh backend bound to ``estimator``.

    Backends are cheap, per-population objects — a fresh instance per
    evaluation keeps their batching state and counters scoped to exactly one
    population.
    """
    return backend_class(name)(estimator)
