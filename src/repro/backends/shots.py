"""Shot-sampling backend: real-QC-style execution through the population
protocol.

Wraps :meth:`repro.devices.backend.QuantumBackend.run_parameterized` — the
same compile-and-run path the paper's "search with real QC in the loop"
configuration uses — behind the :class:`~repro.backends.base.
SimulationBackend` protocol, so shot-based searches run through the
*identical* batched population machinery (genome grouping, shared transpile
caches, sharded scheduling) as the simulator-backed modes.

Determinism: the historical real-QC path consumes one shared rng stream in
population order, which is why the engine evaluates it candidate-by-candidate
in the parent process.  This backend instead pins an independent seed per
*job* — derived with :func:`repro.utils.rng.stable_seed` from the job's
``seed_key`` (genome gene, mapping, sample index), never from scheduling
order — so scores are bit-for-bit reproducible across repeated evaluations,
group orderings and worker counts.  Select it with
``EstimatorConfig(backend="shots")`` or ``REPRO_BACKEND=shots``.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..devices.backend import QuantumBackend
from ..utils.rng import stable_seed
from .base import (
    BackendCapabilities,
    JobResult,
    SimulationBackend,
    SimulationJob,
)
from .registry import register_backend

__all__ = ["ShotSamplerBackend"]


class _ShotResult(JobResult):
    """Wraps one :class:`~repro.devices.backend.BackendResult`."""

    __slots__ = ("result",)

    def __init__(self, result) -> None:
        self.result = result

    def logical_z_expectations(self, n_logical: int) -> np.ndarray:
        return self.result.expectation_z_all()

    def probabilities(self) -> np.ndarray:
        return self.result.probabilities


@register_backend
class ShotSamplerBackend(SimulationBackend):
    """Finite-shot execution with per-job pinned seeds."""

    name = "shots"
    capabilities = BackendCapabilities(
        noisy=True,
        noise_free=False,
        shot_based=True,
        observables=False,   # Z-basis readout only; VQE stays on density
        batched=False,
        max_qubits=None,
    )

    def __init__(self, estimator) -> None:
        super().__init__(estimator)
        config = estimator.config
        self.shots = int(config.shots)
        self.seed = int(getattr(config, "seed", 0))
        self.optimization_level = int(config.optimization_level)
        # A private QuantumBackend sharing the estimator's warm transpile
        # caches: compilations flow into the same caches every other stage
        # reuses, while the per-job reseeding below never disturbs the
        # estimator's own backend rng stream (which the sequential real_qc
        # path consumes in population order).
        self._backend = QuantumBackend(
            estimator.device,
            shots=self.shots,
            seed=self.seed,
            max_density_qubits=config.max_density_qubits,
            transpile_cache=getattr(estimator, "transpile_cache", None),
            parametric_cache=getattr(
                estimator, "parametric_transpile_cache", None
            ),
        )

    def job_seed(self, seed_key) -> int:
        """The pinned sampling seed for one job (pure function of content)."""
        return stable_seed((self.seed, "shot-backend") + tuple(seed_key or ()))

    def run_group(self, entry, jobs: List[SimulationJob]) -> List[JobResult]:
        self.groups_run += 1
        handles: List[JobResult] = []
        for job in jobs:
            self._backend.reseed(self.job_seed(job.seed_key))
            circuit = job.circuit if job.circuit is not None else entry.circuit
            weights = job.weights if job.weights is not None else entry.weights
            result = self._backend.run_parameterized(
                circuit,
                weights,
                job.features,
                initial_layout=job.initial_layout,
                optimization_level=self.optimization_level,
                shots=self.shots,
            )
            handles.append(_ShotResult(result))
            self.jobs_run += 1
        return handles

    def stats_delta(self) -> Dict[str, int]:
        return {"shot_circuits": self.jobs_run}
