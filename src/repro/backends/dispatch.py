"""Deterministic per-group backend selection.

The execution engine asks the dispatcher once per structure group which
backend should simulate that group's bindings.  Selection is a *pure
function* of the estimator configuration and the request — never of pool
state, population order or prior generations — which is what lets the
sharded scheduler rebuild an identical dispatcher inside every worker
process from the pickled :class:`~repro.core.estimator.EstimatorConfig`
alone, with ``_ShardTask`` payloads carrying no backend state at all.

Policy
------
1.  An **override** — ``EstimatorConfig(backend=...)``, defaulting to the
    ``REPRO_BACKEND`` environment variable — wins whenever the named
    backend's capabilities satisfy the request.  An override that *cannot*
    serve a request (``statevector`` asked for noisy simulation, ``shots``
    asked for Pauli-sum observables) is ignored for that request and
    counted in :attr:`BackendDispatcher.overrides_ignored`, so e.g. a
    ``REPRO_BACKEND=statevector`` CI lane exercises the statevector engine
    where applicable without breaking ``noise_sim`` scores.
2.  Otherwise the resolved estimator mode picks the engine family:
    ``noise_sim`` groups go to ``density``, ``real_qc`` groups to ``shots``,
    and everything noise-free (the ``noise_free`` mode and the noise-free
    numerators of ``success_rate`` scores) to ``statevector``.
3.  Capability flags (noise, observables, ``max_qubits`` vs the group's
    register) veto incompatible choices; the qubit count in the request is
    what lets a capability-bounded backend (e.g. a GPU engine with a
    statically allocated register) decline large groups while serving small
    ones.

Unknown override names raise immediately at dispatcher construction with
the list of registered backends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .base import BackendCapabilities, SimulationBackend
from .registry import backend_class, create_backend

__all__ = ["DispatchRequest", "BackendDispatcher"]


@dataclass(frozen=True)
class DispatchRequest:
    """What one structure group needs from a simulation backend."""

    #: resolved estimator mode of the group ("noise_sim", "success_rate",
    #: "noise_free" or "real_qc"); success_rate requests describe the
    #: noise-free numerator — the success-rate factor itself is compile-time
    #: metadata, not simulation
    mode: str
    #: logical register width of the group's circuits
    n_qubits: int
    #: whether results must expose Pauli-sum expectations (VQE energies)
    needs_observables: bool = False


class BackendDispatcher:
    """Selects and instantiates simulation backends for the engine."""

    def __init__(self, estimator, override: Optional[str] = None) -> None:
        self.estimator = estimator
        if override is None:
            override = getattr(estimator.config, "backend", None)
        self.override = override or None
        if self.override is not None:
            backend_class(self.override)  # unknown names fail fast, loudly
        self.overrides_applied = 0
        self.overrides_ignored = 0

    # -- policy --------------------------------------------------------------

    @staticmethod
    def default_backend(request: DispatchRequest) -> str:
        """The mode-driven default (policy rule 2)."""
        if request.mode == "noise_sim":
            return "density"
        if request.mode == "real_qc":
            return "shots"
        return "statevector"

    @staticmethod
    def capable(caps: BackendCapabilities, request: DispatchRequest) -> bool:
        """Whether a capability declaration satisfies a request (rule 3)."""
        if request.mode in ("noise_sim", "real_qc"):
            if not caps.noisy:
                return False
            if request.mode == "real_qc" and not caps.shot_based:
                return False
        else:
            if not caps.noise_free:
                return False
        if request.needs_observables and not caps.observables:
            return False
        if caps.max_qubits is not None and request.n_qubits > caps.max_qubits:
            return False
        return True

    def select(self, request: DispatchRequest) -> str:
        """The backend name serving ``request`` (a pure function)."""
        default = self.default_backend(request)
        if self.override is not None and self.override != default:
            if self.capable(backend_class(self.override).capabilities, request):
                self.overrides_applied += 1
                return self.override
            self.overrides_ignored += 1
        if not self.capable(backend_class(default).capabilities, request):
            raise ValueError(
                f"no registered backend can serve {request} "
                f"(default {default!r} is not capable)"
            )
        return default

    # -- instantiation -------------------------------------------------------

    def create(self, name: str) -> SimulationBackend:
        """A fresh backend instance bound to this dispatcher's estimator."""
        return create_backend(name, self.estimator)

    def backend_for(self, request: DispatchRequest) -> SimulationBackend:
        """Select and instantiate in one step."""
        return self.create(self.select(request))
