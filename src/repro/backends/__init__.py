"""Pluggable simulation backends with per-group dispatch.

The population execution engine (:mod:`repro.execution`) decides *what* to
evaluate; this package decides *how* each structure group's bindings are
simulated.  Three engines ship in-tree:

* ``density`` — :class:`DensityMatrixBackend`, the batched noisy simulator
  behind ``noise_sim`` scores (the engine the paper's estimator uses for
  small circuits);
* ``statevector`` — :class:`StatevectorBackend`, batched noise-free
  trajectories for every term that never needed a density matrix
  (``noise_free`` scores and the numerators of ``success_rate`` scores);
* ``shots`` — :class:`ShotSamplerBackend`, finite-shot execution through
  ``QuantumBackend.run_parameterized`` with per-job pinned seeds, the
  real-QC-in-the-loop configuration run through the identical population
  protocol.

Per-group selection is a deterministic policy
(:class:`BackendDispatcher`): resolved estimator mode, qubit count and
capability flags, with an ``EstimatorConfig(backend=...)`` /
``REPRO_BACKEND`` override that applies wherever the named backend is
capable.  Third-party engines register through
:func:`register_backend` — see ``README.md`` in this directory.
"""

from .base import (
    BackendCapabilities,
    BackendCapabilityError,
    JobResult,
    SimulationBackend,
    SimulationJob,
)
from .dispatch import BackendDispatcher, DispatchRequest
from .registry import (
    available_backends,
    backend_class,
    create_backend,
    register_backend,
    unregister_backend,
)

# Importing the concrete modules registers the in-tree backends.
from .density import BatchedDensityRunner, DensityJob, DensityMatrixBackend
from .shots import ShotSamplerBackend
from .statevector import StatevectorBackend

__all__ = [
    "BackendCapabilities",
    "BackendCapabilityError",
    "JobResult",
    "SimulationBackend",
    "SimulationJob",
    "BackendDispatcher",
    "DispatchRequest",
    "available_backends",
    "backend_class",
    "create_backend",
    "register_backend",
    "unregister_backend",
    "BatchedDensityRunner",
    "DensityJob",
    "DensityMatrixBackend",
    "ShotSamplerBackend",
    "StatevectorBackend",
]
