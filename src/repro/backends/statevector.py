"""Batched noise-free statevector backend.

Serves every loss term that never needed a density matrix: the
``noise_free`` estimator mode, the noise-free numerator of
``success_rate``-weighted scores, and the per-group noise-free energy probes
of the VQE paths.  Forward passes run over the whole validation batch at
once in the ``(batch,) + (2,) * n`` state layout, with consecutive concrete
(weight-bound) gate segments fused into dense ``<= max_fused_qubits``
unitaries (TorchQuantum's static mode) so the hot loop applies fewer, larger
contractions.  Per-sample encoder gates stay dynamic and are applied with
batched matrices.

The fusion plan is memoized on the structure-group entry (the engine's
per-genome cache), so successive populations — and successive backend
instances — reuse it until the SuperCircuit parameters change.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..quantum.circuit import Instruction, QuantumCircuit
from ..quantum.fusion import fuse_circuit
from ..quantum.statevector import (
    apply_matrix,
    expectation_pauli_sum,
    expectation_z_all,
    op_matrix,
    run_parameterized,
    run_parameterized_rows,
    zero_state,
)
from .base import (
    BackendCapabilities,
    JobResult,
    SimulationBackend,
    SimulationJob,
)
from .registry import register_backend

__all__ = ["StatevectorBackend"]


class _StatevectorResult(JobResult):
    """Forward-pass states of one structure group (whole batch at once)."""

    __slots__ = ("states",)

    def __init__(self, states: np.ndarray) -> None:
        self.states = states

    def logical_z_expectations(self, n_logical: int) -> np.ndarray:
        """``(batch, n_qubits)`` Z expectations of the forward states."""
        return expectation_z_all(self.states)

    def pauli_expectations(self, observable) -> np.ndarray:
        """``(batch,)`` expectations of a logical Pauli-sum observable."""
        return expectation_pauli_sum(self.states, observable)

    def pauli_expectation(self, observable) -> float:
        return float(self.pauli_expectations(observable)[0])


@register_backend
class StatevectorBackend(SimulationBackend):
    """Noise-free trajectories for loss terms that never needed a density
    matrix."""

    name = "statevector"
    capabilities = BackendCapabilities(
        noisy=False,
        noise_free=True,
        shot_based=False,
        observables=True,
        batched=True,
        max_qubits=None,
    )

    def __init__(self, estimator) -> None:
        super().__init__(estimator)
        config = estimator.config
        # engines override these post-construction when their own settings
        # differ from the estimator config (e.g. the fusion=False test seam)
        self.fusion = bool(getattr(config, "fusion", True))
        self.max_fused_qubits = int(getattr(config, "max_fused_qubits", 3))
        self.segments_fused = 0
        self.batches_run = 0

    def run_group(self, entry, jobs: List[SimulationJob]) -> List[JobResult]:
        """One forward pass per job; ``features`` may be a whole matrix.

        A job carrying its own ``weights`` (the gradient engine's shifted
        evaluations) overrides the entry's inherited weight vector; a 2-D
        ``(rows, num_weights)`` weight matrix runs every row over the whole
        feature batch in one pass (row-major).  Weight-carrying jobs bypass
        the fusion plan — its fused matrices bake the *entry's* weights in.
        """
        self.groups_run += 1
        handles: List[JobResult] = []
        for job in jobs:
            if job.weights is not None:
                states = self._weighted_states(entry, job)
            else:
                states = self._forward_states(entry, job.features)
            self.batches_run += 1
            self.jobs_run += states.shape[0]
            handles.append(_StatevectorResult(states))
        return handles

    def _weighted_states(self, entry, job: SimulationJob) -> np.ndarray:
        circuit = job.circuit if job.circuit is not None else entry.circuit
        weights = np.asarray(job.weights, dtype=float)
        if weights.ndim == 2:
            return run_parameterized_rows(circuit, weights, job.features)
        return run_parameterized(circuit, weights, job.features)

    def stats_delta(self) -> Dict[str, int]:
        return {
            "statevector_batches": self.batches_run,
            "fused_segments": self.segments_fused,
        }

    # -- fused forward pass ---------------------------------------------------

    def _fusion_plan(self, entry) -> List[Tuple[str, object]]:
        """Fuse concrete (weight/const) segments; keep encoder ops dynamic."""
        if entry.fusion_plan is not None:
            return entry.fusion_plan
        circuit, weights = entry.circuit, entry.weights
        plan: List[Tuple[str, object]] = []
        segment: List[Instruction] = []

        def flush() -> None:
            if not segment:
                return
            concrete = QuantumCircuit(circuit.n_qubits, list(segment))
            for block in fuse_circuit(concrete, self.max_fused_qubits):
                plan.append(("fused", block))
            self.segments_fused += 1
            segment.clear()

        for op in circuit.ops:
            if op.uses_input:
                flush()
                plan.append(("dynamic", op))
            else:
                params = circuit.resolve_params(op, weights)
                segment.append(Instruction(op.gate, op.qubits, tuple(params)))
        flush()
        entry.fusion_plan = plan
        return plan

    def _forward_states(
        self, entry, features: Optional[np.ndarray], batch: int = 1
    ) -> np.ndarray:
        """Statevector forward pass with static-mode fusion when enabled."""
        circuit, weights = entry.circuit, entry.weights
        if features is not None:
            features = np.asarray(features, dtype=float)
            if features.ndim == 1:
                features = features[None, :]
            batch = features.shape[0]
        if not self.fusion:
            return run_parameterized(circuit, weights, features, batch=batch)
        states = zero_state(circuit.n_qubits, batch)
        for kind, payload in self._fusion_plan(entry):
            if kind == "fused":
                states = apply_matrix(states, payload.matrix, payload.qubits)
            else:
                params = circuit.resolve_params(payload, weights, features)
                states = apply_matrix(
                    states, op_matrix(payload.gate, params), payload.qubits
                )
        return states
