"""Quantum neural network models: encoder + trainable layers + measurement.

A :class:`QNNModel` wraps a :class:`~repro.quantum.circuit.ParameterizedCircuit`
containing a data encoder followed by trainable quantum layers.  Measurement is
on the Pauli-Z basis of every qubit; a linear readout map converts the
expectation values into class logits which are fed to Softmax, exactly as in
Fig. 4 of the paper (for 2-class tasks, pairs of qubits are summed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..quantum.autodiff import adjoint_gradient
from ..quantum.circuit import ParamOp, ParameterizedCircuit
from ..quantum.statevector import expectation_z_all, run_parameterized
from ..utils.stats import accuracy, cross_entropy_with_logits, nll_loss, softmax
from .encoders import EncoderSpec, build_encoder_ops

__all__ = ["readout_matrix", "QNNModel"]


def readout_matrix(n_qubits: int, n_classes: int) -> np.ndarray:
    """The linear map from per-qubit Z expectations to class logits.

    * ``n_classes == n_qubits``: identity (one qubit per class).
    * 2-class on 4 qubits: qubits (0, 1) and (2, 3) are summed, following the
      paper's readout description.
    * Otherwise: qubits are partitioned into ``n_classes`` contiguous groups
      and summed within each group.
    """
    if n_classes > n_qubits:
        raise ValueError("cannot read out more classes than qubits")
    matrix = np.zeros((n_classes, n_qubits))
    if n_classes == n_qubits:
        return np.eye(n_qubits)
    bounds = np.linspace(0, n_qubits, n_classes + 1).astype(int)
    for cls in range(n_classes):
        matrix[cls, bounds[cls] : bounds[cls + 1]] = 1.0
    return matrix


@dataclass
class QNNForward:
    """Intermediate results of a forward pass (kept for the backward pass)."""

    states: np.ndarray
    expectations: np.ndarray
    logits: np.ndarray


class QNNModel:
    """Encoder + trainable circuit + Z measurement + Softmax readout."""

    def __init__(
        self,
        n_qubits: int,
        n_classes: int,
        encoder: Optional[EncoderSpec] = None,
        trainable_ops: Optional[Sequence[ParamOp]] = None,
    ) -> None:
        self.n_qubits = int(n_qubits)
        self.n_classes = int(n_classes)
        self.encoder = encoder
        self.circuit = ParameterizedCircuit(self.n_qubits)
        if encoder is not None:
            for op in build_encoder_ops(encoder):
                self.circuit.add_op(op)
        if trainable_ops:
            for op in trainable_ops:
                self.circuit.add_op(op)
        self.readout = readout_matrix(self.n_qubits, self.n_classes)

    # -- construction helpers ------------------------------------------------

    @classmethod
    def from_circuit(
        cls, circuit: ParameterizedCircuit, n_classes: int
    ) -> "QNNModel":
        """Wrap an existing parameterized circuit (encoder already included)."""
        model = cls(circuit.n_qubits, n_classes, encoder=None, trainable_ops=None)
        model.circuit = circuit
        return model

    def add_trainable(self, gate: str, qubits: Sequence[int]) -> Tuple[int, ...]:
        """Append one trainable gate and return its new weight indices."""
        return self.circuit.add_trainable(gate, qubits)

    @property
    def num_weights(self) -> int:
        return self.circuit.num_weights

    def init_weights(self, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        return self.circuit.init_weights(rng)

    # -- noise-free forward / backward ----------------------------------------

    def forward(self, weights: np.ndarray, features: np.ndarray) -> QNNForward:
        states = run_parameterized(self.circuit, weights, features)
        expectations = expectation_z_all(states)
        logits = expectations @ self.readout.T
        return QNNForward(states=states, expectations=expectations, logits=logits)

    def loss(self, weights: np.ndarray, features: np.ndarray, labels: np.ndarray):
        """Noise-free cross-entropy loss and accuracy."""
        out = self.forward(weights, features)
        probs = softmax(out.logits)
        return nll_loss(probs, labels), accuracy(out.logits, labels)

    def loss_and_gradient(
        self, weights: np.ndarray, features: np.ndarray, labels: np.ndarray
    ) -> Tuple[float, np.ndarray, np.ndarray]:
        """Cross-entropy loss, its gradient w.r.t. the weights, and the logits.

        The classical part (Softmax + NLL + linear readout) is differentiated
        in closed form; the chain into the circuit uses one adjoint pass with
        per-sample effective-Z coefficients.
        """
        out = self.forward(weights, features)
        loss_value, grad_logits = cross_entropy_with_logits(out.logits, labels)
        grad_expectations = grad_logits @ self.readout
        grads = adjoint_gradient(
            self.circuit,
            weights,
            features,
            z_coefficients=grad_expectations,
            states_final=out.states,
        )
        return loss_value, grads, out.logits

    # -- generic readout (shared with noisy evaluation) ------------------------

    def logits_from_expectations(self, expectations: np.ndarray) -> np.ndarray:
        return np.asarray(expectations) @ self.readout.T

    def predict_from_expectations(self, expectations: np.ndarray) -> np.ndarray:
        return np.argmax(self.logits_from_expectations(expectations), axis=-1)
