"""Data encoders: rotation-angle encoding of classical features.

Table I of the paper specifies the encoder for every QML benchmark as a short
sequence of rotation layers, e.g. MNIST-4 uses ``4xRY, 4xRZ, 4xRX, 4xRY`` on 4
qubits to encode the 16 pixels of a down-sampled 4x4 image.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..quantum.circuit import ParamOp, ParameterizedCircuit, feature

__all__ = ["EncoderSpec", "ENCODER_LIBRARY", "build_encoder_ops", "encoder_for_task"]


@dataclass(frozen=True)
class EncoderSpec:
    """An encoder described as ``(gate, count)`` layers over ``n_qubits`` wires."""

    name: str
    n_qubits: int
    layers: Tuple[Tuple[str, int], ...]

    @property
    def n_features(self) -> int:
        return sum(count for _gate, count in self.layers)


# Encoders from Table I of the paper.
ENCODER_LIBRARY = {
    "image_4x4_4q": EncoderSpec(
        "image_4x4_4q", 4, (("ry", 4), ("rz", 4), ("rx", 4), ("ry", 4))
    ),
    "image_6x6_10q": EncoderSpec(
        "image_6x6_10q", 10, (("ry", 10), ("rz", 10), ("rx", 10), ("ry", 6))
    ),
    "vowel_10d_4q": EncoderSpec("vowel_10d_4q", 4, (("ry", 4), ("rz", 4), ("rx", 2))),
}


def build_encoder_ops(spec: EncoderSpec) -> List[ParamOp]:
    """Expand an encoder spec into data-fed rotation operations.

    Features are consumed sequentially; within a layer the rotations are placed
    on qubits ``0, 1, ..., count - 1`` (wrapping around the register).
    """
    ops: List[ParamOp] = []
    feature_index = 0
    for gate, count in spec.layers:
        for position in range(count):
            qubit = position % spec.n_qubits
            ops.append(ParamOp(gate, (qubit,), (feature(feature_index),)))
            feature_index += 1
    return ops


def attach_encoder(pcirc: ParameterizedCircuit, spec: EncoderSpec) -> None:
    """Append an encoder's operations to a parameterized circuit."""
    if pcirc.n_qubits < spec.n_qubits:
        raise ValueError("circuit has fewer qubits than the encoder requires")
    for op in build_encoder_ops(spec):
        pcirc.add_op(op)


def encoder_for_task(task_name: str) -> EncoderSpec:
    """The encoder the paper assigns to each benchmark task."""
    key = task_name.lower()
    if key in ("mnist-10", "mnist10"):
        return ENCODER_LIBRARY["image_6x6_10q"]
    if key.startswith(("mnist", "fashion")):
        return ENCODER_LIBRARY["image_4x4_4q"]
    if key.startswith("vowel"):
        return ENCODER_LIBRARY["vowel_10d_4q"]
    raise KeyError(f"no encoder registered for task '{task_name}'")
